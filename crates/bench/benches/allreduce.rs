//! Criterion bench: collective-engine throughput (plan → flows → drain) for
//! ring allreduce at 2–16 nodes. Guards the simulator's own performance —
//! the figure binaries run thousands of these.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use c4::prelude::*;
use c4::scenarios::benchmark_request;

fn bench_allreduce(c: &mut Criterion) {
    let topo = Topology::build(&ClosConfig::testbed_128());
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for nodes in [2usize, 8, 16] {
        let devices: Vec<GpuId> = (0..nodes)
            .flat_map(|n| topo.node(NodeId::from_index(n)).gpus.clone())
            .collect();
        let comm = Communicator::new(1, devices, &topo).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(nodes * 8), &nodes, |b, _| {
            b.iter(|| {
                let mut sel = RailLocalSelector::new();
                let mut rng = DetRng::seed_from(1);
                let req = benchmark_request(&comm, 0, DrainConfig::default());
                run_collective(&topo, &req, &mut sel, None, &mut rng, None)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
