//! Criterion bench: C4D delay-matrix localization latency — the paper's
//! claim is that detection happens "in mere seconds" at production scale, so
//! the analysis itself must be far below that.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use c4::prelude::*;

fn matrix_of(n: usize, seed: u64) -> DelayMatrix {
    let mut rng = DetRng::seed_from(seed);
    let mut m = DelayMatrix::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                m.set(i, j, 0.010 * (1.0 + 0.05 * rng.uniform()));
            }
        }
    }
    // One anomaly of each flavour.
    for j in 0..n {
        if j != 3 {
            m.set(3, j, 0.045);
        }
    }
    m.set(7 % n, 5 % n, 0.050);
    m
}

fn bench_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_matrix_analyze");
    group.sample_size(30);
    for n in [8usize, 64, 512] {
        let m = matrix_of(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| m.analyze(2.0, 0.7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
