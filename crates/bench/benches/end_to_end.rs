//! Criterion bench: one full BSP training iteration (compute model + 8
//! concurrent DP allreduces through the fluid network).

use criterion::{criterion_group, criterion_main, Criterion};

use c4::prelude::*;

fn bench_iteration(c: &mut Criterion) {
    let topo = Topology::build(&ClosConfig::testbed_128());
    let spec = JobSpec::gpt22b_tp8_dp16();
    let nodes: Vec<NodeId> = (0..16).map(NodeId::from_index).collect();
    let layout = ParallelLayout::place(&topo, &spec, nodes).unwrap();
    let mut group = c.benchmark_group("training_iteration");
    group.sample_size(10);
    group.bench_function("gpt22b_tp8_dp16", |b| {
        b.iter(|| {
            let mut job = TrainingJob::new(&topo, spec.clone(), layout.clone(), 1);
            let mut sel = RailLocalSelector::new();
            let mut rng = DetRng::seed_from(3);
            job.run_iteration(&topo, &mut sel, None, &mut rng, &[], None)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
