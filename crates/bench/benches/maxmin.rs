//! Criterion bench: the max-min fair (progressive-filling) solver at
//! realistic flow/link scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use c4::prelude::*;

/// Synthesizes `flows` random 4-link routes over `links` links.
fn synth(links: usize, flows: usize, seed: u64) -> (Vec<f64>, Vec<Vec<u32>>) {
    let mut rng = DetRng::seed_from(seed);
    let capacity: Vec<f64> = (0..links).map(|_| 100.0 + rng.uniform() * 300.0).collect();
    let routes: Vec<Vec<u32>> = (0..flows)
        .map(|_| (0..4).map(|_| rng.index(links) as u32).collect())
        .collect();
    (capacity, routes)
}

fn bench_maxmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_solve");
    group.sample_size(20);
    for &(links, flows) in &[(600usize, 100usize), (3600, 400), (6000, 1500)] {
        let (capacity, routes) = synth(links, flows, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{links}l_{flows}f")),
            &(),
            |b, _| b.iter(|| c4_netsim::maxmin::solve(&capacity, &routes, None)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maxmin);
criterion_main!(benches);
