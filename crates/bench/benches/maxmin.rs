//! Criterion bench: the max-min fair solvers at realistic flow/link scales —
//! the from-scratch reference ([`maxmin::solve`]), the incremental
//! [`MaxMinState`] on the drain loop's operations (flow completion, DCQCN
//! cap perturbation), and the two drain implementations end to end.
//!
//! `BENCH_maxmin.json` at the repository root records the trajectory of
//! these numbers (and the month-scale test-suite wall times) across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use c4::prelude::*;
use c4_bench::{synth_drain_specs, synth_maxmin_problem as synth};

fn bench_maxmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_solve");
    group.sample_size(20);
    for &(links, flows) in &[(600usize, 100usize), (3600, 400), (6000, 1500)] {
        let (capacity, routes) = synth(links, flows, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{links}l_{flows}f")),
            &(),
            |b, _| b.iter(|| c4_netsim::maxmin::solve(&capacity, &routes, None)),
        );
    }
    group.finish();
}

/// One flow completes: re-solve from scratch vs incremental removal.
/// (The incremental side clones the solved state per iteration so every
/// removal starts from the same baseline; the clone is pure memcpy and is
/// charged against it.)
fn bench_completion_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_completion_resolve");
    group.sample_size(20);
    for &(links, flows) in &[(600usize, 100usize), (3600, 400), (6000, 1500)] {
        let (capacity, routes) = synth(links, flows, 7);
        let removed = flows / 2;

        let remaining: Vec<Vec<u32>> = routes
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != removed)
            .map(|(_, r)| r.clone())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("from_scratch", format!("{links}l_{flows}f")),
            &(),
            |b, _| b.iter(|| c4_netsim::maxmin::solve(&capacity, &remaining, None)),
        );

        let mut state = MaxMinState::with_flows(&capacity, &routes, None);
        let _ = state.rates();
        group.bench_with_input(
            BenchmarkId::new("incremental", format!("{links}l_{flows}f")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut s = state.clone();
                    s.remove_flow(removed);
                    s.rates().len()
                })
            },
        );
    }
    group.finish();
}

/// A DCQCN noise epoch: every congested flow's cap moves. From-scratch
/// capped solve vs incremental perturbation (the fallback-heavy worst case).
fn bench_noise_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_noise_epoch");
    group.sample_size(20);
    for &(links, flows) in &[(600usize, 100usize), (3600, 400)] {
        let (capacity, routes) = synth(links, flows, 7);
        let base = c4_netsim::maxmin::solve(&capacity, &routes, None);
        let caps: Vec<f64> = base.iter().map(|r| r * 0.93).collect();

        group.bench_with_input(
            BenchmarkId::new("from_scratch", format!("{links}l_{flows}f")),
            &(),
            |b, _| b.iter(|| c4_netsim::maxmin::solve(&capacity, &routes, Some(&caps))),
        );

        let mut state = MaxMinState::with_flows(&capacity, &routes, None);
        let _ = state.rates();
        group.bench_with_input(
            BenchmarkId::new("incremental", format!("{links}l_{flows}f")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut s = state.clone();
                    for (f, &cap) in caps.iter().enumerate() {
                        s.rate_perturb(f, cap);
                    }
                    s.rates().len()
                })
            },
        );
    }
    group.finish();
}

/// The drain loop end to end: many same-sized QPs contending on shared
/// receive ports under DCQCN noise + CNP accounting — the scenario-suite
/// hot path. Compares the incremental drain against the retained reference.
fn bench_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("drain_noisy_shared");
    group.sample_size(10);
    let topo = Topology::build(&ClosConfig::testbed_128());
    let specs = synth_drain_specs(&topo, 256, 3);
    let cfg = DrainConfig {
        rate_noise: 0.1,
        cnp: Some(CnpModel::paper_default()),
        ..DrainConfig::default()
    };
    group.bench_with_input(BenchmarkId::new("incremental", "256qp"), &(), |b, _| {
        b.iter(|| {
            let mut rng = DetRng::seed_from(42);
            drain(&topo, &specs, &cfg, &mut rng).end
        })
    });
    group.bench_with_input(BenchmarkId::new("reference", "256qp"), &(), |b, _| {
        b.iter(|| {
            let mut rng = DetRng::seed_from(42);
            drain_reference(&topo, &specs, &cfg, &mut rng).end
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_maxmin,
    bench_completion_resolve,
    bench_noise_epoch,
    bench_drain
);
criterion_main!(benches);
