//! Criterion bench: C4P path-allocation throughput — the master must keep
//! up with connection establishment at job start (hundreds of QPs per job).

use criterion::{criterion_group, criterion_main, Criterion};

use c4::prelude::*;

fn bench_alloc(c: &mut Criterion) {
    let topo = Topology::build(&ClosConfig::testbed_128_grouped(2));
    let keys: Vec<FlowKey> = (0..256u64)
        .map(|i| FlowKey {
            src_gpu: topo.gpu_at(NodeId::from_index((i % 8) as usize), (i % 8) as usize),
            dst_gpu: topo.gpu_at(NodeId::from_index(8 + (i % 8) as usize), (i % 8) as usize),
            comm: i / 16,
            channel: (i % 16) as u16,
            qp: (i % 2) as u16,
            incarnation: 0,
        })
        .collect();
    c.bench_function("c4p_path_alloc_256qps", |b| {
        b.iter(|| {
            let mut master = C4pMaster::new(&topo, C4pConfig::default());
            for k in &keys {
                criterion::black_box(master.select(&topo, k));
            }
        })
    });
    c.bench_function("c4p_probe_full_mesh", |b| {
        b.iter(|| PathCatalog::probe(&topo))
    });
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
