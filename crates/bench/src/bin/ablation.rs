//! Ablation: which of C4P's mechanisms buys what.
//!
//! The paper lists three key functionalities (§III-B): (1) faulty-link
//! elimination at start-up, (2) balanced QPs across healthy paths, and
//! (3) dynamic adaptation to network changes. This ladder measures the
//! 8-concurrent-job workload under a pre-degraded link plus a mid-run spine
//! failure, switching mechanisms on one at a time:
//!
//! 1. `ecmp`         — uncoordinated hashing (no C4P at all);
//! 2. `balance-only` — dual-port balance + per-leaf round-robin spreading,
//!    but no probing and no failure reaction;
//! 3. `c4p-static`   — full allocation incl. faulty-link elimination, but
//!    static after start-up;
//! 4. `c4p-dynamic`  — everything, incl. rebalance + byte re-splitting.

use c4::prelude::*;
use c4::scenarios::benchmark_request;
use c4_bench::{banner, parse_cli};

struct Outcome {
    name: &'static str,
    pre_mean: f64,
    post_mean: f64,
}

fn run_ladder(
    name: &'static str,
    seed: u64,
    iters: usize,
    fail_at: usize,
    make: impl Fn(&Topology) -> Box<dyn FnMut(&Topology, &FlowKey) -> PathChoice>,
    dynamic_master: bool,
) -> Outcome {
    // Grouped trunked testbed with a pre-degraded (flapping) uplink.
    let mut topo = Topology::build(&ClosConfig::testbed_128_grouped(2).trunked());
    let flaky = topo.fabric_up_links(1, 5)[0];
    topo.link_mut(flaky).set_degradation(0.6);

    let jobs: Vec<Communicator> = (0..8)
        .map(|i| {
            let devices: Vec<GpuId> = [i, 8 + i]
                .iter()
                .flat_map(|&n| topo.node(NodeId::from_index(n)).gpus.clone())
                .collect();
            Communicator::new(1 + i as u64, devices, &topo).expect("job comm")
        })
        .collect();
    let drain = DrainConfig {
        rate_noise: 0.07,
        cnp: Some(CnpModel::paper_default()),
        ..DrainConfig::default()
    };
    let mut rng = DetRng::seed_from(seed);
    let mut select = make(&topo);

    struct Shim<'a>(&'a mut dyn FnMut(&Topology, &FlowKey) -> PathChoice);
    impl PathSelector for Shim<'_> {
        fn select(&mut self, topo: &Topology, key: &FlowKey) -> PathChoice {
            (self.0)(topo, key)
        }
        fn name(&self) -> &'static str {
            "ablation-shim"
        }
    }

    let mut pre = Vec::new();
    let mut post = Vec::new();
    for it in 0..iters {
        if it == fail_at {
            let spine = topo.spines()[0];
            topo.set_spine_up(spine, false);
            if dynamic_master {
                // The dynamic rung re-probes; rebuild its closure.
                select = make(&topo);
            }
        }
        let reqs: Vec<CollectiveRequest<'_>> = jobs
            .iter()
            .map(|c| benchmark_request(c, it as u64, drain.clone()))
            .collect();
        let mut shim = Shim(&mut *select);
        let results = run_concurrent(&topo, &reqs, &mut shim, None, &mut rng, None);
        let mean =
            results.iter().filter_map(|r| r.busbw_gbps()).sum::<f64>() / results.len() as f64;
        if it < fail_at {
            pre.push(mean);
        } else {
            post.push(mean);
        }
    }
    Outcome {
        name,
        pre_mean: pre.iter().sum::<f64>() / pre.len().max(1) as f64,
        post_mean: post.iter().sum::<f64>() / post.len().max(1) as f64,
    }
}

fn main() {
    let cli = parse_cli(12);
    banner(
        "Ablation — C4P mechanism ladder",
        "dual-port balance lifts healthy busbw; link elimination removes the \
         flaky-path tax; dynamic rebalance recovers after failures",
    );
    let fail_at = cli.iters / 2;
    let mut rows = Vec::new();

    rows.push(run_ladder(
        "1. ecmp (no C4P)",
        cli.seed,
        cli.iters,
        fail_at,
        |_| {
            let mut sel = EcmpSelector::new(0xAB1);
            Box::new(move |t, k| sel.select(t, k))
        },
        false,
    ));
    rows.push(run_ladder(
        "2. balance-only",
        cli.seed,
        cli.iters,
        fail_at,
        |_| {
            let mut sel = RailLocalSelector::new();
            Box::new(move |t, k| sel.select(t, k))
        },
        false,
    ));
    rows.push(run_ladder(
        "3. c4p-static",
        cli.seed,
        cli.iters,
        fail_at,
        |topo| {
            let mut m = C4pMaster::new(
                topo,
                C4pConfig {
                    dynamic: false,
                    ema_alpha: 0.5,
                },
            );
            Box::new(move |t, k| m.select(t, k))
        },
        false,
    ));
    rows.push(run_ladder(
        "4. c4p-dynamic",
        cli.seed,
        cli.iters,
        fail_at,
        |topo| {
            let mut m = C4pMaster::new(topo, C4pConfig::default());
            Box::new(move |t, k| m.select(t, k))
        },
        true,
    ));

    println!(
        "{:<22} {:>18} {:>18}",
        "mechanisms", "healthy (Gbps)", "after failure (Gbps)"
    );
    for r in &rows {
        println!("{:<22} {:>18.1} {:>18.1}", r.name, r.pre_mean, r.post_mean);
    }
    println!();
    println!("reading: rung 2 vs 1 = dual-port balance + spreading;");
    println!("         rung 3 vs 2 = probing/ledger (incl. flaky-link elimination);");
    println!("         rung 4 vs 3 = dynamic rebalance after the failure.");
}
