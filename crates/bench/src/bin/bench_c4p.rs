//! Regenerates **`BENCH_c4p.json`**: the C4P-vs-ECMP concurrent-jobs
//! comparison at cluster scale (the Fig 10 contention pattern on
//! rail-dense `pod_grouped_railed` fabrics of 512…4096 GPUs, at 1:1, 2:1
//! and 4:1 oversubscription, with the paper's DCQCN rate noise and CNP
//! accounting live in every cell).
//!
//! Each cell runs eight jobs interleaved across all leaf groups — every
//! ring boundary crosses the spine layer — under both selectors, and
//! records mean per-job bus bandwidth plus the **plan-build wall clock**
//! of each selector (ring planning + path selection + route assembly, from
//! `PlanCache::build_wall_ms`) and the **drain wall clock** (the noisy
//! event loops, net of plan building). The plan build is the workload the
//! dense ledger, catalog link indexes and batched selection optimize; the
//! drains are what the event-driven engine optimizes (`bench_drain` gates
//! them separately).
//!
//! `--json-out BENCH_c4p.json` writes the machine-readable document
//! (schema `c4-bench-v1`); `--check-against <baseline.json>` compares
//! `total_wall_ms` against a checked-in baseline and exits non-zero past
//! 2× — the CI perf gate, same pattern as `fig3 --sweep scale`.
//! `--threads N|max` overrides the `C4_THREADS` selection.

use c4::scenarios::fig10;
use c4_bench::{banner, check_wall_regression, parse_cli, pct, read_json, write_csv, write_json};

/// Allowed wall-clock growth over the checked-in baseline before the gate
/// trips.
const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let cli = parse_cli(2);
    // `--sweep 16k`/`--sweep 32k` select the scale extensions (their own
    // baselines, so the 4k trajectory stays comparable across PRs).
    let mut cfg = match cli.sweep.as_deref() {
        None | Some("scale") => fig10::C4pScaleConfig::scale_4096(cli.seed, cli.iters),
        Some("16k") => fig10::C4pScaleConfig::scale_16384(cli.seed, cli.iters),
        Some("32k") => fig10::C4pScaleConfig::scale_32768(cli.seed, cli.iters),
        Some(other) => panic!("unknown --sweep {other} (expected scale|16k|32k)"),
    };
    cfg.parallel = cli.parallel();
    let max_gpus = cfg.node_scales.iter().max().unwrap_or(&0) * 8;
    banner(
        &format!("C4P vs ECMP at cluster scale — 8 concurrent jobs, up to {max_gpus} GPUs"),
        "Fig 10 pattern: engineered allocation beats hashing as collisions compound",
    );
    eprintln!("threads: {}", cfg.parallel.threads());

    // Read the baseline before any write: CI points --check-against and
    // --json-out at the same path.
    let baseline = cli
        .check_against
        .as_deref()
        .map(|path| read_json(path).unwrap_or_else(|e| panic!("baseline: {e}")));

    let sweep = fig10::run_scale(&cfg);
    // Stdout carries only seed-deterministic simulation results (identical
    // at any thread count); wall clocks go to stderr and the JSON document.
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>10}",
        "GPUs", "oversub", "ECMP (Gbps)", "C4P (Gbps)", "gain"
    );
    for r in &sweep.rows {
        println!(
            "{:>6} {:>8} {:>12.1} {:>12.1} {:>10}",
            r.gpus,
            format!("{}:1", r.oversub),
            r.ecmp_gbps,
            r.c4p_gbps,
            pct(r.improvement)
        );
    }
    for r in &sweep.rows {
        eprintln!(
            "wall {:>6} GPUs {}:1 — cell {:>8.1} ms · plan build ecmp {:>7.2} ms, c4p {:>7.2} ms",
            r.gpus, r.oversub, r.wall_ms, r.ecmp_plan_ms, r.c4p_plan_ms
        );
    }
    eprintln!("total wall: {:.1} ms", sweep.total_wall_ms);

    let doc = sweep.to_json();
    if let Some(path) = cli.json_out.as_deref() {
        write_json(path, &doc);
        eprintln!("wrote {path}");
    }
    if let Some(path) = cli.csv_out.as_deref() {
        let rows: Vec<Vec<String>> = sweep
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.gpus.to_string(),
                    format!("{}:1", r.oversub),
                    format!("{:.3}", r.ecmp_gbps),
                    format!("{:.3}", r.c4p_gbps),
                    format!("{:.6}", r.improvement),
                    format!("{:.3}", r.ecmp_plan_ms),
                    format!("{:.3}", r.c4p_plan_ms),
                    format!("{:.3}", r.wall_ms),
                ]
            })
            .collect();
        write_csv(
            path,
            &[
                "gpus",
                "oversub",
                "ecmp_gbps",
                "c4p_gbps",
                "improvement",
                "ecmp_plan_ms",
                "c4p_plan_ms",
                "wall_ms",
            ],
            &rows,
        );
        eprintln!("wrote {path}");
    }
    if let Some(baseline) = baseline {
        match check_wall_regression(&doc, &baseline, REGRESSION_FACTOR) {
            Ok(msg) => eprintln!("perf gate: {msg}"),
            Err(msg) => {
                eprintln!("perf gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
