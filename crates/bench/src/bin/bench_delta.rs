//! Compares two `c4-bench-v1` documents (old vs new) and prints a per-row
//! wall-clock delta table — the quick before/after view for perf PRs:
//!
//! ```text
//! bench_delta OLD.json NEW.json
//! ```
//!
//! Rows are matched positionally (sweeps are deterministic, so the row
//! order is stable across runs of the same bench); each row prints its
//! identifying columns (`gpus`, `oversub` when present), the old and new
//! `wall_ms`, and the speedup `old / new`. The footer compares
//! `total_wall_ms`. Exits non-zero on schema mismatch or unreadable files,
//! never on a slowdown — this is a reporting tool, the CI gates live in
//! `--check-against`.

use c4::prelude::JsonValue;
use c4_bench::read_json;

fn schema_of(doc: &JsonValue, which: &str, path: &str) -> String {
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("{which} {path}: missing schema field"));
    assert_eq!(
        schema, "c4-bench-v1",
        "{which} {path}: unsupported schema {schema:?}"
    );
    doc.get("bench")
        .and_then(|v| v.as_str())
        .unwrap_or("<unnamed>")
        .to_string()
}

fn rows_of(doc: &JsonValue) -> Vec<JsonValue> {
    doc.get("rows")
        .and_then(|r| r.as_array())
        .map(|r| r.to_vec())
        .unwrap_or_default()
}

fn row_key(row: &JsonValue) -> String {
    let mut parts = Vec::new();
    if let Some(g) = row.get("gpus").and_then(|v| v.as_f64()) {
        parts.push(format!("{} GPUs", g as u64));
    }
    if let Some(o) = row.get("oversub").and_then(|v| v.as_f64()) {
        parts.push(format!("{}:1", o as u64));
    }
    if parts.is_empty() {
        "<row>".to_string()
    } else {
        parts.join(" ")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path) = match args.as_slice() {
        [o, n] => (o.as_str(), n.as_str()),
        _ => {
            eprintln!("usage: bench_delta <old.json> <new.json>");
            std::process::exit(2);
        }
    };
    let old = read_json(old_path).unwrap_or_else(|e| panic!("old: {e}"));
    let new = read_json(new_path).unwrap_or_else(|e| panic!("new: {e}"));
    let old_bench = schema_of(&old, "old", old_path);
    let new_bench = schema_of(&new, "new", new_path);
    if old_bench != new_bench {
        eprintln!("warning: comparing different benches ({old_bench} vs {new_bench})");
    }

    println!("bench: {new_bench}");
    println!(
        "{:>18} {:>14} {:>14} {:>9}",
        "row", "old wall (ms)", "new wall (ms)", "speedup"
    );
    let old_rows = rows_of(&old);
    let new_rows = rows_of(&new);
    if old_rows.len() != new_rows.len() {
        eprintln!(
            "warning: row counts differ (old {}, new {}) — comparing the common prefix",
            old_rows.len(),
            new_rows.len()
        );
    }
    for (o, n) in old_rows.iter().zip(&new_rows) {
        let ow = o.get("wall_ms").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let nw = n.get("wall_ms").and_then(|v| v.as_f64()).unwrap_or(0.0);
        println!(
            "{:>18} {:>14.1} {:>14.1} {:>8.2}×",
            row_key(n),
            ow,
            nw,
            ow / nw.max(1e-9)
        );
    }
    let ow = old
        .get("total_wall_ms")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("old {old_path}: missing total_wall_ms"));
    let nw = new
        .get("total_wall_ms")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("new {new_path}: missing total_wall_ms"));
    println!(
        "{:>18} {:>14.1} {:>14.1} {:>8.2}×",
        "total",
        ow,
        nw,
        ow / nw.max(1e-9)
    );
}
