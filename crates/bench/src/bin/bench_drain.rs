//! Regenerates **`BENCH_drain.json`**: per-cell wall clocks of the noisy
//! network drains at full scale — the 4096-GPU, eight-job Fig 10 contention
//! pattern with the paper's DCQCN rate noise and CNP accounting live, at
//! 1:1, 2:1 and 4:1 oversubscription.
//!
//! Each cell runs both selectors (ECMP and C4P-dynamic) and records the
//! iteration loop's wall clock net of plan building — the shared noisy
//! drain event loops the event-driven engine exists to shrink. Before that
//! engine, a single noisy 4096-GPU iteration cost ~23 s (each DCQCN epoch
//! re-cap forced a full re-partition and re-solve, and every event paid an
//! O(active × route) link-load rebuild); the whole cell now finishes in
//! single-digit seconds.
//!
//! `--json-out BENCH_drain.json` writes the machine-readable document
//! (schema `c4-bench-v1`); `--check-against <baseline.json>` compares
//! `total_wall_ms` against a checked-in baseline and exits non-zero past
//! 2× — the CI perf gate, same pattern as `fig3 --sweep scale` and
//! `bench_c4p`. `--threads N|max` overrides the `C4_THREADS` selection.

use c4::scenarios::fig10;
use c4_bench::{banner, check_wall_regression, parse_cli, read_json, write_json};

/// Allowed wall-clock growth over the checked-in baseline before the gate
/// trips.
const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let cli = parse_cli(2);
    let mut cfg = fig10::C4pScaleConfig::drain_4096(cli.seed, cli.iters);
    cfg.parallel = cli.parallel();
    banner(
        "Noisy drain engine at 4096 GPUs — 8 jobs, DCQCN noise + CNP live",
        "event-driven drains do work proportional to what changed, not what exists",
    );
    eprintln!("threads: {}", cfg.parallel.threads());

    // Read the baseline before any write: CI points --check-against and
    // --json-out at the same path.
    let baseline = cli
        .check_against
        .as_deref()
        .map(|path| read_json(path).unwrap_or_else(|e| panic!("baseline: {e}")));

    let sweep = fig10::run_scale(&cfg);
    // Stdout carries only seed-deterministic simulation results (identical
    // at any thread count); wall clocks go to stderr and the JSON document.
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "GPUs", "oversub", "ECMP (Gbps)", "C4P (Gbps)"
    );
    for r in &sweep.rows {
        println!(
            "{:>6} {:>8} {:>12.1} {:>12.1}",
            r.gpus,
            format!("{}:1", r.oversub),
            r.ecmp_gbps,
            r.c4p_gbps,
        );
    }
    for r in &sweep.rows {
        eprintln!(
            "wall {:>6} GPUs {}:1 — cell {:>8.1} ms · drain ecmp {:>8.1} ms, c4p {:>8.1} ms",
            r.gpus, r.oversub, r.wall_ms, r.ecmp_drain_ms, r.c4p_drain_ms
        );
    }
    eprintln!("total wall: {:.1} ms", sweep.total_wall_ms);

    let doc = sweep.to_drain_json();
    if let Some(path) = cli.json_out.as_deref() {
        write_json(path, &doc);
        eprintln!("wrote {path}");
    }
    if let Some(baseline) = baseline {
        match check_wall_regression(&doc, &baseline, REGRESSION_FACTOR) {
            Ok(msg) => eprintln!("perf gate: {msg}"),
            Err(msg) => {
                eprintln!("perf gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
