//! Regenerates **`BENCH_fig12.json`**: the Fig 12 fault-tolerance
//! experiment at production scale — the eight-job contention pattern on the
//! 4096-GPU `pod_grouped_railed` fabric with DCQCN noise and CNP accounting
//! live, one spine killed mid-run, C4P static traffic engineering vs
//! dynamic load balance.
//!
//! Paper shape (128-GPU testbed): static TE degrades to a 185.76 Gbps mean
//! because hash-threshold rerouting piles orphaned flows onto a neighbour
//! port; dynamic load balance recovers to 301.46 against a 7/8 ideal of
//! 315. This binary reruns that comparison three orders of magnitude
//! larger.
//!
//! `--json-out BENCH_fig12.json` writes the machine-readable document
//! (schema `c4-bench-v1`); `--check-against <baseline.json>` compares
//! `total_wall_ms` against a checked-in baseline and exits non-zero past
//! 2× — the CI perf gate, same pattern as `bench_c4p` and `bench_drain`.
//! `--threads N|max` overrides the `C4_THREADS` selection.

use c4::scenarios::fig12;
use c4_bench::{banner, check_wall_regression, parse_cli, pct, read_json, write_json};

/// Allowed wall-clock growth over the checked-in baseline before the gate
/// trips.
const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let cli = parse_cli(6);
    let mut cfg = fig12::FaultScaleConfig::scale_4096(cli.seed, cli.iters);
    cfg.parallel = cli.parallel();
    banner(
        "Fig 12 at 4096 GPUs — spine kill mid-run, static TE vs dynamic LB",
        "static: 185.76 Gbps post-failure; dynamic: 301.46 vs 7/8 ideal 315",
    );
    eprintln!("threads: {}", cfg.parallel.threads());

    // Read the baseline before any write: CI points --check-against and
    // --json-out at the same path.
    let baseline = cli
        .check_against
        .as_deref()
        .map(|path| read_json(path).unwrap_or_else(|e| panic!("baseline: {e}")));

    let sweep = fig12::run_scale_sweep(&cfg);
    // Stdout carries only seed-deterministic simulation results (identical
    // at any thread count); wall clocks go to stderr and the JSON document.
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "mode", "pre (Gbps)", "post (Gbps)", "ideal post"
    );
    for r in [&sweep.static_mode, &sweep.dynamic_mode] {
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>12.1}",
            if r.dynamic { "dynamic" } else { "static" },
            r.pre_mean,
            r.post_mean,
            r.ideal_post,
        );
    }
    println!(
        "dynamic-over-static post-failure gain: {}",
        pct(sweep.dynamic_mode.post_mean / sweep.static_mode.post_mean.max(1e-9) - 1.0)
    );
    eprintln!("total wall: {:.1} ms", sweep.total_wall_ms);

    let doc = sweep.to_json();
    if let Some(path) = cli.json_out.as_deref() {
        write_json(path, &doc);
        eprintln!("wrote {path}");
    }
    if let Some(baseline) = baseline {
        match check_wall_regression(&doc, &baseline, REGRESSION_FACTOR) {
            Ok(msg) => eprintln!("perf gate: {msg}"),
            Err(msg) => {
                eprintln!("perf gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
