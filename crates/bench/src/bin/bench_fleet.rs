//! Regenerates **`BENCH_fleet.json`**: the fault-churn fleet soak — one
//! simulated week on a 512-GPU pod hosting 8+ concurrent jobs with
//! arrival/departure churn, accelerated fault rates (node crashes, NIC and
//! PCIe degradations, fabric link flaps) applied to the **live** topology,
//! and every fault driven through the closed detect → isolate → replace →
//! restart loop (streaming C4D verdicts → steering → plan-cache rebase).
//!
//! The document carries the control-loop census (detections, isolations,
//! replacements, DP shrinks, retries, escalations), the plan-cache audit
//! (`stale_plan_routes` must be zero), and the reconciliation of the live
//! loop's downtime against the closed-form Table III operation model on a
//! matched configuration.
//!
//! `--iters N` sets the simulated horizon in hours (default 168 = one
//! week). `--json-out BENCH_fleet.json` writes the machine-readable
//! document (schema `c4-bench-v1`); `--check-against <baseline.json>`
//! compares `total_wall_ms` against a checked-in baseline and exits
//! non-zero past 2× — the CI perf gate, same pattern as `bench_fig12`.
//! `--threads N|max` overrides the `C4_THREADS` selection.

use c4::prelude::{FleetConfig, SimDuration};
use c4::scenarios::fleet;
use c4_bench::{banner, check_wall_regression, parse_cli, pct, read_json, write_json};

/// Allowed wall-clock growth over the checked-in baseline before the gate
/// trips.
const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let cli = parse_cli(168);
    let mut cfg = FleetConfig::soak_512(cli.seed);
    cfg.horizon = SimDuration::from_hours(cli.iters as u64);
    cfg.parallel = cli.parallel();
    banner(
        "Fleet soak — 512 GPUs, one simulated week, churn + live fault loop",
        "detect → isolate → replace → restart through the live network stack",
    );
    eprintln!("threads: {}", cfg.parallel.threads());

    // Read the baseline before any write: CI points --check-against and
    // --json-out at the same path.
    let baseline = cli
        .check_against
        .as_deref()
        .map(|path| read_json(path).unwrap_or_else(|e| panic!("baseline: {e}")));

    let sweep = fleet::run_soak(&cfg);
    let r = &sweep.report;
    // Stdout carries only seed-deterministic simulation results (identical
    // at any thread count); wall clocks go to stderr and the JSON document.
    println!(
        "horizon {:.0} h on {} GPUs: {} jobs ({} completed, {} failed), {} rounds, {} live iterations",
        r.horizon.as_secs_f64() / 3600.0,
        sweep.gpus,
        r.jobs.len(),
        r.jobs.iter().filter(|j| j.completed).count(),
        r.jobs.iter().filter(|j| j.failed).count(),
        r.rounds,
        r.live_iterations,
    );
    println!(
        "faults applied: {} crashes, {} degradations, {} link failures ({} skipped)",
        r.faults.crashes, r.faults.degradations, r.faults.link_failures, r.faults.skipped,
    );
    println!(
        "control loop: {} detections, {} isolations, {} replacements, {} DP shrinks, {} retries, {} escalations, {} repairs returned",
        r.detections, r.isolations, r.replacements, r.dp_shrinks, r.retries, r.escalations, r.repairs_returned,
    );
    println!(
        "plan cache: {} hits / {} misses, {} rebased drops, {} stale routes (invariant: 0)",
        r.cache_hits, r.cache_misses, r.cache_rebased_drops, r.stale_plan_routes,
    );
    println!(
        "goodput {}, downtime {}, mean ETTR {:.0} s over {} recoveries",
        pct(r.aggregate_goodput_fraction()),
        pct(r.aggregate_downtime_fraction()),
        r.mean_ettr().map_or(0.0, |d| d.as_secs_f64()),
        r.total_recoveries(),
    );
    let rec = sweep.reconciliation;
    println!(
        "reconciliation vs closed-form model: {:.0} s/recovery live vs {:.0} s/crash model (ratio {:.2})",
        rec.fleet_downtime_per_recovery_s,
        rec.model_downtime_per_crash_s,
        rec.per_event_ratio().unwrap_or(0.0),
    );
    eprintln!("total wall: {:.1} ms", sweep.total_wall_ms);

    if r.stale_plan_routes != 0 {
        eprintln!(
            "FAILED: {} cached plans routed through a changed link",
            r.stale_plan_routes
        );
        std::process::exit(1);
    }
    if !rec.per_event_within(0.5) {
        eprintln!("FAILED: live/model per-event downtime diverges: {rec:?}");
        std::process::exit(1);
    }

    let doc = sweep.to_json();
    if let Some(path) = cli.json_out.as_deref() {
        write_json(path, &doc);
        eprintln!("wrote {path}");
    }
    if let Some(baseline) = baseline {
        match check_wall_regression(&doc, &baseline, REGRESSION_FACTOR) {
            Ok(msg) => eprintln!("perf gate: {msg}"),
            Err(msg) => {
                eprintln!("perf gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
