//! Regenerates **`BENCH_hybrid.json`**: the 4D-hybrid workload sweep — a
//! TP8/PP8/EP8 MoE job on 512…4096 GPUs, one BSP iteration = four
//! back-to-back traffic phases (NVLink all-gathers, stage-edge send/recv,
//! expert all-to-alls with a rotating hot expert, cross-fabric allreduce
//! rings), ECMP vs C4P on identical workloads with DCQCN noise and CNP
//! accounting live.
//!
//! The document also embeds the EP-imbalance detection study: per-expert
//! received bytes from real all-to-all traffic feed both the raw straggler
//! test (fires on nearly every healthy routing step) and the smoothed
//! windowed-mean test (silent through rotation, still catches a pinned hot
//! expert within a window).
//!
//! `--json-out BENCH_hybrid.json` writes the machine-readable document
//! (schema `c4-bench-v1`); `--check-against <baseline.json>` compares
//! `total_wall_ms` against a checked-in baseline and exits non-zero past
//! 2× — the CI perf gate, same pattern as `bench_c4p` and `bench_drain`.
//! `--threads N|max` overrides the `C4_THREADS` selection.

use c4::scenarios::hybrid;
use c4_bench::{banner, check_wall_regression, parse_cli, read_json, write_csv, write_json};

/// Allowed wall-clock growth over the checked-in baseline before the gate
/// trips.
const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    // One iteration per cell: plan-build cost is a rounding error next to
    // the four noisy phase drains, and the scenario tests already pin the
    // cache-reuse behaviour — the bench measures the drains.
    let cli = parse_cli(1);
    // `--sweep 16k`/`--sweep 32k` select the scale extensions (their own
    // baselines, so the 4k trajectory stays comparable across PRs).
    let mut cfg = match cli.sweep.as_deref() {
        None | Some("scale") => hybrid::HybridScaleConfig::scale_4096(cli.seed, cli.iters),
        Some("16k") => hybrid::HybridScaleConfig::scale_16384(cli.seed, cli.iters),
        Some("32k") => hybrid::HybridScaleConfig::scale_32768(cli.seed, cli.iters),
        Some(other) => panic!("unknown --sweep {other} (expected scale|16k|32k)"),
    };
    cfg.parallel = cli.parallel();
    let max_gpus = cfg.node_scales.iter().max().unwrap_or(&0) * 8;
    banner(
        &format!("4D-hybrid workload at {max_gpus} GPUs — TP/PP/DP/EP phases, ECMP vs C4P"),
        "asymmetric bursty traffic through batched planning; EP smoothing study",
    );
    eprintln!("threads: {}", cfg.parallel.threads());

    // Read the baseline before any write: CI points --check-against and
    // --json-out at the same path.
    let baseline = cli
        .check_against
        .as_deref()
        .map(|path| read_json(path).unwrap_or_else(|e| panic!("baseline: {e}")));

    let sweep = hybrid::run_scale(&cfg);
    // Stdout carries only seed-deterministic simulation results (identical
    // at any thread count); wall clocks go to stderr and the JSON document.
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "GPUs", "ECMP iter (ms)", "C4P iter (ms)", "EP-E", "EP-C", "DP-E", "DP-C"
    );
    for r in &sweep.rows {
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            r.gpus,
            r.ecmp_iter_ms,
            r.c4p_iter_ms,
            r.ecmp_ep_gbps,
            r.c4p_ep_gbps,
            r.ecmp_dp_gbps,
            r.c4p_dp_gbps,
        );
    }
    for r in &sweep.rows {
        eprintln!(
            "wall {:>6} GPUs — cell {:>8.1} ms · plan ecmp {:>7.1} ms, c4p {:>7.1} ms · drain ecmp {:>8.1} ms, c4p {:>8.1} ms",
            r.gpus, r.wall_ms, r.ecmp_plan_ms, r.c4p_plan_ms, r.ecmp_drain_ms, r.c4p_drain_ms
        );
    }

    let study = hybrid::run_ep_imbalance(&hybrid::EpImbalanceConfig::default_study(cli.seed));
    println!(
        "EP study: raw detector fired {}/{} rotation steps, smoothed {}; pinned expert {} detected at step {:?}",
        study.raw_false_positives,
        study.rotate_steps,
        study.smoothed_false_positives,
        study.pinned_rank,
        study.smoothed_detect_step,
    );
    eprintln!("total wall: {:.1} ms", sweep.total_wall_ms);

    let mut doc = sweep.to_json();
    doc.push("ep_imbalance", study.to_json());
    if let Some(path) = cli.json_out.as_deref() {
        write_json(path, &doc);
        eprintln!("wrote {path}");
    }
    if let Some(path) = cli.csv_out.as_deref() {
        let rows: Vec<Vec<String>> = sweep
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.gpus.to_string(),
                    format!("{:.3}", r.ecmp_iter_ms),
                    format!("{:.3}", r.c4p_iter_ms),
                    format!("{:.6}", r.improvement),
                    format!("{:.3}", r.ecmp_ep_gbps),
                    format!("{:.3}", r.c4p_ep_gbps),
                    format!("{:.3}", r.ecmp_dp_gbps),
                    format!("{:.3}", r.c4p_dp_gbps),
                    format!("{:.3}", r.wall_ms),
                    r.ecmp_solver.events.to_string(),
                    r.ecmp_solver.sparse_solves.to_string(),
                    r.c4p_solver.events.to_string(),
                    r.c4p_solver.sparse_solves.to_string(),
                ]
            })
            .collect();
        write_csv(
            path,
            &[
                "gpus",
                "ecmp_iter_ms",
                "c4p_iter_ms",
                "improvement",
                "ecmp_ep_gbps",
                "c4p_ep_gbps",
                "ecmp_dp_gbps",
                "c4p_dp_gbps",
                "wall_ms",
                "ecmp_solver_events",
                "ecmp_sparse_solves",
                "c4p_solver_events",
                "c4p_sparse_solves",
            ],
            &rows,
        );
        eprintln!("wrote {path}");
    }
    if let Some(baseline) = baseline {
        match check_wall_regression(&doc, &baseline, REGRESSION_FACTOR) {
            Ok(msg) => eprintln!("perf gate: {msg}"),
            Err(msg) => {
                eprintln!("perf gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
