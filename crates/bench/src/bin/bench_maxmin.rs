//! Regenerates **`BENCH_maxmin.json`**: median wall-clock timings of the
//! max-min solver stack (from-scratch reference, incremental `MaxMinState`
//! on the drain loop's operations, serial vs multi-thread component
//! re-solves, and the two drain implementations end to end).
//!
//! Same workload constructors as the criterion bench (`cargo bench
//! --bench maxmin`; both call the shared builders in `c4_bench`, here
//! seeded from `--seed`) — but emits the machine-readable `c4-bench-v1`
//! document instead of console medians, so `BENCH_maxmin.json` and
//! `BENCH_scale.json` share one schema and neither is hand-written:
//!
//! ```text
//! cargo run --release -p c4_bench --bin bench_maxmin -- --json-out BENCH_maxmin.json
//! ```

use std::time::Duration;

use c4::prelude::*;
use c4_bench::{
    banner, median_wall_us, parse_cli, synth_drain_specs, synth_maxmin_problem, write_json,
};

/// Per-case measurement budget.
const BUDGET: Duration = Duration::from_millis(300);

/// One measured case, printed and accumulated into the JSON document.
struct Recorder {
    rows: Vec<JsonValue>,
}

impl Recorder {
    fn measure<F: FnMut()>(&mut self, name: &str, routine: F) -> f64 {
        let (median_us, samples) = median_wall_us(BUDGET, routine);
        println!("{name:<56} median {median_us:>12.1} us  ({samples} samples)");
        let mut row = JsonValue::object();
        row.push("name", name)
            .push("median_us", median_us)
            .push("samples", samples);
        self.rows.push(row);
        median_us
    }
}

fn main() {
    let cli = parse_cli(1);
    banner(
        "BENCH_maxmin — max-min solver stack medians",
        "incremental MaxMinState vs from-scratch reference; serial vs threaded",
    );
    let start = std::time::Instant::now();
    let mut rec = Recorder { rows: Vec::new() };

    // From-scratch reference solve at realistic flow/link scales.
    let shapes = [(600usize, 100usize), (3600, 400), (6000, 1500)];
    for &(links, flows) in &shapes {
        let (capacity, routes) = synth_maxmin_problem(links, flows, cli.seed);
        rec.measure(&format!("maxmin_solve/{links}l_{flows}f"), || {
            std::hint::black_box(maxmin::solve(&capacity, &routes, None));
        });
    }

    // One flow completes: re-solve from scratch vs incremental removal.
    for &(links, flows) in &shapes {
        let (capacity, routes) = synth_maxmin_problem(links, flows, cli.seed);
        let removed = flows / 2;
        let remaining: Vec<Vec<u32>> = routes
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != removed)
            .map(|(_, r)| r.clone())
            .collect();
        let scratch = rec.measure(
            &format!("maxmin_completion_resolve/{links}l_{flows}f/from_scratch"),
            || {
                std::hint::black_box(maxmin::solve(&capacity, &remaining, None));
            },
        );
        let mut state =
            MaxMinState::with_flows(&capacity, &routes, None).with_parallel(ParallelPolicy::SERIAL);
        let _ = state.rates();
        let incremental = rec.measure(
            &format!("maxmin_completion_resolve/{links}l_{flows}f/incremental"),
            || {
                let mut s = state.clone();
                s.remove_flow(removed);
                std::hint::black_box(s.rates().len());
            },
        );
        println!(
            "{:>56} speedup {:>11.1}x",
            "",
            scratch / incremental.max(1e-9)
        );
    }

    // A DCQCN noise epoch: every congested flow's cap moves.
    for &(links, flows) in &shapes[..2] {
        let (capacity, routes) = synth_maxmin_problem(links, flows, cli.seed);
        let base = maxmin::solve(&capacity, &routes, None);
        let caps: Vec<f64> = base.iter().map(|r| r * 0.93).collect();
        rec.measure(
            &format!("maxmin_noise_epoch/{links}l_{flows}f/from_scratch"),
            || {
                std::hint::black_box(maxmin::solve(&capacity, &routes, Some(&caps)));
            },
        );
        let mut state =
            MaxMinState::with_flows(&capacity, &routes, None).with_parallel(ParallelPolicy::SERIAL);
        let _ = state.rates();
        rec.measure(
            &format!("maxmin_noise_epoch/{links}l_{flows}f/incremental"),
            || {
                let mut s = state.clone();
                for (f, &cap) in caps.iter().enumerate() {
                    s.rate_perturb(f, cap);
                }
                std::hint::black_box(s.rates().len());
            },
        );
    }

    // The tentpole dimension: a full component-partitioned re-solve of the
    // largest shape under 1/2/4 worker threads (identical allocations;
    // only wall time may move, and only on multi-core hosts).
    {
        let (capacity, routes) = synth_maxmin_problem(6000, 1500, cli.seed);
        for threads in [1usize, 2, 4] {
            let mut state = MaxMinState::with_flows(&capacity, &routes, None)
                .with_parallel(ParallelPolicy::with_threads(threads));
            let _ = state.rates();
            rec.measure(
                &format!("maxmin_parallel_full_resolve/6000l_1500f/{threads}t"),
                || {
                    let mut s = state.clone();
                    // Dirty everything: forces the full-solve fallback,
                    // which fans out per component.
                    for f in 0..1500 {
                        s.rate_perturb(f, 120.0 + (f % 9) as f64);
                    }
                    std::hint::black_box(s.rates().len());
                },
            );
        }
    }

    // The drain loop end to end (incremental vs retained reference).
    {
        let topo = Topology::build(&ClosConfig::testbed_128());
        let specs = synth_drain_specs(&topo, 256, cli.seed ^ 0x5EED);
        let cfg = DrainConfig {
            rate_noise: 0.1,
            cnp: Some(CnpModel::paper_default()),
            parallel: ParallelPolicy::SERIAL,
            ..DrainConfig::default()
        };
        rec.measure("drain_noisy_shared/256qp/incremental", || {
            let mut rng = DetRng::seed_from(cli.seed ^ 0xD12A);
            std::hint::black_box(drain(&topo, &specs, &cfg, &mut rng).end);
        });
        rec.measure("drain_noisy_shared/256qp/reference", || {
            let mut rng = DetRng::seed_from(cli.seed ^ 0xD12A);
            std::hint::black_box(drain_reference(&topo, &specs, &cfg, &mut rng).end);
        });
    }

    let mut config = JsonValue::object();
    config
        .push("seed", cli.seed)
        .push("budget_ms_per_case", BUDGET.as_millis() as u64)
        .push(
            "host_threads",
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        );
    let mut doc = JsonValue::object();
    doc.push("schema", "c4-bench-v1")
        .push("bench", "maxmin_solvers")
        .push(
            "generated_by",
            "cargo run --release -p c4_bench --bin bench_maxmin -- --json-out BENCH_maxmin.json",
        )
        .push("config", config)
        .push("rows", JsonValue::Array(rec.rows))
        .push("total_wall_ms", start.elapsed().as_secs_f64() * 1e3);

    if let Some(path) = cli.json_out.as_deref() {
        write_json(path, &doc);
        println!("wrote {path}");
    } else {
        println!("JSON: {doc}");
    }
}
