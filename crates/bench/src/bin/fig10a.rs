//! Regenerates **Fig 10a**: eight concurrent allreduce jobs at 1:1
//! oversubscription, baseline ECMP vs C4P global traffic engineering.

use c4::scenarios::fig10;
use c4_bench::{banner, parse_cli, pct};

fn main() {
    let cli = parse_cli(6);
    banner(
        "Fig 10a — global traffic engineering, 1:1 oversubscription",
        "baseline 171.93–263.27 Gbps; C4P 353.86–360.57 Gbps; +70.3% mean",
    );
    let r = fig10::run(false, cli.seed, cli.iters);
    println!(
        "{:>6} {:>16} {:>12}",
        "Task", "Baseline (Gbps)", "C4P (Gbps)"
    );
    for t in &r.tasks {
        println!(
            "{:>6} {:>16.1} {:>12.1}",
            t.task, t.baseline_gbps, t.c4p_gbps
        );
    }
    println!();
    println!(
        "means: baseline {:.1}, C4P {:.1} → improvement {} (paper: 70.3%)",
        r.baseline_mean,
        r.c4p_mean,
        pct(r.improvement)
    );
    if cli.json {
        let rows: Vec<String> = r
            .tasks
            .iter()
            .map(|t| {
                format!(
                    "{{\"task\":{},\"baseline\":{:.1},\"c4p\":{:.1}}}",
                    t.task, t.baseline_gbps, t.c4p_gbps
                )
            })
            .collect();
        println!("JSON: [{}]", rows.join(","));
    }
}
