//! Regenerates **Fig 10b**: the same eight concurrent jobs with the spine
//! layer halved (2:1 oversubscription), where DCQCN congestion control
//! bounds the spread.

use c4::scenarios::fig10;
use c4_bench::{banner, parse_cli, pct};

fn main() {
    let cli = parse_cli(6);
    banner(
        "Fig 10b — global traffic engineering, 2:1 oversubscription",
        "C4P spread ≈11 Gbps around ~180 Gbps; +65.55% mean over baseline",
    );
    let r = fig10::run(true, cli.seed, cli.iters);
    println!(
        "{:>6} {:>16} {:>12}",
        "Task", "Baseline (Gbps)", "C4P (Gbps)"
    );
    for t in &r.tasks {
        println!(
            "{:>6} {:>16.1} {:>12.1}",
            t.task, t.baseline_gbps, t.c4p_gbps
        );
    }
    let min = r
        .tasks
        .iter()
        .map(|t| t.c4p_gbps)
        .fold(f64::INFINITY, f64::min);
    let max = r.tasks.iter().map(|t| t.c4p_gbps).fold(0.0_f64, f64::max);
    println!();
    println!(
        "means: baseline {:.1}, C4P {:.1} → improvement {} (paper: 65.55%)",
        r.baseline_mean,
        r.c4p_mean,
        pct(r.improvement)
    );
    println!("C4P task spread: {:.1} Gbps (paper: 11.27 Gbps)", max - min);
    if cli.json {
        let rows: Vec<String> = r
            .tasks
            .iter()
            .map(|t| {
                format!(
                    "{{\"task\":{},\"baseline\":{:.1},\"c4p\":{:.1}}}",
                    t.task, t.baseline_gbps, t.c4p_gbps
                )
            })
            .collect();
        println!("JSON: [{}]", rows.join(","));
    }
}
