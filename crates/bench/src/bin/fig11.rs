//! Regenerates **Fig 11**: CNP counts received per bonded port during the
//! 2:1-oversubscription run.

use c4::scenarios::fig10;
use c4_bench::{banner, parse_cli};

fn main() {
    let cli = parse_cli(12);
    banner(
        "Fig 11 — CNP count per bonded port (2:1 oversubscription, C4P)",
        "≈15 kp/s per port, fluctuating between 12.5 and 17.5 kp/s",
    );
    let r = fig10::run(true, cli.seed, cli.iters);
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "time (s)", "min (kp/s)", "mean (kp/s)", "max (kp/s)"
    );
    let mut all = Vec::new();
    for (t, rates) in &r.cnp_series {
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min) / 1e3;
        let max = rates.iter().copied().fold(0.0_f64, f64::max) / 1e3;
        let mean = rates.iter().sum::<f64>() / rates.len() as f64 / 1e3;
        println!("{t:>10.2} {min:>12.2} {mean:>12.2} {max:>12.2}");
        all.extend(rates.iter().map(|x| x / 1e3));
    }
    let mean = all.iter().sum::<f64>() / all.len().max(1) as f64;
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(0.0_f64, f64::max);
    println!();
    println!(
        "overall: mean {mean:.2} kp/s, range {lo:.2}–{hi:.2} kp/s \
         (paper: ~15, range 12.5–17.5)"
    );
}
