//! Regenerates **Fig 12**: per-iteration allreduce bus bandwidth around a
//! mid-run uplink failure — C4P static traffic engineering vs dynamic load
//! balance.

use c4::scenarios::fig12;
use c4_bench::{banner, parse_cli, pct};

fn summarize(label: &str, r: &fig12::Fig12Report) {
    println!("— {label} —");
    println!(
        "  pre-failure mean:  {:>7.1} Gbps   post-failure mean: {:>7.1} Gbps",
        r.pre_mean, r.post_mean
    );
    // Print a compressed per-iteration trace (min/mean/max over tasks).
    println!("  {:>6} {:>10} {:>10} {:>10}", "iter", "min", "mean", "max");
    let stride = (r.per_iter_busbw.len() / 16).max(1);
    for (i, row) in r.per_iter_busbw.iter().enumerate() {
        if i % stride != 0 && i != r.fail_at && i + 1 != r.per_iter_busbw.len() {
            continue;
        }
        let min = row.iter().copied().fold(f64::INFINITY, f64::min);
        let max = row.iter().copied().fold(0.0_f64, f64::max);
        let mean = row.iter().sum::<f64>() / row.len() as f64;
        let marker = if i == r.fail_at {
            "  ← link fails"
        } else {
            ""
        };
        println!("  {i:>6} {min:>10.1} {mean:>10.1} {max:>10.1}{marker}");
    }
}

fn main() {
    let cli = parse_cli(60);
    banner(
        "Fig 12 — tolerance to a dynamic link failure (1 of 8 uplinks)",
        "static TE: 160–220 Gbps (mean 185.76); dynamic LB: 290–335 Gbps \
         (mean 301.46) vs 7/8 ideal 315",
    );
    let fail_at = cli.iters / 3;
    let s = fig12::run(false, cli.seed, cli.iters, fail_at);
    let d = fig12::run(true, cli.seed, cli.iters, fail_at);
    summarize("C4P static traffic engineering", &s);
    println!();
    summarize("C4P dynamic load balance", &d);
    println!();
    println!(
        "dynamic vs static after failure: {} (paper: +62.3%); ideal {:.1} Gbps",
        pct(d.post_mean / s.post_mean - 1.0),
        d.ideal_post
    );
    if cli.json {
        println!(
            "JSON: {{\"static_post\":{:.1},\"dynamic_post\":{:.1},\"ideal\":{:.1}}}",
            s.post_mean, d.post_mean, d.ideal_post
        );
    }
}
