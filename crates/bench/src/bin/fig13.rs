//! Regenerates **Fig 13**: per-switch-port bandwidth around the uplink
//! failure, with and without dynamic load balance.

use c4::scenarios::fig12;
use c4_bench::{banner, parse_cli};

fn print_series(label: &str, r: &fig12::Fig12Report) {
    println!("— {label} — (leaf 0 uplinks, Gbps)");
    print!("{:>10}", "time (s)");
    for p in 0..r.port_series.first().map(|(_, v)| v.len()).unwrap_or(0) {
        print!("{:>9}", format!("up{p}"));
    }
    println!();
    let stride = (r.port_series.len() / 20).max(1);
    for (i, (t, ports)) in r.port_series.iter().enumerate() {
        if i % stride != 0 && i != r.fail_at && i + 1 != r.port_series.len() {
            continue;
        }
        print!("{t:>10.2}");
        for p in ports {
            print!("{p:>9.1}");
        }
        let marker = if i == r.fail_at {
            "  ← link fails"
        } else {
            ""
        };
        println!("{marker}");
    }
}

fn main() {
    let cli = parse_cli(60);
    banner(
        "Fig 13 — switch-port bandwidth with/without dynamic load balance",
        "static: rerouted flows pile onto few ports, the rest sag; \
         dynamic: surviving ports rebalance near-evenly",
    );
    let fail_at = cli.iters / 3;
    let s = fig12::run(false, cli.seed, cli.iters, fail_at);
    print_series("C4P static traffic engineering", &s);
    println!();
    let d = fig12::run(true, cli.seed, cli.iters, fail_at);
    print_series("C4P dynamic load balance", &d);
}
