//! Regenerates **Fig 14**: end-to-end throughput of the three
//! production-style jobs with and without C4P.

use c4::scenarios::fig14;
use c4_bench::{banner, parse_cli, pct};

fn main() {
    let cli = parse_cli(4);
    banner(
        "Fig 14 — performance improvement in real-life jobs",
        "Job1 GPT-22B: 74.82 → 86.76 sps (+15.95%); \
         Job2 Llama-7B: 156.59 → 178.65 (+14.1%); Job3 GPT-175B (GA=16): ≈0%",
    );
    let rows = fig14::run(cli.seed, cli.iters);
    println!(
        "{:<38} {:>14} {:>12} {:>8}",
        "Job", "Baseline (sps)", "C4P (sps)", "Gain"
    );
    for r in &rows {
        println!(
            "{:<38} {:>14.2} {:>12.2} {:>8}",
            r.name,
            r.baseline_sps,
            r.c4p_sps,
            pct(r.improvement)
        );
    }
    if cli.json {
        let rows: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"job\":\"{}\",\"baseline\":{:.2},\"c4p\":{:.2},\"gain\":{:.4}}}",
                    r.name, r.baseline_sps, r.c4p_sps, r.improvement
                )
            })
            .collect();
        println!("JSON: [{}]", rows.join(","));
    }
}
