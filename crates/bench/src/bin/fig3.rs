//! Regenerates **Fig 3**: actual vs ideal throughput of GPT-22B training
//! under baseline (ECMP) networking in a shared pod.
//!
//! Sweeps:
//!
//! * `--sweep paper` (default) — the paper's 16…512 GPUs in the 64-node
//!   shared pod;
//! * `--sweep scale` — the extended 16…4096 GPU sweep on the 512-node
//!   grouped fabric (2:1 oversubscription), the CI perf-gate workload.
//!
//! `--json-out BENCH_scale.json` writes the machine-readable sweep document
//! (schema `c4-bench-v1`); `--check-against <baseline.json>` additionally
//! compares `total_wall_ms` against a previously checked-in baseline and
//! exits non-zero past 2× — the CI guard against simulator-performance
//! regressions. `--threads N|max` overrides the `C4_THREADS` selection.

use c4::scenarios::fig3;
use c4_bench::{banner, check_wall_regression, parse_cli, pct, read_json, write_csv, write_json};

/// Allowed wall-clock growth over the checked-in baseline before the gate
/// trips.
const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let cli = parse_cli(4);
    let mut cfg = match cli.sweep.as_deref() {
        None | Some("paper") => fig3::Fig3Config::paper(cli.seed, cli.iters),
        Some("scale") => fig3::Fig3Config::scale_4096(cli.seed, cli.iters),
        Some("16k") => fig3::Fig3Config::scale_16384(cli.seed, cli.iters),
        Some("32k") => fig3::Fig3Config::scale_32768(cli.seed, cli.iters),
        Some(other) => panic!("unknown --sweep {other} (expected paper|scale|16k|32k)"),
    };
    cfg.parallel = cli.parallel();
    banner(
        "Fig 3 — performance loss grows with system scale",
        "actual drops to ~30% below ideal at 512 GPUs",
    );
    println!(
        "sweep: {} · {} GPUs max",
        cli.sweep.as_deref().unwrap_or("paper"),
        cfg.scales.iter().max().unwrap_or(&0) * cfg.clos.gpus_per_node,
    );
    eprintln!("threads: {}", cfg.parallel.threads());

    // Read the baseline before any write: CI points --check-against and
    // --json-out at the same path.
    let baseline = cli
        .check_against
        .as_deref()
        .map(|path| read_json(path).unwrap_or_else(|e| panic!("baseline: {e}")));

    let sweep = fig3::run_config(&cfg);
    // Stdout carries only seed-deterministic simulation results (same seed
    // ⇒ byte-identical output, the workspace invariant); wall-clock
    // measurements go to stderr and the --json-out bench document.
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "GPUs", "Actual (sps)", "Ideal (sps)", "Loss"
    );
    for r in &sweep.rows {
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>10}",
            r.gpus,
            r.actual_sps,
            r.ideal_sps,
            pct(r.loss)
        );
    }
    if cli.json {
        let rows: Vec<String> = sweep
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"gpus\":{},\"actual\":{:.2},\"ideal\":{:.2},\"loss\":{:.4}}}",
                    r.gpus, r.actual_sps, r.ideal_sps, r.loss
                )
            })
            .collect();
        println!("JSON: [{}]", rows.join(","));
    }
    for r in &sweep.rows {
        eprintln!("wall {:>6} GPUs: {:>9.1} ms", r.gpus, r.wall_ms);
    }
    eprintln!("total wall: {:.1} ms", sweep.total_wall_ms);

    let doc = sweep.to_json();
    if let Some(path) = cli.json_out.as_deref() {
        write_json(path, &doc);
        eprintln!("wrote {path}");
    }
    if let Some(path) = cli.csv_out.as_deref() {
        let rows: Vec<Vec<String>> = sweep
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.gpus.to_string(),
                    format!("{:.3}", r.actual_sps),
                    format!("{:.3}", r.ideal_sps),
                    format!("{:.6}", r.loss),
                    format!("{:.3}", r.wall_ms),
                ]
            })
            .collect();
        write_csv(
            path,
            &["gpus", "actual_sps", "ideal_sps", "loss", "wall_ms"],
            &rows,
        );
        eprintln!("wrote {path}");
    }
    if let Some(baseline) = baseline {
        match check_wall_regression(&doc, &baseline, REGRESSION_FACTOR) {
            Ok(msg) => eprintln!("perf gate: {msg}"),
            Err(msg) => {
                eprintln!("perf gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
