//! Regenerates **Fig 3**: actual vs ideal throughput of GPT-22B training at
//! GPU = 16…512 under baseline (ECMP) networking in a shared pod.

use c4::scenarios::fig3;
use c4_bench::{banner, parse_cli, pct};

fn main() {
    let cli = parse_cli(4);
    banner(
        "Fig 3 — performance loss grows with system scale",
        "actual drops to ~30% below ideal at 512 GPUs",
    );
    let rows = fig3::run(cli.seed, cli.iters);
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "GPUs", "Actual (sps)", "Ideal (sps)", "Loss"
    );
    for r in &rows {
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>10}",
            r.gpus,
            r.actual_sps,
            r.ideal_sps,
            pct(r.loss)
        );
    }
    if cli.json {
        let rows: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"gpus\":{},\"actual\":{:.2},\"ideal\":{:.2},\"loss\":{:.4}}}",
                    r.gpus, r.actual_sps, r.ideal_sps, r.loss
                )
            })
            .collect();
        println!("JSON: [{}]", rows.join(","));
    }
}
