//! Regenerates **Fig 7**: the delay-matrix syndromes — single slow
//! connection, sender-Tx-slow row, receiver-Rx-slow column — and C4D's
//! localization of each.

use c4::scenarios::fig7::{run, Fig7Case};
use c4_bench::{banner, parse_cli};

fn print_matrix(ms: &[Vec<f64>]) {
    print!("        ");
    for j in 0..ms.len() {
        print!("   dst{j} ");
    }
    println!();
    for (i, row) in ms.iter().enumerate() {
        print!("  src{i} ");
        for v in row {
            if v.is_nan() {
                print!("{:>8}", "-");
            } else {
                print!("{v:>8.1}");
            }
        }
        println!();
    }
}

fn main() {
    let cli = parse_cli(1);
    banner(
        "Fig 7 — communication-slow syndromes in the delay matrix (ms)",
        "one hot cell = slow connection; hot row = rank Tx slow; \
         hot column = rank Rx slow",
    );
    for case in [
        Fig7Case::Healthy,
        Fig7Case::ConnectionSlow,
        Fig7Case::TxSlow,
        Fig7Case::RxSlow,
    ] {
        let report = run(case, cli.seed);
        println!("\n— case {:?} —", case);
        print_matrix(&report.matrix_ms);
        if report.findings.is_empty() {
            println!("  C4D: no anomaly");
        }
        for f in &report.findings {
            println!("  C4D finding: {f:?}");
        }
    }
}
