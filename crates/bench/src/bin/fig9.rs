//! Regenerates **Fig 9**: allreduce bus bandwidth with/without C4P's
//! dual-port balancing at GPU = 16/32/64/128.

use c4::scenarios::fig9;
use c4_bench::{banner, parse_cli, pct};

fn main() {
    let cli = parse_cli(5);
    banner(
        "Fig 9 — balancing traffic between the bonded physical ports",
        "baseline <240 Gbps; C4P ≈360 Gbps (NVLink-capped 362); ~50% gain",
    );
    let rows = fig9::run(cli.seed, cli.iters);
    println!(
        "{:>6} {:>16} {:>12} {:>8}",
        "GPUs", "Baseline (Gbps)", "C4P (Gbps)", "Gain"
    );
    for r in &rows {
        println!(
            "{:>6} {:>16.1} {:>12.1} {:>8}",
            r.gpus,
            r.baseline_gbps,
            r.c4p_gbps,
            pct(r.c4p_gbps / r.baseline_gbps - 1.0)
        );
    }
    if cli.json {
        let rows: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"gpus\":{},\"baseline\":{:.1},\"c4p\":{:.1}}}",
                    r.gpus, r.baseline_gbps, r.c4p_gbps
                )
            })
            .collect();
        println!("JSON: [{}]", rows.join(","));
    }
}
