//! Regenerates **Table I**: the distribution of crash causes over one month
//! of a 4,096-GPU job.

use c4::scenarios::tables::table1;
use c4_bench::{banner, parse_cli, pct};

fn main() {
    let cli = parse_cli(1);
    banner(
        "Table I — crash-cause census, 4096-GPU job, one month (June 2023)",
        "40 crashes; CUDA 12.5%/100% local; ECC+NVLink 27.5%/100%; \
         NCCL timeout 20%/75%; ACK timeout 27.5%/81.8%; Others 12.5%/40%",
    );
    let report = table1(cli.seed);
    println!("simulated crashes: {}", report.crashes.len());
    println!();
    println!(
        "{:<16} {:<18} {:>6} {:>12} {:>8}",
        "Users' View", "Root Cause", "Count", "Proportion", "Local"
    );
    for row in report.cause_census() {
        println!(
            "{:<16} {:<18} {:>6} {:>12} {:>8}",
            row.user_view.to_string(),
            row.cause,
            row.count,
            pct(row.proportion),
            pct(row.local_pct)
        );
    }
    let local = report.crashes.iter().filter(|c| c.local).count() as f64
        / report.crashes.len().max(1) as f64;
    println!();
    println!("node-local crashes overall: {} (paper: ~82.5%)", pct(local));
    if cli.json {
        let rows: Vec<String> = report
            .cause_census()
            .iter()
            .map(|r| {
                format!(
                    "{{\"cause\":\"{}\",\"count\":{},\"proportion\":{:.4},\"local\":{:.4}}}",
                    r.cause, r.count, r.proportion, r.local_pct
                )
            })
            .collect();
        println!("JSON: [{}]", rows.join(","));
    }
}
