//! Prints **Table II**: the evaluation configuration, as encoded by the
//! workspace presets.

use c4::prelude::*;
use c4_bench::banner;

fn main() {
    banner(
        "Table II — evaluation configuration",
        "GPT-175B (C4D); allreduce benchmarks + GPT-22B/Llama-13B/GPT-175B \
         (C4P); Megatron-LM & DeepSpeed; H800×8 + BlueField-3×8 (200Gbps×2); \
         3-tier Clos fat-tree, 1:1 oversubscription",
    );
    let cfg = ClosConfig::testbed_128();
    let topo = Topology::build(&cfg);
    println!("testbed preset `ClosConfig::testbed_128()`:");
    println!("  nodes                    {}", cfg.nodes);
    println!("  GPUs/node                {}", cfg.gpus_per_node);
    println!("  NICs/node (dual-port)    {}", cfg.nics_per_node);
    println!(
        "  port bandwidth           {} Gbps ×2 (bonded 400)",
        cfg.port_gbps
    );
    println!("  NVLink busbw cap         {} Gbps", cfg.nvlink_gbps);
    println!("  leaf switches            {}", cfg.num_leaves);
    println!("  spine switches           {}", cfg.num_spines);
    println!("  uplinks per leaf-spine   {}", cfg.uplinks_per_leaf_spine);
    println!("  oversubscription         {:.2}:1", cfg.oversubscription());
    println!("  total GPUs               {}", topo.num_gpus());
    println!("  directed links           {}", topo.num_links());
    println!();
    println!("benchmark jobs (Fig 14 presets):");
    for spec in [
        JobSpec::gpt22b_tp8_dp16(),
        JobSpec::llama7b_dp128_zero(),
        JobSpec::gpt175b_tp8_pp8_ga16(),
    ] {
        println!(
            "  {:<36} tp={} pp={} dp={} ga={} grad/rank={}",
            spec.name,
            spec.tp,
            spec.pp,
            spec.dp,
            spec.ga,
            spec.grad_bytes_per_rank()
        );
    }
}
