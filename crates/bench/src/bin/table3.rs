//! Regenerates **Table III**: error-induced downtime of the 2,400-GPU 175-B
//! job before (June 2023) and after (December 2023) C4D deployment.

use c4::prelude::OperationReport;
use c4::scenarios::tables::table3;
use c4_bench::{banner, parse_cli, pct};

fn column(label: &str, r: &OperationReport) {
    println!("— {label} —");
    println!("  crashes:               {:>8}", r.crashes.len());
    println!(
        "  Post-Checkpoint        {:>8}",
        pct(r.post_checkpoint_fraction())
    );
    println!(
        "  Detection              {:>8}",
        pct(r.detection_fraction())
    );
    println!(
        "  Diagnosis & Isolation  {:>8}",
        pct(r.diagnosis_fraction())
    );
    for (cause, f) in r.diagnosis_by_cause() {
        println!("    {cause:<20} {:>8}", pct(f));
    }
    println!("  Re-Initialization      {:>8}", pct(r.reinit_fraction()));
    println!("  Total                  {:>8}", pct(r.downtime_fraction()));
}

fn main() {
    let cli = parse_cli(1);
    banner(
        "Table III — error-induced downtime (2400-GPU GPT-175B job)",
        "June 2023: Post-CKPT 7.53, Detection 3.41, Diag&Iso 19.65 \
         (ECC/NVLink 8.34, CUDA 4.19, CCL 3.0, ACK 1.8, Unknown 2.29), \
         Re-Init 0.6, Total 31.19% → December 2023: 0.23/0.05/0.73/0.15, \
         Total 1.16% (≈30×)",
    );
    let (june, dec) = table3(cli.seed);
    column("June 2023 (manual ops, sparse checkpoints)", &june);
    println!();
    column(
        "December 2023 (C4D + 10-min checkpoints + hardened fleet)",
        &dec,
    );
    println!();
    let ratio = june.downtime_fraction() / dec.downtime_fraction().max(1e-9);
    println!("improvement: {:.1}× less downtime (paper: ≈30×)", ratio);
    if cli.json {
        println!(
            "JSON: {{\"june_total\":{:.4},\"dec_total\":{:.4},\"ratio\":{:.1}}}",
            june.downtime_fraction(),
            dec.downtime_fraction(),
            ratio
        );
    }
}
