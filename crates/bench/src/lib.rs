//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Every binary accepts `--seed <u64>` (default 42) and, where meaningful,
//! `--iters <usize>`; outputs are printed as aligned text tables plus an
//! optional JSON dump via `--json`.

use std::time::{Duration, Instant};

use c4::prelude::{
    quote_field, ByteSize, DetRng, EcmpSelector, FlowKey, FlowSpec, GpuId, JsonValue,
    ParallelPolicy, PathSelector, Topology,
};

/// Parsed common CLI options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cli {
    /// Root random seed.
    pub seed: u64,
    /// Iteration count for iterative experiments.
    pub iters: usize,
    /// Emit a JSON block after the human-readable table.
    pub json: bool,
    /// Named sweep variant (`--sweep`, e.g. `paper` / `scale` for fig3).
    pub sweep: Option<String>,
    /// Write the machine-readable result document here (`--json-out`).
    pub json_out: Option<String>,
    /// Write the per-row result table as an RFC 4180 CSV file here
    /// (`--csv-out`), quoted by the telemetry layer's rules.
    pub csv_out: Option<String>,
    /// Compare wall clock against this baseline document and exit non-zero
    /// on regression (`--check-against`).
    pub check_against: Option<String>,
    /// Thread-budget override (`--threads N`, `--threads max`); `None`
    /// defers to the `C4_THREADS` environment selection.
    pub threads: Option<ParallelPolicy>,
}

impl Cli {
    fn with_defaults(default_iters: usize) -> Self {
        Cli {
            seed: 42,
            iters: default_iters,
            ..Cli::default()
        }
    }

    /// The effective thread policy: the `--threads` override, else the
    /// `C4_THREADS` environment selection.
    pub fn parallel(&self) -> ParallelPolicy {
        self.threads.unwrap_or_default()
    }
}

/// Parses `--seed`, `--iters`, `--json`, `--sweep`, `--json-out`,
/// `--check-against` and `--threads` from `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on malformed values.
pub fn parse_cli(default_iters: usize) -> Cli {
    let mut cli = Cli::with_defaults(default_iters);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                cli.seed = value(&args, &mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| panic!("--seed needs a u64"));
            }
            "--iters" => {
                cli.iters = value(&args, &mut i, "--iters")
                    .parse()
                    .unwrap_or_else(|_| panic!("--iters needs a usize"));
            }
            "--json" => cli.json = true,
            "--sweep" => cli.sweep = Some(value(&args, &mut i, "--sweep")),
            "--json-out" => cli.json_out = Some(value(&args, &mut i, "--json-out")),
            "--csv-out" => cli.csv_out = Some(value(&args, &mut i, "--csv-out")),
            "--check-against" => {
                cli.check_against = Some(value(&args, &mut i, "--check-against"));
            }
            "--threads" => {
                let v = value(&args, &mut i, "--threads");
                // Same semantics as the C4_THREADS env var: `max` or `0`
                // means one worker per hardware thread.
                cli.threads = Some(if v.eq_ignore_ascii_case("max") {
                    ParallelPolicy::max()
                } else {
                    match v
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("--threads needs a usize or 'max'"))
                    {
                        0 => ParallelPolicy::max(),
                        n => ParallelPolicy::with_threads(n),
                    }
                });
            }
            other => panic!(
                "unknown argument: {other} (expected --seed/--iters/--json/--sweep/--json-out/--csv-out/--check-against/--threads)"
            ),
        }
        i += 1;
    }
    cli
}

/// Writes a `BENCH_*.json` document (pretty-printed, trailing newline).
///
/// # Panics
///
/// Panics when the path is unwritable — bench binaries fail loudly.
pub fn write_json(path: &str, doc: &JsonValue) {
    std::fs::write(path, doc.pretty()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Renders a header plus per-row field vectors as one RFC 4180 CSV
/// document, quoting every field by [`quote_field`]'s rules (the same
/// quoting the telemetry CSV codecs use, so downstream parsers shared with
/// the event-log tooling read bench exports unchanged).
///
/// # Panics
///
/// Panics when a row's width differs from the header's — a bench-binary
/// bug, not an input condition.
pub fn csv_document(header: &[&str], rows: &[Vec<String>]) -> String {
    let render = |fields: &[String]| -> String {
        fields
            .iter()
            .map(|f| quote_field(f))
            .collect::<Vec<_>>()
            .join(",")
    };
    let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let mut out = render(&head);
    out.push('\n');
    for row in rows {
        assert_eq!(
            row.len(),
            header.len(),
            "CSV row width must match the header"
        );
        out.push_str(&render(row));
        out.push('\n');
    }
    out
}

/// Writes a `--csv-out` table (header + rows, trailing newline).
///
/// # Panics
///
/// Panics when the path is unwritable — bench binaries fail loudly.
pub fn write_csv(path: &str, header: &[&str], rows: &[Vec<String>]) {
    std::fs::write(path, csv_document(header, rows))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Reads and parses a `BENCH_*.json` document.
///
/// # Errors
///
/// Returns a message naming the path for unreadable or malformed files.
pub fn read_json(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Compares a fresh run's `total_wall_ms` against a baseline document of
/// the same schema.
///
/// # Errors
///
/// `Err(message)` when the new wall clock exceeds `factor ×` the baseline
/// (the CI perf gate), or when either document lacks the field. `Ok` holds
/// a one-line comparison summary for the log.
pub fn check_wall_regression(
    fresh: &JsonValue,
    baseline: &JsonValue,
    factor: f64,
) -> Result<String, String> {
    let wall = |doc: &JsonValue, which: &str| {
        doc.get("total_wall_ms")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{which} document lacks total_wall_ms"))
    };
    let new_ms = wall(fresh, "fresh")?;
    let base_ms = wall(baseline, "baseline")?;
    let ratio = new_ms / base_ms.max(1e-9);
    if ratio > factor {
        return Err(format!(
            "wall-clock regression: {new_ms:.0} ms vs baseline {base_ms:.0} ms ({ratio:.2}× > allowed {factor:.2}×)"
        ));
    }
    Ok(format!(
        "wall clock {new_ms:.0} ms vs baseline {base_ms:.0} ms ({ratio:.2}× ≤ {factor:.2}×)"
    ))
}

/// Synthesizes `flows` random 4-link routes over `links` links — the
/// max-min solver workload shared by the criterion bench
/// (`benches/maxmin.rs`) and the `bench_maxmin` binary that regenerates
/// `BENCH_maxmin.json`.
pub fn synth_maxmin_problem(links: usize, flows: usize, seed: u64) -> (Vec<f64>, Vec<Vec<u32>>) {
    let mut rng = DetRng::seed_from(seed);
    let capacity: Vec<f64> = (0..links).map(|_| 100.0 + rng.uniform() * 300.0).collect();
    let routes: Vec<Vec<u32>> = (0..flows)
        .map(|_| (0..4).map(|_| rng.index(links) as u32).collect())
        .collect();
    (capacity, routes)
}

/// Builds the `drain_noisy_shared` workload: `n` same-sized ECMP-routed
/// QPs contending on shared receive ports (the scenario-suite hot path),
/// shared by the criterion bench and the `bench_maxmin` binary.
pub fn synth_drain_specs(topo: &Topology, n: usize, seed: u64) -> Vec<FlowSpec> {
    let mut sel = EcmpSelector::new(seed.wrapping_mul(3).wrapping_add(2));
    let mut rng = DetRng::seed_from(seed);
    let ngpus = topo.num_gpus();
    (0..n)
        .map(|i| {
            let src = GpuId::from_index(rng.index(ngpus));
            let mut dst = GpuId::from_index(rng.index(ngpus / 4) * 4);
            if topo.gpu(src).node == topo.gpu(dst).node {
                dst = GpuId::from_index((dst.index() + 8) % ngpus);
            }
            let key = FlowKey {
                src_gpu: src,
                dst_gpu: dst,
                comm: 1 + (i % 8) as u64,
                channel: (i % 16) as u16,
                qp: (i % 2) as u16,
                incarnation: 0,
            };
            let choice = sel.select(topo, &key);
            let sp = topo.port_of_gpu(src, choice.src_side);
            let dp = topo.port_of_gpu(dst, choice.dst_side);
            let route = topo.inter_node_route(src, sp, choice.fabric.as_ref(), dp, dst);
            FlowSpec::new(key, ByteSize::from_mib(96), route)
        })
        .collect()
}

/// Runs `routine` repeatedly for up to `budget` (≥ 1 call after one warm-up)
/// and returns `(median_wall_us, samples)` — the same measurement loop as
/// the vendored criterion stub, reusable from binaries.
pub fn median_wall_us<F: FnMut()>(budget: Duration, mut routine: F) -> (f64, usize) {
    routine(); // warm-up, untimed
    let mut samples: Vec<f64> = Vec::new();
    let deadline = Instant::now() + budget;
    while samples.is_empty() || (Instant::now() < deadline && samples.len() < 1000) {
        let start = Instant::now();
        routine();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (samples[samples.len() / 2], samples.len())
}

/// Prints a header banner for an experiment.
pub fn banner(title: &str, paper: &str) {
    println!("════════════════════════════════════════════════════════════════");
    println!("{title}");
    println!("paper: {paper}");
    println!("════════════════════════════════════════════════════════════════");
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Cli::with_defaults(8);
        assert_eq!(c.seed, 42);
        assert_eq!(c.iters, 8);
        assert!(!c.json);
        assert!(c.sweep.is_none() && c.json_out.is_none() && c.check_against.is_none());
        assert_eq!(c.parallel(), ParallelPolicy::default());
    }

    #[test]
    fn regression_gate_math() {
        let doc = |ms: f64| {
            let mut d = JsonValue::object();
            d.push("total_wall_ms", ms);
            d
        };
        assert!(check_wall_regression(&doc(190.0), &doc(100.0), 2.0).is_ok());
        let err = check_wall_regression(&doc(210.0), &doc(100.0), 2.0).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        assert!(check_wall_regression(&JsonValue::object(), &doc(1.0), 2.0).is_err());
    }

    #[test]
    fn json_files_round_trip_on_disk() {
        let mut doc = JsonValue::object();
        doc.push("total_wall_ms", 12.5);
        let path = std::env::temp_dir().join("c4_bench_roundtrip.json");
        let path = path.to_str().unwrap();
        write_json(path, &doc);
        assert_eq!(read_json(path).unwrap(), doc);
        assert!(read_json("/nonexistent/nope.json").is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.3119), "31.19%");
    }

    #[test]
    fn csv_document_quotes_by_telemetry_rules() {
        let doc = csv_document(
            &["gpus", "note"],
            &[
                vec!["512".into(), "plain".into()],
                vec!["1024".into(), "has,comma and \"quote\"".into()],
            ],
        );
        assert_eq!(
            doc,
            "gpus,note\n512,plain\n1024,\"has,comma and \"\"quote\"\"\"\n"
        );
        // Round-trips through the telemetry splitter.
        let fields = c4::prelude::split_fields(doc.lines().nth(2).unwrap()).unwrap();
        assert_eq!(fields, vec!["1024", "has,comma and \"quote\""]);
    }
}
