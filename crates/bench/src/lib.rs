//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Every binary accepts `--seed <u64>` (default 42) and, where meaningful,
//! `--iters <usize>`; outputs are printed as aligned text tables plus an
//! optional JSON dump via `--json`.

/// Parsed common CLI options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cli {
    /// Root random seed.
    pub seed: u64,
    /// Iteration count for iterative experiments.
    pub iters: usize,
    /// Emit a JSON block after the human-readable table.
    pub json: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            seed: 42,
            iters: 8,
            json: false,
        }
    }
}

/// Parses `--seed`, `--iters`, `--json` from `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on malformed values.
pub fn parse_cli(default_iters: usize) -> Cli {
    let mut cli = Cli {
        iters: default_iters,
        ..Cli::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                cli.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs a u64"));
            }
            "--iters" => {
                i += 1;
                cli.iters = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--iters needs a usize"));
            }
            "--json" => cli.json = true,
            other => panic!("unknown argument: {other} (expected --seed/--iters/--json)"),
        }
        i += 1;
    }
    cli
}

/// Prints a header banner for an experiment.
pub fn banner(title: &str, paper: &str) {
    println!("════════════════════════════════════════════════════════════════");
    println!("{title}");
    println!("paper: {paper}");
    println!("════════════════════════════════════════════════════════════════");
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Cli::default();
        assert_eq!(c.seed, 42);
        assert!(!c.json);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.3119), "31.19%");
    }
}
