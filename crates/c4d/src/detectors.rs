//! The four-syndrome detectors (§III-A "C4D analysis").
//!
//! Hang detection keys off the BSP anchor: every rank must launch the same
//! collective sequence. A rank whose peers are parked in sequence `s` but
//! which never launched `s` itself has hung *outside* communication; if all
//! ranks are parked in `s` past the timeout, communication itself hung.
//!
//! Slow detection is relative: workers are homogeneous, so the median is the
//! truth and outliers are suspects.

use c4_simcore::{SimDuration, SimTime};
use c4_telemetry::{CommRecord, TelemetrySnapshot};

use crate::matrix::MatrixFinding;

/// Detector thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// How long a collective may stay in flight before it counts as hung.
    /// C4D detects in tens of seconds — vs the 30-minute PyTorch elastic
    /// watchdog the paper contrasts with (§IV-B1).
    pub hang_timeout: SimDuration,
    /// Delay-matrix abnormality factor vs the median baseline.
    pub slow_factor: f64,
    /// Fraction of abnormal row/column entries to call Tx/Rx slow.
    pub row_col_fraction: f64,
    /// Straggler threshold: a rank whose compute time exceeds the median by
    /// this factor is a non-communication-slow suspect.
    pub straggler_factor: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            hang_timeout: SimDuration::from_secs(15),
            slow_factor: 2.0,
            row_col_fraction: 0.7,
            straggler_factor: 1.5,
        }
    }
}

/// A detected anomaly syndrome.
#[derive(Debug, Clone, PartialEq)]
pub enum Syndrome {
    /// The collective at `seq` is in flight on every rank past the timeout.
    CommHang {
        /// Communicator id.
        comm: u64,
        /// Hung sequence number.
        seq: u64,
        /// Ranks parked in the operation.
        stuck_ranks: Vec<u32>,
    },
    /// Some ranks never launched `seq` while their peers are parked in it.
    NonCommHang {
        /// Communicator id.
        comm: u64,
        /// Sequence the peers are parked in.
        seq: u64,
        /// Ranks that never arrived (the suspects).
        missing_ranks: Vec<u32>,
    },
    /// The delay matrix localized slow communication.
    CommSlow {
        /// Communicator id.
        comm: u64,
        /// Localized findings, most severe first.
        findings: Vec<MatrixFinding>,
    },
    /// A rank consistently arrives late at the sync point.
    NonCommSlow {
        /// Communicator id.
        comm: u64,
        /// The straggler rank.
        straggler: u32,
        /// Its compute time over the median rank's.
        ratio: f64,
    },
}

/// Scans per-rank snapshots for hang syndromes on one communicator.
///
/// `snapshots[rank]` must be the snapshot of the worker at that rank.
/// Returns at most one syndrome: non-communication hangs take priority
/// (they identify a specific suspect).
pub fn detect_hang(
    now: SimTime,
    comm: &CommRecord,
    snapshots: &[TelemetrySnapshot],
    cfg: &DetectorConfig,
) -> Option<Syndrome> {
    assert_eq!(
        snapshots.len(),
        comm.nranks(),
        "one snapshot per rank required"
    );
    // Highest sequence any rank has launched.
    let latest_launched: Option<u64> = snapshots
        .iter()
        .flat_map(|s| s.colls.iter().filter(|c| c.comm == comm.comm))
        .map(|c| c.seq)
        .max();
    let seq = latest_launched?;

    let mut stuck = Vec::new();
    let mut missing = Vec::new();
    let mut oldest_start: Option<SimTime> = None;
    for (rank, snap) in snapshots.iter().enumerate() {
        let rec = snap
            .colls
            .iter()
            .rfind(|c| c.comm == comm.comm && c.seq == seq);
        match rec {
            None => missing.push(rank as u32),
            Some(r) if r.end.is_none() => {
                stuck.push(rank as u32);
                oldest_start = Some(match oldest_start {
                    Some(t) => t.min(r.start),
                    None => r.start,
                });
            }
            Some(_) => {}
        }
    }

    // The anchor must have been outstanding long enough.
    let timed_out = oldest_start
        .map(|t| now - t >= cfg.hang_timeout)
        .unwrap_or(false);
    if !timed_out {
        return None;
    }
    if !missing.is_empty() {
        return Some(Syndrome::NonCommHang {
            comm: comm.comm,
            seq,
            missing_ranks: missing,
        });
    }
    if !stuck.is_empty() {
        return Some(Syndrome::CommHang {
            comm: comm.comm,
            seq,
            stuck_ranks: stuck,
        });
    }
    None
}

/// Scans rank records for a persistent straggler (non-communication slow).
///
/// Uses each rank's mean compute time over its recorded steps; the paper's
/// receiver-driven wait chain surfaces the same rank as the one every
/// successor ends up waiting on.
pub fn detect_noncomm_slow(
    comm: &CommRecord,
    snapshots: &[TelemetrySnapshot],
    cfg: &DetectorConfig,
) -> Option<Syndrome> {
    assert_eq!(snapshots.len(), comm.nranks());
    let mut means: Vec<f64> = Vec::with_capacity(snapshots.len());
    for snap in snapshots {
        let samples: Vec<f64> = snap
            .ranks
            .iter()
            .filter(|r| r.comm == comm.comm)
            .map(|r| r.compute.as_secs_f64())
            .collect();
        if samples.is_empty() {
            return None; // not enough data yet
        }
        means.push(samples.iter().sum::<f64>() / samples.len() as f64);
    }
    // The shared straggler test handles non-finite means (NaN / the INFINITY
    // "nothing observed" sentinel) by excluding them instead of panicking.
    let (straggler, ratio) = crate::smoothing::raw_straggler(&means, cfg.straggler_factor)?;
    Some(Syndrome::NonCommSlow {
        comm: comm.comm,
        straggler: straggler as u32,
        ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_telemetry::{AlgoKind, CollKind, CollRecord, DataType, RankRecord, WorkerTelemetry};
    use c4_topology::GpuId;

    fn comm_of(n: usize) -> CommRecord {
        CommRecord {
            comm: 1,
            devices: (0..n).map(GpuId::from_index).collect(),
            created: SimTime::ZERO,
        }
    }

    fn coll(seq: u64, rank: u32, start_s: u64, end: Option<u64>) -> CollRecord {
        CollRecord {
            comm: 1,
            seq,
            rank,
            kind: CollKind::AllReduce,
            algo: AlgoKind::Ring,
            dtype: DataType::F16,
            count: 1,
            start: SimTime::from_secs(start_s),
            end: end.map(SimTime::from_secs),
        }
    }

    fn snapshots_with(colls: Vec<Vec<CollRecord>>) -> Vec<TelemetrySnapshot> {
        colls
            .into_iter()
            .enumerate()
            .map(|(i, cs)| {
                let mut w = WorkerTelemetry::new(GpuId::from_index(i));
                for c in cs {
                    w.record_coll(c);
                }
                w.snapshot(SimTime::from_secs(100))
            })
            .collect()
    }

    #[test]
    fn all_ranks_stuck_is_comm_hang() {
        let comm = comm_of(4);
        let snaps = snapshots_with(
            (0..4)
                .map(|r| vec![coll(5, r, 10, None)])
                .collect::<Vec<_>>(),
        );
        let cfg = DetectorConfig::default();
        let syn = detect_hang(SimTime::from_secs(60), &comm, &snaps, &cfg).unwrap();
        match syn {
            Syndrome::CommHang {
                seq, stuck_ranks, ..
            } => {
                assert_eq!(seq, 5);
                assert_eq!(stuck_ranks, vec![0, 1, 2, 3]);
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn missing_rank_is_noncomm_hang() {
        let comm = comm_of(4);
        let mut colls: Vec<Vec<CollRecord>> =
            (0..4u32).map(|r| vec![coll(5, r, 10, None)]).collect();
        colls[2] = vec![coll(4, 2, 5, Some(9))]; // rank 2 never launched seq 5
        let snaps = snapshots_with(colls);
        let cfg = DetectorConfig::default();
        let syn = detect_hang(SimTime::from_secs(60), &comm, &snaps, &cfg).unwrap();
        match syn {
            Syndrome::NonCommHang {
                seq, missing_ranks, ..
            } => {
                assert_eq!(seq, 5);
                assert_eq!(missing_ranks, vec![2]);
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn no_hang_before_timeout() {
        let comm = comm_of(2);
        let snaps = snapshots_with(vec![vec![coll(1, 0, 50, None)], vec![coll(1, 1, 50, None)]]);
        let cfg = DetectorConfig::default();
        assert!(detect_hang(SimTime::from_secs(55), &comm, &snaps, &cfg).is_none());
        assert!(detect_hang(SimTime::from_secs(66), &comm, &snaps, &cfg).is_some());
    }

    #[test]
    fn completed_ops_are_not_hangs() {
        let comm = comm_of(2);
        let snaps = snapshots_with(vec![
            vec![coll(1, 0, 10, Some(12))],
            vec![coll(1, 1, 10, Some(12))],
        ]);
        let cfg = DetectorConfig::default();
        assert!(detect_hang(SimTime::from_secs(100), &comm, &snaps, &cfg).is_none());
    }

    #[test]
    fn empty_history_is_silent() {
        let comm = comm_of(2);
        let snaps = snapshots_with(vec![vec![], vec![]]);
        let cfg = DetectorConfig::default();
        assert!(detect_hang(SimTime::from_secs(100), &comm, &snaps, &cfg).is_none());
    }

    fn rank_snaps(computes_ms: &[Vec<u64>]) -> Vec<TelemetrySnapshot> {
        computes_ms
            .iter()
            .enumerate()
            .map(|(rank, steps)| {
                let mut w = WorkerTelemetry::new(GpuId::from_index(rank));
                for (step, &ms) in steps.iter().enumerate() {
                    w.record_rank(RankRecord {
                        comm: 1,
                        rank: rank as u32,
                        step: step as u64,
                        compute: SimDuration::from_millis(ms),
                        ready_delay: SimDuration::ZERO,
                        arrived: SimTime::from_secs(step as u64),
                    });
                }
                w.snapshot(SimTime::from_secs(100))
            })
            .collect()
    }

    #[test]
    fn straggler_rank_detected() {
        let comm = comm_of(4);
        let snaps = rank_snaps(&[
            vec![100, 100, 100],
            vec![105, 95, 100],
            vec![300, 310, 290], // rank 2 is 3× slower
            vec![98, 102, 100],
        ]);
        let cfg = DetectorConfig::default();
        let syn = detect_noncomm_slow(&comm, &snaps, &cfg).unwrap();
        match syn {
            Syndrome::NonCommSlow {
                straggler, ratio, ..
            } => {
                assert_eq!(straggler, 2);
                assert!(ratio > 2.5 && ratio < 3.5, "ratio {ratio}");
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn homogeneous_ranks_are_silent() {
        let comm = comm_of(3);
        let snaps = rank_snaps(&[vec![100, 101], vec![99, 100], vec![102, 98]]);
        let cfg = DetectorConfig::default();
        assert!(detect_noncomm_slow(&comm, &snaps, &cfg).is_none());
    }

    #[test]
    fn missing_rank_data_defers_detection() {
        let comm = comm_of(2);
        let snaps = rank_snaps(&[vec![100], vec![]]);
        let cfg = DetectorConfig::default();
        assert!(detect_noncomm_slow(&comm, &snaps, &cfg).is_none());
    }
}
