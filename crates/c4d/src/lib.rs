//! # c4-diagnosis (C4D)
//!
//! Real-time anomaly detection for distributed training — the paper's first
//! contribution (§III-A).
//!
//! C4D exploits two properties of BSP training: workers run in a homogeneous
//! rhythm, and collective operations give natural synchronization anchors.
//! A central master compares per-worker telemetry and classifies the four
//! error syndromes the paper names:
//!
//! * **communication hang** — a collective in flight everywhere for too long
//!   ([`detectors::detect_hang`]);
//! * **non-communication hang** — some ranks never launched the collective
//!   their peers are waiting in;
//! * **communication slow** — localized with the delay matrix of Fig 7: one
//!   hot cell = a bad connection, a hot row = sender Tx problem, a hot
//!   column = receiver Rx problem ([`matrix::DelayMatrix`]);
//! * **non-communication slow** — a straggler rank arriving late at the
//!   sync point, exposed by the receiver-driven wait chain
//!   ([`detectors::detect_noncomm_slow`]).
//!
//! On a critical finding the master notifies the job-steering service
//! ([`steering::JobSteering`]), which isolates the suspect node, swaps in a
//! backup (the paper reserves 8 backup nodes per 128), and restarts the job
//! from the last checkpoint — cutting diagnosis from hours to seconds
//! (Table III).
//!
//! [`smoothing`] implements the paper's stated future-work extension:
//! windowed averaging of per-rank load so Expert-Parallel imbalance is not
//! misdiagnosed as a slow node (§V).
//!
//! [`streaming`] re-plumbs the detectors as incremental consumers of the
//! telemetry pipeline (`c4_telemetry::pipeline`): bounded per-rank /
//! per-connection state fed one event at a time, with verdicts pinned
//! bit-identical to the batch reference implementations above.

#![warn(missing_docs)]

pub mod detectors;
pub mod master;
pub mod matrix;
pub mod rca;
pub mod smoothing;
pub mod steering;
pub mod streaming;

pub use detectors::{detect_hang, detect_noncomm_slow, DetectorConfig, Syndrome};
pub use master::{C4dMaster, Diagnosis};
pub use matrix::{DelayMatrix, MatrixFinding};
pub use rca::{analyze as analyze_root_cause, Hypothesis, RcaReport};
pub use smoothing::{raw_straggler, LoadSmoother};
pub use steering::{JobSteering, ReplacementPlan, SteeringConfig, SteeringError};
pub use streaming::{
    CollHealthDetector, StepVerdict, StreamSmoother, StreamVerdict, StreamingC4dMaster,
};
