//! The C4D master: gathers per-worker snapshots, runs the detectors,
//! localizes suspects and emits C4 events (paper Fig 4/5).

use c4_simcore::SimTime;
use c4_telemetry::{C4Event, CommRecord, EventKind, EventLog, Severity, TelemetrySnapshot};
use c4_topology::{NodeId, Topology};

use crate::detectors::{detect_hang, detect_noncomm_slow, DetectorConfig, Syndrome};
use crate::matrix::{DelayMatrix, MatrixFinding};

/// A localized diagnosis ready for the steering service.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// When it was made.
    pub at: SimTime,
    /// The syndrome that triggered it.
    pub syndrome: Syndrome,
    /// The node to isolate, when the syndrome localizes to one.
    pub suspect: Option<NodeId>,
    /// Whether the finding warrants isolate-and-restart (vs monitoring).
    pub critical: bool,
}

/// The central analysis master.
#[derive(Debug, Clone, Default)]
pub struct C4dMaster {
    cfg: DetectorConfig,
    log: EventLog,
}

impl C4dMaster {
    /// Creates a master with the given thresholds.
    pub fn new(cfg: DetectorConfig) -> Self {
        C4dMaster {
            cfg,
            log: EventLog::new(),
        }
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// The accumulated event log (`events.csv`).
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Scans one communicator's snapshots; returns diagnoses (may be empty).
    ///
    /// `snapshots[rank]` must hold rank `rank`'s snapshot.
    pub fn scan(
        &mut self,
        now: SimTime,
        topo: &Topology,
        comm: &CommRecord,
        snapshots: &[TelemetrySnapshot],
    ) -> Vec<Diagnosis> {
        // Hang syndromes (critical). For a comm hang the transport-level
        // stalled rank refines the suspect inside `emit_diagnoses`.
        let hang = detect_hang(now, comm, snapshots, &self.cfg).map(|syndrome| {
            let stalled = matches!(syndrome, Syndrome::CommHang { .. })
                .then(|| {
                    stalled_rank_from_conns(comm, snapshots.iter().flat_map(|s| s.conns.iter()))
                })
                .flatten();
            (syndrome, stalled)
        });

        // Communication slow (warning): delay-matrix localization.
        let matrix = DelayMatrix::from_conn_records(
            &comm.devices,
            snapshots.iter().flat_map(|s| s.conns.iter()),
        );
        let findings = matrix.analyze(self.cfg.slow_factor, self.cfg.row_col_fraction);

        // Non-communication slow (warning): straggler rank.
        let noncomm = detect_noncomm_slow(comm, snapshots, &self.cfg);

        emit_diagnoses(now, topo, comm, hang, findings, noncomm, &mut self.log)
    }
}

/// Turns detector outputs into diagnoses + C4 events — the single shared
/// emission path of the batch [`C4dMaster::scan`] and the streaming
/// [`crate::streaming::StreamingC4dMaster::scan`]. Both paths computing
/// identical detector outputs therefore produce structurally identical
/// diagnoses and event-log entries (the property the stream==batch
/// differential pins).
///
/// `hang` carries the hang syndrome plus the transport-level stalled rank
/// (used to refine the comm-hang suspect; ignored for non-comm hangs).
pub(crate) fn emit_diagnoses(
    now: SimTime,
    topo: &Topology,
    comm: &CommRecord,
    hang: Option<(Syndrome, Option<u32>)>,
    findings: Vec<MatrixFinding>,
    noncomm: Option<Syndrome>,
    log: &mut EventLog,
) -> Vec<Diagnosis> {
    let mut out = Vec::new();

    if let Some((syndrome, stalled)) = hang {
        let (kind, rank) = match &syndrome {
            Syndrome::NonCommHang { missing_ranks, .. } => {
                (EventKind::NonCommHang, missing_ranks.first().copied())
            }
            Syndrome::CommHang { stuck_ranks, .. } => {
                (EventKind::CommHang, stuck_ranks.first().copied())
            }
            _ => unreachable!("hang input carries hang syndromes"),
        };
        // For a comm hang every rank is stuck; the suspect is found via
        // transport records (the rank whose connections stopped
        // completing first). For a non-comm hang the missing rank is it.
        let suspect_rank = match &syndrome {
            Syndrome::NonCommHang { missing_ranks, .. } => missing_ranks.first().copied(),
            Syndrome::CommHang { .. } => stalled.or(rank),
            _ => None,
        };
        let suspect = suspect_rank.map(|r| topo.gpu(comm.devices[r as usize]).node);
        log.push(C4Event {
            time: now,
            severity: Severity::Critical,
            kind,
            node: suspect,
            gpu: suspect_rank.map(|r| comm.devices[r as usize]),
            link: None,
            detail: format!("comm {} syndrome {:?}", comm.comm, kind),
        });
        out.push(Diagnosis {
            at: now,
            syndrome,
            suspect,
            critical: true,
        });
    }

    if !findings.is_empty() {
        let suspect = match findings[0] {
            MatrixFinding::TxSlow { rank, .. } | MatrixFinding::RxSlow { rank, .. } => {
                Some(topo.gpu(comm.devices[rank as usize]).node)
            }
            MatrixFinding::ConnectionSlow { .. } => None,
        };
        log.push(C4Event {
            time: now,
            severity: Severity::Warning,
            kind: EventKind::CommSlow,
            node: suspect,
            gpu: None,
            link: None,
            detail: format!("comm {}: {:?}", comm.comm, findings[0]),
        });
        out.push(Diagnosis {
            at: now,
            syndrome: Syndrome::CommSlow {
                comm: comm.comm,
                findings,
            },
            suspect,
            critical: false,
        });
    }

    if let Some(syndrome) = noncomm {
        let suspect = match &syndrome {
            Syndrome::NonCommSlow { straggler, .. } => {
                Some(topo.gpu(comm.devices[*straggler as usize]).node)
            }
            _ => None,
        };
        log.push(C4Event {
            time: now,
            severity: Severity::Warning,
            kind: EventKind::NonCommSlow,
            node: suspect,
            gpu: None,
            link: None,
            detail: format!("comm {} straggler", comm.comm),
        });
        out.push(Diagnosis {
            at: now,
            syndrome,
            suspect,
            critical: false,
        });
    }

    out
}

/// For a communication hang, the suspect is the rank whose transport went
/// quiet in **both** directions: its own sends stopped completing *and* the
/// sends targeting it stopped completing. A rank that merely sends into a
/// dead peer keeps receiving normally, which disambiguates the two ends of
/// a dead connection.
///
/// Shared by the batch path (which flattens snapshot connection lists) and
/// the streaming path (which iterates its connection store): `last_tx` /
/// `last_rx` are maxima, so any iteration order yields the same result.
pub(crate) fn stalled_rank_from_conns<'a>(
    comm: &CommRecord,
    conns: impl Iterator<Item = &'a c4_telemetry::ConnRecord>,
) -> Option<u32> {
    let nranks = comm.nranks();
    let mut last_tx: Vec<Option<SimTime>> = vec![None; nranks];
    let mut last_rx: Vec<Option<SimTime>> = vec![None; nranks];
    for conn in conns.filter(|c| c.key.comm == comm.comm) {
        let Some(done) = conn.last_completion else {
            continue;
        };
        if let Some(src) = comm.rank_of(conn.key.src_gpu) {
            let t = &mut last_tx[src];
            *t = Some(t.map_or(done, |prev| prev.max(done)));
        }
        if let Some(dst) = comm.rank_of(conn.key.dst_gpu) {
            let t = &mut last_rx[dst];
            *t = Some(t.map_or(done, |prev| prev.max(done)));
        }
    }
    // Quiet time per rank: the most recent activity in either direction;
    // the suspect is the rank that has been silent the longest overall.
    let mut best: Option<(u32, SimTime)> = None;
    for rank in 0..nranks {
        let quiet = match (last_tx[rank], last_rx[rank]) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            // A rank with no recorded completions in either direction has
            // been silent for the comm's whole observed lifetime — that is
            // the strongest hang signal, not a reason to skip it (a dead
            // node produces exactly this shape: its flows never finish, so
            // it never shows up in completion records at all).
            (None, None) => comm.created,
        };
        best = Some(match best {
            Some((r, bt)) if bt <= quiet => (r, bt),
            _ => (rank as u32, quiet),
        });
    }
    best.map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_simcore::SimDuration;
    use c4_telemetry::{AlgoKind, CollKind, CollRecord, ConnKey, DataType, WorkerTelemetry};
    use c4_topology::{ClosConfig, GpuId, PortId};

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    fn comm_of(t: &Topology, n: usize) -> CommRecord {
        CommRecord {
            comm: 1,
            devices: (0..n).map(|i| t.gpus()[i].id).collect(),
            created: SimTime::ZERO,
        }
    }

    fn hang_snapshots(comm: &CommRecord, quiet_rank: u32) -> Vec<TelemetrySnapshot> {
        comm.devices
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let mut w = WorkerTelemetry::new(gpu);
                w.record_coll(CollRecord {
                    comm: comm.comm,
                    seq: 9,
                    rank: rank as u32,
                    kind: CollKind::AllReduce,
                    algo: AlgoKind::Ring,
                    dtype: DataType::F16,
                    count: 1,
                    start: SimTime::from_secs(10),
                    end: None,
                });
                // Every rank's transport kept completing except around the
                // victim: its own sends AND its predecessor's sends into it
                // went quiet early (a dead NIC stalls both directions).
                let next = (rank + 1) % comm.devices.len();
                let last = if rank as u32 == quiet_rank || next as u32 == quiet_rank {
                    11
                } else {
                    30
                };
                w.record_message(
                    ConnKey {
                        comm: comm.comm,
                        channel: 0,
                        qp: 0,
                        src_gpu: gpu,
                        dst_gpu: comm.devices[(rank + 1) % comm.devices.len()],
                    },
                    PortId::from_index(0),
                    1000,
                    SimDuration::from_millis(1),
                    SimTime::from_secs(last),
                );
                w.snapshot(SimTime::from_secs(60))
            })
            .collect()
    }

    #[test]
    fn comm_hang_localizes_quiet_rank() {
        let t = topo();
        let comm = comm_of(&t, 16);
        let snaps = hang_snapshots(&comm, 11);
        let mut master = C4dMaster::new(DetectorConfig::default());
        let diags = master.scan(SimTime::from_secs(60), &t, &comm, &snaps);
        let hang = diags
            .iter()
            .find(|d| matches!(d.syndrome, Syndrome::CommHang { .. }))
            .expect("hang diagnosis");
        assert!(hang.critical);
        // Rank 11 = gpu 11 = node 1 on the testbed.
        assert_eq!(hang.suspect, Some(t.gpu(GpuId::from_index(11)).node));
        assert!(master.log().of_kind(EventKind::CommHang).count() == 1);
    }

    #[test]
    fn healthy_snapshots_produce_no_diagnoses() {
        let t = topo();
        let comm = comm_of(&t, 8);
        let snaps: Vec<TelemetrySnapshot> = comm
            .devices
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let mut w = WorkerTelemetry::new(gpu);
                w.record_coll(CollRecord {
                    comm: comm.comm,
                    seq: 3,
                    rank: rank as u32,
                    kind: CollKind::AllReduce,
                    algo: AlgoKind::Ring,
                    dtype: DataType::F16,
                    count: 1,
                    start: SimTime::from_secs(10),
                    end: Some(SimTime::from_secs(11)),
                });
                w.snapshot(SimTime::from_secs(60))
            })
            .collect();
        let mut master = C4dMaster::new(DetectorConfig::default());
        let diags = master.scan(SimTime::from_secs(60), &t, &comm, &snaps);
        assert!(diags.is_empty());
        assert!(master.log().is_empty());
    }

    #[test]
    fn comm_slow_via_conn_records() {
        let t = topo();
        let comm = comm_of(&t, 8);
        // Full-mesh conn records, rank 3's sends all slow.
        let snaps: Vec<TelemetrySnapshot> = comm
            .devices
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let mut w = WorkerTelemetry::new(gpu);
                for (peer_rank, &peer) in comm.devices.iter().enumerate() {
                    if peer_rank == rank {
                        continue;
                    }
                    let ms = if rank == 3 { 50 } else { 10 };
                    w.record_message(
                        ConnKey {
                            comm: comm.comm,
                            channel: 0,
                            qp: 0,
                            src_gpu: gpu,
                            dst_gpu: peer,
                        },
                        PortId::from_index(0),
                        1_000_000,
                        SimDuration::from_millis(ms),
                        SimTime::from_secs(30),
                    );
                }
                w.snapshot(SimTime::from_secs(60))
            })
            .collect();
        let mut master = C4dMaster::new(DetectorConfig::default());
        let diags = master.scan(SimTime::from_secs(60), &t, &comm, &snaps);
        let slow = diags
            .iter()
            .find(|d| matches!(d.syndrome, Syndrome::CommSlow { .. }))
            .expect("comm slow diagnosis");
        match &slow.syndrome {
            Syndrome::CommSlow { findings, .. } => {
                assert!(matches!(findings[0], MatrixFinding::TxSlow { rank: 3, .. }));
            }
            _ => unreachable!(),
        }
        assert_eq!(slow.suspect, Some(t.gpu(comm.devices[3]).node));
        assert!(!slow.critical);
    }
}
