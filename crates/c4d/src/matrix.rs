//! The communication delay matrix and its row/column/cell analysis (Fig 7).
//!
//! Each element `(src, dst)` holds the mean message delay between a pair of
//! ranks. Because all workers split messages identically (§III-A), healthy
//! entries are tightly clustered; anomalies stand out as:
//!
//! * a single hot **cell** → that one connection (a congested link);
//! * a hot **row** → the source rank's send side (NIC Tx);
//! * a hot **column** → the destination rank's receive side (NIC Rx).

use c4_telemetry::ConnRecord;
use c4_topology::GpuId;

/// What the matrix analysis localized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatrixFinding {
    /// The whole row of `rank` is slow: its transmit side is the problem.
    TxSlow {
        /// Source rank with the slow row.
        rank: u32,
        /// Mean slowdown of the row vs the healthy baseline.
        ratio: f64,
    },
    /// The whole column of `rank` is slow: its receive side is the problem.
    RxSlow {
        /// Destination rank with the slow column.
        rank: u32,
        /// Mean slowdown of the column vs the healthy baseline.
        ratio: f64,
    },
    /// One connection is slow: a specific path between two ranks.
    ConnectionSlow {
        /// Source rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Slowdown vs the healthy baseline.
        ratio: f64,
    },
}

impl MatrixFinding {
    /// The slowdown ratio of the finding.
    pub fn ratio(&self) -> f64 {
        match self {
            MatrixFinding::TxSlow { ratio, .. }
            | MatrixFinding::RxSlow { ratio, .. }
            | MatrixFinding::ConnectionSlow { ratio, .. } => *ratio,
        }
    }
}

/// A dense `n×n` matrix of pairwise communication delays (seconds); absent
/// pairs are `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayMatrix {
    n: usize,
    cells: Vec<f64>,
}

impl DelayMatrix {
    /// Creates an empty (all-absent) matrix for `n` ranks.
    pub fn new(n: usize) -> Self {
        DelayMatrix {
            n,
            cells: vec![f64::NAN; n * n],
        }
    }

    /// Builds the matrix from connection records, averaging the mean message
    /// delay over all QPs between each rank pair. `devices[rank]` maps ranks
    /// to GPUs; records between GPUs outside `devices` are ignored.
    pub fn from_conn_records<'a>(
        devices: &[GpuId],
        records: impl Iterator<Item = &'a ConnRecord>,
    ) -> Self {
        let n = devices.len();
        let rank_of = |g: GpuId| devices.iter().position(|&d| d == g);
        let mut sums = vec![0.0_f64; n * n];
        let mut counts = vec![0u32; n * n];
        for rec in records {
            let (Some(src), Some(dst)) = (rank_of(rec.key.src_gpu), rank_of(rec.key.dst_gpu))
            else {
                continue;
            };
            if rec.messages == 0 {
                continue;
            }
            sums[src * n + dst] += rec.mean_message_duration().as_secs_f64();
            counts[src * n + dst] += 1;
        }
        let mut m = DelayMatrix::new(n);
        for i in 0..n * n {
            if counts[i] > 0 {
                m.cells[i] = sums[i] / counts[i] as f64;
            }
        }
        m
    }

    /// Matrix dimension (rank count).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sets one cell (delay in seconds).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, src: usize, dst: usize, delay_secs: f64) {
        assert!(src < self.n && dst < self.n, "matrix index out of range");
        self.cells[src * self.n + dst] = delay_secs;
    }

    /// One cell; `NaN` when absent.
    pub fn get(&self, src: usize, dst: usize) -> f64 {
        self.cells[src * self.n + dst]
    }

    /// Median of all present off-diagonal entries (the healthy baseline).
    pub fn baseline(&self) -> Option<f64> {
        let mut present: Vec<f64> = (0..self.n)
            .flat_map(|i| (0..self.n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .map(|(i, j)| self.get(i, j))
            .filter(|v| v.is_finite())
            .collect();
        if present.is_empty() {
            return None;
        }
        present.sort_unstable_by(f64::total_cmp);
        Some(present[present.len() / 2])
    }

    /// Runs the Fig 7 analysis: flags slow rows (Tx), slow columns (Rx) and
    /// isolated slow cells (single connections).
    ///
    /// `slow_factor` is the abnormality threshold vs the baseline median;
    /// `row_col_fraction` is the fraction of abnormal entries required to
    /// call a whole row/column slow.
    pub fn analyze(&self, slow_factor: f64, row_col_fraction: f64) -> Vec<MatrixFinding> {
        let Some(base) = self.baseline() else {
            return Vec::new();
        };
        if base <= 0.0 {
            return Vec::new();
        }
        let abnormal = |v: f64| v.is_finite() && v > base * slow_factor;

        let mut findings = Vec::new();
        let mut row_flagged = vec![false; self.n];
        let mut col_flagged = vec![false; self.n];

        for (i, flagged) in row_flagged.iter_mut().enumerate() {
            let entries: Vec<f64> = (0..self.n)
                .filter(|&j| j != i)
                .map(|j| self.get(i, j))
                .filter(|v| v.is_finite())
                .collect();
            if entries.is_empty() {
                continue;
            }
            let bad = entries.iter().filter(|&&v| abnormal(v)).count();
            if bad as f64 / entries.len() as f64 >= row_col_fraction {
                let mean_bad: f64 =
                    entries.iter().filter(|&&v| abnormal(v)).sum::<f64>() / bad.max(1) as f64;
                *flagged = true;
                findings.push(MatrixFinding::TxSlow {
                    rank: i as u32,
                    ratio: mean_bad / base,
                });
            }
        }
        for (j, flagged) in col_flagged.iter_mut().enumerate() {
            let entries: Vec<f64> = (0..self.n)
                .filter(|&i| i != j)
                .map(|i| self.get(i, j))
                .filter(|v| v.is_finite())
                .collect();
            if entries.is_empty() {
                continue;
            }
            let bad = entries.iter().filter(|&&v| abnormal(v)).count();
            if bad as f64 / entries.len() as f64 >= row_col_fraction {
                let mean_bad: f64 =
                    entries.iter().filter(|&&v| abnormal(v)).sum::<f64>() / bad.max(1) as f64;
                *flagged = true;
                findings.push(MatrixFinding::RxSlow {
                    rank: j as u32,
                    ratio: mean_bad / base,
                });
            }
        }
        for (i, &row_is_slow) in row_flagged.iter().enumerate() {
            for (j, &col_is_slow) in col_flagged.iter().enumerate() {
                if i == j || row_is_slow || col_is_slow {
                    continue;
                }
                let v = self.get(i, j);
                if abnormal(v) {
                    findings.push(MatrixFinding::ConnectionSlow {
                        src: i as u32,
                        dst: j as u32,
                        ratio: v / base,
                    });
                }
            }
        }
        // `total_cmp` keeps the sort total even if a ratio goes non-finite
        // (e.g. a pathological baseline): ordering degrades gracefully
        // instead of panicking the whole analysis.
        findings.sort_unstable_by(|a, b| b.ratio().total_cmp(&a.ratio()));
        findings
    }

    /// Renders the matrix as rows of `ms` values (for the Fig 7 binary).
    pub fn to_display_ms(&self) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|i| {
                (0..self.n)
                    .map(|j| {
                        let v = self.get(i, j);
                        if v.is_finite() {
                            v * 1e3
                        } else {
                            f64::NAN
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A healthy 8×8 matrix with every off-diagonal cell at `base` seconds.
    fn healthy(n: usize, base: f64) -> DelayMatrix {
        let mut m = DelayMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.set(i, j, base);
                }
            }
        }
        m
    }

    #[test]
    fn healthy_matrix_has_no_findings() {
        let m = healthy(8, 0.010);
        assert!(m.analyze(2.0, 0.7).is_empty());
        assert!((m.baseline().unwrap() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn single_hot_cell_is_a_connection_finding() {
        let mut m = healthy(8, 0.010);
        m.set(3, 4, 0.050);
        let findings = m.analyze(2.0, 0.7);
        assert_eq!(findings.len(), 1);
        match findings[0] {
            MatrixFinding::ConnectionSlow { src, dst, ratio } => {
                assert_eq!((src, dst), (3, 4));
                assert!((ratio - 5.0).abs() < 1e-9);
            }
            f => panic!("unexpected finding {f:?}"),
        }
    }

    #[test]
    fn hot_row_is_tx_slow() {
        let mut m = healthy(8, 0.010);
        for j in 0..8 {
            if j != 3 {
                m.set(3, j, 0.040);
            }
        }
        let findings = m.analyze(2.0, 0.7);
        assert_eq!(findings.len(), 1);
        match findings[0] {
            MatrixFinding::TxSlow { rank, ratio } => {
                assert_eq!(rank, 3);
                assert!((ratio - 4.0).abs() < 1e-9);
            }
            f => panic!("unexpected finding {f:?}"),
        }
    }

    #[test]
    fn hot_column_is_rx_slow() {
        let mut m = healthy(8, 0.010);
        for i in 0..8 {
            if i != 5 {
                m.set(i, 5, 0.030);
            }
        }
        let findings = m.analyze(2.0, 0.7);
        assert_eq!(findings.len(), 1);
        assert!(matches!(findings[0], MatrixFinding::RxSlow { rank: 5, .. }));
    }

    #[test]
    fn row_flag_suppresses_its_cells() {
        let mut m = healthy(8, 0.010);
        for j in 0..8 {
            if j != 2 {
                m.set(2, j, 0.050);
            }
        }
        m.set(6, 7, 0.050); // independent hot cell
        let findings = m.analyze(2.0, 0.7);
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .any(|f| matches!(f, MatrixFinding::TxSlow { rank: 2, .. })));
        assert!(findings
            .iter()
            .any(|f| matches!(f, MatrixFinding::ConnectionSlow { src: 6, dst: 7, .. })));
    }

    #[test]
    fn sparse_matrix_analyzes_present_entries_only() {
        // Ring-like sparsity: only neighbours present.
        let mut m = DelayMatrix::new(8);
        for i in 0..8 {
            m.set(i, (i + 1) % 8, 0.010);
        }
        m.set(3, 4, 0.080);
        let findings = m.analyze(2.0, 0.7);
        // Row 3 has a single present entry, 100% abnormal → row flag wins.
        assert!(matches!(findings[0], MatrixFinding::TxSlow { rank: 3, .. }));
    }

    #[test]
    fn empty_matrix_is_silent() {
        let m = DelayMatrix::new(4);
        assert!(m.baseline().is_none());
        assert!(m.analyze(2.0, 0.7).is_empty());
    }

    #[test]
    fn findings_sorted_by_severity() {
        let mut m = healthy(8, 0.010);
        m.set(1, 2, 0.030);
        m.set(4, 5, 0.090);
        let findings = m.analyze(2.0, 0.7);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].ratio() > findings[1].ratio());
        assert!(matches!(
            findings[0],
            MatrixFinding::ConnectionSlow { src: 4, dst: 5, .. }
        ));
    }

    #[test]
    fn display_converts_to_ms() {
        let mut m = DelayMatrix::new(2);
        m.set(0, 1, 0.0125);
        let rows = m.to_display_ms();
        assert!((rows[0][1] - 12.5).abs() < 1e-9);
        assert!(rows[0][0].is_nan());
    }
}
