//! Background root-cause analysis (paper Fig 4: "Background Root Cause
//! Analysis").
//!
//! C4D's online path stops at *localization* — isolate the node, restart the
//! job, keep GPUs busy. The deeper question ("was it ECC? a NIC? the user's
//! code?") is answered offline by correlating the detected syndrome with
//! transport-layer evidence. Table I shows why this matters: from the user's
//! view almost everything is an opaque "NCCL Error"; the RCA stage is what
//! turns syndrome + telemetry into the root-cause taxonomy.

use c4_faults::FaultKind;
use c4_telemetry::{CommRecord, TelemetrySnapshot};

use crate::detectors::Syndrome;
use crate::matrix::MatrixFinding;

/// A ranked root-cause hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// The hypothesized fault class.
    pub cause: FaultKind,
    /// Relative confidence in `[0, 1]` (hypotheses sum to ≤ 1).
    pub confidence: f64,
    /// Human-readable evidence summary.
    pub evidence: String,
}

/// The offline analysis result for one incident.
#[derive(Debug, Clone, PartialEq)]
pub struct RcaReport {
    /// Hypotheses, most likely first (never empty).
    pub hypotheses: Vec<Hypothesis>,
}

impl RcaReport {
    /// The top hypothesis.
    pub fn probable_cause(&self) -> FaultKind {
        self.hypotheses[0].cause
    }
}

/// Correlates a detected syndrome with transport evidence to rank root
/// causes.
///
/// Heuristics encode the paper's taxonomy:
/// * a rank that never launched the collective points at host/GPU-side
///   failure (CUDA error, or an ECC/NVLink fault killing the process);
/// * a communication hang whose victim's transport is quiet in both
///   directions points at the NIC/transport (ACK timeout), while a hang
///   with live transport but no completion points at the library (NCCL
///   timeout);
/// * Tx/Rx-row matrix findings indicate NIC-side degradation; single-cell
///   findings indicate a network path (link) issue.
pub fn analyze(
    comm: &CommRecord,
    snapshots: &[TelemetrySnapshot],
    syndrome: &Syndrome,
) -> RcaReport {
    let hypotheses = match syndrome {
        Syndrome::NonCommHang { missing_ranks, .. } => {
            let rank = missing_ranks.first().copied().unwrap_or(0);
            vec![
                Hypothesis {
                    cause: FaultKind::CudaError,
                    confidence: 0.5,
                    evidence: format!(
                        "rank {rank} never launched the collective its peers wait in"
                    ),
                },
                Hypothesis {
                    cause: FaultKind::EccError,
                    confidence: 0.3,
                    evidence: "process death before kernel launch is consistent with an \
                               uncorrectable memory error"
                        .into(),
                },
                Hypothesis {
                    cause: FaultKind::GcPause,
                    confidence: 0.2,
                    evidence: "host-side stall (user code / GC) can also delay launch".into(),
                },
            ]
        }
        Syndrome::CommHang { stuck_ranks, .. } => {
            // Transport evidence: does any rank have genuinely quiet QPs?
            let quiet = quietest_rank(comm, snapshots);
            match quiet {
                Some((rank, true)) => vec![
                    Hypothesis {
                        cause: FaultKind::AckTimeout,
                        confidence: 0.45,
                        evidence: format!(
                            "rank {rank}'s transport is silent in both directions — peer \
                             unreachable at the RDMA layer"
                        ),
                    },
                    Hypothesis {
                        cause: FaultKind::NvlinkError,
                        confidence: 0.3,
                        evidence: "an interconnect fault on the victim stalls its sends and \
                                   receives alike"
                            .into(),
                    },
                    Hypothesis {
                        cause: FaultKind::NetworkError,
                        confidence: 0.25,
                        evidence: "fabric-level loss can silence one endpoint".into(),
                    },
                ],
                _ => vec![
                    Hypothesis {
                        cause: FaultKind::NcclTimeout,
                        confidence: 0.6,
                        evidence: format!(
                            "{} ranks parked with live transport — library-level stall",
                            stuck_ranks.len()
                        ),
                    },
                    Hypothesis {
                        cause: FaultKind::NetworkError,
                        confidence: 0.4,
                        evidence: "systemic network disturbance remains possible".into(),
                    },
                ],
            }
        }
        Syndrome::CommSlow { findings, .. } => match findings.first() {
            Some(MatrixFinding::TxSlow { rank, ratio }) => vec![
                Hypothesis {
                    cause: FaultKind::NicHalfDown,
                    confidence: 0.5,
                    evidence: format!(
                        "rank {rank}'s whole send row is {ratio:.1}× slow — NIC transmit side"
                    ),
                },
                Hypothesis {
                    cause: FaultKind::PcieDowngrade,
                    confidence: 0.35,
                    evidence: "a trained-down PCIe link throttles all egress equally".into(),
                },
                Hypothesis {
                    cause: FaultKind::LinkFailure,
                    confidence: 0.15,
                    evidence: "a congested host uplink mimics a slow sender".into(),
                },
            ],
            Some(MatrixFinding::RxSlow { rank, ratio }) => vec![
                Hypothesis {
                    cause: FaultKind::NicHalfDown,
                    confidence: 0.5,
                    evidence: format!(
                        "rank {rank}'s whole receive column is {ratio:.1}× slow — NIC \
                         receive side"
                    ),
                },
                Hypothesis {
                    cause: FaultKind::PcieDowngrade,
                    confidence: 0.35,
                    evidence: "ingress PCIe throttling slows every sender equally".into(),
                },
                Hypothesis {
                    cause: FaultKind::LinkFailure,
                    confidence: 0.15,
                    evidence: "a congested host downlink mimics a slow receiver".into(),
                },
            ],
            Some(MatrixFinding::ConnectionSlow { src, dst, ratio }) => vec![
                Hypothesis {
                    cause: FaultKind::LinkFailure,
                    confidence: 0.7,
                    evidence: format!(
                        "only the ({src}→{dst}) connection is {ratio:.1}× slow — a specific \
                         network path is congested or degraded"
                    ),
                },
                Hypothesis {
                    cause: FaultKind::NetworkError,
                    confidence: 0.3,
                    evidence: "transient fabric congestion on one ECMP path".into(),
                },
            ],
            None => vec![Hypothesis {
                cause: FaultKind::NetworkError,
                confidence: 1.0,
                evidence: "communication slow without localization".into(),
            }],
        },
        Syndrome::NonCommSlow {
            straggler, ratio, ..
        } => vec![
            Hypothesis {
                cause: FaultKind::SlowGpu,
                confidence: 0.5,
                evidence: format!(
                    "rank {straggler} computes {ratio:.1}× slower than the median rank"
                ),
            },
            Hypothesis {
                cause: FaultKind::GcPause,
                confidence: 0.3,
                evidence: "recurring host stalls (GC, CPU contention) inflate compute time".into(),
            },
            Hypothesis {
                cause: FaultKind::DataloaderStall,
                confidence: 0.2,
                evidence: "slow input pipeline starves this worker".into(),
            },
        ],
    };
    RcaReport { hypotheses }
}

/// Returns the rank with the oldest transport activity and whether it is
/// quiet in *both* directions relative to the busiest rank.
fn quietest_rank(comm: &CommRecord, snapshots: &[TelemetrySnapshot]) -> Option<(u32, bool)> {
    let mut newest_any = None;
    let mut per_rank: Vec<Option<c4_simcore::SimTime>> = vec![None; comm.nranks()];
    for snap in snapshots {
        for conn in snap.conns.iter().filter(|c| c.key.comm == comm.comm) {
            let Some(done) = conn.last_completion else {
                continue;
            };
            newest_any = Some(newest_any.map_or(done, |p: c4_simcore::SimTime| p.max(done)));
            for gpu in [conn.key.src_gpu, conn.key.dst_gpu] {
                if let Some(r) = comm.rank_of(gpu) {
                    let t = &mut per_rank[r];
                    *t = Some(t.map_or(done, |prev| prev.max(done)));
                }
            }
        }
    }
    let newest = newest_any?;
    let lags: Vec<(usize, c4_simcore::SimDuration)> = per_rank
        .iter()
        .enumerate()
        .filter_map(|(r, t)| t.map(|t| (r, newest - t)))
        .collect();
    let (rank, lag) = *lags.iter().max_by_key(|&&(_, l)| l)?;
    // "Quiet" is relative: the victim's silence must stand clear of the
    // typical inter-completion jitter of healthy ranks.
    let mut sorted: Vec<c4_simcore::SimDuration> = lags.iter().map(|&(_, l)| l).collect();
    sorted.sort();
    let median = sorted[(sorted.len() - 1) / 2];
    let threshold = (median * 4).max(c4_simcore::SimDuration::from_millis(1));
    Some((rank as u32, lag > threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_simcore::{SimDuration, SimTime};
    use c4_telemetry::{ConnKey, WorkerTelemetry};
    use c4_topology::{GpuId, PortId};

    fn comm_of(n: usize) -> CommRecord {
        CommRecord {
            comm: 1,
            devices: (0..n).map(GpuId::from_index).collect(),
            created: SimTime::ZERO,
        }
    }

    fn snapshots_with_quiet(comm: &CommRecord, quiet: u32) -> Vec<TelemetrySnapshot> {
        comm.devices
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let mut w = WorkerTelemetry::new(gpu);
                let next = (rank + 1) % comm.devices.len();
                let involved = rank as u32 == quiet || next as u32 == quiet;
                let last = if involved { 2 } else { 60 };
                w.record_message(
                    ConnKey {
                        comm: 1,
                        channel: 0,
                        qp: 0,
                        src_gpu: gpu,
                        dst_gpu: comm.devices[next],
                    },
                    PortId::from_index(0),
                    100,
                    SimDuration::from_millis(1),
                    SimTime::from_secs(last),
                );
                w.snapshot(SimTime::from_secs(90))
            })
            .collect()
    }

    #[test]
    fn quiet_transport_hang_points_at_ack_timeout() {
        let comm = comm_of(8);
        let snaps = snapshots_with_quiet(&comm, 5);
        let syndrome = Syndrome::CommHang {
            comm: 1,
            seq: 9,
            stuck_ranks: (0..8).collect(),
        };
        let report = analyze(&comm, &snaps, &syndrome);
        assert_eq!(report.probable_cause(), FaultKind::AckTimeout);
        assert!(report.hypotheses[0].evidence.contains("rank 5"));
    }

    #[test]
    fn live_transport_hang_points_at_library() {
        let comm = comm_of(4);
        // All transport recent → no quiet rank.
        let snaps: Vec<TelemetrySnapshot> = comm
            .devices
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let mut w = WorkerTelemetry::new(gpu);
                w.record_message(
                    ConnKey {
                        comm: 1,
                        channel: 0,
                        qp: 0,
                        src_gpu: gpu,
                        dst_gpu: comm.devices[(rank + 1) % 4],
                    },
                    PortId::from_index(0),
                    100,
                    SimDuration::from_millis(1),
                    SimTime::from_secs(60),
                );
                w.snapshot(SimTime::from_secs(61))
            })
            .collect();
        let syndrome = Syndrome::CommHang {
            comm: 1,
            seq: 3,
            stuck_ranks: vec![0, 1, 2, 3],
        };
        let report = analyze(&comm, &snaps, &syndrome);
        assert_eq!(report.probable_cause(), FaultKind::NcclTimeout);
    }

    #[test]
    fn missing_rank_points_at_gpu_side() {
        let comm = comm_of(4);
        let syndrome = Syndrome::NonCommHang {
            comm: 1,
            seq: 3,
            missing_ranks: vec![2],
        };
        let report = analyze(&comm, &[], &syndrome);
        assert_eq!(report.probable_cause(), FaultKind::CudaError);
        assert!(report.hypotheses.len() >= 2);
    }

    #[test]
    fn matrix_findings_map_to_nic_and_link_causes() {
        let comm = comm_of(4);
        let tx = Syndrome::CommSlow {
            comm: 1,
            findings: vec![MatrixFinding::TxSlow {
                rank: 1,
                ratio: 4.0,
            }],
        };
        assert_eq!(
            analyze(&comm, &[], &tx).probable_cause(),
            FaultKind::NicHalfDown
        );
        let cell = Syndrome::CommSlow {
            comm: 1,
            findings: vec![MatrixFinding::ConnectionSlow {
                src: 0,
                dst: 3,
                ratio: 5.0,
            }],
        };
        assert_eq!(
            analyze(&comm, &[], &cell).probable_cause(),
            FaultKind::LinkFailure
        );
    }

    #[test]
    fn straggler_points_at_slow_gpu() {
        let comm = comm_of(4);
        let syndrome = Syndrome::NonCommSlow {
            comm: 1,
            straggler: 3,
            ratio: 2.5,
        };
        let report = analyze(&comm, &[], &syndrome);
        assert_eq!(report.probable_cause(), FaultKind::SlowGpu);
        let total: f64 = report.hypotheses.iter().map(|h| h.confidence).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
