//! Load smoothing for Expert-Parallel workloads (the paper's §V future
//! work).
//!
//! Under EP, per-rank load genuinely varies step to step (token routing), so
//! a single slow step must not be misdiagnosed as a slow node. The paper's
//! proposed mitigation is "averaging collected data over a predefined period
//! to smooth out random variations and highlight systemic issues" — exactly
//! what [`LoadSmoother`] does: a per-rank sliding window whose *windowed
//! mean* feeds the straggler test instead of raw samples.

use std::collections::VecDeque;

/// Sliding-window per-rank load averaging.
#[derive(Debug, Clone)]
pub struct LoadSmoother {
    window: usize,
    samples: Vec<VecDeque<f64>>,
}

impl LoadSmoother {
    /// Creates a smoother for `nranks` ranks with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(nranks: usize, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        LoadSmoother {
            window,
            samples: vec![VecDeque::with_capacity(window); nranks],
        }
    }

    /// Number of ranks tracked.
    pub fn nranks(&self) -> usize {
        self.samples.len()
    }

    /// Pushes one step's load sample for a rank (e.g. compute seconds).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn push(&mut self, rank: usize, load: f64) {
        let q = &mut self.samples[rank];
        if q.len() == self.window {
            q.pop_front();
        }
        q.push_back(load);
    }

    /// Windowed mean load of a rank; `None` until the window is full (so
    /// transient spikes cannot trigger detection early).
    pub fn smoothed(&self, rank: usize) -> Option<f64> {
        let q = &self.samples[rank];
        if q.len() < self.window {
            return None;
        }
        Some(q.iter().sum::<f64>() / q.len() as f64)
    }

    /// Runs the straggler test on smoothed loads: returns
    /// `(rank, ratio_over_median)` if some rank's windowed mean exceeds the
    /// median by `factor`. Returns `None` until every rank's window is full.
    pub fn detect_straggler(&self, factor: f64) -> Option<(usize, f64)> {
        let means: Option<Vec<f64>> = (0..self.nranks()).map(|r| self.smoothed(r)).collect();
        let means = means?;
        if means.is_empty() {
            return None;
        }
        let mut sorted = means.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[(sorted.len() - 1) / 2];
        if median <= 0.0 {
            return None;
        }
        let (rank, &worst) = means
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))?;
        let ratio = worst / median;
        (ratio >= factor).then_some((rank, ratio))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_spike_is_smoothed_away() {
        let mut s = LoadSmoother::new(4, 8);
        for step in 0..8 {
            for r in 0..4 {
                // Rank 2 has ONE huge step (EP token burst), otherwise equal.
                let load = if r == 2 && step == 3 { 5.0 } else { 1.0 };
                s.push(r, load);
            }
        }
        // One 5× step in an 8-step window → mean 1.5 < 1.5×? = exactly 1.5;
        // use a 1.6 factor: must NOT flag.
        assert!(s.detect_straggler(1.6).is_none());
    }

    #[test]
    fn systemic_slowness_is_flagged() {
        let mut s = LoadSmoother::new(4, 8);
        for _ in 0..8 {
            for r in 0..4 {
                s.push(r, if r == 1 { 2.0 } else { 1.0 });
            }
        }
        let (rank, ratio) = s.detect_straggler(1.6).unwrap();
        assert_eq!(rank, 1);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn detection_deferred_until_windows_full() {
        let mut s = LoadSmoother::new(2, 4);
        s.push(0, 1.0);
        s.push(1, 10.0);
        assert!(s.smoothed(1).is_none());
        assert!(s.detect_straggler(1.5).is_none());
        for _ in 0..3 {
            s.push(0, 1.0);
            s.push(1, 10.0);
        }
        assert!(s.detect_straggler(1.5).is_some());
    }

    #[test]
    fn window_slides() {
        let mut s = LoadSmoother::new(1, 2);
        s.push(0, 10.0);
        s.push(0, 20.0);
        assert_eq!(s.smoothed(0), Some(15.0));
        s.push(0, 30.0);
        assert_eq!(s.smoothed(0), Some(25.0));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = LoadSmoother::new(1, 0);
    }
}
