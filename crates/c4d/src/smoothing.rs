//! Load smoothing for Expert-Parallel workloads (the paper's §V future
//! work).
//!
//! Under EP, per-rank load genuinely varies step to step (token routing), so
//! a single slow step must not be misdiagnosed as a slow node. The paper's
//! proposed mitigation is "averaging collected data over a predefined period
//! to smooth out random variations and highlight systemic issues" — exactly
//! what [`LoadSmoother`] does: a per-rank sliding window whose *windowed
//! mean* feeds the straggler test instead of raw samples.

use std::collections::VecDeque;

/// The straggler test on a snapshot of per-rank loads: returns
/// `(rank, ratio_over_median)` when the worst load exceeds the median by
/// `factor`. This is what an **unsmoothed** detector runs on raw per-step
/// samples — under EP token routing it fires on every hot-expert step,
/// which is exactly the false-positive mode [`LoadSmoother`] exists to
/// suppress (the smoother runs the same test on windowed means).
/// This is also the **single shared implementation** of the straggler test —
/// `detect_noncomm_slow` in `detectors.rs` runs it on per-rank mean compute
/// times (the two used to carry duplicated `partial_cmp(..).expect("finite")`
/// sorts that panicked on non-finite input).
///
/// Sentinel handling is explicit: non-finite samples — NaN or the INFINITY
/// "nothing observed" sentinel a never-started rank reports — carry no load
/// information. They are excluded from both the median and the worst-rank
/// scan instead of panicking the sort; if no finite sample remains the test
/// abstains with `None`.
pub fn raw_straggler(loads: &[f64], factor: f64) -> Option<(usize, f64)> {
    let mut finite: Vec<f64> = loads.iter().copied().filter(|l| l.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    finite.sort_unstable_by(f64::total_cmp);
    let median = finite[(finite.len() - 1) / 2];
    if median <= 0.0 {
        return None;
    }
    let (rank, &worst) = loads
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_finite())
        .max_by(|a, b| a.1.total_cmp(b.1))?;
    let ratio = worst / median;
    (ratio >= factor).then_some((rank, ratio))
}

/// Sliding-window per-rank load averaging.
#[derive(Debug, Clone)]
pub struct LoadSmoother {
    window: usize,
    samples: Vec<VecDeque<f64>>,
}

impl LoadSmoother {
    /// Creates a smoother for `nranks` ranks with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(nranks: usize, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        LoadSmoother {
            window,
            samples: vec![VecDeque::with_capacity(window); nranks],
        }
    }

    /// Number of ranks tracked.
    pub fn nranks(&self) -> usize {
        self.samples.len()
    }

    /// Pushes one step's load sample for a rank (e.g. compute seconds).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn push(&mut self, rank: usize, load: f64) {
        let q = &mut self.samples[rank];
        if q.len() == self.window {
            q.pop_front();
        }
        q.push_back(load);
    }

    /// Pushes one step's load sample for **every** rank at once (the
    /// detection loop's per-iteration feed).
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not have exactly one sample per tracked rank.
    pub fn push_step(&mut self, loads: &[f64]) {
        assert_eq!(
            loads.len(),
            self.nranks(),
            "one load sample per rank: got {} for {} ranks",
            loads.len(),
            self.nranks()
        );
        for (rank, &load) in loads.iter().enumerate() {
            self.push(rank, load);
        }
    }

    /// Windowed mean load of a rank; `None` until the window is full (so
    /// transient spikes cannot trigger detection early).
    pub fn smoothed(&self, rank: usize) -> Option<f64> {
        let q = &self.samples[rank];
        if q.len() < self.window {
            return None;
        }
        Some(q.iter().sum::<f64>() / q.len() as f64)
    }

    /// Runs the straggler test on smoothed loads: returns
    /// `(rank, ratio_over_median)` if some rank's windowed mean exceeds the
    /// median by `factor`. Returns `None` until every rank's window is full.
    pub fn detect_straggler(&self, factor: f64) -> Option<(usize, f64)> {
        let means: Option<Vec<f64>> = (0..self.nranks()).map(|r| self.smoothed(r)).collect();
        raw_straggler(&means?, factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_spike_is_smoothed_away() {
        let mut s = LoadSmoother::new(4, 8);
        for step in 0..8 {
            for r in 0..4 {
                // Rank 2 has ONE huge step (EP token burst), otherwise equal.
                let load = if r == 2 && step == 3 { 5.0 } else { 1.0 };
                s.push(r, load);
            }
        }
        // One 5× step in an 8-step window → mean 1.5 < 1.5×? = exactly 1.5;
        // use a 1.6 factor: must NOT flag.
        assert!(s.detect_straggler(1.6).is_none());
    }

    #[test]
    fn systemic_slowness_is_flagged() {
        let mut s = LoadSmoother::new(4, 8);
        for _ in 0..8 {
            for r in 0..4 {
                s.push(r, if r == 1 { 2.0 } else { 1.0 });
            }
        }
        let (rank, ratio) = s.detect_straggler(1.6).unwrap();
        assert_eq!(rank, 1);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn detection_deferred_until_windows_full() {
        let mut s = LoadSmoother::new(2, 4);
        s.push(0, 1.0);
        s.push(1, 10.0);
        assert!(s.smoothed(1).is_none());
        assert!(s.detect_straggler(1.5).is_none());
        for _ in 0..3 {
            s.push(0, 1.0);
            s.push(1, 10.0);
        }
        assert!(s.detect_straggler(1.5).is_some());
    }

    #[test]
    fn window_slides() {
        let mut s = LoadSmoother::new(1, 2);
        s.push(0, 10.0);
        s.push(0, 20.0);
        assert_eq!(s.smoothed(0), Some(15.0));
        s.push(0, 30.0);
        assert_eq!(s.smoothed(0), Some(25.0));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = LoadSmoother::new(1, 0);
    }

    #[test]
    fn partial_window_yields_none_per_rank() {
        // smoothed() is per-rank: a rank whose window filled reports a mean
        // while a lagging rank still reports None, and detection stays off
        // until ALL windows are full.
        let mut s = LoadSmoother::new(2, 3);
        for _ in 0..3 {
            s.push(0, 2.0);
        }
        s.push(1, 9.0);
        assert_eq!(s.smoothed(0), Some(2.0));
        assert_eq!(s.smoothed(1), None);
        assert!(s.detect_straggler(1.1).is_none());
    }

    #[test]
    fn window_of_one_degenerates_to_raw() {
        // window=1 keeps only the latest sample: smoothing is a no-op and
        // the smoothed test equals the raw test on the current step.
        let mut s = LoadSmoother::new(3, 1);
        s.push_step(&[1.0, 1.0, 4.0]);
        assert_eq!(s.smoothed(2), Some(4.0));
        assert_eq!(
            s.detect_straggler(2.0),
            raw_straggler(&[1.0, 1.0, 4.0], 2.0)
        );
        // The next step fully replaces the last — no memory.
        s.push_step(&[1.0, 1.0, 1.0]);
        assert!(s.detect_straggler(2.0).is_none());
    }

    #[test]
    #[should_panic(expected = "one load sample per rank")]
    fn rank_count_mismatch_panics() {
        let mut s = LoadSmoother::new(4, 2);
        s.push_step(&[1.0, 1.0, 1.0]);
    }

    #[test]
    fn raw_straggler_edge_cases() {
        assert_eq!(raw_straggler(&[], 1.5), None);
        assert_eq!(raw_straggler(&[0.0, 0.0], 1.5), None, "zero median");
        let (rank, ratio) = raw_straggler(&[1.0, 3.0, 1.0], 1.5).unwrap();
        assert_eq!(rank, 1);
        assert!((ratio - 3.0).abs() < 1e-12);
    }

    /// Regression: the old helper `sort_by(..partial_cmp..).expect("finite")`
    /// panicked on NaN or the INFINITY "nothing observed" sentinel. The
    /// shared implementation must exclude non-finite samples and abstain
    /// when nothing finite remains.
    #[test]
    fn non_finite_samples_are_excluded_not_panicked() {
        // All non-finite → abstain.
        assert_eq!(raw_straggler(&[f64::NAN, f64::NAN], 1.5), None);
        assert_eq!(raw_straggler(&[f64::INFINITY], 1.5), None);
        assert_eq!(raw_straggler(&[f64::NEG_INFINITY, f64::NAN], 1.5), None);

        // An INFINITY sentinel rank neither wins nor skews the median: the
        // finite ranks [1.0, 3.0] decide, and the straggler is rank 2.
        let (rank, ratio) = raw_straggler(&[1.0, f64::INFINITY, 3.0], 1.5).unwrap();
        assert_eq!(rank, 2);
        assert!((ratio - 3.0).abs() < 1e-12);

        // NaN samples are likewise invisible to the test.
        let (rank, ratio) = raw_straggler(&[f64::NAN, 2.0, 1.0], 1.5).unwrap();
        assert_eq!(rank, 1);
        assert!((ratio - 2.0).abs() < 1e-12);

        // A non-finite-only load set mixed with zeros still abstains on the
        // zero median rather than dividing by it.
        assert_eq!(raw_straggler(&[0.0, f64::INFINITY], 1.5), None);
    }
}
