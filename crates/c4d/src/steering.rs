//! The job-steering service: isolate the faulty node, swap in a backup,
//! restart the job (paper Fig 4).
//!
//! The paper provisions 64 backup GPUs on 8 servers per 1,024 GPUs on 128
//! servers (§III-A), so any of the 128 active servers can be replaced while
//! keeping the parallel layout identical.

use c4_simcore::{SimDuration, SimTime};
use c4_telemetry::{C4Event, EventKind, EventLog, Severity};
use c4_topology::{NodeId, Topology};

/// Timing model of the steering path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteeringConfig {
    /// Time to cordon the node and update scheduling state.
    pub isolation_delay: SimDuration,
    /// Time to tear down and relaunch the job processes.
    pub restart_delay: SimDuration,
}

impl Default for SteeringConfig {
    fn default() -> Self {
        // "additional minutes are still required by the steering service"
        // (§IV-B1): ~1 min to isolate, ~2 min to restart.
        SteeringConfig {
            isolation_delay: SimDuration::from_secs(60),
            restart_delay: SimDuration::from_secs(120),
        }
    }
}

/// What a successful isolate-and-replace produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplacementPlan {
    /// The isolated node.
    pub victim: NodeId,
    /// The backup node now taking its place.
    pub replacement: NodeId,
    /// When the restarted job can begin re-initialization.
    pub ready_at: SimTime,
}

/// Steering failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SteeringError {
    /// No backup node remains in the pool.
    BackupPoolExhausted,
    /// The node was already isolated.
    AlreadyIsolated(NodeId),
}

impl std::fmt::Display for SteeringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SteeringError::BackupPoolExhausted => write!(f, "backup node pool exhausted"),
            SteeringError::AlreadyIsolated(n) => write!(f, "node {n} is already isolated"),
        }
    }
}

impl std::error::Error for SteeringError {}

/// The steering service: owns the backup pool and the isolation ledger.
#[derive(Debug, Clone)]
pub struct JobSteering {
    cfg: SteeringConfig,
    backups: Vec<NodeId>,
    isolated: Vec<NodeId>,
    log: EventLog,
}

impl JobSteering {
    /// Creates a steering service with the given backup pool.
    pub fn new(cfg: SteeringConfig, backups: Vec<NodeId>) -> Self {
        JobSteering {
            cfg,
            backups,
            isolated: Vec::new(),
            log: EventLog::new(),
        }
    }

    /// Remaining backup nodes.
    pub fn backups_left(&self) -> usize {
        self.backups.len()
    }

    /// Nodes currently isolated.
    pub fn isolated(&self) -> &[NodeId] {
        &self.isolated
    }

    /// The steering event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Isolates `victim`, takes a backup from the pool, and returns the
    /// replacement plan. Marks node health on the topology.
    ///
    /// # Errors
    ///
    /// [`SteeringError::AlreadyIsolated`] if the victim was already pulled;
    /// [`SteeringError::BackupPoolExhausted`] if no backup remains (the
    /// victim is still isolated in that case — the job cannot restart at
    /// full size until repairs return nodes to the pool).
    pub fn isolate_and_replace(
        &mut self,
        topo: &mut Topology,
        victim: NodeId,
        now: SimTime,
    ) -> Result<ReplacementPlan, SteeringError> {
        if self.isolated.contains(&victim) {
            return Err(SteeringError::AlreadyIsolated(victim));
        }
        topo.set_node_healthy(victim, false);
        self.isolated.push(victim);
        self.log.push(C4Event {
            time: now,
            severity: Severity::Critical,
            kind: EventKind::NodeIsolated,
            node: Some(victim),
            gpu: None,
            link: None,
            detail: String::new(),
        });
        let replacement = self
            .backups
            .pop()
            .ok_or(SteeringError::BackupPoolExhausted)?;
        let ready_at = now + self.cfg.isolation_delay + self.cfg.restart_delay;
        self.log.push(C4Event {
            time: ready_at,
            severity: Severity::Info,
            kind: EventKind::JobRestart,
            node: Some(replacement),
            gpu: None,
            link: None,
            detail: format!("replacing {victim}"),
        });
        Ok(ReplacementPlan {
            victim,
            replacement,
            ready_at,
        })
    }

    /// Returns a repaired node to the backup pool and clears its isolation.
    pub fn return_repaired(&mut self, topo: &mut Topology, node: NodeId) {
        self.isolated.retain(|&n| n != node);
        topo.set_node_healthy(node, true);
        self.backups.push(node);
    }

    /// Total time from diagnosis to a restart-ready job.
    pub fn turnaround(&self) -> SimDuration {
        self.cfg.isolation_delay + self.cfg.restart_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::ClosConfig;

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    fn steering(n_backups: usize) -> JobSteering {
        let backups = (0..n_backups).map(|i| NodeId::from_index(15 - i)).collect();
        JobSteering::new(SteeringConfig::default(), backups)
    }

    #[test]
    fn isolate_swaps_in_backup() {
        let mut t = topo();
        let mut s = steering(2);
        let victim = NodeId::from_index(3);
        let plan = s
            .isolate_and_replace(&mut t, victim, SimTime::from_secs(100))
            .unwrap();
        assert_eq!(plan.victim, victim);
        assert_eq!(plan.replacement, NodeId::from_index(14));
        assert_eq!(plan.ready_at, SimTime::from_secs(100 + 180));
        assert!(!t.is_node_healthy(victim));
        assert_eq!(s.backups_left(), 1);
        assert_eq!(s.isolated(), &[victim]);
        assert_eq!(s.log().of_kind(EventKind::NodeIsolated).count(), 1);
        assert_eq!(s.log().of_kind(EventKind::JobRestart).count(), 1);
    }

    #[test]
    fn double_isolation_rejected() {
        let mut t = topo();
        let mut s = steering(2);
        let victim = NodeId::from_index(3);
        s.isolate_and_replace(&mut t, victim, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            s.isolate_and_replace(&mut t, victim, SimTime::ZERO),
            Err(SteeringError::AlreadyIsolated(victim))
        );
    }

    #[test]
    fn exhausted_pool_still_isolates() {
        let mut t = topo();
        let mut s = steering(0);
        let victim = NodeId::from_index(5);
        assert_eq!(
            s.isolate_and_replace(&mut t, victim, SimTime::ZERO),
            Err(SteeringError::BackupPoolExhausted)
        );
        assert!(!t.is_node_healthy(victim), "victim stays cordoned");
    }

    #[test]
    fn repaired_nodes_rejoin_pool() {
        let mut t = topo();
        let mut s = steering(1);
        let victim = NodeId::from_index(7);
        s.isolate_and_replace(&mut t, victim, SimTime::ZERO)
            .unwrap();
        assert_eq!(s.backups_left(), 0);
        s.return_repaired(&mut t, victim);
        assert_eq!(s.backups_left(), 1);
        assert!(t.is_node_healthy(victim));
        assert!(s.isolated().is_empty());
    }

    #[test]
    fn turnaround_is_sum_of_delays() {
        let s = steering(1);
        assert_eq!(s.turnaround(), SimDuration::from_secs(180));
    }
}
