//! Streaming C4D: incremental detectors fed by the telemetry pipeline.
//!
//! The reference detectors in [`crate::detectors`] / [`crate::matrix`]
//! re-scan whole snapshot sets; everything here consumes one
//! [`TelemetryEvent`] at a time and keeps only bounded per-rank /
//! per-connection state, so detection memory is proportional to the
//! communicator size, not to stream length — the restart-safe shape a fleet
//! service needs (checkpoint the small state, replay the CSV tail).
//!
//! **Stream == batch, exactly.** Each incremental structure replicates its
//! batch counterpart's arithmetic in the same fold order when fed the
//! canonical event order
//! ([`events_from_snapshots`](c4_telemetry::pipeline::events_from_snapshots)):
//!
//! * [`StreamingDelayMatrix`] keeps connection aggregates in first-arrival
//!   order and rebuilds cells with the same `sum/count` fold as
//!   [`DelayMatrix::from_conn_records`] — bit-identical cells;
//! * [`StreamingStragglerDetector`] keeps per-rank `(sum, count)` compute
//!   accumulators — per-rank sums are folded in per-rank arrival order, so
//!   the means equal [`detect_noncomm_slow`](crate::detectors::detect_noncomm_slow)'s
//!   bit for bit;
//! * the hang state keeps each rank's latest-by-arrival record at its
//!   highest sequence — exactly the `rfind` anchor scan of
//!   [`detect_hang`](crate::detectors::detect_hang);
//! * verdict emission goes through the same
//!   [`emit_diagnoses`](crate::master) path as the batch master, so
//!   diagnoses and event-log entries are structurally identical.
//!
//! Feed each record **once**: worker telemetry aggregates are cumulative,
//! so a replayer streaming successive snapshots must stream deltas (the
//! scenario wiring streams one final snapshot set).
//!
//! [`CollHealthDetector`] and [`StreamSmoother`] are the *windowed*
//! detectors: CCL-D-style per-collective slow/hang verdicts over tumbling
//! event-time windows, and the EP straggler test over sliding step windows
//! (the streaming twin of [`LoadSmoother`](crate::smoothing::LoadSmoother)).

use std::collections::VecDeque;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use c4_simcore::{SimDuration, SimTime};
use c4_telemetry::pipeline::{Combiner, EventSink, TelemetryEvent, WindowSpec, WindowedAggregate};
use c4_telemetry::{CollRecord, CommRecord, ConnKey, ConnRecord, EventLog, RankRecord};
use c4_topology::Topology;

use crate::detectors::{DetectorConfig, Syndrome};
use crate::master::{emit_diagnoses, stalled_rank_from_conns, Diagnosis};
use crate::matrix::DelayMatrix;
use crate::smoothing::raw_straggler;

/// Incremental delay-matrix state: connection aggregates upserted in
/// first-arrival order.
///
/// Re-reports of the same [`ConnKey`] replace in place (worker aggregates
/// are cumulative), keeping the fold order of [`to_matrix`] equal to the
/// batch path's snapshot iteration — which makes the resulting cells
/// bit-identical to [`DelayMatrix::from_conn_records`] over the same
/// records.
///
/// [`to_matrix`]: StreamingDelayMatrix::to_matrix
#[derive(Debug, Clone)]
pub struct StreamingDelayMatrix {
    comm: CommRecord,
    order: Vec<ConnRecord>,
    index: HashMap<ConnKey, usize>,
}

impl StreamingDelayMatrix {
    /// Creates empty state for one communicator.
    pub fn new(comm: CommRecord) -> Self {
        StreamingDelayMatrix {
            comm,
            order: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Folds one connection aggregate in (records for other communicators
    /// or unmapped GPUs are ignored).
    pub fn feed(&mut self, rec: &ConnRecord) {
        if rec.key.comm != self.comm.comm
            || self.comm.rank_of(rec.key.src_gpu).is_none()
            || self.comm.rank_of(rec.key.dst_gpu).is_none()
        {
            return;
        }
        match self.index.get(&rec.key) {
            Some(&i) => self.order[i] = *rec,
            None => {
                self.index.insert(rec.key, self.order.len());
                self.order.push(*rec);
            }
        }
    }

    /// Connections currently tracked.
    pub fn connections(&self) -> impl Iterator<Item = &ConnRecord> {
        self.order.iter()
    }

    /// Materializes the delay matrix from the tracked connections, with the
    /// exact fold of [`DelayMatrix::from_conn_records`].
    pub fn to_matrix(&self) -> DelayMatrix {
        DelayMatrix::from_conn_records(&self.comm.devices, self.order.iter())
    }
}

/// Per-rank latest collective report, for the streaming hang scan.
#[derive(Debug, Clone, Copy)]
struct LatestColl {
    seq: u64,
    start: SimTime,
    end: Option<SimTime>,
}

/// Incremental hang state: each rank's latest-by-arrival record at its
/// highest sequence, plus the communicator-wide anchor (max sequence).
#[derive(Debug, Clone)]
struct HangState {
    latest: Vec<Option<LatestColl>>,
}

impl HangState {
    fn new(nranks: usize) -> Self {
        HangState {
            latest: vec![None; nranks],
        }
    }

    fn feed(&mut self, rec: &CollRecord) {
        let Some(slot) = self.latest.get_mut(rec.rank as usize) else {
            return;
        };
        // Keep the highest sequence; on a re-report of the same sequence the
        // later arrival wins — the same record `rfind` would select in the
        // batch scan.
        let replace = slot.is_none_or(|prev| rec.seq >= prev.seq);
        if replace {
            *slot = Some(LatestColl {
                seq: rec.seq,
                start: rec.start,
                end: rec.end,
            });
        }
    }

    /// The batch [`detect_hang`](crate::detectors::detect_hang) verdict,
    /// replicated from incremental state.
    fn syndrome(&self, now: SimTime, comm: u64, cfg: &DetectorConfig) -> Option<Syndrome> {
        let seq = self.latest.iter().flatten().map(|l| l.seq).max()?;
        let mut stuck = Vec::new();
        let mut missing = Vec::new();
        let mut oldest_start: Option<SimTime> = None;
        for (rank, slot) in self.latest.iter().enumerate() {
            match slot {
                Some(l) if l.seq == seq => {
                    if l.end.is_none() {
                        stuck.push(rank as u32);
                        oldest_start = Some(match oldest_start {
                            Some(t) => t.min(l.start),
                            None => l.start,
                        });
                    }
                }
                _ => missing.push(rank as u32),
            }
        }
        let timed_out = oldest_start
            .map(|t| now - t >= cfg.hang_timeout)
            .unwrap_or(false);
        if !timed_out {
            return None;
        }
        if !missing.is_empty() {
            return Some(Syndrome::NonCommHang {
                comm,
                seq,
                missing_ranks: missing,
            });
        }
        if !stuck.is_empty() {
            return Some(Syndrome::CommHang {
                comm,
                seq,
                stuck_ranks: stuck,
            });
        }
        None
    }
}

/// Incremental non-communication-slow state: per-rank `(sum, count)` of
/// compute seconds. Because the accumulators are per rank, any interleaving
/// of ranks in the stream folds each rank's samples in its own arrival
/// order — the same left fold as the batch mean, hence bit-identical.
#[derive(Debug, Clone)]
pub struct StreamingStragglerDetector {
    comm: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl StreamingStragglerDetector {
    /// Creates empty state for one communicator.
    pub fn new(comm: u64, nranks: usize) -> Self {
        StreamingStragglerDetector {
            comm,
            sums: vec![0.0; nranks],
            counts: vec![0; nranks],
        }
    }

    /// Folds one rank report in.
    pub fn feed(&mut self, rec: &RankRecord) {
        if rec.comm != self.comm {
            return;
        }
        if let Some(sum) = self.sums.get_mut(rec.rank as usize) {
            *sum += rec.compute.as_secs_f64();
            self.counts[rec.rank as usize] += 1;
        }
    }

    /// The batch
    /// [`detect_noncomm_slow`](crate::detectors::detect_noncomm_slow)
    /// verdict from incremental state: `None` until every rank has reported
    /// at least once.
    pub fn syndrome(&self, straggler_factor: f64) -> Option<Syndrome> {
        if self.counts.contains(&0) {
            return None; // not enough data yet
        }
        let means: Vec<f64> = self
            .sums
            .iter()
            .zip(&self.counts)
            .map(|(&s, &c)| s / c as f64)
            .collect();
        let (straggler, ratio) = raw_straggler(&means, straggler_factor)?;
        Some(Syndrome::NonCommSlow {
            comm: self.comm,
            straggler: straggler as u32,
            ratio,
        })
    }
}

/// The streaming C4D master for one communicator: feed it the event stream
/// (it is an [`EventSink`]), then [`scan`](StreamingC4dMaster::scan) at any
/// point for diagnoses.
///
/// Fed the canonical event order of a snapshot set, `scan` returns exactly
/// the diagnoses (and logs exactly the events) of
/// [`C4dMaster::scan`](crate::master::C4dMaster::scan) over those
/// snapshots — both paths share [`emit_diagnoses`](crate::master) — while
/// holding only per-rank and per-connection state.
#[derive(Debug)]
pub struct StreamingC4dMaster {
    cfg: DetectorConfig,
    comm: CommRecord,
    log: EventLog,
    hang: HangState,
    conns: StreamingDelayMatrix,
    ranks: StreamingStragglerDetector,
}

impl StreamingC4dMaster {
    /// Creates a streaming master for one communicator.
    pub fn new(cfg: DetectorConfig, comm: CommRecord) -> Self {
        let nranks = comm.nranks();
        let id = comm.comm;
        StreamingC4dMaster {
            cfg,
            hang: HangState::new(nranks),
            conns: StreamingDelayMatrix::new(comm.clone()),
            ranks: StreamingStragglerDetector::new(id, nranks),
            comm,
            log: EventLog::new(),
        }
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// The accumulated event log (`events.csv`).
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Folds one telemetry event into the detector state.
    pub fn feed(&mut self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::Coll(c) if c.comm == self.comm.comm => self.hang.feed(c),
            TelemetryEvent::Conn(c) => self.conns.feed(c),
            TelemetryEvent::Rank(r) => self.ranks.feed(r),
            _ => {}
        }
    }

    /// Runs all detectors on the current state; returns diagnoses (may be
    /// empty). The batch-equivalent of
    /// [`C4dMaster::scan`](crate::master::C4dMaster::scan).
    pub fn scan(&mut self, now: SimTime, topo: &Topology) -> Vec<Diagnosis> {
        let hang = self
            .hang
            .syndrome(now, self.comm.comm, &self.cfg)
            .map(|syndrome| {
                let stalled = matches!(syndrome, Syndrome::CommHang { .. })
                    .then(|| stalled_rank_from_conns(&self.comm, self.conns.connections()))
                    .flatten();
                (syndrome, stalled)
            });
        let findings = self
            .conns
            .to_matrix()
            .analyze(self.cfg.slow_factor, self.cfg.row_col_fraction);
        let noncomm = self.ranks.syndrome(self.cfg.straggler_factor);
        emit_diagnoses(
            now,
            topo,
            &self.comm,
            hang,
            findings,
            noncomm,
            &mut self.log,
        )
    }
}

impl EventSink for StreamingC4dMaster {
    fn accept(&mut self, event: &TelemetryEvent) {
        self.feed(event);
    }
}

/// A verdict from the windowed stream detectors.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamVerdict {
    /// A window of completed collectives ran slow versus the trailing
    /// baseline (CCL-D-style relative slow detection).
    CollSlow {
        /// Communicator id.
        comm: u64,
        /// Window start (event-time nanoseconds).
        window_start: u64,
        /// Window end (event-time nanoseconds).
        window_end: u64,
        /// Mean completed-collective duration in the window, milliseconds.
        mean_ms: f64,
        /// Trailing baseline (median of recent window means), milliseconds.
        baseline_ms: f64,
        /// `mean_ms / baseline_ms`.
        ratio: f64,
    },
    /// A collective has ranks in flight past the hang timeout (watermark
    /// time, no completion reported).
    CollHang {
        /// Communicator id.
        comm: u64,
        /// Hung sequence number.
        seq: u64,
        /// Oldest in-flight start among the stuck ranks.
        start: SimTime,
        /// Ranks still parked in the operation.
        stuck_ranks: Vec<u32>,
    },
}

/// CCL-D-style streaming collective health: per-communicator tumbling
/// event-time windows of completed-collective durations compared against a
/// trailing baseline, plus watermark-driven hang detection on in-flight
/// reports.
///
/// This detector has no batch counterpart — it is the first detector that
/// exists only on the streaming path.
pub struct CollHealthDetector {
    window: WindowedAggregate<u64>,
    timeout: SimDuration,
    slow_factor: f64,
    baseline_window: usize,
    /// Trailing window means per communicator (bounded).
    history: BTreeMap<u64, VecDeque<f64>>,
    /// In-flight collectives: `(comm, seq)` → oldest start, stuck ranks,
    /// whether a hang verdict has already been emitted.
    inflight: BTreeMap<(u64, u64), (SimTime, BTreeSet<u32>, bool)>,
}

impl CollHealthDetector {
    /// Creates a detector: `window` is the tumbling event-time pane width,
    /// `timeout` the in-flight hang threshold, `slow_factor` the mean-over-
    /// baseline ratio that flags a slow window, `baseline_window` how many
    /// previous window means form the baseline median.
    pub fn new(
        window: SimDuration,
        timeout: SimDuration,
        slow_factor: f64,
        baseline_window: usize,
    ) -> Self {
        CollHealthDetector {
            window: WindowedAggregate::new(
                WindowSpec::tumbling_time(window),
                Combiner::Mean,
                |e| match e {
                    TelemetryEvent::Coll(c) if c.end.is_some() => Some(c.comm),
                    _ => None,
                },
                |e| match e {
                    TelemetryEvent::Coll(c) => c.duration().map(|d| d.as_millis_f64()),
                    _ => None,
                },
            ),
            timeout,
            slow_factor,
            baseline_window: baseline_window.max(1),
            history: BTreeMap::new(),
            inflight: BTreeMap::new(),
        }
    }

    /// Feeds one event; every event advances the watermark (hang checks),
    /// completed collectives also land in the duration windows.
    pub fn feed(&mut self, event: &TelemetryEvent) -> Vec<StreamVerdict> {
        if let TelemetryEvent::Coll(c) = event {
            match c.end {
                None => {
                    let entry = self.inflight.entry((c.comm, c.seq)).or_insert((
                        c.start,
                        BTreeSet::new(),
                        false,
                    ));
                    entry.0 = entry.0.min(c.start);
                    entry.1.insert(c.rank);
                }
                Some(_) => {
                    if let Some(entry) = self.inflight.get_mut(&(c.comm, c.seq)) {
                        entry.1.remove(&c.rank);
                        if entry.1.is_empty() {
                            self.inflight.remove(&(c.comm, c.seq));
                        }
                    }
                }
            }
        }
        let panes = self.window.push(event);
        let mut verdicts = self.judge_panes(panes);
        verdicts.extend(self.check_hangs());
        verdicts
    }

    /// Closes remaining windows at end of stream.
    pub fn flush(&mut self) -> Vec<StreamVerdict> {
        let panes = self.window.flush();
        let mut verdicts = self.judge_panes(panes);
        verdicts.extend(self.check_hangs());
        verdicts
    }

    fn judge_panes(
        &mut self,
        panes: Vec<c4_telemetry::pipeline::WindowPane<u64>>,
    ) -> Vec<StreamVerdict> {
        let mut out = Vec::new();
        for pane in panes {
            let Some(mean) = pane.aggregate.mean() else {
                continue;
            };
            let history = self.history.entry(pane.key).or_default();
            if let Some(baseline) = median(history) {
                if baseline > 0.0 && mean > baseline * self.slow_factor {
                    out.push(StreamVerdict::CollSlow {
                        comm: pane.key,
                        window_start: pane.start,
                        window_end: pane.end,
                        mean_ms: mean,
                        baseline_ms: baseline,
                        ratio: mean / baseline,
                    });
                }
            }
            if history.len() == self.baseline_window {
                history.pop_front();
            }
            history.push_back(mean);
        }
        out
    }

    fn check_hangs(&mut self) -> Vec<StreamVerdict> {
        let Some(watermark) = self.window.watermark() else {
            return Vec::new();
        };
        let now = SimTime::from_nanos(watermark);
        let mut out = Vec::new();
        for (&(comm, seq), entry) in self.inflight.iter_mut() {
            if !entry.2 && now - entry.0 >= self.timeout {
                entry.2 = true;
                out.push(StreamVerdict::CollHang {
                    comm,
                    seq,
                    start: entry.0,
                    stuck_ranks: entry.1.iter().copied().collect(),
                });
            }
        }
        out
    }
}

fn median(values: &VecDeque<f64>) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.iter().copied().collect();
    sorted.sort_unstable_by(f64::total_cmp);
    Some(sorted[(sorted.len() - 1) / 2])
}

/// A per-step straggler verdict from the streaming smoother: `verdict` is
/// exactly what the batch test returns for that step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepVerdict {
    /// The step the verdict describes (the last step of its window).
    pub step: u64,
    /// `(rank, ratio_over_median)` when a straggler was flagged.
    pub verdict: Option<(usize, f64)>,
}

/// The streaming twin of [`LoadSmoother`](crate::smoothing::LoadSmoother):
/// a sliding step-window (width `window`, slide 1) of per-rank
/// [`LoadSample`](c4_telemetry::pipeline::LoadSample) means feeding
/// [`raw_straggler`].
///
/// A pane `[s, s+W)` folds each rank's samples in step order — the same
/// front-to-back fold as `LoadSmoother`'s deque — so the windowed means and
/// hence the verdicts are **bit-identical** to pushing the same loads into
/// a `LoadSmoother` and testing after step `s+W-1`. With `window == 1` it
/// degenerates to the raw (unsmoothed) per-step test.
///
/// Verdicts for a step are emitted once the *next* step's samples arrive
/// (the pane closes at the watermark); call
/// [`flush`](StreamSmoother::flush) at end of stream for the final step.
pub struct StreamSmoother {
    nranks: usize,
    window: u64,
    factor: f64,
    agg: WindowedAggregate<u32>,
    /// Closed panes awaiting their sibling ranks: pane start → per-rank
    /// `(mean, count)`.
    pending: BTreeMap<u64, Vec<Option<(f64, u64)>>>,
}

impl StreamSmoother {
    /// Creates a smoother for `nranks` ranks: `window` steps wide (≥ 1),
    /// straggler threshold `factor`.
    pub fn new(nranks: usize, window: usize, factor: f64) -> Self {
        let window = window.max(1) as u64;
        StreamSmoother {
            nranks,
            window,
            factor,
            agg: WindowedAggregate::new(
                WindowSpec::sliding_steps(window, 1),
                Combiner::Mean,
                |e| match e {
                    TelemetryEvent::Load(l) => Some(l.rank),
                    _ => None,
                },
                |e| match e {
                    TelemetryEvent::Load(l) => Some(l.value),
                    _ => None,
                },
            ),
            pending: BTreeMap::new(),
        }
    }

    /// Feeds one event; returns verdicts for any steps whose windows closed.
    pub fn feed(&mut self, event: &TelemetryEvent) -> Vec<StepVerdict> {
        let panes = self.agg.push(event);
        self.collect(panes)
    }

    /// Closes remaining full windows at end of stream.
    pub fn flush(&mut self) -> Vec<StepVerdict> {
        let panes = self.agg.flush();
        let mut verdicts = self.collect(panes);
        // Trailing partial panes can never complete; drop their state.
        self.pending.clear();
        verdicts.sort_by_key(|v| v.step);
        verdicts
    }

    fn collect(&mut self, panes: Vec<c4_telemetry::pipeline::WindowPane<u32>>) -> Vec<StepVerdict> {
        let mut verdicts = Vec::new();
        for pane in panes {
            let Some(mean) = pane.aggregate.mean() else {
                continue;
            };
            let slot = self
                .pending
                .entry(pane.start)
                .or_insert_with(|| vec![None; self.nranks]);
            if let Some(rank_slot) = slot.get_mut(pane.key as usize) {
                *rank_slot = Some((mean, pane.aggregate.count()));
            }
            // A verdict fires only from a *full* window: every rank present
            // with exactly `window` samples — the batch smoother's
            // "None until the window is full" rule.
            let full = slot
                .iter()
                .all(|s| s.is_some_and(|(_, count)| count == self.window));
            if full {
                let means: Vec<f64> = slot.iter().map(|s| s.unwrap().0).collect();
                self.pending.remove(&pane.start);
                verdicts.push(StepVerdict {
                    step: pane.start + self.window - 1,
                    verdict: raw_straggler(&means, self.factor),
                });
            }
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::C4dMaster;
    use crate::smoothing::LoadSmoother;
    use c4_telemetry::pipeline::{events_from_snapshots, LoadSample};
    use c4_telemetry::{AlgoKind, CollKind, DataType, TelemetrySnapshot, WorkerTelemetry};
    use c4_topology::{ClosConfig, PortId};

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    fn comm_of(t: &Topology, n: usize) -> CommRecord {
        CommRecord {
            comm: 1,
            devices: (0..n).map(|i| t.gpus()[i].id).collect(),
            created: SimTime::ZERO,
        }
    }

    /// The comm-hang scenario of the master tests: every rank parked in
    /// seq 9, rank 11's transport quiet in both directions.
    fn hang_snapshots(comm: &CommRecord, quiet_rank: u32) -> Vec<TelemetrySnapshot> {
        comm.devices
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let mut w = WorkerTelemetry::new(gpu);
                w.record_coll(CollRecord {
                    comm: comm.comm,
                    seq: 9,
                    rank: rank as u32,
                    kind: CollKind::AllReduce,
                    algo: AlgoKind::Ring,
                    dtype: DataType::F16,
                    count: 1,
                    start: SimTime::from_secs(10),
                    end: None,
                });
                let next = (rank + 1) % comm.devices.len();
                let last = if rank as u32 == quiet_rank || next as u32 == quiet_rank {
                    11
                } else {
                    30
                };
                w.record_message(
                    ConnKey {
                        comm: comm.comm,
                        channel: 0,
                        qp: 0,
                        src_gpu: gpu,
                        dst_gpu: comm.devices[next],
                    },
                    PortId::from_index(0),
                    1000,
                    SimDuration::from_millis(1),
                    SimTime::from_secs(last),
                );
                w.snapshot(SimTime::from_secs(60))
            })
            .collect()
    }

    #[test]
    fn streaming_master_matches_batch_on_hang_traffic() {
        let t = topo();
        let comm = comm_of(&t, 16);
        let snaps = hang_snapshots(&comm, 11);
        let now = SimTime::from_secs(60);

        let mut batch = C4dMaster::new(DetectorConfig::default());
        let batch_diags = batch.scan(now, &t, &comm, &snaps);

        let mut stream = StreamingC4dMaster::new(DetectorConfig::default(), comm.clone());
        for event in events_from_snapshots(&snaps) {
            stream.feed(&event);
        }
        let stream_diags = stream.scan(now, &t);

        assert_eq!(stream_diags, batch_diags);
        assert!(!stream_diags.is_empty(), "the hang must be diagnosed");
        assert_eq!(stream.log().to_csv(), batch.log().to_csv());
    }

    #[test]
    fn streaming_straggler_matches_batch_means_bitwise() {
        let t = topo();
        let comm = comm_of(&t, 4);
        // Non-associative compute times: fold order shows up in the mean.
        let steps_ms: [&[u64]; 4] = [
            &[100, 101, 99],
            &[100, 100, 100],
            &[301, 299, 300],
            &[98, 103, 99],
        ];
        let snaps: Vec<TelemetrySnapshot> = comm
            .devices
            .iter()
            .enumerate()
            .map(|(rank, &gpu)| {
                let mut w = WorkerTelemetry::new(gpu);
                for (step, &ms) in steps_ms[rank].iter().enumerate() {
                    w.record_rank(RankRecord {
                        comm: comm.comm,
                        rank: rank as u32,
                        step: step as u64,
                        compute: SimDuration::from_millis(ms),
                        ready_delay: SimDuration::ZERO,
                        arrived: SimTime::from_secs(step as u64),
                    });
                }
                w.snapshot(SimTime::from_secs(60))
            })
            .collect();

        let batch =
            crate::detectors::detect_noncomm_slow(&comm, &snaps, &DetectorConfig::default());
        let mut stream = StreamingStragglerDetector::new(comm.comm, comm.nranks());
        for event in events_from_snapshots(&snaps) {
            if let TelemetryEvent::Rank(r) = event {
                stream.feed(&r);
            }
        }
        let streamed = stream.syndrome(DetectorConfig::default().straggler_factor);
        assert_eq!(streamed, batch);
        match streamed.expect("rank 2 is 3× slower") {
            Syndrome::NonCommSlow { straggler, .. } => assert_eq!(straggler, 2),
            s => panic!("unexpected {s:?}"),
        }
    }

    fn coll_event(
        comm: u64,
        seq: u64,
        rank: u32,
        start: SimTime,
        end: Option<SimTime>,
    ) -> TelemetryEvent {
        TelemetryEvent::Coll(CollRecord {
            comm,
            seq,
            rank,
            kind: CollKind::AllReduce,
            algo: AlgoKind::Ring,
            dtype: DataType::F16,
            count: 1,
            start,
            end,
        })
    }

    #[test]
    fn coll_health_flags_a_slow_window_against_the_trailing_baseline() {
        let mut det = CollHealthDetector::new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(30),
            2.0,
            4,
        );
        let mut verdicts = Vec::new();
        // Four healthy windows: one 10 ms collective completing per second.
        for s in 0..4u64 {
            let end = SimTime::from_secs(s) + SimDuration::from_millis(500);
            let start = end - SimDuration::from_millis(10);
            verdicts.extend(det.feed(&coll_event(1, s, 0, start, Some(end))));
        }
        // Then a 30 ms window: 3× the trailing baseline.
        let end = SimTime::from_secs(4) + SimDuration::from_millis(500);
        verdicts.extend(det.feed(&coll_event(
            1,
            4,
            0,
            end - SimDuration::from_millis(30),
            Some(end),
        )));
        verdicts.extend(det.flush());
        let slow: Vec<&StreamVerdict> = verdicts
            .iter()
            .filter(|v| matches!(v, StreamVerdict::CollSlow { .. }))
            .collect();
        assert_eq!(slow.len(), 1, "exactly the degraded window: {verdicts:?}");
        match slow[0] {
            StreamVerdict::CollSlow { comm, ratio, .. } => {
                assert_eq!(*comm, 1);
                assert!(*ratio > 2.5 && *ratio < 3.5, "ratio {ratio}");
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn coll_health_reports_a_watermark_hang_once() {
        let mut det =
            CollHealthDetector::new(SimDuration::from_secs(1), SimDuration::from_secs(5), 2.0, 4);
        // Ranks 0 and 1 enter seq 3 at t=1s and never complete.
        assert!(det
            .feed(&coll_event(7, 3, 0, SimTime::from_secs(1), None))
            .is_empty());
        assert!(det
            .feed(&coll_event(7, 3, 1, SimTime::from_secs(1), None))
            .is_empty());
        // Time passes (another communicator's completions drive the
        // watermark); at 7s the 5s timeout has elapsed.
        let end = SimTime::from_secs(7);
        let verdicts = det.feed(&coll_event(
            8,
            0,
            0,
            end - SimDuration::from_millis(1),
            Some(end),
        ));
        let hangs: Vec<&StreamVerdict> = verdicts
            .iter()
            .filter(|v| matches!(v, StreamVerdict::CollHang { .. }))
            .collect();
        assert_eq!(hangs.len(), 1);
        match hangs[0] {
            StreamVerdict::CollHang {
                comm,
                seq,
                stuck_ranks,
                ..
            } => {
                assert_eq!((*comm, *seq), (7, 3));
                assert_eq!(stuck_ranks, &vec![0, 1]);
            }
            v => panic!("unexpected {v:?}"),
        }
        // Emitted once: further watermark advances stay silent.
        let end = SimTime::from_secs(9);
        let again = det.feed(&coll_event(
            8,
            1,
            0,
            end - SimDuration::from_millis(1),
            Some(end),
        ));
        assert!(
            !again
                .iter()
                .any(|v| matches!(v, StreamVerdict::CollHang { .. })),
            "{again:?}"
        );
        // A completion clears the in-flight entry.
        det.feed(&coll_event(
            7,
            3,
            0,
            SimTime::from_secs(1),
            Some(SimTime::from_secs(10)),
        ));
        det.feed(&coll_event(
            7,
            3,
            1,
            SimTime::from_secs(1),
            Some(SimTime::from_secs(10)),
        ));
        assert!(det.inflight.is_empty());
    }

    fn load_event(rank: u32, step: u64, value: f64) -> TelemetryEvent {
        TelemetryEvent::Load(LoadSample {
            comm: 1,
            rank,
            step,
            at: SimTime::from_secs(step),
            value,
        })
    }

    #[test]
    fn stream_smoother_matches_load_smoother_bitwise() {
        // Non-associative load values so any fold-order difference between
        // the deque mean and the pane mean would change the ratio bits.
        let loads: Vec<Vec<f64>> = vec![
            vec![0.1, 0.2, 0.3],
            vec![0.1 + 0.2, 0.2, 5.1],
            vec![0.3, 0.1, 5.3],
            vec![7.7, 0.2, 0.1],
            vec![0.2, 0.3, 0.1],
        ];
        let window = 2;
        let factor = 1.5;

        let mut batch = LoadSmoother::new(3, window);
        let mut batch_verdicts = Vec::new();
        for (step, row) in loads.iter().enumerate() {
            batch.push_step(row);
            if step + 1 >= window {
                batch_verdicts.push((step as u64, batch.detect_straggler(factor)));
            }
        }

        let mut stream = StreamSmoother::new(3, window, factor);
        let mut stream_verdicts = Vec::new();
        for (step, row) in loads.iter().enumerate() {
            for (rank, &v) in row.iter().enumerate() {
                stream_verdicts.extend(stream.feed(&load_event(rank as u32, step as u64, v)));
            }
        }
        stream_verdicts.extend(stream.flush());

        let stream_pairs: Vec<(u64, Option<(usize, f64)>)> = stream_verdicts
            .into_iter()
            .map(|v| (v.step, v.verdict))
            .collect();
        assert_eq!(stream_pairs.len(), batch_verdicts.len());
        for (s, b) in stream_pairs.iter().zip(&batch_verdicts) {
            assert_eq!(s.0, b.0, "verdict step");
            match (s.1, b.1) {
                (None, None) => {}
                (Some((sr, sx)), Some((br, bx))) => {
                    assert_eq!(sr, br, "straggler rank at step {}", s.0);
                    assert_eq!(sx.to_bits(), bx.to_bits(), "ratio bits at step {}", s.0);
                }
                (a, b) => panic!("verdict mismatch at step {}: {a:?} vs {b:?}", s.0),
            }
        }
    }

    #[test]
    fn window_one_stream_smoother_is_the_raw_detector() {
        let loads = [vec![1.0, 1.0, 4.0], vec![1.0, 1.0, 1.0]];
        let mut stream = StreamSmoother::new(3, 1, 2.0);
        let mut verdicts = Vec::new();
        for (step, row) in loads.iter().enumerate() {
            for (rank, &v) in row.iter().enumerate() {
                verdicts.extend(stream.feed(&load_event(rank as u32, step as u64, v)));
            }
        }
        verdicts.extend(stream.flush());
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[0].verdict, raw_straggler(&loads[0], 2.0));
        assert_eq!(verdicts[1].verdict, raw_straggler(&loads[1], 2.0));
        assert!(verdicts[0].verdict.is_some() && verdicts[1].verdict.is_none());
    }
}
