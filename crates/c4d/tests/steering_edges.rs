//! Edge cases of the steering service's pool lifecycle: mid-run
//! re-admission of a repaired node, pool exhaustion surfacing as an error
//! (never a panic), and timing consistency over repeated
//! isolate → repair → isolate cycles.

use c4_diagnosis::{JobSteering, SteeringConfig, SteeringError};
use c4_simcore::{SimDuration, SimTime};
use c4_telemetry::EventKind;
use c4_topology::{ClosConfig, NodeId, Topology};

fn topo() -> Topology {
    Topology::build(&ClosConfig::testbed_128())
}

fn steering(n_backups: usize) -> JobSteering {
    let backups = (0..n_backups).map(|i| NodeId::from_index(15 - i)).collect();
    JobSteering::new(SteeringConfig::default(), backups)
}

#[test]
fn repaired_node_is_readmitted_and_serves_the_next_isolation() {
    let mut t = topo();
    let mut s = steering(1);
    let first = NodeId::from_index(2);
    let second = NodeId::from_index(5);

    let plan = s.isolate_and_replace(&mut t, first, SimTime::ZERO).unwrap();
    assert_eq!(s.backups_left(), 0, "the only backup is in service");

    // Mid-run repair: the original victim comes back as pool capacity
    // while its replacement keeps running the job.
    s.return_repaired(&mut t, first);
    assert!(t.is_node_healthy(first));
    assert_eq!(s.backups_left(), 1);
    assert!(s.isolated().is_empty());

    // The next fault (on a different node) is served by the re-admitted
    // node — LIFO pool, so the repaired node is exactly what comes out.
    let plan2 = s
        .isolate_and_replace(&mut t, second, SimTime::from_secs(500))
        .unwrap();
    assert_eq!(plan2.replacement, first, "repaired node re-enters service");
    assert_ne!(plan2.replacement, plan.replacement);
    assert_eq!(s.isolated(), &[second]);
    assert!(!t.is_node_healthy(second) && t.is_node_healthy(first));
}

#[test]
fn exhaustion_is_an_error_that_repair_later_clears() {
    let mut t = topo();
    let mut s = steering(1);
    let v1 = NodeId::from_index(1);
    let v2 = NodeId::from_index(2);
    let v3 = NodeId::from_index(3);

    s.isolate_and_replace(&mut t, v1, SimTime::ZERO).unwrap();
    // Second fault with a dry pool: an error, not a panic — and the victim
    // is still cordoned (the fleet handles this by shrinking DP).
    assert_eq!(
        s.isolate_and_replace(&mut t, v2, SimTime::ZERO),
        Err(SteeringError::BackupPoolExhausted)
    );
    assert!(
        !t.is_node_healthy(v2),
        "exhaustion still cordons the victim"
    );
    assert_eq!(s.isolated(), &[v1, v2]);

    // A repair refills the pool and the next isolation succeeds again.
    s.return_repaired(&mut t, v1);
    let plan = s.isolate_and_replace(&mut t, v3, SimTime::ZERO).unwrap();
    assert_eq!(plan.replacement, v1);
}

#[test]
fn repeated_isolate_repair_cycles_keep_turnaround_consistent() {
    let mut t = topo();
    let mut s = steering(2);
    let expected = s.turnaround();
    assert_eq!(expected, SimDuration::from_secs(180), "default config");

    let mut now = SimTime::ZERO;
    for cycle in 0..10usize {
        // Two victims alternate; each is repaired before its next turn, so
        // the pool never double-counts a node and the ledger fully drains
        // every cycle.
        let victim = NodeId::from_index(cycle % 2);
        let plan = s.isolate_and_replace(&mut t, victim, now).unwrap();
        assert_eq!(
            plan.ready_at.saturating_since(now),
            expected,
            "cycle {cycle}: ready_at must always be now + turnaround"
        );
        assert_eq!(s.turnaround(), expected, "turnaround is state-free");
        s.return_repaired(&mut t, victim);
        assert!(s.isolated().is_empty(), "cycle {cycle}: ledger cleared");
        assert!(
            t.is_node_healthy(victim),
            "cycle {cycle}: victim healthy again"
        );
        assert!(s.backups_left() >= 1, "cycle {cycle}: pool never drains");
        now += SimDuration::from_secs(1_000);
    }

    // Ten isolations and ten restarts are all on the log, in order.
    assert_eq!(s.log().of_kind(EventKind::NodeIsolated).count(), 10);
    assert_eq!(s.log().of_kind(EventKind::JobRestart).count(), 10);
}
