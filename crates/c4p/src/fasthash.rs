//! A fast, deterministic multiply-rotate hasher for the selection hot
//! path's keyed tables (sticky allocations, rate EMAs, leaf-pair groups).
//!
//! `std`'s default SipHash is DoS-resistant but costs ~10× more per key
//! than the tables here need: every key is a small fixed tuple of dense
//! ids, fully attacker-free inside the simulator, and the plan-build inner
//! loop hashes each flow key several times. The mixer below is the same
//! splitmix-style arithmetic as `c4_netsim::mix64`, folded per write —
//! deterministic across runs and platforms, so selection stays a pure
//! function of its inputs.

use std::hash::{BuildHasherDefault, Hasher};

/// Accumulating multiply-rotate hasher; one `mix` per written word.
#[derive(Default)]
pub struct Mix64Hasher(u64);

impl Mix64Hasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(27);
    }
}

impl Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits (HashMap bucket selection) depend on
        // every input word.
        let mut x = self.0;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^ (x >> 33)
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut v = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            self.mix(v);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// The hasher state for [`FastMap`].
pub type FastState = BuildHasherDefault<Mix64Hasher>;

/// A `HashMap` keyed with [`Mix64Hasher`] — drop-in for the default map on
/// simulator-internal keys.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreading() {
        let hash_of = |v: u64| {
            let mut h = Mix64Hasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash_of(42), hash_of(42));
        // Consecutive keys land in different low-bit buckets.
        let low: std::collections::HashSet<u64> = (0..64).map(|v| hash_of(v) & 63).collect();
        assert!(low.len() > 32, "low bits too clustered: {}", low.len());
    }

    #[test]
    fn byte_writes_cover_all_input() {
        let digest = |bytes: &[u8]| {
            let mut h = Mix64Hasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(digest(b"abcdefgh-1"), digest(b"abcdefgh-2"));
        assert_ne!(digest(b"a"), digest(b"b"));
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FastMap<(u32, u32), u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(13, 91)), Some(&13));
    }
}
