//! The per-path connection ledger: C4P's record of how many QPs it has
//! placed on each fabric link, used to pick the least-loaded path for every
//! new connection ("the C4P master records the numbers of allocated
//! connections on each path, and allocates path for new connections
//! considering the occupied network resources", §III-B).

use std::collections::HashMap;

use c4_topology::{FabricPath, LinkId};

/// QP counts per directed fabric link.
#[derive(Debug, Clone, Default)]
pub struct PathLoadLedger {
    load: HashMap<LinkId, u32>,
    allocations: u32,
}

impl PathLoadLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current QP count on a link.
    pub fn load(&self, link: LinkId) -> u32 {
        self.load.get(&link).copied().unwrap_or(0)
    }

    /// Combined load of a path (its uplink plus its downlink).
    pub fn path_load(&self, path: &FabricPath) -> u32 {
        self.load(path.up) + self.load(path.down)
    }

    /// Records one QP on the path.
    pub fn allocate(&mut self, path: &FabricPath) {
        *self.load.entry(path.up).or_insert(0) += 1;
        *self.load.entry(path.down).or_insert(0) += 1;
        self.allocations += 1;
    }

    /// Releases one QP from the path (saturating).
    pub fn release(&mut self, path: &FabricPath) {
        for l in [path.up, path.down] {
            if let Some(c) = self.load.get_mut(&l) {
                *c = c.saturating_sub(1);
            }
        }
        self.allocations = self.allocations.saturating_sub(1);
    }

    /// Picks the least-loaded path, breaking ties by spine then slot so the
    /// allocation is deterministic and naturally round-robins across spines.
    pub fn least_loaded<'a>(&self, candidates: &'a [FabricPath]) -> Option<&'a FabricPath> {
        self.least_loaded_rotated(candidates, 0)
    }

    /// Like [`PathLoadLedger::least_loaded`] but ties break starting from
    /// `offset` into the candidate list. Different leaf pairs use different
    /// offsets so a single spine failure does not hit the same tenants on
    /// every leaf.
    pub fn least_loaded_rotated<'a>(
        &self,
        candidates: &'a [FabricPath],
        offset: usize,
    ) -> Option<&'a FabricPath> {
        if candidates.is_empty() {
            return None;
        }
        let n = candidates.len();
        (0..n)
            .map(|i| &candidates[(i + offset) % n])
            .min_by_key(|p| self.path_load(p))
    }

    /// Drops all records (job restart / rebalance).
    pub fn clear(&mut self) {
        self.load.clear();
        self.allocations = 0;
    }

    /// Total QPs currently recorded.
    pub fn total_allocations(&self) -> u32 {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::{ClosConfig, Topology};

    fn paths() -> (Topology, Vec<FabricPath>) {
        let t = Topology::build(&ClosConfig::testbed_128());
        let p = t.fabric_paths(t.leaves()[0], t.leaves()[4]);
        (t, p)
    }

    #[test]
    fn least_loaded_round_robins() {
        let (_t, paths) = paths();
        let mut ledger = PathLoadLedger::new();
        let mut chosen = Vec::new();
        for _ in 0..paths.len() {
            let p = *ledger.least_loaded(&paths).unwrap();
            ledger.allocate(&p);
            chosen.push(p);
        }
        // All distinct: perfect spreading before any path is reused.
        let mut ups: Vec<_> = chosen.iter().map(|p| p.up).collect();
        ups.sort();
        ups.dedup();
        assert_eq!(ups.len(), paths.len());
        // Next allocation reuses a path but load stays balanced at 1→2.
        let p = *ledger.least_loaded(&paths).unwrap();
        assert_eq!(ledger.path_load(&p), 2);
    }

    #[test]
    fn release_restores_capacity() {
        let (_t, paths) = paths();
        let mut ledger = PathLoadLedger::new();
        ledger.allocate(&paths[0]);
        assert_eq!(ledger.path_load(&paths[0]), 2);
        ledger.release(&paths[0]);
        assert_eq!(ledger.path_load(&paths[0]), 0);
        // Releasing again saturates at zero.
        ledger.release(&paths[0]);
        assert_eq!(ledger.path_load(&paths[0]), 0);
    }

    #[test]
    fn deterministic_tie_breaks() {
        let (_t, paths) = paths();
        let a = PathLoadLedger::new().least_loaded(&paths).copied();
        let b = PathLoadLedger::new().least_loaded(&paths).copied();
        assert_eq!(a, b);
        assert!(PathLoadLedger::new().least_loaded(&[]).is_none());
    }

    #[test]
    fn clear_empties_ledger() {
        let (_t, paths) = paths();
        let mut ledger = PathLoadLedger::new();
        ledger.allocate(&paths[3]);
        ledger.clear();
        assert_eq!(ledger.path_load(&paths[3]), 0);
    }
}
