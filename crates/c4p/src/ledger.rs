//! The per-path connection ledger: C4P's record of how many QPs it has
//! placed on each fabric link, used to pick the least-loaded path for every
//! new connection ("the C4P master records the numbers of allocated
//! connections on each path, and allocates path for new connections
//! considering the occupied network resources", §III-B).
//!
//! Counts live in a **dense, topology-indexed `Vec<u32>`** (link ids are
//! dense indices assigned by the topology builder), so the least-loaded
//! scan over a leaf pair's candidate paths is a cache-friendly sweep of a
//! few machine words instead of two hash lookups per candidate — the inner
//! loop of every plan build at cluster scale. The footprint is fixed by the
//! topology (one counter per link ever touched), so allocate/release churn
//! across month-scale multi-job runs cannot grow it; the old `HashMap`
//! ledger leaked a zero-count entry per released link forever.

use c4_topology::{FabricPath, LinkId, Topology};

/// QP counts per directed fabric link, dense over link ids.
#[derive(Debug, Clone, Default)]
pub struct PathLoadLedger {
    load: Vec<u32>,
    allocations: u32,
}

impl PathLoadLedger {
    /// Creates an empty ledger that grows (once) to the highest link index
    /// it sees. Prefer [`PathLoadLedger::for_topology`] when a topology is
    /// at hand so no allocation happens on the selection hot path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ledger pre-sized for every link of `topo`.
    pub fn for_topology(topo: &Topology) -> Self {
        PathLoadLedger {
            load: vec![0; topo.num_links()],
            allocations: 0,
        }
    }

    /// Current QP count on a link.
    pub fn load(&self, link: LinkId) -> u32 {
        self.load.get(link.index()).copied().unwrap_or(0)
    }

    /// Combined load of a path (its uplink plus its downlink).
    pub fn path_load(&self, path: &FabricPath) -> u32 {
        self.load(path.up) + self.load(path.down)
    }

    /// Records one QP on the path.
    pub fn allocate(&mut self, path: &FabricPath) {
        let hi = path.up.index().max(path.down.index());
        if hi >= self.load.len() {
            self.load.resize(hi + 1, 0);
        }
        self.load[path.up.index()] += 1;
        self.load[path.down.index()] += 1;
        self.allocations += 1;
    }

    /// Releases one QP from the path (saturating).
    pub fn release(&mut self, path: &FabricPath) {
        for l in [path.up, path.down] {
            if let Some(c) = self.load.get_mut(l.index()) {
                *c = c.saturating_sub(1);
            }
        }
        self.allocations = self.allocations.saturating_sub(1);
    }

    /// Picks the least-loaded path, breaking ties by spine then slot so the
    /// allocation is deterministic and naturally round-robins across spines.
    pub fn least_loaded<'a>(&self, candidates: &'a [FabricPath]) -> Option<&'a FabricPath> {
        self.least_loaded_rotated(candidates, 0)
    }

    /// Like [`PathLoadLedger::least_loaded`] but ties break starting from
    /// `offset` into the candidate list. Different leaf pairs use different
    /// offsets so a single spine failure does not hit the same tenants on
    /// every leaf.
    pub fn least_loaded_rotated<'a>(
        &self,
        candidates: &'a [FabricPath],
        offset: usize,
    ) -> Option<&'a FabricPath> {
        if candidates.is_empty() {
            return None;
        }
        let n = candidates.len();
        (0..n)
            .map(|i| &candidates[(i + offset) % n])
            .min_by_key(|p| self.path_load(p))
    }

    /// The least-loaded scan over precomputed dense `[up, down]` link-index
    /// pairs (see `PathCatalog::link_pairs`): returns the winning position
    /// in `pairs`, with the same rotated deterministic tie-break as
    /// [`PathLoadLedger::least_loaded_rotated`]. This is the allocation
    /// inner loop — no hashing, just a linear sweep of the dense counts.
    pub fn least_loaded_indexed(&self, pairs: &[[u32; 2]], offset: usize) -> Option<usize> {
        let n = pairs.len();
        if n == 0 {
            return None;
        }
        let load_at = |i: usize| -> u32 {
            let [up, down] = pairs[i];
            self.load.get(up as usize).copied().unwrap_or(0)
                + self.load.get(down as usize).copied().unwrap_or(0)
        };
        let mut best = offset % n;
        let mut best_load = load_at(best);
        for j in 1..n {
            let i = (j + offset) % n;
            let l = load_at(i);
            if l < best_load {
                best = i;
                best_load = l;
            }
        }
        Some(best)
    }

    /// Zeroes all counts (job restart / rebalance). The footprint is kept:
    /// counters stay allocated for the links they cover.
    pub fn clear(&mut self) {
        self.load.fill(0);
        self.allocations = 0;
    }

    /// Total QPs currently recorded.
    pub fn total_allocations(&self) -> u32 {
        self.allocations
    }

    /// Links currently carrying a non-zero QP count. Unlike the former
    /// `HashMap` ledger, released links do not stay tracked: after full
    /// release this returns 0 whatever churn came before.
    pub fn tracked_links(&self) -> usize {
        self.load.iter().filter(|&&c| c > 0).count()
    }

    /// The ledger's memory footprint in link counters. Fixed by the
    /// topology (or the highest link index ever allocated), never by
    /// allocate/release churn — the regression guard for the old
    /// unbounded-growth behaviour.
    pub fn footprint_links(&self) -> usize {
        self.load.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::{ClosConfig, Topology};

    fn paths() -> (Topology, Vec<FabricPath>) {
        let t = Topology::build(&ClosConfig::testbed_128());
        let p = t.fabric_paths(t.leaves()[0], t.leaves()[4]);
        (t, p)
    }

    #[test]
    fn least_loaded_round_robins() {
        let (_t, paths) = paths();
        let mut ledger = PathLoadLedger::new();
        let mut chosen = Vec::new();
        for _ in 0..paths.len() {
            let p = *ledger.least_loaded(&paths).unwrap();
            ledger.allocate(&p);
            chosen.push(p);
        }
        // All distinct: perfect spreading before any path is reused.
        let mut ups: Vec<_> = chosen.iter().map(|p| p.up).collect();
        ups.sort();
        ups.dedup();
        assert_eq!(ups.len(), paths.len());
        // Next allocation reuses a path but load stays balanced at 1→2.
        let p = *ledger.least_loaded(&paths).unwrap();
        assert_eq!(ledger.path_load(&p), 2);
    }

    #[test]
    fn release_restores_capacity() {
        let (_t, paths) = paths();
        let mut ledger = PathLoadLedger::new();
        ledger.allocate(&paths[0]);
        assert_eq!(ledger.path_load(&paths[0]), 2);
        ledger.release(&paths[0]);
        assert_eq!(ledger.path_load(&paths[0]), 0);
        // Releasing again saturates at zero.
        ledger.release(&paths[0]);
        assert_eq!(ledger.path_load(&paths[0]), 0);
    }

    #[test]
    fn deterministic_tie_breaks() {
        let (_t, paths) = paths();
        let a = PathLoadLedger::new().least_loaded(&paths).copied();
        let b = PathLoadLedger::new().least_loaded(&paths).copied();
        assert_eq!(a, b);
        assert!(PathLoadLedger::new().least_loaded(&[]).is_none());
    }

    #[test]
    fn indexed_scan_matches_rotated_scan() {
        let (_t, paths) = paths();
        let pairs: Vec<[u32; 2]> = paths
            .iter()
            .map(|p| [p.up.index() as u32, p.down.index() as u32])
            .collect();
        let mut ledger = PathLoadLedger::new();
        // Load the ledger unevenly, checking agreement at every offset as
        // counts accumulate.
        for round in 0..40 {
            for offset in [0usize, 1, 5, paths.len() - 1, paths.len() + 3] {
                let by_path = ledger
                    .least_loaded_rotated(&paths, offset)
                    .map(|p| (p.up, p.down));
                let by_index = ledger
                    .least_loaded_indexed(&pairs, offset)
                    .map(|i| (paths[i].up, paths[i].down));
                assert_eq!(by_path, by_index, "round {round} offset {offset}");
            }
            ledger.allocate(&paths[(round * 7) % paths.len()]);
        }
        assert!(ledger.least_loaded_indexed(&[], 0).is_none());
    }

    #[test]
    fn clear_empties_ledger() {
        let (_t, paths) = paths();
        let mut ledger = PathLoadLedger::new();
        ledger.allocate(&paths[3]);
        ledger.clear();
        assert_eq!(ledger.path_load(&paths[3]), 0);
        assert_eq!(ledger.tracked_links(), 0);
    }

    #[test]
    fn churn_does_not_grow_the_footprint() {
        // Regression: the HashMap ledger kept a zero-count entry per
        // released link forever, so multi-job allocate/release churn grew
        // the map without bound. The dense ledger's footprint is pinned to
        // the topology.
        let (t, paths) = paths();
        let mut ledger = PathLoadLedger::for_topology(&t);
        let footprint = ledger.footprint_links();
        assert_eq!(footprint, t.num_links());
        for round in 0..1000 {
            let p = &paths[round % paths.len()];
            ledger.allocate(p);
            assert_eq!(ledger.tracked_links(), 2, "one path live at a time");
            ledger.release(p);
            assert_eq!(ledger.tracked_links(), 0, "release fully untracks");
            assert_eq!(ledger.footprint_links(), footprint, "round {round}");
        }
        assert_eq!(ledger.total_allocations(), 0);
    }
}
