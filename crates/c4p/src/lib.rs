//! # c4-traffic (C4P)
//!
//! Cluster-scale traffic engineering — the paper's second contribution
//! (§III-B).
//!
//! C4P works because AI-cluster traffic is a small number of long-lived
//! elephant flows whose paths are steerable via the RDMA source port. The
//! master:
//!
//! 1. **probes** the leaf↔spine fabric and eliminates faulty links from the
//!    allocation pool at job start-up ([`probe::PathCatalog`]);
//! 2. **allocates** every QP's path at connection time, keeping the two
//!    bonded physical ports of each NIC balanced on *both* ends (left↔left,
//!    right↔right only) and spreading flows from servers under one leaf
//!    across all spines ([`master::C4pMaster`] + [`ledger::PathLoadLedger`]);
//! 3. **adapts** when the network changes: on a down-link it reallocates the
//!    orphaned QPs evenly over surviving paths, and ACCL continuously
//!    re-splits each stream's bytes across its QPs in proportion to their
//!    observed rates, so the fastest path carries the most traffic
//!    (Fig 12/13).
//!
//! The master implements [`c4_netsim::PathSelector`], so the collective
//! engine can run with the ECMP baseline or C4P interchangeably.

pub mod fasthash;
pub mod ledger;
pub mod master;
pub mod probe;

pub use ledger::PathLoadLedger;
pub use master::{C4pConfig, C4pMaster};
pub use probe::PathCatalog;
