//! The C4P master: QP path allocation with dual-port balance, spine
//! spreading, faulty-link elimination, and dynamic load rebalancing.
//!
//! ## Batched, deterministically parallel selection
//!
//! Path selection is stateful (the ledger's counts decide every choice), so
//! historically each plan build walked its keys one `select` at a time. At
//! thousands of GPUs that serial walk is the plan-build bottleneck — but it
//! has exploitable structure: a key's decision reads and writes **only the
//! fabric links of its own (src_leaf, dst_leaf) pair** (its candidate
//! uplinks belong to the source leaf, its downlinks to the destination
//! leaf). Two leaf pairs share links only when they share the source leaf
//! (same uplink row) or the destination leaf (same downlink column), so
//! grouping keys by leaf pair and partitioning groups into connected
//! components of that share-a-leaf relation yields partitions whose link
//! sets are disjoint. Selections in different partitions commute, which is
//! why [`C4pMaster::select_batch`] can fan partitions over worker threads
//! and still produce **bit-identical** choices, ledger counts and sticky
//! entries to the serial key order (pinned by `tests/c4p_differential.rs`).

use c4_netsim::{mix64, FlowKey, PathChoice, PathSelector};
use c4_simcore::{scoped_map, Bandwidth, ParallelPolicy, UnionFind};
use c4_topology::{FabricPath, PortSide, SwitchId, Topology};

use crate::fasthash::FastMap;
use crate::ledger::PathLoadLedger;
use crate::probe::PathCatalog;

/// Default minimum batch size before [`C4pMaster::select_batch`]
/// partitions and spawns workers; below it the serial loop wins on wall
/// clock (the dense ledger makes one selection ~100 ns, so the fan-out
/// only pays for very large connection bursts). Decisions are identical
/// either way; [`C4pMaster::set_batch_min_keys`] tunes the crossover.
const PARALLEL_MIN_KEYS: usize = 4096;

/// C4P behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C4pConfig {
    /// When true, the master reallocates paths after network changes
    /// ([`C4pMaster::rebalance`]) and ACCL re-splits stream bytes across QPs
    /// in proportion to observed rates. When false (static traffic
    /// engineering, the Fig 12a baseline), initial allocations stay put and
    /// flows on dead links fall back to uncoordinated ECMP rerouting.
    pub dynamic: bool,
    /// EMA factor for observed QP rates (dynamic byte-splitting).
    pub ema_alpha: f64,
}

impl Default for C4pConfig {
    fn default() -> Self {
        C4pConfig {
            dynamic: true,
            ema_alpha: 0.5,
        }
    }
}

/// The sticky-allocation table a selection works against: the serial path
/// mutates the master's map directly; batch workers overlay local writes on
/// a shared read-only base (`None` = removed) so partitions never touch
/// each other's entries.
enum StickyView<'a> {
    /// Direct mutable access (serial selection).
    Direct(&'a mut FastMap<FlowKey, PathChoice>),
    /// Copy-on-write overlay (one per batch worker).
    Overlay {
        base: &'a FastMap<FlowKey, PathChoice>,
        local: FastMap<FlowKey, Option<PathChoice>>,
    },
}

impl StickyView<'_> {
    fn get(&self, key: &FlowKey) -> Option<PathChoice> {
        match self {
            StickyView::Direct(map) => map.get(key).copied(),
            StickyView::Overlay { base, local } => match local.get(key) {
                Some(over) => *over,
                None => base.get(key).copied(),
            },
        }
    }

    fn insert(&mut self, key: FlowKey, choice: PathChoice) {
        match self {
            StickyView::Direct(map) => {
                map.insert(key, choice);
            }
            StickyView::Overlay { local, .. } => {
                local.insert(key, Some(choice));
            }
        }
    }

    fn remove(&mut self, key: &FlowKey) {
        match self {
            StickyView::Direct(map) => {
                map.remove(key);
            }
            StickyView::Overlay { local, .. } => {
                local.insert(*key, None);
            }
        }
    }
}

/// One ledger mutation of a batch worker: `true` = allocate, `false` =
/// release. Replayed on the master ledger at merge time; operations of
/// different partitions touch disjoint links, so replay order across
/// partitions cannot change the final counts.
type LedgerOp = (FabricPath, bool);

/// The cluster-wide traffic-engineering master.
///
/// Implements [`PathSelector`], so it drops into the collective engine in
/// place of the ECMP baseline.
#[derive(Debug, Clone)]
pub struct C4pMaster {
    cfg: C4pConfig,
    catalog: PathCatalog,
    ledger: PathLoadLedger,
    sticky: FastMap<FlowKey, PathChoice>,
    rate_ema: FastMap<FlowKey, f64>,
    reroute_salt: u64,
    /// Bumped whenever allocations are dropped (rebalance/reset), so plan
    /// caches keyed on [`PathSelector::cache_token`] invalidate.
    generation: u64,
    /// Worker-thread budget for [`C4pMaster::select_batch`]. Defaults to
    /// the `C4_THREADS` environment selection (unset ⇒ serial); choices are
    /// bit-identical at any value.
    parallel: ParallelPolicy,
    /// Batch-size floor below which `select_batch` stays serial.
    batch_min_keys: usize,
}

impl C4pMaster {
    /// Creates a master and performs the start-up full-mesh probe.
    pub fn new(topo: &Topology, cfg: C4pConfig) -> Self {
        C4pMaster {
            cfg,
            catalog: PathCatalog::probe(topo),
            ledger: PathLoadLedger::for_topology(topo),
            sticky: FastMap::default(),
            rate_ema: FastMap::default(),
            reroute_salt: 0xC4B0_5EED,
            generation: 0,
            parallel: ParallelPolicy::default(),
            batch_min_keys: PARALLEL_MIN_KEYS,
        }
    }

    /// Overrides the batch-size floor below which [`select_batch`] stays
    /// serial (differential tests drop it to force the partitioned path on
    /// small inputs; selections are bit-identical either way).
    ///
    /// [`select_batch`]: PathSelector::select_batch
    pub fn set_batch_min_keys(&mut self, min_keys: usize) {
        self.batch_min_keys = min_keys;
    }

    /// Sets the batch-selection thread budget, builder style.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the batch-selection thread budget.
    pub fn set_parallel(&mut self, parallel: ParallelPolicy) {
        self.parallel = parallel;
    }

    /// The batch-selection thread budget.
    pub fn parallel(&self) -> ParallelPolicy {
        self.parallel
    }

    /// The current path catalog.
    pub fn catalog(&self) -> &PathCatalog {
        &self.catalog
    }

    /// The current allocation ledger.
    pub fn ledger(&self) -> &PathLoadLedger {
        &self.ledger
    }

    /// Re-probes the fabric and, in dynamic mode, drops all allocations so
    /// subsequent selections spread evenly over the surviving paths. Call
    /// after a topology change (the paper's "dynamically adapting QP
    /// workloads in response to network changes"). The dense ledger is
    /// rebuilt to the topology's current link table.
    pub fn rebalance(&mut self, topo: &Topology) {
        self.catalog = PathCatalog::probe(topo);
        self.generation += 1;
        if self.cfg.dynamic {
            self.sticky.clear();
            self.ledger = PathLoadLedger::for_topology(topo);
        }
    }

    /// Feeds back observed per-QP mean rates (from
    /// `CollectiveResult::qp_outcomes`) for dynamic byte-splitting.
    pub fn observe(&mut self, outcomes: &[c4_netsim::FlowOutcome]) {
        if !self.cfg.dynamic {
            return;
        }
        let a = self.cfg.ema_alpha;
        for o in outcomes {
            let rate = if o.mean_rate > Bandwidth::ZERO {
                o.mean_rate.as_gbps()
            } else {
                // A stalled QP keeps a small weight so it can recover.
                1.0
            };
            let e = self.rate_ema.entry(o.key).or_insert(rate);
            *e = a * rate + (1.0 - a) * *e;
        }
    }

    /// The QP byte-split weight for a key: its observed rate EMA, or 1
    /// before any observation. The collective engine reads this through
    /// [`PathSelector::byte_split_weight`] — a borrow, not a table clone —
    /// so faster paths carry more of each stream.
    pub fn qp_weight(&self, key: &FlowKey) -> f64 {
        if !self.cfg.dynamic {
            return 1.0;
        }
        self.rate_ema.get(key).copied().unwrap_or(1.0)
    }

    /// The sticky allocation for a key, if one exists.
    pub fn allocation(&self, key: &FlowKey) -> Option<PathChoice> {
        self.sticky.get(key).copied()
    }

    /// Sides rule: QP *q* uses the same physical-port side on both ends
    /// (left↔left / right↔right), which is what keeps receive traffic
    /// balanced between the bonded ports.
    fn side_for(key: &FlowKey) -> PortSide {
        PortSide::from_index(key.qp as usize)
    }

    /// The (src_leaf, dst_leaf) pair a key's selection works against — the
    /// batch-partitioning coordinate. Every ledger link the selection can
    /// read or write (candidates, releases of a dead sticky path) belongs
    /// to this pair's uplink row / downlink column.
    fn leaf_pair(topo: &Topology, key: &FlowKey) -> (SwitchId, SwitchId) {
        let side = Self::side_for(key);
        let sp = topo.port_of_gpu(key.src_gpu, side);
        let dp = topo.port_of_gpu(key.dst_gpu, side);
        (topo.port(sp).leaf, topo.port(dp).leaf)
    }

    fn choice_is_live(topo: &Topology, choice: &PathChoice) -> bool {
        match &choice.fabric {
            None => true,
            Some(p) => topo.link(p.up).is_up() && topo.link(p.down).is_up(),
        }
    }

    /// ECMP-style fallback over live paths — what the switches do to a
    /// static allocation when its link dies (uncoordinated, hash-based).
    fn ecmp_fallback(salt: u64, key: &FlowKey, live: &[FabricPath]) -> Option<FabricPath> {
        if live.is_empty() {
            return None;
        }
        let h = mix64(key.digest(salt));
        Some(live[(h % live.len() as u64) as usize])
    }

    /// Hash-threshold reroute: when an ECMP group member dies, the switch
    /// shifts that bucket's flows onto the *next* member rather than
    /// re-hashing everything — so all orphans of one dead uplink pile onto
    /// one survivor (the Fig 12a/13a static-TE pathology).
    fn neighbor_takeover(
        topo: &Topology,
        dead: &FabricPath,
        all: &[FabricPath],
    ) -> Option<FabricPath> {
        let dead_idx = all
            .iter()
            .position(|p| p.up == dead.up && p.down == dead.down)?;
        let n = all.len();
        (1..n)
            .map(|i| all[(dead_idx + i) % n])
            .find(|p| topo.link(p.up).is_up() && topo.link(p.down).is_up())
    }

    /// The single decision procedure behind both [`PathSelector::select`]
    /// and the batch workers: identical code ⇒ identical choices. `ledger`
    /// and `sticky` abstract over "the master's own state" (serial) vs "a
    /// worker's private copy/overlay" (batch); `log`, when present, records
    /// every ledger mutation for merge-time replay.
    #[allow(clippy::too_many_arguments)]
    fn select_core(
        cfg: &C4pConfig,
        catalog: &PathCatalog,
        reroute_salt: u64,
        topo: &Topology,
        key: &FlowKey,
        ledger: &mut PathLoadLedger,
        sticky: &mut StickyView<'_>,
        mut log: Option<&mut Vec<LedgerOp>>,
    ) -> PathChoice {
        if let Some(existing) = sticky.get(key) {
            if Self::choice_is_live(topo, &existing) {
                return existing;
            }
            // Allocation's path died.
            if !cfg.dynamic {
                // Static TE: the switches reroute without consulting the
                // master (ledger untouched). Hash-threshold ECMP shifts the
                // dead bucket onto its neighbour, concentrating orphans.
                let side = existing.src_side;
                let sp = topo.port_of_gpu(key.src_gpu, side);
                let dp = topo.port_of_gpu(key.dst_gpu, existing.dst_side);
                let src_leaf = topo.port(sp).leaf;
                let dst_leaf = topo.port(dp).leaf;
                let all = topo.fabric_paths(src_leaf, dst_leaf);
                let fabric = existing
                    .fabric
                    .and_then(|dead| Self::neighbor_takeover(topo, &dead, &all))
                    .or_else(|| {
                        let live: Vec<FabricPath> = all
                            .iter()
                            .copied()
                            .filter(|p| topo.link(p.up).is_up() && topo.link(p.down).is_up())
                            .collect();
                        Self::ecmp_fallback(reroute_salt, key, &live)
                    });
                return PathChoice {
                    src_side: existing.src_side,
                    dst_side: existing.dst_side,
                    fabric,
                };
            }
            // Dynamic: fall through to a fresh allocation.
            if let Some(p) = existing.fabric {
                ledger.release(&p);
                if let Some(log) = log.as_deref_mut() {
                    log.push((p, false));
                }
            }
            sticky.remove(key);
        }

        let side = Self::side_for(key);
        let sp = topo.port_of_gpu(key.src_gpu, side);
        let dp = topo.port_of_gpu(key.dst_gpu, side);
        let src_leaf = topo.port(sp).leaf;
        let dst_leaf = topo.port(dp).leaf;
        let fabric = if src_leaf == dst_leaf {
            None
        } else {
            let (healthy, pairs) = catalog.candidates(src_leaf, dst_leaf);
            // Rotate the tie-break start per leaf pair so one spine failure
            // doesn't strike the same allocation slots on every leaf.
            let offset = (mix64(src_leaf.0 as u64 ^ (dst_leaf.0 as u64) << 17)
                % healthy.len().max(1) as u64) as usize;
            match ledger.least_loaded_indexed(pairs, offset) {
                Some(i) => {
                    let p = healthy[i];
                    ledger.allocate(&p);
                    if let Some(log) = log {
                        log.push((p, true));
                    }
                    Some(p)
                }
                None => {
                    // Catalog stale or fabric fully dead: last-resort live
                    // path straight from the topology.
                    let live: Vec<FabricPath> = topo
                        .fabric_paths(src_leaf, dst_leaf)
                        .into_iter()
                        .filter(|p| topo.link(p.up).is_up() && topo.link(p.down).is_up())
                        .collect();
                    Self::ecmp_fallback(reroute_salt, key, &live)
                }
            }
        };
        let choice = PathChoice {
            src_side: side,
            dst_side: side,
            fabric,
        };
        sticky.insert(*key, choice);
        choice
    }
}

impl PathSelector for C4pMaster {
    fn select(&mut self, topo: &Topology, key: &FlowKey) -> PathChoice {
        let mut sticky = StickyView::Direct(&mut self.sticky);
        Self::select_core(
            &self.cfg,
            &self.catalog,
            self.reroute_salt,
            topo,
            key,
            &mut self.ledger,
            &mut sticky,
            None,
        )
    }

    /// Batched selection, bit-identical to calling [`PathSelector::select`]
    /// per key in slice order (see the module docs for why disjoint-link
    /// partitions commute). Serial policies and small batches take the
    /// plain loop.
    fn select_batch(&mut self, topo: &Topology, keys: &[FlowKey]) -> Vec<PathChoice> {
        if self.parallel.is_serial() || keys.len() < self.batch_min_keys {
            return keys.iter().map(|k| self.select(topo, k)).collect();
        }

        // Resolve every key's leaf pair — pure per-key topology lookups,
        // fanned out — then assign group ids with a cheap serial pass over
        // a dense src×dst index (leaves are the first `num_leaves` switch
        // ids).
        let nl = topo.num_leaves();
        let pairs: Vec<(SwitchId, SwitchId)> =
            scoped_map(self.parallel, keys, |key| Self::leaf_pair(topo, key));
        let mut group_at: Vec<u32> = vec![u32::MAX; nl * nl];
        let mut group_pairs: Vec<(SwitchId, SwitchId)> = Vec::new();
        let mut group_of_key: Vec<u32> = Vec::with_capacity(keys.len());
        for &pair in &pairs {
            let slot = pair.0.index() * nl + pair.1.index();
            let mut g = group_at[slot];
            if g == u32::MAX {
                g = group_pairs.len() as u32;
                group_at[slot] = g;
                group_pairs.push(pair);
            }
            group_of_key.push(g);
        }

        // Partition groups: union by shared source leaf or destination
        // leaf (the only ways two leaf pairs can share a fabric link) —
        // ids 0..nl are source (uplink-row) leaves, nl..2nl destination
        // (downlink-column) leaves. Same-leaf groups touch no links and
        // stay singleton partitions.
        let mut uf = UnionFind::new(2 * nl);
        for &(src, dst) in &group_pairs {
            if src != dst {
                uf.union(src.0, nl as u32 + dst.0);
            }
        }
        // Root id space: union-find roots (< 2·nl) then one solo id per
        // same-leaf group.
        let mut part_at: Vec<u32> = vec![u32::MAX; 2 * nl + group_pairs.len()];
        let mut part_of_group: Vec<u32> = Vec::with_capacity(group_pairs.len());
        let mut nparts = 0usize;
        for (g, &(src, dst)) in group_pairs.iter().enumerate() {
            let root = if src == dst {
                2 * nl + g
            } else {
                uf.find(src.0) as usize
            };
            let mut p = part_at[root];
            if p == u32::MAX {
                p = nparts as u32;
                part_at[root] = p;
                nparts += 1;
            }
            part_of_group.push(p);
        }

        // Per-partition key indices, original order preserved.
        let mut part_keys: Vec<Vec<u32>> = vec![Vec::new(); nparts];
        for (i, &g) in group_of_key.iter().enumerate() {
            part_keys[part_of_group[g as usize] as usize].push(i as u32);
        }

        // Pack partitions into one contiguous chunk per worker thread,
        // balanced by key count, so each worker pays for exactly one
        // ledger copy and one sticky overlay. Partitions are mutually
        // link- and key-disjoint, so partitions sharing a worker's view
        // cannot influence each other any more than separated ones.
        let workers = self.parallel.threads().min(nparts).max(1);
        let target = keys.len().div_ceil(workers);
        let mut chunks: Vec<Vec<u32>> = Vec::with_capacity(workers);
        let mut cur: Vec<u32> = Vec::new();
        let mut cur_keys = 0usize;
        for (p, indices) in part_keys.iter().enumerate() {
            cur.push(p as u32);
            cur_keys += indices.len();
            if cur_keys >= target && chunks.len() + 1 < workers {
                chunks.push(std::mem::take(&mut cur));
                cur_keys = 0;
            }
        }
        if !cur.is_empty() {
            chunks.push(cur);
        }

        // Fan the chunks out. A worker's decisions depend only on its own
        // partitions' links and keys, so they match what the serial
        // interleaving would have produced.
        let cfg = self.cfg;
        let reroute_salt = self.reroute_salt;
        let catalog = &self.catalog;
        let base_ledger = &self.ledger;
        let base_sticky = &self.sticky;
        type WorkerOut = (
            Vec<PathChoice>,
            Vec<LedgerOp>,
            Vec<(FlowKey, Option<PathChoice>)>,
        );
        let results: Vec<WorkerOut> = scoped_map(self.parallel, &chunks, |parts| {
            let mut ledger = base_ledger.clone();
            let mut sticky = StickyView::Overlay {
                base: base_sticky,
                local: FastMap::default(),
            };
            let mut ops: Vec<LedgerOp> = Vec::new();
            let mut choices: Vec<PathChoice> = Vec::new();
            for &p in parts {
                for &i in &part_keys[p as usize] {
                    choices.push(Self::select_core(
                        &cfg,
                        catalog,
                        reroute_salt,
                        topo,
                        &keys[i as usize],
                        &mut ledger,
                        &mut sticky,
                        Some(&mut ops),
                    ));
                }
            }
            let sticky_ops = match sticky {
                StickyView::Overlay { local, .. } => local.into_iter().collect(),
                StickyView::Direct(_) => unreachable!("workers use overlays"),
            };
            (choices, ops, sticky_ops)
        });

        // Merge: replay ledger ops and sticky writes (disjoint across
        // partitions, so replay order is immaterial to the outcome) and
        // scatter choices back to input positions.
        let mut out = vec![
            PathChoice {
                src_side: PortSide::Left,
                dst_side: PortSide::Left,
                fabric: None,
            };
            keys.len()
        ];
        for (parts, (choices, ops, sticky_ops)) in chunks.iter().zip(results) {
            let mut next = choices.into_iter();
            for &p in parts {
                for &i in &part_keys[p as usize] {
                    out[i as usize] = next.next().expect("one choice per key");
                }
            }
            for (path, alloc) in ops {
                if alloc {
                    self.ledger.allocate(&path);
                } else {
                    self.ledger.release(&path);
                }
            }
            for (key, entry) in sticky_ops {
                match entry {
                    Some(choice) => {
                        self.sticky.insert(key, choice);
                    }
                    None => {
                        self.sticky.remove(&key);
                    }
                }
            }
        }
        out
    }

    fn byte_split_weight(&self, key: &FlowKey) -> f64 {
        self.qp_weight(key)
    }

    fn name(&self) -> &'static str {
        if self.cfg.dynamic {
            "c4p-dynamic"
        } else {
            "c4p-static"
        }
    }

    fn reset(&mut self) {
        self.generation += 1;
        self.sticky.clear();
        self.ledger.clear();
        self.rate_ema.clear();
    }

    /// Sticky allocations make C4P cacheable between generation bumps: the
    /// same key re-selects the same path until rebalance/reset (topology
    /// changes are covered by the cache's topology-version key).
    fn cache_token(&self) -> Option<u64> {
        Some(mix64(self.generation ^ 0xC4B0_70CE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::{ClosConfig, NodeId};

    fn topo_grouped() -> Topology {
        Topology::build(&ClosConfig::testbed_128_grouped(2))
    }

    fn key(t: &Topology, src_node: usize, dst_node: usize, rail: usize, qp: u16) -> FlowKey {
        FlowKey {
            src_gpu: t.gpu_at(NodeId::from_index(src_node), rail),
            dst_gpu: t.gpu_at(NodeId::from_index(dst_node), rail),
            comm: 1,
            channel: 0,
            qp,
            incarnation: 0,
        }
    }

    #[test]
    fn sides_are_mirrored_per_qp() {
        let t = topo_grouped();
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        let c0 = m.select(&t, &key(&t, 0, 8, 0, 0));
        let c1 = m.select(&t, &key(&t, 0, 8, 0, 1));
        assert_eq!(c0.src_side, PortSide::Left);
        assert_eq!(c0.dst_side, PortSide::Left);
        assert_eq!(c1.src_side, PortSide::Right);
        assert_eq!(c1.dst_side, PortSide::Right);
    }

    #[test]
    fn allocations_spread_over_spines() {
        let t = topo_grouped();
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        // 32 QPs between the same leaf pair → 32 distinct uplinks.
        let mut ups = Vec::new();
        for i in 0..16 {
            for qp in 0..2u16 {
                // vary src/dst nodes within groups to vary keys; same rail 0
                let k = key(&t, i % 8, 8 + (i % 8), 0, qp);
                let mut k = k;
                k.comm = i as u64; // distinct communicators → distinct QPs
                let c = m.select(&t, &k);
                if let Some(p) = c.fabric {
                    ups.push(p.up);
                }
            }
        }
        // Left-side QPs share a leaf pair, right-side another.
        let mut dedup = ups.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ups.len(), "no uplink reused before all used");
    }

    #[test]
    fn selection_is_sticky() {
        let t = topo_grouped();
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        let k = key(&t, 0, 8, 3, 0);
        let a = m.select(&t, &k);
        let b = m.select(&t, &k);
        assert_eq!(a, b);
        assert_eq!(m.ledger().total_allocations(), 1, "allocated once");
    }

    #[test]
    fn static_mode_falls_back_to_ecmp_on_dead_path() {
        let t0 = topo_grouped();
        let mut m = C4pMaster::new(
            &t0,
            C4pConfig {
                dynamic: false,
                ema_alpha: 0.5,
            },
        );
        let k = key(&t0, 0, 8, 0, 0);
        let a = m.select(&t0, &k);
        let path = a.fabric.unwrap();
        let mut t = t0.clone();
        t.link_mut(path.up).set_up(false);
        let b = m.select(&t, &k);
        let rerouted = b.fabric.unwrap();
        assert_ne!(rerouted.up, path.up, "must leave the dead link");
        assert!(t.link(rerouted.up).is_up());
        // Sides preserved (reroute happens in the fabric, not at the NIC).
        assert_eq!(b.src_side, a.src_side);
    }

    #[test]
    fn dynamic_rebalance_reallocates_evenly() {
        let t0 = topo_grouped();
        let mut m = C4pMaster::new(&t0, C4pConfig::default());
        let keys: Vec<FlowKey> = (0..8)
            .flat_map(|i| (0..2u16).map(move |qp| (i, qp)))
            .map(|(i, qp)| {
                let mut k = key(&t0, i, 8 + i, 0, qp);
                k.comm = i as u64;
                k
            })
            .collect();
        for k in &keys {
            m.select(&t0, k);
        }
        let before = m.ledger().total_allocations();
        assert_eq!(before, keys.len() as u32);
        // Kill a spine; rebalance must drop and respread allocations.
        let mut t = t0.clone();
        let spine = t.spines()[0];
        t.set_spine_up(spine, false);
        m.rebalance(&t);
        assert_eq!(m.ledger().total_allocations(), 0);
        for k in &keys {
            let c = m.select(&t, k);
            let p = c.fabric.unwrap();
            assert_ne!(p.spine, spine, "no allocation on the dead spine");
        }
        assert_eq!(m.ledger().total_allocations(), keys.len() as u32);
    }

    #[test]
    fn observe_updates_weights() {
        let t = topo_grouped();
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        let k = key(&t, 0, 8, 0, 0);
        assert_eq!(m.qp_weight(&k), 1.0);
        let outcome = c4_netsim::FlowOutcome {
            key: k,
            bytes: c4_simcore::ByteSize::from_mib(1),
            start: c4_simcore::SimTime::ZERO,
            finish: Some(c4_simcore::SimTime::from_secs(1)),
            mean_rate: Bandwidth::from_gbps(100.0),
            min_rate: Bandwidth::from_gbps(100.0),
            max_rate: Bandwidth::from_gbps(100.0),
        };
        m.observe(std::slice::from_ref(&outcome));
        assert!((m.qp_weight(&k) - 100.0).abs() < 1e-9);
        // The engine-facing hook reads the same EMA, by borrow.
        assert!((m.byte_split_weight(&k) - 100.0).abs() < 1e-9);
        // EMA: a second observation at 200 moves halfway.
        let faster = c4_netsim::FlowOutcome {
            mean_rate: Bandwidth::from_gbps(200.0),
            ..outcome
        };
        m.observe(&[faster]);
        assert!((m.qp_weight(&k) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn rail_optimized_same_leaf_stays_local() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        let c = m.select(&t, &key(&t, 0, 1, 0, 0));
        assert!(c.fabric.is_none());
    }

    #[test]
    fn batch_matches_serial_selects() {
        // A batch big enough to trip the parallel path, with repeated keys
        // (sticky hits) and same-leaf keys (no fabric) mixed in.
        let t = topo_grouped();
        let mut keys = Vec::new();
        for i in 0..48usize {
            for qp in 0..2u16 {
                let mut k = key(&t, i % 8, 8 + ((i + 3) % 8), i % 8, qp);
                k.comm = (i / 4) as u64;
                keys.push(k);
            }
        }
        keys.push(keys[0]); // sticky repeat
        keys.push(key(&t, 0, 1, 0, 0)); // same group → same leaf pair

        let mut serial = C4pMaster::new(&t, C4pConfig::default());
        let expected: Vec<PathChoice> = keys.iter().map(|k| serial.select(&t, k)).collect();

        for threads in [2usize, 4] {
            let mut batch = C4pMaster::new(&t, C4pConfig::default())
                .with_parallel(ParallelPolicy::with_threads(threads));
            batch.set_batch_min_keys(1);
            let got = batch.select_batch(&t, &keys);
            assert_eq!(got, expected, "{threads} threads");
            assert_eq!(
                batch.ledger().total_allocations(),
                serial.ledger().total_allocations()
            );
            for l in 0..t.num_links() {
                let l = c4_topology::LinkId::from_index(l);
                assert_eq!(batch.ledger().load(l), serial.ledger().load(l), "{l}");
            }
            for k in &keys {
                assert_eq!(batch.allocation(k), serial.allocation(k));
            }
        }
    }
}
