//! The C4P master: QP path allocation with dual-port balance, spine
//! spreading, faulty-link elimination, and dynamic load rebalancing.

use std::collections::HashMap;

use c4_netsim::{mix64, FlowKey, PathChoice, PathSelector};
use c4_simcore::Bandwidth;
use c4_topology::{FabricPath, PortSide, Topology};

use crate::ledger::PathLoadLedger;
use crate::probe::PathCatalog;

/// C4P behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C4pConfig {
    /// When true, the master reallocates paths after network changes
    /// ([`C4pMaster::rebalance`]) and ACCL re-splits stream bytes across QPs
    /// in proportion to observed rates. When false (static traffic
    /// engineering, the Fig 12a baseline), initial allocations stay put and
    /// flows on dead links fall back to uncoordinated ECMP rerouting.
    pub dynamic: bool,
    /// EMA factor for observed QP rates (dynamic byte-splitting).
    pub ema_alpha: f64,
}

impl Default for C4pConfig {
    fn default() -> Self {
        C4pConfig {
            dynamic: true,
            ema_alpha: 0.5,
        }
    }
}

/// The cluster-wide traffic-engineering master.
///
/// Implements [`PathSelector`], so it drops into the collective engine in
/// place of the ECMP baseline.
#[derive(Debug, Clone)]
pub struct C4pMaster {
    cfg: C4pConfig,
    catalog: PathCatalog,
    ledger: PathLoadLedger,
    sticky: HashMap<FlowKey, PathChoice>,
    rate_ema: HashMap<FlowKey, f64>,
    reroute_salt: u64,
    /// Bumped whenever allocations are dropped (rebalance/reset), so plan
    /// caches keyed on [`PathSelector::cache_token`] invalidate.
    generation: u64,
}

impl C4pMaster {
    /// Creates a master and performs the start-up full-mesh probe.
    pub fn new(topo: &Topology, cfg: C4pConfig) -> Self {
        C4pMaster {
            cfg,
            catalog: PathCatalog::probe(topo),
            ledger: PathLoadLedger::new(),
            sticky: HashMap::new(),
            rate_ema: HashMap::new(),
            reroute_salt: 0xC4B0_5EED,
            generation: 0,
        }
    }

    /// The current path catalog.
    pub fn catalog(&self) -> &PathCatalog {
        &self.catalog
    }

    /// The current allocation ledger.
    pub fn ledger(&self) -> &PathLoadLedger {
        &self.ledger
    }

    /// Re-probes the fabric and, in dynamic mode, drops all allocations so
    /// subsequent selections spread evenly over the surviving paths. Call
    /// after a topology change (the paper's "dynamically adapting QP
    /// workloads in response to network changes").
    pub fn rebalance(&mut self, topo: &Topology) {
        self.catalog = PathCatalog::probe(topo);
        self.generation += 1;
        if self.cfg.dynamic {
            self.sticky.clear();
            self.ledger.clear();
        }
    }

    /// Feeds back observed per-QP mean rates (from
    /// `CollectiveResult::qp_outcomes`) for dynamic byte-splitting.
    pub fn observe(&mut self, outcomes: &[c4_netsim::FlowOutcome]) {
        if !self.cfg.dynamic {
            return;
        }
        let a = self.cfg.ema_alpha;
        for o in outcomes {
            let rate = if o.mean_rate > Bandwidth::ZERO {
                o.mean_rate.as_gbps()
            } else {
                // A stalled QP keeps a small weight so it can recover.
                1.0
            };
            let e = self.rate_ema.entry(o.key).or_insert(rate);
            *e = a * rate + (1.0 - a) * *e;
        }
    }

    /// The QP byte-split weight for a key: its observed rate EMA, or 1
    /// before any observation. Pass as the engine's `qp_weights` so faster
    /// paths carry more of each stream.
    pub fn qp_weight(&self, key: &FlowKey) -> f64 {
        if !self.cfg.dynamic {
            return 1.0;
        }
        self.rate_ema.get(key).copied().unwrap_or(1.0)
    }

    /// Snapshot of the byte-split weight table (the engine's weight callback
    /// cannot borrow the master, which the selector borrows mutably).
    pub fn weight_table(&self) -> HashMap<FlowKey, f64> {
        if self.cfg.dynamic {
            self.rate_ema.clone()
        } else {
            HashMap::new()
        }
    }

    /// The sticky allocation for a key, if one exists.
    pub fn allocation(&self, key: &FlowKey) -> Option<PathChoice> {
        self.sticky.get(key).copied()
    }

    /// Sides rule: QP *q* uses the same physical-port side on both ends
    /// (left↔left / right↔right), which is what keeps receive traffic
    /// balanced between the bonded ports.
    fn side_for(key: &FlowKey) -> PortSide {
        PortSide::from_index(key.qp as usize)
    }

    fn choice_is_live(&self, topo: &Topology, choice: &PathChoice) -> bool {
        match &choice.fabric {
            None => true,
            Some(p) => topo.link(p.up).is_up() && topo.link(p.down).is_up(),
        }
    }

    /// ECMP-style fallback over live paths — what the switches do to a
    /// static allocation when its link dies (uncoordinated, hash-based).
    fn ecmp_fallback(&self, key: &FlowKey, live: &[FabricPath]) -> Option<FabricPath> {
        if live.is_empty() {
            return None;
        }
        let h = mix64(key.digest(self.reroute_salt));
        Some(live[(h % live.len() as u64) as usize])
    }

    /// Hash-threshold reroute: when an ECMP group member dies, the switch
    /// shifts that bucket's flows onto the *next* member rather than
    /// re-hashing everything — so all orphans of one dead uplink pile onto
    /// one survivor (the Fig 12a/13a static-TE pathology).
    fn neighbor_takeover(
        topo: &Topology,
        dead: &FabricPath,
        all: &[FabricPath],
    ) -> Option<FabricPath> {
        let dead_idx = all
            .iter()
            .position(|p| p.up == dead.up && p.down == dead.down)?;
        let n = all.len();
        (1..n)
            .map(|i| all[(dead_idx + i) % n])
            .find(|p| topo.link(p.up).is_up() && topo.link(p.down).is_up())
    }
}

impl PathSelector for C4pMaster {
    fn select(&mut self, topo: &Topology, key: &FlowKey) -> PathChoice {
        if let Some(existing) = self.sticky.get(key).copied() {
            if self.choice_is_live(topo, &existing) {
                return existing;
            }
            // Allocation's path died.
            if !self.cfg.dynamic {
                // Static TE: the switches reroute without consulting the
                // master (ledger untouched). Hash-threshold ECMP shifts the
                // dead bucket onto its neighbour, concentrating orphans.
                let side = existing.src_side;
                let sp = topo.port_of_gpu(key.src_gpu, side);
                let dp = topo.port_of_gpu(key.dst_gpu, existing.dst_side);
                let src_leaf = topo.port(sp).leaf;
                let dst_leaf = topo.port(dp).leaf;
                let all = topo.fabric_paths(src_leaf, dst_leaf);
                let fabric = existing
                    .fabric
                    .and_then(|dead| Self::neighbor_takeover(topo, &dead, &all))
                    .or_else(|| {
                        let live: Vec<FabricPath> = all
                            .iter()
                            .copied()
                            .filter(|p| topo.link(p.up).is_up() && topo.link(p.down).is_up())
                            .collect();
                        self.ecmp_fallback(key, &live)
                    });
                return PathChoice {
                    src_side: existing.src_side,
                    dst_side: existing.dst_side,
                    fabric,
                };
            }
            // Dynamic: fall through to a fresh allocation.
            if let Some(p) = existing.fabric {
                self.ledger.release(&p);
            }
            self.sticky.remove(key);
        }

        let side = Self::side_for(key);
        let sp = topo.port_of_gpu(key.src_gpu, side);
        let dp = topo.port_of_gpu(key.dst_gpu, side);
        let src_leaf = topo.port(sp).leaf;
        let dst_leaf = topo.port(dp).leaf;
        let fabric = if src_leaf == dst_leaf {
            None
        } else {
            let healthy = self.catalog.healthy_paths(src_leaf, dst_leaf);
            // Rotate the tie-break start per leaf pair so one spine failure
            // doesn't strike the same allocation slots on every leaf.
            let offset = (mix64(src_leaf.0 as u64 ^ (dst_leaf.0 as u64) << 17)
                % healthy.len().max(1) as u64) as usize;
            match self.ledger.least_loaded_rotated(healthy, offset) {
                Some(p) => {
                    let p = *p;
                    self.ledger.allocate(&p);
                    Some(p)
                }
                None => {
                    // Catalog stale or fabric fully dead: last-resort live
                    // path straight from the topology.
                    let live: Vec<FabricPath> = topo
                        .fabric_paths(src_leaf, dst_leaf)
                        .into_iter()
                        .filter(|p| topo.link(p.up).is_up() && topo.link(p.down).is_up())
                        .collect();
                    self.ecmp_fallback(key, &live)
                }
            }
        };
        let choice = PathChoice {
            src_side: side,
            dst_side: side,
            fabric,
        };
        self.sticky.insert(*key, choice);
        choice
    }

    fn name(&self) -> &'static str {
        if self.cfg.dynamic {
            "c4p-dynamic"
        } else {
            "c4p-static"
        }
    }

    fn reset(&mut self) {
        self.generation += 1;
        self.sticky.clear();
        self.ledger.clear();
        self.rate_ema.clear();
    }

    /// Sticky allocations make C4P cacheable between generation bumps: the
    /// same key re-selects the same path until rebalance/reset (topology
    /// changes are covered by the cache's topology-version key).
    fn cache_token(&self) -> Option<u64> {
        Some(mix64(self.generation ^ 0xC4B0_70CE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::{ClosConfig, NodeId};

    fn topo_grouped() -> Topology {
        Topology::build(&ClosConfig::testbed_128_grouped(2))
    }

    fn key(t: &Topology, src_node: usize, dst_node: usize, rail: usize, qp: u16) -> FlowKey {
        FlowKey {
            src_gpu: t.gpu_at(NodeId::from_index(src_node), rail),
            dst_gpu: t.gpu_at(NodeId::from_index(dst_node), rail),
            comm: 1,
            channel: 0,
            qp,
            incarnation: 0,
        }
    }

    #[test]
    fn sides_are_mirrored_per_qp() {
        let t = topo_grouped();
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        let c0 = m.select(&t, &key(&t, 0, 8, 0, 0));
        let c1 = m.select(&t, &key(&t, 0, 8, 0, 1));
        assert_eq!(c0.src_side, PortSide::Left);
        assert_eq!(c0.dst_side, PortSide::Left);
        assert_eq!(c1.src_side, PortSide::Right);
        assert_eq!(c1.dst_side, PortSide::Right);
    }

    #[test]
    fn allocations_spread_over_spines() {
        let t = topo_grouped();
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        // 32 QPs between the same leaf pair → 32 distinct uplinks.
        let mut ups = Vec::new();
        for i in 0..16 {
            for qp in 0..2u16 {
                // vary src/dst nodes within groups to vary keys; same rail 0
                let k = key(&t, i % 8, 8 + (i % 8), 0, qp);
                let mut k = k;
                k.comm = i as u64; // distinct communicators → distinct QPs
                let c = m.select(&t, &k);
                if let Some(p) = c.fabric {
                    ups.push(p.up);
                }
            }
        }
        // Left-side QPs share a leaf pair, right-side another.
        let mut dedup = ups.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ups.len(), "no uplink reused before all used");
    }

    #[test]
    fn selection_is_sticky() {
        let t = topo_grouped();
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        let k = key(&t, 0, 8, 3, 0);
        let a = m.select(&t, &k);
        let b = m.select(&t, &k);
        assert_eq!(a, b);
        assert_eq!(m.ledger().total_allocations(), 1, "allocated once");
    }

    #[test]
    fn static_mode_falls_back_to_ecmp_on_dead_path() {
        let t0 = topo_grouped();
        let mut m = C4pMaster::new(
            &t0,
            C4pConfig {
                dynamic: false,
                ema_alpha: 0.5,
            },
        );
        let k = key(&t0, 0, 8, 0, 0);
        let a = m.select(&t0, &k);
        let path = a.fabric.unwrap();
        let mut t = t0.clone();
        t.link_mut(path.up).set_up(false);
        let b = m.select(&t, &k);
        let rerouted = b.fabric.unwrap();
        assert_ne!(rerouted.up, path.up, "must leave the dead link");
        assert!(t.link(rerouted.up).is_up());
        // Sides preserved (reroute happens in the fabric, not at the NIC).
        assert_eq!(b.src_side, a.src_side);
    }

    #[test]
    fn dynamic_rebalance_reallocates_evenly() {
        let t0 = topo_grouped();
        let mut m = C4pMaster::new(&t0, C4pConfig::default());
        let keys: Vec<FlowKey> = (0..8)
            .flat_map(|i| (0..2u16).map(move |qp| (i, qp)))
            .map(|(i, qp)| {
                let mut k = key(&t0, i, 8 + i, 0, qp);
                k.comm = i as u64;
                k
            })
            .collect();
        for k in &keys {
            m.select(&t0, k);
        }
        let before = m.ledger().total_allocations();
        assert_eq!(before, keys.len() as u32);
        // Kill a spine; rebalance must drop and respread allocations.
        let mut t = t0.clone();
        let spine = t.spines()[0];
        t.set_spine_up(spine, false);
        m.rebalance(&t);
        assert_eq!(m.ledger().total_allocations(), 0);
        for k in &keys {
            let c = m.select(&t, k);
            let p = c.fabric.unwrap();
            assert_ne!(p.spine, spine, "no allocation on the dead spine");
        }
        assert_eq!(m.ledger().total_allocations(), keys.len() as u32);
    }

    #[test]
    fn observe_updates_weights() {
        let t = topo_grouped();
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        let k = key(&t, 0, 8, 0, 0);
        assert_eq!(m.qp_weight(&k), 1.0);
        let outcome = c4_netsim::FlowOutcome {
            key: k,
            bytes: c4_simcore::ByteSize::from_mib(1),
            start: c4_simcore::SimTime::ZERO,
            finish: Some(c4_simcore::SimTime::from_secs(1)),
            mean_rate: Bandwidth::from_gbps(100.0),
            min_rate: Bandwidth::from_gbps(100.0),
            max_rate: Bandwidth::from_gbps(100.0),
        };
        m.observe(std::slice::from_ref(&outcome));
        assert!((m.qp_weight(&k) - 100.0).abs() < 1e-9);
        // EMA: a second observation at 200 moves halfway.
        let faster = c4_netsim::FlowOutcome {
            mean_rate: Bandwidth::from_gbps(200.0),
            ..outcome
        };
        m.observe(&[faster]);
        assert!((m.qp_weight(&k) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn rail_optimized_same_leaf_stays_local() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let mut m = C4pMaster::new(&t, C4pConfig::default());
        let c = m.select(&t, &key(&t, 0, 1, 0, 0));
        assert!(c.fabric.is_none());
    }
}
