//! Full-mesh path probing and faulty-link elimination.
//!
//! The paper's C4P master probes paths between randomly selected servers
//! under every leaf pair, cataloging which source ports reach which spine
//! paths intact (§III-B). Here probing reads link state directly — the
//! simulator's ground truth *is* what a probe packet would measure — and
//! classifies each leaf→spine→leaf path as healthy (both links up at full
//! capacity) or eliminated.
//!
//! The catalog is stored **dense**: healthy paths of all ordered leaf pairs
//! live in one flat vector with per-pair ranges, and each pair additionally
//! carries its candidates' `[up, down]` link indices in a contiguous slice
//! ([`PathCatalog::link_pairs`]). The allocation hot loop
//! (`PathLoadLedger::least_loaded_indexed`) therefore runs over two small
//! dense arrays — no hash lookups per candidate — which is what keeps plan
//! builds fast at thousands of GPUs (hundreds of leaves ⇒ tens of
//! thousands of leaf pairs).

use c4_topology::{FabricPath, LinkId, SwitchId, Topology};

/// The probing result: healthy paths per ordered leaf pair, plus eliminated
/// links.
#[derive(Debug, Clone, Default)]
pub struct PathCatalog {
    num_leaves: usize,
    /// Healthy paths of every ordered leaf pair, flattened in
    /// (src tier index, dst tier index) row-major order.
    paths: Vec<FabricPath>,
    /// Dense `[up, down]` link indices, parallel to `paths`.
    link_pairs: Vec<[u32; 2]>,
    /// `pair_start[src * L + dst] .. pair_start[src * L + dst + 1]` is the
    /// pair's range into `paths` / `link_pairs`.
    pair_start: Vec<u32>,
    eliminated: Vec<LinkId>,
}

impl PathCatalog {
    /// Probes every ordered leaf pair of the topology.
    pub fn probe(topo: &Topology) -> Self {
        let leaves = topo.leaves();
        let nl = leaves.len();
        // Leaves are built first, so a leaf's switch id doubles as its tier
        // index — the invariant that lets lookups skip the topology.
        debug_assert!(leaves.iter().enumerate().all(|(i, l)| l.index() == i));
        let mut paths = Vec::new();
        let mut link_pairs = Vec::new();
        let mut pair_start = Vec::with_capacity(nl * nl + 1);
        pair_start.push(0u32);
        let mut eliminated = Vec::new();
        for &src in leaves {
            for &dst in leaves {
                if src != dst {
                    for p in topo.fabric_paths(src, dst) {
                        if p.is_healthy(topo) {
                            paths.push(p);
                            link_pairs.push([p.up.index() as u32, p.down.index() as u32]);
                        } else {
                            for l in [p.up, p.down] {
                                if (!topo.link(l).is_up() || topo.link(l).degradation() < 1.0)
                                    && !eliminated.contains(&l)
                                {
                                    eliminated.push(l);
                                }
                            }
                        }
                    }
                }
                pair_start.push(paths.len() as u32);
            }
        }
        PathCatalog {
            num_leaves: nl,
            paths,
            link_pairs,
            pair_start,
            eliminated,
        }
    }

    /// The pair's range into the flat path storage, empty for same-leaf or
    /// out-of-range ids.
    fn pair_range(&self, src: SwitchId, dst: SwitchId) -> std::ops::Range<usize> {
        let (s, d) = (src.index(), dst.index());
        if s >= self.num_leaves || d >= self.num_leaves {
            return 0..0;
        }
        let p = s * self.num_leaves + d;
        self.pair_start[p] as usize..self.pair_start[p + 1] as usize
    }

    /// Healthy paths between two leaves (empty slice if none or same leaf).
    pub fn healthy_paths(&self, src: SwitchId, dst: SwitchId) -> &[FabricPath] {
        &self.paths[self.pair_range(src, dst)]
    }

    /// The dense `[up, down]` link-index pairs of the same candidates
    /// [`PathCatalog::healthy_paths`] returns, positions aligned — the scan
    /// input for `PathLoadLedger::least_loaded_indexed`.
    pub fn link_pairs(&self, src: SwitchId, dst: SwitchId) -> &[[u32; 2]] {
        &self.link_pairs[self.pair_range(src, dst)]
    }

    /// Both candidate views of one leaf pair — paths and their dense link
    /// indices — from a single range computation (the hot-path accessor).
    pub fn candidates(&self, src: SwitchId, dst: SwitchId) -> (&[FabricPath], &[[u32; 2]]) {
        let range = self.pair_range(src, dst);
        (&self.paths[range.clone()], &self.link_pairs[range])
    }

    /// Links the prober eliminated from the allocation pool.
    pub fn eliminated_links(&self) -> &[LinkId] {
        &self.eliminated
    }

    /// Total healthy paths in the catalog.
    pub fn healthy_count(&self) -> usize {
        self.paths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::ClosConfig;

    #[test]
    fn clean_fabric_catalogs_everything() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let cat = PathCatalog::probe(&t);
        // 8 leaves × 7 peers × 8 spines × 4 slots.
        assert_eq!(cat.healthy_count(), 8 * 7 * 8 * 4);
        assert!(cat.eliminated_links().is_empty());
        let paths = cat.healthy_paths(t.leaves()[0], t.leaves()[1]);
        assert_eq!(paths.len(), 32);
    }

    #[test]
    fn down_link_is_eliminated() {
        let mut t = Topology::build(&ClosConfig::testbed_128());
        let victim = t.fabric_up_links(0, 3)[1];
        t.link_mut(victim).set_up(false);
        let cat = PathCatalog::probe(&t);
        assert!(cat.eliminated_links().contains(&victim));
        // Paths from leaf 0 through that uplink are gone; one per dst leaf.
        let paths = cat.healthy_paths(t.leaves()[0], t.leaves()[5]);
        assert_eq!(paths.len(), 31);
        assert!(paths.iter().all(|p| p.up != victim));
        // Reverse direction unaffected (directed links).
        assert_eq!(cat.healthy_paths(t.leaves()[5], t.leaves()[0]).len(), 32);
    }

    #[test]
    fn degraded_link_is_also_eliminated() {
        // ECMP routing would still use a flapping link; the prober won't.
        let mut t = Topology::build(&ClosConfig::testbed_128());
        let victim = t.fabric_down_links(2, 4)[0];
        t.link_mut(victim).set_degradation(0.5);
        let cat = PathCatalog::probe(&t);
        assert!(cat.eliminated_links().contains(&victim));
    }

    #[test]
    fn same_leaf_has_no_paths() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let cat = PathCatalog::probe(&t);
        assert!(cat.healthy_paths(t.leaves()[0], t.leaves()[0]).is_empty());
    }

    #[test]
    fn link_pairs_align_with_paths() {
        let mut t = Topology::build(&ClosConfig::testbed_128());
        t.link_mut(t.fabric_up_links(2, 1)[0]).set_up(false);
        let cat = PathCatalog::probe(&t);
        for &src in t.leaves() {
            for &dst in t.leaves() {
                let paths = cat.healthy_paths(src, dst);
                let pairs = cat.link_pairs(src, dst);
                assert_eq!(paths.len(), pairs.len());
                for (p, pair) in paths.iter().zip(pairs) {
                    assert_eq!(p.up.index() as u32, pair[0]);
                    assert_eq!(p.down.index() as u32, pair[1]);
                }
            }
        }
        // Out-of-range switch ids (e.g. spines) yield empty slices.
        let spine = t.spines()[0];
        assert!(cat.healthy_paths(spine, t.leaves()[0]).is_empty());
        assert!(cat.link_pairs(spine, t.leaves()[0]).is_empty());
    }

    #[test]
    fn default_catalog_is_empty() {
        let cat = PathCatalog::default();
        let t = Topology::build(&ClosConfig::tiny(2));
        assert!(cat.healthy_paths(t.leaves()[0], t.leaves()[1]).is_empty());
        assert_eq!(cat.healthy_count(), 0);
    }
}
