//! Full-mesh path probing and faulty-link elimination.
//!
//! The paper's C4P master probes paths between randomly selected servers
//! under every leaf pair, cataloging which source ports reach which spine
//! paths intact (§III-B). Here probing reads link state directly — the
//! simulator's ground truth *is* what a probe packet would measure — and
//! classifies each leaf→spine→leaf path as healthy (both links up at full
//! capacity) or eliminated.

use std::collections::HashMap;

use c4_topology::{FabricPath, LinkId, SwitchId, Topology};

/// The probing result: healthy paths per leaf pair, plus eliminated links.
#[derive(Debug, Clone, Default)]
pub struct PathCatalog {
    healthy: HashMap<(SwitchId, SwitchId), Vec<FabricPath>>,
    eliminated: Vec<LinkId>,
}

impl PathCatalog {
    /// Probes every ordered leaf pair of the topology.
    pub fn probe(topo: &Topology) -> Self {
        let mut healthy = HashMap::new();
        let mut eliminated = Vec::new();
        for &src in topo.leaves() {
            for &dst in topo.leaves() {
                if src == dst {
                    continue;
                }
                let mut ok = Vec::new();
                for p in topo.fabric_paths(src, dst) {
                    if p.is_healthy(topo) {
                        ok.push(p);
                    } else {
                        for l in [p.up, p.down] {
                            if (!topo.link(l).is_up() || topo.link(l).degradation() < 1.0)
                                && !eliminated.contains(&l)
                            {
                                eliminated.push(l);
                            }
                        }
                    }
                }
                healthy.insert((src, dst), ok);
            }
        }
        PathCatalog {
            healthy,
            eliminated,
        }
    }

    /// Healthy paths between two leaves (empty slice if none or same leaf).
    pub fn healthy_paths(&self, src: SwitchId, dst: SwitchId) -> &[FabricPath] {
        self.healthy
            .get(&(src, dst))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Links the prober eliminated from the allocation pool.
    pub fn eliminated_links(&self) -> &[LinkId] {
        &self.eliminated
    }

    /// Total healthy paths in the catalog.
    pub fn healthy_count(&self) -> usize {
        self.healthy.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::ClosConfig;

    #[test]
    fn clean_fabric_catalogs_everything() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let cat = PathCatalog::probe(&t);
        // 8 leaves × 7 peers × 8 spines × 4 slots.
        assert_eq!(cat.healthy_count(), 8 * 7 * 8 * 4);
        assert!(cat.eliminated_links().is_empty());
        let paths = cat.healthy_paths(t.leaves()[0], t.leaves()[1]);
        assert_eq!(paths.len(), 32);
    }

    #[test]
    fn down_link_is_eliminated() {
        let mut t = Topology::build(&ClosConfig::testbed_128());
        let victim = t.fabric_up_links(0, 3)[1];
        t.link_mut(victim).set_up(false);
        let cat = PathCatalog::probe(&t);
        assert!(cat.eliminated_links().contains(&victim));
        // Paths from leaf 0 through that uplink are gone; one per dst leaf.
        let paths = cat.healthy_paths(t.leaves()[0], t.leaves()[5]);
        assert_eq!(paths.len(), 31);
        assert!(paths.iter().all(|p| p.up != victim));
        // Reverse direction unaffected (directed links).
        assert_eq!(cat.healthy_paths(t.leaves()[5], t.leaves()[0]).len(), 32);
    }

    #[test]
    fn degraded_link_is_also_eliminated() {
        // ECMP routing would still use a flapping link; the prober won't.
        let mut t = Topology::build(&ClosConfig::testbed_128());
        let victim = t.fabric_down_links(2, 4)[0];
        t.link_mut(victim).set_degradation(0.5);
        let cat = PathCatalog::probe(&t);
        assert!(cat.eliminated_links().contains(&victim));
    }

    #[test]
    fn same_leaf_has_no_paths() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let cat = PathCatalog::probe(&t);
        assert!(cat.healthy_paths(t.leaves()[0], t.leaves()[0]).is_empty());
    }
}
