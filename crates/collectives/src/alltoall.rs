//! All-to-all transfer plans: the Expert-Parallel token exchange.
//!
//! Unlike the ring schedule, an all-to-all is a *personalized* exchange:
//! every rank sends a distinct shard to every other rank, so the flow set
//! is the complete directed graph over the communicator — `R × (R−1)`
//! ordered pairs, one QP each. Per-pair byte shares come from an
//! [`EpSkew`]: uniform by default, or biased toward a *hot expert* rank
//! (token routing concentrates on popular experts), while each source
//! always sends exactly its full message `S` — skew redistributes bytes,
//! it never creates or destroys them.

use c4_topology::{GpuId, Topology};

use crate::comm::Communicator;

/// Ranks per all-to-all communicator the pair channel encoding supports
/// (src and dst rank each occupy one byte of the 16-bit channel).
pub const MAX_A2A_RANKS: usize = 256;

/// Hot-expert byte skew of an all-to-all exchange.
///
/// Destination rank `hot_rank` receives `factor ×` the weight of every
/// other destination; `share` renormalizes per source so the per-source
/// total stays exactly `1.0` whatever the skew. The default is uniform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpSkew {
    /// The over-popular expert's rank; `None` = uniform routing.
    pub hot_rank: Option<u32>,
    /// Weight multiplier of the hot rank relative to the others (≥ 0).
    pub factor: f64,
}

impl Default for EpSkew {
    fn default() -> Self {
        EpSkew {
            hot_rank: None,
            factor: 1.0,
        }
    }
}

impl EpSkew {
    /// A skew concentrating `factor ×` weight on `hot_rank`.
    pub fn hot(hot_rank: u32, factor: f64) -> Self {
        EpSkew {
            hot_rank: Some(hot_rank),
            factor,
        }
    }

    /// Destination weight of rank `dst`.
    fn weight(&self, dst: u32) -> f64 {
        match self.hot_rank {
            Some(h) if h == dst => self.factor.max(0.0),
            _ => 1.0,
        }
    }

    /// Fraction of source `src`'s message sent to destination `dst`
    /// (`src != dst`), renormalized over the source's `R−1` destinations so
    /// `Σ_{dst≠src} share(src, dst) = 1` for every source — total bytes are
    /// conserved under any skew.
    pub fn share(&self, src: u32, dst: u32, nranks: usize) -> f64 {
        debug_assert_ne!(src, dst, "all-to-all has no self edge");
        if nranks <= 1 {
            return 0.0;
        }
        let total: f64 = (0..nranks as u32)
            .filter(|&d| d != src)
            .map(|d| self.weight(d))
            .sum();
        if total <= 0.0 {
            // Degenerate skew (factor 0 with only the hot destination):
            // fall back to uniform.
            return 1.0 / (nranks - 1) as f64;
        }
        self.weight(dst) / total
    }
}

/// One ordered rank pair of the exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairEdge {
    /// Sending rank.
    pub src_rank: u32,
    /// Receiving rank.
    pub dst_rank: u32,
    /// Sending GPU.
    pub src_gpu: GpuId,
    /// Receiving GPU.
    pub dst_gpu: GpuId,
}

/// The complete flow plan of an all-to-all: every ordered rank pair once,
/// split into same-node (NVLink) and cross-node (fabric) edges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AllToAllPlan {
    /// Pairs whose ranks share a node (routed over NVLink).
    pub intra: Vec<PairEdge>,
    /// Pairs crossing a node boundary (routed by the path selector).
    pub inter: Vec<PairEdge>,
}

/// Packs an ordered rank pair into the 16-bit flow channel
/// (`src_rank` high byte, `dst_rank` low byte), so the engine can recover
/// the pair — and its skewed byte share — from a cached flow key without
/// rescanning the communicator.
pub fn pair_channel(src_rank: u32, dst_rank: u32) -> u16 {
    ((src_rank as u16) << 8) | (dst_rank as u16 & 0xFF)
}

/// Unpacks [`pair_channel`].
pub fn channel_pair(channel: u16) -> (u32, u32) {
    ((channel >> 8) as u32, (channel & 0xFF) as u32)
}

impl AllToAllPlan {
    /// Builds the pairwise plan for a communicator, in `(src, dst)`
    /// lexicographic rank order (the canonical selector call order).
    ///
    /// # Panics
    ///
    /// Panics when the communicator exceeds [`MAX_A2A_RANKS`] ranks — EP
    /// groups are expert-count sized, far below the channel encoding's
    /// 256-rank ceiling.
    pub fn build(topo: &Topology, comm: &Communicator) -> AllToAllPlan {
        let n = comm.nranks();
        assert!(
            n <= MAX_A2A_RANKS,
            "all-to-all supports at most {MAX_A2A_RANKS} ranks, got {n}"
        );
        let mut plan = AllToAllPlan::default();
        let nodes: Vec<_> = comm.devices().iter().map(|&g| topo.gpu(g).node).collect();
        for src_rank in 0..n as u32 {
            for dst_rank in 0..n as u32 {
                if src_rank == dst_rank {
                    continue;
                }
                let edge = PairEdge {
                    src_rank,
                    dst_rank,
                    src_gpu: comm.device(src_rank),
                    dst_gpu: comm.device(dst_rank),
                };
                if nodes[src_rank as usize] == nodes[dst_rank as usize] {
                    plan.intra.push(edge);
                } else {
                    plan.inter.push(edge);
                }
            }
        }
        plan
    }

    /// Total flows (one per ordered pair; all-to-all pins one QP per pair).
    pub fn flow_count(&self) -> usize {
        self.intra.len() + self.inter.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::{ClosConfig, NodeId, Topology};

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    /// One GPU per node, same local index — the EP-group shape.
    fn rail_comm(t: &Topology, nodes: usize, local: usize) -> Communicator {
        let devices: Vec<GpuId> = (0..nodes)
            .map(|n| t.gpu_at(NodeId::from_index(n), local))
            .collect();
        Communicator::new(9, devices, t).unwrap()
    }

    #[test]
    fn every_ordered_pair_appears_exactly_once() {
        let t = topo();
        let comm = rail_comm(&t, 5, 0);
        let plan = AllToAllPlan::build(&t, &comm);
        assert_eq!(plan.flow_count(), 5 * 4);
        assert!(plan.intra.is_empty(), "one GPU per node → all inter");
        let mut seen = std::collections::HashSet::new();
        for e in &plan.inter {
            assert!(seen.insert((e.src_rank, e.dst_rank)));
            assert_ne!(e.src_rank, e.dst_rank);
        }
    }

    #[test]
    fn same_node_pairs_are_intra() {
        let t = topo();
        // Two GPUs on node 0, one on node 1.
        let devices = vec![
            t.gpu_at(NodeId::from_index(0), 0),
            t.gpu_at(NodeId::from_index(0), 1),
            t.gpu_at(NodeId::from_index(1), 0),
        ];
        let comm = Communicator::new(3, devices, &t).unwrap();
        let plan = AllToAllPlan::build(&t, &comm);
        assert_eq!(plan.intra.len(), 2); // 0↔1 both directions
        assert_eq!(plan.inter.len(), 4); // {0,1}↔2 both directions
    }

    #[test]
    fn shares_sum_to_one_per_source() {
        for skew in [EpSkew::default(), EpSkew::hot(2, 4.0), EpSkew::hot(0, 0.0)] {
            for n in [2usize, 3, 8] {
                for src in 0..n as u32 {
                    let total: f64 = (0..n as u32)
                        .filter(|&d| d != src)
                        .map(|d| skew.share(src, d, n))
                        .sum();
                    assert!(
                        (total - 1.0).abs() < 1e-12,
                        "src {src} of {n} under {skew:?}: {total}"
                    );
                }
            }
        }
    }

    #[test]
    fn hot_rank_draws_factor_times_the_bytes() {
        let skew = EpSkew::hot(1, 3.0);
        let hot = skew.share(0, 1, 4);
        let cold = skew.share(0, 2, 4);
        assert!((hot / cold - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pair_channel_round_trips() {
        for (s, d) in [(0u32, 1u32), (7, 0), (255, 254), (12, 200)] {
            assert_eq!(channel_pair(pair_channel(s, d)), (s, d));
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_comm_panics() {
        let t = Topology::build(&ClosConfig::pod_grouped(64, 8));
        let devices: Vec<GpuId> = t.gpus().iter().take(257).map(|g| g.id).collect();
        let comm = Communicator::new(1, devices, &t).unwrap();
        let _ = AllToAllPlan::build(&t, &comm);
    }
}
