//! Communicators: groups of GPUs that perform collectives together.

use std::fmt;

use c4_topology::{GpuId, NodeId, Topology};

use crate::alltoall::EpSkew;

/// Tunables of the communication library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommConfig {
    /// RDMA QPs per rail stream (the paper's ACCL opens multiple QPs per
    /// connection and balances them over the bonded ports).
    pub qps_per_stream: u16,
    /// Byte skew of all-to-all exchanges (EP hot-expert routing); ignored
    /// by every other collective kind. Skew scales bytes, not routes, so
    /// it can change per iteration without invalidating cached plans.
    pub ep_skew: EpSkew,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            qps_per_stream: 2,
            ep_skew: EpSkew::default(),
        }
    }
}

/// A communicator: an ordered set of member GPUs (rank order) plus the
/// distinct nodes they live on.
///
/// # Example
///
/// ```
/// use c4_collectives::Communicator;
/// use c4_topology::{ClosConfig, Topology};
///
/// let topo = Topology::build(&ClosConfig::testbed_128());
/// let gpus: Vec<_> = (0..16).map(|i| topo.gpus()[i].id).collect();
/// let comm = Communicator::new(1, gpus, &topo).unwrap();
/// assert_eq!(comm.nranks(), 16);
/// assert_eq!(comm.nodes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communicator {
    id: u64,
    devices: Vec<GpuId>,
    nodes: Vec<NodeId>,
    incarnation: u32,
}

/// Error constructing a communicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommunicatorError {
    /// The device list was empty.
    Empty,
    /// The same GPU appears twice.
    DuplicateDevice(GpuId),
}

impl fmt::Display for CommunicatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommunicatorError::Empty => write!(f, "communicator needs at least one device"),
            CommunicatorError::DuplicateDevice(g) => {
                write!(f, "device {g} appears more than once")
            }
        }
    }
}

impl std::error::Error for CommunicatorError {}

impl Communicator {
    /// Creates a communicator over `devices` (rank order).
    ///
    /// # Errors
    ///
    /// Returns [`CommunicatorError`] when the list is empty or contains
    /// duplicates.
    pub fn new(id: u64, devices: Vec<GpuId>, topo: &Topology) -> Result<Self, CommunicatorError> {
        if devices.is_empty() {
            return Err(CommunicatorError::Empty);
        }
        let mut seen = std::collections::HashSet::new();
        for &d in &devices {
            if !seen.insert(d) {
                return Err(CommunicatorError::DuplicateDevice(d));
            }
        }
        let mut nodes = Vec::new();
        for &d in &devices {
            let n = topo.gpu(d).node;
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        Ok(Communicator {
            id,
            devices,
            nodes,
            incarnation: 0,
        })
    }

    /// The communicator id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Member devices in rank order.
    pub fn devices(&self) -> &[GpuId] {
        &self.devices
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.devices.len()
    }

    /// Distinct nodes, in first-appearance order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Rank of a device, if a member.
    pub fn rank_of(&self, gpu: GpuId) -> Option<u32> {
        self.devices
            .iter()
            .position(|&d| d == gpu)
            .map(|i| i as u32)
    }

    /// The device at a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn device(&self, rank: u32) -> GpuId {
        self.devices[rank as usize]
    }

    /// Member devices on the given node, rank order.
    pub fn devices_on(&self, topo: &Topology, node: NodeId) -> Vec<GpuId> {
        self.devices
            .iter()
            .copied()
            .filter(|&d| topo.gpu(d).node == node)
            .collect()
    }

    /// Restart epoch; bumped when the job restarts so ECMP re-hashes
    /// (connections are re-established from scratch).
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Bumps the restart epoch.
    pub fn bump_incarnation(&mut self) {
        self.incarnation += 1;
    }

    /// Sets the restart epoch and returns `self` (builder style).
    ///
    /// Used when a communicator is rebuilt over a *new* device set after
    /// steering swapped hardware: the rebuilt communicator keeps the same
    /// id but must carry `old incarnation + 1` so cached plans keyed on
    /// the previous incarnation can never be reused.
    #[must_use]
    pub fn with_incarnation(mut self, incarnation: u32) -> Self {
        self.incarnation = incarnation;
        self
    }

    /// True when all members live on one node (pure-NVLink communicator).
    pub fn is_single_node(&self) -> bool {
        self.nodes.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::ClosConfig;

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        let t = topo();
        assert_eq!(
            Communicator::new(1, vec![], &t).unwrap_err(),
            CommunicatorError::Empty
        );
        let g = t.gpus()[0].id;
        assert_eq!(
            Communicator::new(1, vec![g, g], &t).unwrap_err(),
            CommunicatorError::DuplicateDevice(g)
        );
    }

    #[test]
    fn nodes_listed_in_rank_order() {
        let t = topo();
        // One GPU from node 3, then node 0.
        let a = t.gpu_at(c4_topology::NodeId::from_index(3), 0);
        let b = t.gpu_at(c4_topology::NodeId::from_index(0), 0);
        let comm = Communicator::new(9, vec![a, b], &t).unwrap();
        assert_eq!(comm.nodes().len(), 2);
        assert_eq!(comm.nodes()[0].index(), 3);
        assert_eq!(comm.rank_of(b), Some(1));
        assert_eq!(comm.device(0), a);
        assert!(!comm.is_single_node());
    }

    #[test]
    fn single_node_detection() {
        let t = topo();
        let devices: Vec<_> = t.node(c4_topology::NodeId::from_index(0)).gpus.clone();
        let comm = Communicator::new(2, devices, &t).unwrap();
        assert!(comm.is_single_node());
    }

    #[test]
    fn incarnation_bumps() {
        let t = topo();
        let mut comm = Communicator::new(3, vec![t.gpus()[0].id], &t).unwrap();
        assert_eq!(comm.incarnation(), 0);
        comm.bump_incarnation();
        assert_eq!(comm.incarnation(), 1);
    }

    #[test]
    fn devices_on_filters_by_node() {
        let t = topo();
        let n0 = c4_topology::NodeId::from_index(0);
        let n1 = c4_topology::NodeId::from_index(1);
        let mut devices = t.node(n0).gpus.clone();
        devices.extend_from_slice(&t.node(n1).gpus);
        let comm = Communicator::new(4, devices, &t).unwrap();
        assert_eq!(comm.devices_on(&t, n0).len(), 8);
        assert_eq!(comm.devices_on(&t, n1).len(), 8);
    }
}
