//! The collective execution engine: plan → flows → drain → result, with
//! telemetry emission.
//!
//! Two entry points:
//!
//! * [`run_collective`] — one collective on an otherwise idle network;
//! * [`run_concurrent`] — several collectives (e.g. the paper's 8
//!   simultaneous allreduce jobs, Fig 10) sharing the network in a single
//!   drain, so their flows contend for links exactly as concurrent tenants
//!   do. A single [`PathSelector`] serves all requests — matching the
//!   paper's design where one C4P master is the control center for multiple
//!   jobs/tenants (§III-B).

use std::collections::HashMap;
use std::time::Instant;

use c4_netsim::{drain, DrainConfig, FlowKey, FlowSpec, PathChoice, PathSelector};
use c4_simcore::{scoped_map, ByteSize, DetRng, ParallelPolicy, SimTime};
use c4_telemetry::{
    AlgoKind, CollKind, CollRecord, ConnKey, DataType, RankRecord, WorkerTelemetry,
};
use c4_topology::{LinkId, Topology};

use crate::alltoall::{channel_pair, pair_channel, AllToAllPlan};
use crate::comm::{CommConfig, Communicator};
use crate::plan::{bus_factor, RingPlan};
use crate::result::CollectiveResult;

/// Minimum route-assembly items (intra edges + boundary QPs) in one
/// [`build_plan`] before worker threads are spawned; below it the
/// per-thread setup cost exceeds the topology walks. A wall-clock
/// heuristic only — plans are bit-identical either way.
const PARALLEL_MIN_ROUTES: usize = 64;

/// Per-QP byte-split weight function override. When a caller passes `None`,
/// the engine reads [`PathSelector::byte_split_weight`] straight off the
/// selector instead — a borrow on the hot path, so C4P's dynamic load
/// balancing needs no per-iteration clone of its rate table. Weights are
/// normalized per stream; non-positive weights are treated as a minimal
/// share.
pub type QpWeightFn<'a> = dyn Fn(&FlowKey) -> f64 + 'a;

/// One collective to execute.
#[derive(Debug, Clone)]
pub struct CollectiveRequest<'a> {
    /// The communicator performing the operation.
    pub comm: &'a Communicator,
    /// Sequence number within the communicator.
    pub seq: u64,
    /// Operation type.
    pub kind: CollKind,
    /// Element type.
    pub dtype: DataType,
    /// Element count (per-rank payload `S = count × dtype`).
    pub count: u64,
    /// Library tunables.
    pub config: CommConfig,
    /// Earliest possible start.
    pub start: SimTime,
    /// Per-rank ready times (stragglers); the collective enters the network
    /// when the last rank arrives. `None` = all ready at `start`.
    pub rank_ready: Option<&'a [SimTime]>,
    /// Network drain configuration (`start` is overridden).
    pub drain: DrainConfig,
}

/// Flow specs of one request plus bookkeeping to split outcomes back out.
struct BuiltRequest {
    specs: Vec<FlowSpec>,
    intra_count: usize,
    message_bytes: ByteSize,
    edge_bytes: ByteSize,
    started: SimTime,
    min_ready: SimTime,
}

/// The byte-independent route structure of one collective: flow keys and
/// routes before message sizes and QP byte-split weights are applied. This
/// is the expensive part of request construction (ring planning, path
/// selection, route assembly) and the part [`PlanCache`] keeps.
#[derive(Debug, Clone)]
struct PlanSpec {
    /// Intra-node NVLink edges.
    intra: Vec<(FlowKey, Vec<LinkId>)>,
    /// Boundary streams, one inner vec of Q QP flows per stream.
    streams: Vec<Vec<(FlowKey, Vec<LinkId>)>>,
}

/// Identity of a cached plan. Message size/kind/dtype are deliberately
/// absent: they scale bytes, not routes — an all-to-all's EP skew likewise
/// rotates per iteration without re-planning, so only the *shape class*
/// (pairwise vs ring) is part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    comm: u64,
    incarnation: u32,
    qps: u16,
    /// True for the pairwise all-to-all shape, false for the ring family.
    alltoall: bool,
}

#[derive(Debug, Clone)]
struct PlanEntry {
    topo_version: u64,
    selector_token: u64,
    plan: PlanSpec,
}

/// Caches per-(communicator, selector state, topology version) flow-plan
/// construction across BSP iterations.
///
/// Real collectives establish their QP connections once per communicator
/// incarnation and reuse them every iteration; rebuilding identical
/// [`FlowSpec`] vectors per iteration was pure overhead. An entry is reused
/// only while **all three** of its validity coordinates hold:
///
/// * the communicator id + incarnation (restarts re-plan),
/// * the selector's [`PathSelector::cache_token`] (C4P rebalance/reset and
///   fresh ECMP salts re-plan; selectors returning `None` are never cached),
/// * [`Topology::version`] (any fault injection, degradation, node
///   isolation or spine toggle re-plans — the "explicit invalidation on
///   fault/steering events" rule).
///
/// [`PlanCache::clear`] force-invalidates everything, e.g. when a steering
/// decision replaced hardware outside the topology's mutation tracking.
/// A cache is only meaningful against a single `Topology` instance.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entries: HashMap<PlanKey, PlanEntry>,
    hits: u64,
    misses: u64,
    build_wall_ms: f64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Plans (re)built so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Wall-clock milliseconds spent building cache-missed plans (ring
    /// planning, path selection, route assembly) through this cache — the
    /// plan-build cost a BSP loop actually paid, which is what the scale
    /// benchmarks record.
    pub fn build_wall_ms(&self) -> f64 {
        self.build_wall_ms
    }

    /// Cached plan count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached plan (explicit fault/steering invalidation).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops the cached plans of one communicator id (all incarnations).
    pub fn invalidate_comm(&mut self, comm: u64) {
        self.entries.retain(|k, _| k.comm != comm);
    }

    /// Surgically re-validates cached plans after a topology mutation.
    ///
    /// [`Topology::version`] is a *global* counter: isolating one node
    /// bumps it and every cached entry — including plans of jobs nowhere
    /// near the fault — would miss on its next lookup. `rebase` restores
    /// the hits of the unaffected plans: entries whose routes touch any of
    /// the `affected` links are dropped, every other stale entry is
    /// re-stamped to the topology's current version and keeps serving
    /// hits. Returns the number of entries dropped.
    ///
    /// The caller must pass the union of **all** links whose state changed
    /// since the cache last matched the topology version (a fleet
    /// controller calls this after every batch of fault/repair events).
    /// Passing an incomplete set cannot route traffic through a dead link
    /// — a wrongly re-stamped entry is simply a plan the selector would no
    /// longer pick, not an invalid route — but for *down* links the set
    /// must be complete or [`PlanCache::any_route_through`] audits will
    /// flag the stale route.
    pub fn rebase(&mut self, topo: &Topology, affected: &[LinkId]) -> usize {
        let version = topo.version();
        let before = self.entries.len();
        self.entries.retain(|_, entry| {
            if entry.topo_version == version {
                return true;
            }
            if plan_routes_through(&entry.plan, affected) {
                return false;
            }
            entry.topo_version = version;
            true
        });
        before - self.entries.len()
    }

    /// True when any cached plan routes through one of `links`.
    ///
    /// Audit hook for the fleet controller's zero-stale-route invariant:
    /// after isolating a node and rebasing, no cache may still hold a plan
    /// through the victim's host links.
    pub fn any_route_through(&self, links: &[LinkId]) -> bool {
        self.entries
            .values()
            .any(|e| plan_routes_through(&e.plan, links))
    }
}

/// True when any route of `plan` (intra edges or boundary streams) uses
/// one of `links`.
fn plan_routes_through(plan: &PlanSpec, links: &[LinkId]) -> bool {
    let touches = |route: &[LinkId]| route.iter().any(|l| links.contains(l));
    plan.intra.iter().any(|(_, route)| touches(route))
        || plan
            .streams
            .iter()
            .any(|stream| stream.iter().any(|(_, route)| touches(route)))
}

/// Where a request's plan lives after [`plan_requests`]: in the cache (by
/// key) or in the call-local overflow vector (uncacheable selectors).
enum PlanSource {
    Cached(PlanKey),
    Owned(usize),
}

/// The route structure a cache-missed request is waiting to assemble.
enum PendingShape {
    /// Ring family (allreduce/allgather/…): intra chains + rail streams.
    Ring(RingPlan),
    /// Pairwise all-to-all: one flow per ordered rank pair.
    A2a(AllToAllPlan),
}

/// A cache-missed request awaiting plan construction.
struct PendingPlan {
    source_idx: usize,
    qps: u16,
    shape: PendingShape,
    parallel: ParallelPolicy,
    key_start: usize,
}

/// Builds the boundary-stream flow keys of one ring plan in the canonical
/// (stream, qp) order — the order selectors have always been called in.
fn boundary_keys(ring: &RingPlan, comm: &Communicator, qps: u16, out: &mut Vec<FlowKey>) {
    for stream in &ring.boundaries {
        for q in 0..qps {
            out.push(FlowKey {
                src_gpu: stream.src_gpu,
                dst_gpu: stream.dst_gpu,
                comm: comm.id(),
                channel: stream.boundary as u16,
                qp: q,
                incarnation: comm.incarnation(),
            });
        }
    }
}

/// Builds the inter-node flow keys of one all-to-all plan in the canonical
/// `(src, dst)` pair order. The channel encodes the rank pair
/// ([`pair_channel`]) so the byte-share of a cached flow is recoverable
/// without the communicator; all-to-all pins one QP per pair.
fn a2a_keys(plan: &AllToAllPlan, comm: &Communicator, out: &mut Vec<FlowKey>) {
    for e in &plan.inter {
        out.push(FlowKey {
            src_gpu: e.src_gpu,
            dst_gpu: e.dst_gpu,
            comm: comm.id(),
            channel: pair_channel(e.src_rank, e.dst_rank),
            qp: 0,
            incarnation: comm.incarnation(),
        });
    }
}

/// Assembles one plan from its ring and the selector's choices: intra-node
/// routes plus per-stream inter-node route assembly, fanned out over
/// `parallel` scoped threads (bit-identical at any thread count).
fn assemble_plan(
    topo: &Topology,
    ring: &RingPlan,
    comm: &Communicator,
    qps: u16,
    keys: &[FlowKey],
    choices: &[PathChoice],
    parallel: ParallelPolicy,
) -> PlanSpec {
    let route_items = ring.intra_edges.len() + ring.boundaries.len() * qps as usize;
    let parallel = if route_items < PARALLEL_MIN_ROUTES {
        ParallelPolicy::SERIAL
    } else {
        parallel
    };

    // Intra-node NVLink edges, each carrying the full stream B.
    let intra: Vec<(FlowKey, Vec<LinkId>)> =
        scoped_map(parallel, &ring.intra_edges, |&(src, dst)| {
            let key = FlowKey {
                src_gpu: src,
                dst_gpu: dst,
                comm: comm.id(),
                channel: u16::MAX,
                qp: 0,
                incarnation: comm.incarnation(),
            };
            (key, topo.intra_node_route(src, dst))
        });

    // Route assembly per stream — the expensive per-QP topology walk, a
    // pure function of (topology, key, choice).
    let stream_chunks: Vec<(&[FlowKey], &[PathChoice])> = keys
        .chunks(qps as usize)
        .zip(choices.chunks(qps as usize))
        .collect();
    let streams: Vec<Vec<(FlowKey, Vec<LinkId>)>> =
        scoped_map(parallel, &stream_chunks, |&(keys, choices)| {
            keys.iter()
                .zip(choices)
                .map(|(&k, choice)| {
                    let src_port = topo.port_of_gpu(k.src_gpu, choice.src_side);
                    let dst_port = topo.port_of_gpu(k.dst_gpu, choice.dst_side);
                    let route = topo.inter_node_route(
                        k.src_gpu,
                        src_port,
                        choice.fabric.as_ref(),
                        dst_port,
                        k.dst_gpu,
                    );
                    (k, route)
                })
                .collect()
        });

    PlanSpec { intra, streams }
}

/// Assembles one all-to-all plan: same-node pairs over NVLink, cross-node
/// pairs through the selector's choices — each a single-QP "stream" so the
/// byte-application layer treats pairs uniformly. Route assembly fans out
/// like the ring path (bit-identical at any thread count).
fn assemble_a2a_plan(
    topo: &Topology,
    a2a: &AllToAllPlan,
    comm: &Communicator,
    keys: &[FlowKey],
    choices: &[PathChoice],
    parallel: ParallelPolicy,
) -> PlanSpec {
    let parallel = if a2a.flow_count() < PARALLEL_MIN_ROUTES {
        ParallelPolicy::SERIAL
    } else {
        parallel
    };

    let intra: Vec<(FlowKey, Vec<LinkId>)> = scoped_map(parallel, &a2a.intra, |e| {
        let key = FlowKey {
            src_gpu: e.src_gpu,
            dst_gpu: e.dst_gpu,
            comm: comm.id(),
            channel: pair_channel(e.src_rank, e.dst_rank),
            qp: 0,
            incarnation: comm.incarnation(),
        };
        (key, topo.intra_node_route(e.src_gpu, e.dst_gpu))
    });

    let pairs: Vec<(&FlowKey, &PathChoice)> = keys.iter().zip(choices).collect();
    let streams: Vec<Vec<(FlowKey, Vec<LinkId>)>> =
        scoped_map(parallel, &pairs, |&(&k, choice)| {
            let src_port = topo.port_of_gpu(k.src_gpu, choice.src_side);
            let dst_port = topo.port_of_gpu(k.dst_gpu, choice.dst_side);
            let route = topo.inter_node_route(
                k.src_gpu,
                src_port,
                choice.fabric.as_ref(),
                dst_port,
                k.dst_gpu,
            );
            vec![(k, route)]
        });

    PlanSpec { intra, streams }
}

/// Resolves every request's route plan: cache hits are served directly;
/// **all** cache misses are planned together — their flow keys concatenate
/// in request order and go through one [`PathSelector::select_batch`] call,
/// so a stateful selector sees exactly the key sequence the per-request
/// serial builds produced, while batch-capable selectors (C4P) fan the
/// selection over worker threads. Uncacheable selectors (token `None`)
/// bypass the cache entirely rather than fill it with unservable entries.
fn plan_requests(
    topo: &Topology,
    reqs: &[CollectiveRequest<'_>],
    selector: &mut dyn PathSelector,
    mut cache: Option<&mut PlanCache>,
) -> (Vec<PlanSource>, Vec<PlanSpec>) {
    let token = selector.cache_token();
    let cacheable = cache.is_some() && token.is_some();
    let build_start = Instant::now();
    let mut sources: Vec<PlanSource> = Vec::with_capacity(reqs.len());
    let mut pending: Vec<PendingPlan> = Vec::new();
    let mut pending_keys: Vec<PlanKey> = Vec::new();
    let mut all_keys: Vec<FlowKey> = Vec::new();

    for req in reqs {
        let comm = req.comm;
        let alltoall = req.kind == CollKind::AllToAll;
        // All-to-all pins one QP per ordered pair; the ring family splits
        // each rail stream over the configured QP count.
        let qps = if alltoall {
            1
        } else {
            req.config.qps_per_stream.max(1)
        };
        let key = PlanKey {
            comm: comm.id(),
            incarnation: comm.incarnation(),
            qps,
            alltoall,
        };
        let usable = match (cache.as_deref(), token) {
            (Some(c), Some(token)) => c
                .entries
                .get(&key)
                .is_some_and(|e| e.topo_version == topo.version() && e.selector_token == token),
            _ => false,
        };
        // A duplicate of a plan already pending in THIS call is a hit too:
        // the earlier request's build will populate the cache before
        // flow-spec assembly reads it (the old per-request get_or_build
        // served the second request the same way).
        if usable || (cacheable && pending_keys.contains(&key)) {
            if let Some(c) = cache.as_deref_mut() {
                c.hits += 1;
            }
            sources.push(PlanSource::Cached(key));
            continue;
        }
        if let (Some(c), Some(_)) = (cache.as_deref_mut(), token) {
            c.misses += 1;
        }
        if cacheable {
            pending_keys.push(key);
        }
        let key_start = all_keys.len();
        let shape = if alltoall {
            let a2a = AllToAllPlan::build(topo, comm);
            a2a_keys(&a2a, comm, &mut all_keys);
            PendingShape::A2a(a2a)
        } else {
            let ring = RingPlan::build(topo, comm);
            boundary_keys(&ring, comm, qps, &mut all_keys);
            PendingShape::Ring(ring)
        };
        pending.push(PendingPlan {
            source_idx: sources.len(),
            qps,
            shape,
            parallel: req.drain.parallel,
            key_start,
        });
        sources.push(PlanSource::Owned(usize::MAX)); // patched below
    }

    // One batched selection across every missing plan.
    let choices: Vec<PathChoice> = if all_keys.is_empty() {
        Vec::new()
    } else {
        selector.select_batch(topo, &all_keys)
    };

    let mut owned: Vec<PlanSpec> = Vec::with_capacity(pending.len());
    for (i, p) in pending.iter().enumerate() {
        let req = &reqs[p.source_idx];
        let key_end = pending
            .get(i + 1)
            .map(|n| n.key_start)
            .unwrap_or(all_keys.len());
        let plan = match &p.shape {
            PendingShape::Ring(ring) => assemble_plan(
                topo,
                ring,
                req.comm,
                p.qps,
                &all_keys[p.key_start..key_end],
                &choices[p.key_start..key_end],
                p.parallel,
            ),
            PendingShape::A2a(a2a) => assemble_a2a_plan(
                topo,
                a2a,
                req.comm,
                &all_keys[p.key_start..key_end],
                &choices[p.key_start..key_end],
                p.parallel,
            ),
        };
        match (cache.as_deref_mut(), token) {
            (Some(c), Some(token)) => {
                let key = PlanKey {
                    comm: req.comm.id(),
                    incarnation: req.comm.incarnation(),
                    qps: p.qps,
                    alltoall: matches!(p.shape, PendingShape::A2a(_)),
                };
                c.entries.insert(
                    key.clone(),
                    PlanEntry {
                        topo_version: topo.version(),
                        selector_token: token,
                        plan,
                    },
                );
                sources[p.source_idx] = PlanSource::Cached(key);
            }
            _ => {
                sources[p.source_idx] = PlanSource::Owned(owned.len());
                owned.push(plan);
            }
        }
    }
    if !pending.is_empty() {
        if let Some(c) = cache {
            c.build_wall_ms += build_start.elapsed().as_secs_f64() * 1e3;
        }
    }
    (sources, owned)
}

/// Turns a resolved plan into the request's flow specs and timing metadata.
fn build_request(
    req: &CollectiveRequest<'_>,
    plan: &PlanSpec,
    weight_of: &dyn Fn(&FlowKey) -> f64,
) -> BuiltRequest {
    let comm = req.comm;
    let nranks = comm.nranks();
    if let Some(ready) = req.rank_ready {
        assert_eq!(ready.len(), nranks, "rank_ready length mismatch");
    }

    let message_bytes = ByteSize::from_bytes(req.count * req.dtype.size_bytes());
    let factor = bus_factor(req.kind, nranks);
    let edge_bytes = message_bytes.scaled(factor);

    // BSP: the collective enters the network when the last rank arrives.
    let min_ready = req
        .rank_ready
        .map(|r| r.iter().copied().min().unwrap_or(req.start))
        .unwrap_or(req.start);
    let started = req
        .rank_ready
        .map(|r| r.iter().copied().max().unwrap_or(req.start))
        .unwrap_or(req.start)
        .max(req.start);

    let flow_count = plan.intra.len() + plan.streams.iter().map(Vec::len).sum::<usize>();
    let mut specs: Vec<FlowSpec> = Vec::with_capacity(flow_count);

    if req.kind == CollKind::AllToAll {
        // Pairwise exchange: every flow (NVLink or fabric) carries its
        // rank pair's skewed share of the source's message. The pair is
        // decoded from the channel, so cached plans stay byte-independent
        // and the skew can rotate per iteration.
        let skew = req.config.ep_skew;
        let pair_bytes = |key: &FlowKey| {
            let (src, dst) = channel_pair(key.channel);
            message_bytes.scaled(skew.share(src, dst, nranks))
        };
        for (key, route) in &plan.intra {
            specs.push(FlowSpec::new(*key, pair_bytes(key), route.clone()));
        }
        let intra_count = specs.len();
        for stream in &plan.streams {
            for (key, route) in stream {
                specs.push(FlowSpec::new(*key, pair_bytes(key), route.clone()));
            }
        }
        return BuiltRequest {
            specs,
            intra_count,
            message_bytes,
            edge_bytes,
            started,
            min_ready,
        };
    }

    for (key, route) in &plan.intra {
        specs.push(FlowSpec::new(*key, edge_bytes, route.clone()));
    }
    let intra_count = specs.len();

    // Boundary streams: B bytes per rail, split across Q QPs by weight.
    for stream in &plan.streams {
        let raw: Vec<f64> = stream
            .iter()
            .map(|(k, _)| {
                let w = weight_of(k);
                if w.is_finite() && w > 0.0 {
                    w
                } else {
                    1e-3
                }
            })
            .collect();
        let total: f64 = raw.iter().sum();
        for ((k, route), w) in stream.iter().zip(&raw) {
            specs.push(FlowSpec::new(
                *k,
                edge_bytes.scaled(w / total),
                route.clone(),
            ));
        }
    }

    BuiltRequest {
        specs,
        intra_count,
        message_bytes,
        edge_bytes,
        started,
        min_ready,
    }
}

/// Records telemetry for one completed/hung request.
fn emit_telemetry(
    topo: &Topology,
    req: &CollectiveRequest<'_>,
    built: &BuiltRequest,
    outcomes: &[c4_netsim::FlowOutcome],
    finished: Option<SimTime>,
    tel: &mut [WorkerTelemetry],
) {
    let comm = req.comm;
    for (rank, &gpu) in comm.devices().iter().enumerate() {
        tel[gpu.index()].record_coll(CollRecord {
            comm: comm.id(),
            seq: req.seq,
            rank: rank as u32,
            kind: req.kind,
            algo: AlgoKind::Ring,
            dtype: req.dtype,
            count: req.count,
            start: built.started,
            end: finished,
        });
        if let Some(ready) = req.rank_ready {
            tel[gpu.index()].record_rank(RankRecord {
                comm: comm.id(),
                rank: rank as u32,
                step: req.seq,
                compute: ready[rank] - req.start,
                ready_delay: ready[rank] - built.min_ready,
                arrived: ready[rank],
            });
        }
    }
    for (spec, outcome) in built.specs.iter().zip(outcomes).skip(built.intra_count) {
        if let (Some(finish), Some(start_port)) = (
            outcome.finish,
            spec.route.iter().find_map(|&l| match topo.link(l).kind() {
                c4_topology::LinkKind::HostUp(p) => Some(p),
                _ => None,
            }),
        ) {
            let key = ConnKey {
                comm: comm.id(),
                channel: spec.key.channel,
                qp: spec.key.qp,
                src_gpu: spec.key.src_gpu,
                dst_gpu: spec.key.dst_gpu,
            };
            tel[spec.key.src_gpu.index()].record_message(
                key,
                start_port,
                spec.bytes.as_bytes(),
                finish - outcome.start,
                finish,
            );
        }
    }
}

/// Executes several collectives concurrently in one shared network drain.
///
/// Equivalent to [`run_concurrent_cached`] without a plan cache; see there
/// for the drain-config merge rule.
///
/// # Panics
///
/// Panics if `reqs` is empty, a `rank_ready` length mismatches, or
/// `telemetry` is too short to index a member GPU.
pub fn run_concurrent(
    topo: &Topology,
    reqs: &[CollectiveRequest<'_>],
    selector: &mut dyn PathSelector,
    qp_weights: Option<&QpWeightFn<'_>>,
    rng: &mut DetRng,
    telemetry: Option<&mut [WorkerTelemetry]>,
) -> Vec<CollectiveResult> {
    run_concurrent_cached(topo, reqs, selector, qp_weights, rng, telemetry, None)
}

/// Executes several collectives concurrently in one shared network drain,
/// optionally reusing cached flow plans across calls (BSP iterations).
///
/// Drain-config merge rule for the shared drain: `start` is the earliest
/// request start; `deadline` is the **earliest** deadline of any request
/// (requests without a deadline don't constrain it) — the shared drain
/// cannot outlive any one participant's give-up horizon, so the tightest
/// caller wins; all remaining knobs (epoch, rate noise, CNP model) come
/// from the first request. Results come back in request order.
///
/// # Panics
///
/// Panics if `reqs` is empty, a `rank_ready` length mismatches, or
/// `telemetry` is too short to index a member GPU.
pub fn run_concurrent_cached(
    topo: &Topology,
    reqs: &[CollectiveRequest<'_>],
    selector: &mut dyn PathSelector,
    qp_weights: Option<&QpWeightFn<'_>>,
    rng: &mut DetRng,
    mut telemetry: Option<&mut [WorkerTelemetry]>,
    mut cache: Option<&mut PlanCache>,
) -> Vec<CollectiveResult> {
    assert!(
        !reqs.is_empty(),
        "run_concurrent needs at least one request"
    );
    if let Some(tel) = telemetry.as_deref() {
        let max_gpu = reqs
            .iter()
            .flat_map(|r| r.comm.devices())
            .map(|g| g.index())
            .max()
            .unwrap_or(0);
        assert!(tel.len() > max_gpu, "telemetry slice too short");
    }

    // Resolve all route plans first (cache hits + one batched build for
    // the misses), then apply message bytes and QP weights per request.
    let (sources, owned) = plan_requests(topo, reqs, selector, cache.as_deref_mut());
    let cache_ref = cache.as_deref();
    let sel_ref: &dyn PathSelector = &*selector;
    let weight_of = |k: &FlowKey| qp_weights.map_or_else(|| sel_ref.byte_split_weight(k), |f| f(k));
    let built: Vec<BuiltRequest> = reqs
        .iter()
        .zip(&sources)
        .map(|(r, source)| {
            let plan: &PlanSpec = match source {
                PlanSource::Cached(key) => {
                    &cache_ref.expect("cached source implies a cache").entries[key].plan
                }
                PlanSource::Owned(i) => &owned[*i],
            };
            build_request(r, plan, &weight_of)
        })
        .collect();

    // One shared drain over all flows. Note: flows of late-starting requests
    // are assumed active from the common start (the fluid model has no
    // per-flow start offsets); BSP iteration experiments use aligned starts.
    let common_start = built
        .iter()
        .map(|b| b.started)
        .min()
        .expect("non-empty requests");
    let deadline = reqs.iter().filter_map(|r| r.drain.deadline).min();
    let all_specs: Vec<FlowSpec> = built.iter().flat_map(|b| b.specs.clone()).collect();
    let drain_cfg = DrainConfig {
        start: common_start,
        deadline,
        ..reqs[0].drain.clone()
    };
    let report = drain(topo, &all_specs, &drain_cfg, rng);

    // Split outcomes back per request.
    let mut results = Vec::with_capacity(reqs.len());
    let mut offset = 0usize;
    for (req, b) in reqs.iter().zip(&built) {
        let n = b.specs.len();
        let outcomes = &report.outcomes[offset..offset + n];
        offset += n;
        let all_done = outcomes.iter().all(|o| o.completed());
        let finished = if n == 0 {
            Some(b.started)
        } else if all_done {
            outcomes.iter().filter_map(|o| o.finish).max()
        } else {
            None
        };
        if let Some(tel) = telemetry.as_deref_mut() {
            emit_telemetry(topo, req, b, outcomes, finished, tel);
        }
        let sub_report = c4_netsim::DrainReport {
            outcomes: outcomes.to_vec(),
            end: finished.unwrap_or(report.end),
            link_bytes: report.link_bytes.clone(),
            cnp_per_port: report.cnp_per_port.clone(),
            congested_flows: report.congested_flows,
            solver: report.solver,
        };
        results.push(CollectiveResult {
            comm: req.comm.id(),
            seq: req.seq,
            kind: req.kind,
            message_bytes: b.message_bytes,
            edge_bytes: b.edge_bytes,
            started: b.started,
            finished,
            intra_outcomes: outcomes[..b.intra_count].to_vec(),
            qp_outcomes: outcomes[b.intra_count..].to_vec(),
            report: sub_report,
        });
    }
    results
}

/// Executes one collective with the **tree algorithm** (paper Fig 6):
/// a reduce phase up a binary rank tree followed by a broadcast phase down
/// it, each moving the full message `S` over every tree edge.
///
/// Inter-node tree edges route through the child/parent GPUs' own rails via
/// the selector; intra-node edges use NVLink. With no ring pipelining, large
/// messages are slower than [`run_collective`]'s ring — the reason the
/// paper's benchmarks pin the ring algorithm.
///
/// # Panics
///
/// Panics if `telemetry` is too short to index every member GPU.
pub fn run_tree_collective(
    topo: &Topology,
    req: &CollectiveRequest<'_>,
    selector: &mut dyn PathSelector,
    rng: &mut DetRng,
    telemetry: Option<&mut [WorkerTelemetry]>,
) -> CollectiveResult {
    let comm = req.comm;
    let message_bytes = ByteSize::from_bytes(req.count * req.dtype.size_bytes());
    let plan = crate::plan::TreePlan::build(comm);
    let started = req.start;

    let mut build_phase =
        |edges: &[(c4_topology::GpuId, c4_topology::GpuId)], phase: u16| -> Vec<FlowSpec> {
            let keys: Vec<FlowKey> = edges
                .iter()
                .map(|&(src, dst)| FlowKey {
                    src_gpu: src,
                    dst_gpu: dst,
                    comm: comm.id(),
                    channel: phase,
                    qp: 0,
                    incarnation: comm.incarnation(),
                })
                .collect();
            // Inter-node edges go through the selector as one batch (same
            // decisions as edge-by-edge `select`, by the batch contract).
            let inter_keys: Vec<FlowKey> = keys
                .iter()
                .zip(edges)
                .filter(|(_, &(src, dst))| topo.gpu(src).node != topo.gpu(dst).node)
                .map(|(&k, _)| k)
                .collect();
            let mut choices = selector.select_batch(topo, &inter_keys).into_iter();
            keys.iter()
                .zip(edges)
                .map(|(&key, &(src, dst))| {
                    let route = if topo.gpu(src).node == topo.gpu(dst).node {
                        topo.intra_node_route(src, dst)
                    } else {
                        let choice = choices.next().expect("one choice per inter edge");
                        let sp = topo.port_of_gpu(src, choice.src_side);
                        let dp = topo.port_of_gpu(dst, choice.dst_side);
                        topo.inter_node_route(src, sp, choice.fabric.as_ref(), dp, dst)
                    };
                    FlowSpec::new(key, message_bytes, route)
                })
                .collect()
        };

    // Phase 1: reduce up. Phase 2: broadcast down, starting when the reduce
    // finished everywhere (BSP within the operation).
    let up_specs = build_phase(&plan.up_edges, u16::MAX - 1);
    let up_report = drain(
        topo,
        &up_specs,
        &DrainConfig {
            start: started,
            ..req.drain.clone()
        },
        rng,
    );
    let (finished, down_report, down_specs) = if up_report.all_completed() {
        let down_specs = build_phase(&plan.down_edges, u16::MAX - 2);
        let report = drain(
            topo,
            &down_specs,
            &DrainConfig {
                start: up_report.end,
                ..req.drain.clone()
            },
            rng,
        );
        let fin = report.all_completed().then_some(report.end);
        (fin, Some(report), down_specs)
    } else {
        (None, None, Vec::new())
    };
    let finished = if plan.up_edges.is_empty() {
        Some(started)
    } else {
        finished
    };

    if let Some(tel) = telemetry {
        for (rank, &gpu) in comm.devices().iter().enumerate() {
            tel[gpu.index()].record_coll(CollRecord {
                comm: comm.id(),
                seq: req.seq,
                rank: rank as u32,
                kind: req.kind,
                algo: AlgoKind::Tree,
                dtype: req.dtype,
                count: req.count,
                start: started,
                end: finished,
            });
        }
    }

    // Report busbw with the standard factor so ring and tree runs compare
    // on the same metric.
    let factor = bus_factor(req.kind, comm.nranks());
    let edge_bytes = message_bytes.scaled(factor);
    let mut qp_outcomes = up_report.outcomes.clone();
    let mut link_bytes = up_report.link_bytes.clone();
    if let Some(down) = &down_report {
        qp_outcomes.extend(down.outcomes.iter().cloned());
        for (a, b) in link_bytes.iter_mut().zip(&down.link_bytes) {
            *a += b;
        }
    }
    let _ = down_specs;
    let end = finished.unwrap_or(up_report.end);
    let mut solver = up_report.solver;
    if let Some(down) = &down_report {
        solver.merge(&down.solver);
    }
    CollectiveResult {
        comm: comm.id(),
        seq: req.seq,
        kind: req.kind,
        message_bytes,
        edge_bytes,
        started,
        finished,
        intra_outcomes: Vec::new(),
        qp_outcomes: qp_outcomes.clone(),
        report: c4_netsim::DrainReport {
            outcomes: qp_outcomes,
            end,
            link_bytes,
            cnp_per_port: up_report.cnp_per_port,
            congested_flows: up_report.congested_flows,
            solver,
        },
    }
}

/// Executes one collective on an otherwise idle network and optionally
/// records telemetry into per-worker stores (indexed by global GPU id).
///
/// # Panics
///
/// Panics if `rank_ready` is provided with a length different from the
/// communicator's rank count, or if `telemetry` is too short to index every
/// member GPU.
pub fn run_collective(
    topo: &Topology,
    req: &CollectiveRequest<'_>,
    selector: &mut dyn PathSelector,
    qp_weights: Option<&QpWeightFn<'_>>,
    rng: &mut DetRng,
    telemetry: Option<&mut [WorkerTelemetry]>,
) -> CollectiveResult {
    run_concurrent(
        topo,
        std::slice::from_ref(req),
        selector,
        qp_weights,
        rng,
        telemetry,
    )
    .pop()
    .expect("one request yields one result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_netsim::{EcmpSelector, RailLocalSelector};
    use c4_simcore::SimDuration;
    use c4_topology::{ClosConfig, GpuId, NodeId};

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    fn full_comm(t: &Topology, nodes: usize) -> Communicator {
        full_comm_at(t, 0, nodes, 1)
    }

    fn full_comm_at(t: &Topology, first: usize, nodes: usize, id: u64) -> Communicator {
        let devices: Vec<GpuId> = (first..first + nodes)
            .flat_map(|n| t.node(NodeId::from_index(n)).gpus.clone())
            .collect();
        Communicator::new(id, devices, t).unwrap()
    }

    fn request<'a>(comm: &'a Communicator) -> CollectiveRequest<'a> {
        CollectiveRequest {
            comm,
            seq: 0,
            kind: CollKind::AllReduce,
            dtype: DataType::F16,
            count: 512 * 1024 * 1024, // 1 GiB message
            config: CommConfig::default(),
            start: SimTime::ZERO,
            rank_ready: None,
            drain: DrainConfig::default(),
        }
    }

    #[test]
    fn balanced_allreduce_hits_nvlink_cap() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let req = request(&comm);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(1);
        let res = run_collective(&t, &req, &mut sel, None, &mut rng, None);
        let busbw = res.busbw_gbps().expect("completed");
        assert!(
            (busbw - 362.0).abs() < 2.0,
            "balanced 2-node allreduce should be NVLink-capped: {busbw}"
        );
    }

    #[test]
    fn ecmp_allreduce_suffers_port_collisions() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let req = request(&comm);
        let mut sel = EcmpSelector::new(3);
        let mut rng = DetRng::seed_from(2);
        let res = run_collective(&t, &req, &mut sel, None, &mut rng, None);
        let busbw = res.busbw_gbps().expect("completed");
        assert!(
            busbw < 240.0,
            "ECMP baseline should collide below 240 Gbps: {busbw}"
        );
        assert!(busbw >= 90.0, "but not collapse: {busbw}");
    }

    #[test]
    fn single_node_allreduce_is_nvlink_bound() {
        let t = topo();
        let comm = full_comm(&t, 1);
        let req = request(&comm);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(3);
        let res = run_collective(&t, &req, &mut sel, None, &mut rng, None);
        let busbw = res.busbw_gbps().unwrap();
        assert!((busbw - 362.0).abs() < 2.0, "busbw {busbw}");
        assert!(res.qp_outcomes.is_empty());
    }

    #[test]
    fn straggler_delays_start() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let mut ready: Vec<SimTime> = vec![SimTime::from_secs(1); comm.nranks()];
        ready[5] = SimTime::from_secs(4);
        let mut req = request(&comm);
        req.rank_ready = Some(&ready);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(4);
        let res = run_collective(&t, &req, &mut sel, None, &mut rng, None);
        assert_eq!(res.started, SimTime::from_secs(4));
    }

    #[test]
    fn dead_uplink_hangs_the_collective() {
        let mut t = topo();
        let comm = full_comm(&t, 2);
        // Kill the left host uplink of rail 0 on node 0.
        let g = t.gpu_at(NodeId::from_index(0), 0);
        let port = t.port_of_gpu(g, c4_topology::PortSide::Left);
        let up = t.port(port).host_up;
        t.link_mut(up).set_up(false);
        let mut req = request(&comm);
        req.drain.deadline = Some(SimTime::from_secs(30));
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(5);
        let res = run_collective(&t, &req, &mut sel, None, &mut rng, None);
        assert!(res.hung());
        assert_eq!(res.busbw_gbps(), None);
    }

    #[test]
    fn telemetry_records_colls_and_conns() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let ready: Vec<SimTime> = (0..comm.nranks())
            .map(|r| SimTime::from_nanos(r as u64))
            .collect();
        let mut req = request(&comm);
        req.rank_ready = Some(&ready);
        let mut tel: Vec<WorkerTelemetry> = t
            .gpus()
            .iter()
            .map(|g| WorkerTelemetry::new(g.id))
            .collect();
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(6);
        let res = run_collective(&t, &req, &mut sel, None, &mut rng, Some(&mut tel));
        assert!(!res.hung());
        for &g in comm.devices() {
            assert_eq!(tel[g.index()].colls().len(), 1);
            assert_eq!(tel[g.index()].ranks().len(), 1);
            assert!(tel[g.index()].colls()[0].end.is_some());
        }
        let senders: usize = tel.iter().map(|w| w.conns().count()).sum();
        assert_eq!(senders, 16 * 2); // 16 streams × 2 QPs
    }

    #[test]
    fn qp_weights_shift_bytes() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let req = request(&comm);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(7);
        let weights: Box<QpWeightFn<'_>> =
            Box::new(|k: &FlowKey| if k.qp == 0 { 3.0 } else { 1.0 });
        let res = run_collective(&t, &req, &mut sel, Some(&*weights), &mut rng, None);
        let qp0: u64 = res
            .qp_outcomes
            .iter()
            .filter(|o| o.key.qp == 0)
            .map(|o| o.bytes.as_bytes())
            .sum();
        let qp1: u64 = res
            .qp_outcomes
            .iter()
            .filter(|o| o.key.qp == 1)
            .map(|o| o.bytes.as_bytes())
            .sum();
        let ratio = qp0 as f64 / qp1 as f64;
        assert!((ratio - 3.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn zero_ranks_edge_cases() {
        let t = topo();
        let comm = Communicator::new(1, vec![t.gpus()[0].id], &t).unwrap();
        let req = request(&comm);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(8);
        let res = run_collective(&t, &req, &mut sel, None, &mut rng, None);
        assert!(!res.hung());
        assert_eq!(res.finished, Some(SimTime::ZERO));
    }

    #[test]
    fn reduce_scatter_uses_smaller_edge_bytes() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let mut req = request(&comm);
        req.kind = CollKind::ReduceScatter;
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(9);
        let res = run_collective(&t, &req, &mut sel, None, &mut rng, None);
        let expect = req.count * 2 * 15 / 16; // S × (R−1)/R
        let got = res.edge_bytes.as_bytes();
        assert!(
            (got as f64 - expect as f64).abs() < 2.0,
            "edge bytes {got} vs {expect}"
        );
        assert!(res.duration().unwrap() < SimDuration::from_secs(1));
    }

    #[test]
    fn tree_allreduce_completes_but_loses_to_ring_on_large_messages() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let req = request(&comm);
        let mut rng = DetRng::seed_from(12);
        let mut sel = RailLocalSelector::new();
        let ring = run_collective(&t, &req, &mut sel, None, &mut rng, None);
        let mut sel = RailLocalSelector::new();
        let tree = run_tree_collective(&t, &req, &mut sel, &mut rng, None);
        assert!(!tree.hung());
        assert!(
            tree.duration().unwrap() > ring.duration().unwrap(),
            "no pipelining: tree {} should lose to ring {} at 1 GiB",
            tree.duration().unwrap(),
            ring.duration().unwrap()
        );
    }

    #[test]
    fn tree_telemetry_is_tagged_tree() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let req = request(&comm);
        let mut rng = DetRng::seed_from(13);
        let mut sel = RailLocalSelector::new();
        let mut tel: Vec<WorkerTelemetry> = t
            .gpus()
            .iter()
            .map(|g| WorkerTelemetry::new(g.id))
            .collect();
        let res = run_tree_collective(&t, &req, &mut sel, &mut rng, Some(&mut tel));
        assert!(!res.hung());
        for &g in comm.devices() {
            assert_eq!(tel[g.index()].colls()[0].algo, AlgoKind::Tree);
        }
    }

    #[test]
    fn tree_single_rank_is_instant() {
        let t = topo();
        let comm = Communicator::new(1, vec![t.gpus()[0].id], &t).unwrap();
        let req = request(&comm);
        let mut rng = DetRng::seed_from(14);
        let mut sel = RailLocalSelector::new();
        let res = run_tree_collective(&t, &req, &mut sel, &mut rng, None);
        assert_eq!(res.finished, Some(SimTime::ZERO));
    }

    #[test]
    fn concurrent_disjoint_jobs_do_not_interfere() {
        let t = topo();
        // Two 2-node jobs on disjoint nodes with balanced paths: both reach
        // the NVLink cap despite sharing one drain.
        let c1 = full_comm_at(&t, 0, 2, 1);
        let c2 = full_comm_at(&t, 2, 2, 2);
        let r1 = request(&c1);
        let r2 = request(&c2);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(10);
        let results = run_concurrent(&t, &[r1, r2], &mut sel, None, &mut rng, None);
        assert_eq!(results.len(), 2);
        for res in &results {
            let busbw = res.busbw_gbps().unwrap();
            assert!((busbw - 362.0).abs() < 2.0, "busbw {busbw}");
        }
    }

    #[test]
    fn concurrent_heterogeneous_deadlines_take_the_earliest() {
        // Regression: the shared drain used to take reqs[0]'s deadline,
        // silently ignoring tighter ones on later requests. A 1 GiB
        // allreduce needs ~50 ms; request 1 allows 100 s but request 2 only
        // 10 ms, so the merged drain must cut off at 10 ms and hang both.
        let t = topo();
        let c1 = full_comm_at(&t, 0, 2, 1);
        let c2 = full_comm_at(&t, 2, 2, 2);
        let mut r1 = request(&c1);
        r1.drain.deadline = Some(SimTime::from_secs(100));
        let mut r2 = request(&c2);
        r2.drain.deadline = Some(SimTime::from_nanos(10_000_000));
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(20);
        let results = run_concurrent(&t, &[r1, r2], &mut sel, None, &mut rng, None);
        for res in &results {
            assert!(res.hung(), "10 ms deadline must cut the shared drain");
            assert_eq!(res.report.end, SimTime::from_nanos(10_000_000));
        }
        // Requests without a deadline leave the tight one in force.
        let mut r1 = request(&c1);
        r1.drain.deadline = None;
        let mut r2 = request(&c2);
        r2.drain.deadline = Some(SimTime::from_nanos(10_000_000));
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(21);
        let results = run_concurrent(&t, &[r1, r2], &mut sel, None, &mut rng, None);
        assert!(results.iter().all(|r| r.hung()));
    }

    #[test]
    fn plan_cache_hits_across_iterations_and_matches_uncached() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let req = request(&comm);
        let mut cache = PlanCache::new();
        let mut cached_results = Vec::new();
        for seq in 0..3u64 {
            let mut r = request(&comm);
            r.seq = seq;
            let mut sel = EcmpSelector::new(9);
            let mut rng = DetRng::seed_from(100 + seq);
            cached_results.push(run_concurrent_cached(
                &t,
                std::slice::from_ref(&r),
                &mut sel,
                None,
                &mut rng,
                None,
                Some(&mut cache),
            ));
        }
        assert_eq!(cache.misses(), 1, "one build");
        assert_eq!(cache.hits(), 2, "two reuses");

        // The cached run must be indistinguishable from the uncached one.
        let mut sel = EcmpSelector::new(9);
        let mut rng = DetRng::seed_from(100);
        let uncached = run_collective(&t, &req, &mut sel, None, &mut rng, None);
        let cached = &cached_results[0][0];
        assert_eq!(cached.finished, uncached.finished);
        assert_eq!(cached.qp_outcomes.len(), uncached.qp_outcomes.len());
        for (a, b) in cached.qp_outcomes.iter().zip(&uncached.qp_outcomes) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.bytes, b.bytes);
        }
    }

    #[test]
    fn plan_cache_invalidates_on_topology_and_selector_change() {
        let mut t = topo();
        let comm = full_comm(&t, 2);
        let mut cache = PlanCache::new();
        let run_once = |t: &Topology, salt: u64, cache: &mut PlanCache| {
            let req = request(&comm);
            let mut sel = EcmpSelector::new(salt);
            let mut rng = DetRng::seed_from(7);
            run_concurrent_cached(
                t,
                std::slice::from_ref(&req),
                &mut sel,
                None,
                &mut rng,
                None,
                Some(cache),
            );
        };
        run_once(&t, 1, &mut cache);
        run_once(&t, 1, &mut cache);
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        // Fault injection bumps the topology version → rebuild.
        let g = t.gpu_at(NodeId::from_index(0), 0);
        let up = t
            .port(t.port_of_gpu(g, c4_topology::PortSide::Left))
            .host_up;
        t.link_mut(up).set_up(false);
        run_once(&t, 1, &mut cache);
        assert_eq!((cache.misses(), cache.hits()), (2, 1));
        // A different ECMP salt is a different selector state → rebuild.
        run_once(&t, 2, &mut cache);
        assert_eq!((cache.misses(), cache.hits()), (3, 1));
        // RailLocal declines caching entirely (round-robin state drifts).
        let req = request(&comm);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(7);
        run_concurrent_cached(
            &t,
            std::slice::from_ref(&req),
            &mut sel,
            None,
            &mut rng,
            None,
            Some(&mut cache),
        );
        run_concurrent_cached(
            &t,
            std::slice::from_ref(&req),
            &mut sel,
            None,
            &mut rng,
            None,
            Some(&mut cache),
        );
        assert_eq!(cache.hits(), 1, "uncacheable selector never hits");
    }

    #[test]
    fn duplicate_requests_in_one_call_build_their_plan_once() {
        // Two requests on the same (comm, incarnation, qps) in a single
        // run_concurrent_cached call: the first builds the plan, the
        // second must be served from it — one miss, one hit, exactly as
        // the per-request cache lookup behaved.
        let t = topo();
        let comm = full_comm(&t, 2);
        let r1 = request(&comm);
        let mut r2 = request(&comm);
        r2.seq = 1;
        let mut cache = PlanCache::new();
        let mut sel = EcmpSelector::new(5);
        let mut rng = DetRng::seed_from(31);
        let results = run_concurrent_cached(
            &t,
            &[r1, r2],
            &mut sel,
            None,
            &mut rng,
            None,
            Some(&mut cache),
        );
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(results.len(), 2);
        // Identical plans ⇒ identical flow sets for both requests.
        assert_eq!(results[0].qp_outcomes.len(), results[1].qp_outcomes.len());
        for (a, b) in results[0].qp_outcomes.iter().zip(&results[1].qp_outcomes) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.bytes, b.bytes);
        }
    }

    #[test]
    fn parallel_plan_build_is_identical_to_serial() {
        // Route assembly fans out across threads; the resulting flow set,
        // drain and report must match the serial build bit for bit.
        let t = topo();
        let comm = full_comm(&t, 4);
        let run_with = |threads: usize| {
            let mut req = request(&comm);
            req.drain.parallel = ParallelPolicy::with_threads(threads);
            let mut sel = EcmpSelector::new(17);
            let mut rng = DetRng::seed_from(23);
            run_collective(&t, &req, &mut sel, None, &mut rng, None)
        };
        let serial = run_with(1);
        for threads in [2, 4] {
            let par = run_with(threads);
            assert_eq!(par.finished, serial.finished, "{threads} threads");
            assert_eq!(par.qp_outcomes.len(), serial.qp_outcomes.len());
            for (a, b) in par.qp_outcomes.iter().zip(&serial.qp_outcomes) {
                assert_eq!(a.key, b.key);
                assert_eq!(a.bytes, b.bytes);
                assert_eq!(a.finish, b.finish);
                assert_eq!(a.mean_rate, b.mean_rate);
            }
            assert_eq!(par.report.link_bytes, serial.report.link_bytes);
        }
    }

    #[test]
    fn concurrent_jobs_sharing_a_port_contend() {
        let t = topo();
        // Job A: nodes 0-1; Job B: nodes 1-2 — both traverse node 1's rails.
        let c1 = full_comm_at(&t, 0, 2, 1);
        let c2 = full_comm_at(&t, 1, 2, 2);
        let r1 = request(&c1);
        let r2 = request(&c2);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(11);
        let results = run_concurrent(&t, &[r1, r2], &mut sel, None, &mut rng, None);
        for res in &results {
            let busbw = res.busbw_gbps().unwrap();
            assert!(
                busbw < 362.0 - 2.0,
                "sharing node 1's NVLink/ports must cost bandwidth: {busbw}"
            );
        }
    }
}
