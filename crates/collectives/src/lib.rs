//! # c4-collectives
//!
//! ACCL-style collective communication simulator: communicators, ring/tree
//! transfer plans, per-QP connections with pluggable path selection, bus
//! bandwidth accounting identical to `nccl-tests`, and telemetry emission
//! into `c4-telemetry` stores.
//!
//! ## The rail-symmetric ring model
//!
//! The paper's testbed reports collective throughput as *bus bandwidth*
//! with a network ideal of ≈360 Gbps (one bonded NIC's worth) and an NVLink
//! cap of 362 Gbps (§IV-B2). Both numbers are *per-rail*: in a
//! rail-optimized fat-tree, NCCL/ACCL construct interleaved rings such that
//! every GPU performs its own inter-node transfer, so the full pipelined
//! stream of `B = S·2(R−1)/R` bytes crosses **every rail of every node
//! boundary**, and each intra-node NVLink hop likewise carries `B`.
//!
//! This crate adopts that invariant directly. A collective over `R` ranks
//! produces:
//!
//! * one intra-node NVLink flow of `B` bytes per adjacent participating GPU
//!   pair per node (yielding the 362 Gbps cap), and
//! * per cyclic node boundary and per participating rail, a stream of `B`
//!   bytes subdivided into `Q` RDMA QP flows whose ports and spine paths are
//!   chosen by a [`PathSelector`] (the ECMP baseline or C4P).
//!
//! Completion is BSP: the collective finishes when its slowest flow drains,
//! and `busbw = B / T` — which reproduces, in one formula, the NVLink cap,
//! the dual-port imbalance of Fig 9, and the inter-job collisions of Fig 10.

pub mod alltoall;
pub mod comm;
pub mod engine;
pub mod plan;
pub mod result;

pub use alltoall::{channel_pair, pair_channel, AllToAllPlan, EpSkew, PairEdge};
pub use comm::{CommConfig, Communicator};
pub use engine::{
    run_collective, run_concurrent, run_concurrent_cached, run_tree_collective, CollectiveRequest,
    PlanCache, QpWeightFn,
};
pub use plan::{bus_factor, BoundaryStream, RingPlan, TreePlan};
pub use result::CollectiveResult;

pub use c4_netsim::{EcmpSelector, PathChoice, PathSelector, RailLocalSelector};
pub use c4_telemetry::{AlgoKind, CollKind, DataType};
