//! Transfer plans: which flows a collective generates.
//!
//! See the crate docs for the rail-symmetric ring model. A [`RingPlan`] has
//! two flow families:
//!
//! * **intra-node NVLink edges** — one per adjacent participating GPU pair
//!   per node; each carries the full pipelined stream `B`;
//! * **boundary streams** ([`BoundaryStream`]) — one per cyclic node
//!   boundary per participating rail; each carries `B`, subdivided into `Q`
//!   QP flows at connection time.

use c4_telemetry::CollKind;
use c4_topology::{GpuId, NodeId, Topology};

use crate::comm::Communicator;

/// The `nccl-tests` bus-bandwidth factor: `busbw = algbw × factor`, i.e. the
/// per-edge byte multiplier `B = S × factor` for a ring schedule.
pub fn bus_factor(kind: CollKind, nranks: usize) -> f64 {
    let n = nranks as f64;
    if nranks <= 1 {
        return 0.0;
    }
    match kind {
        CollKind::AllReduce => 2.0 * (n - 1.0) / n,
        CollKind::AllGather | CollKind::ReduceScatter => (n - 1.0) / n,
        CollKind::Broadcast => 1.0,
        CollKind::SendRecv => 1.0,
        CollKind::AllToAll => (n - 1.0) / n,
    }
}

/// One inter-node stream: the full pipelined stream `B` crossing one rail of
/// one cyclic node boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryStream {
    /// Boundary index (position in the communicator's cyclic node order).
    pub boundary: usize,
    /// Rail (NIC local index) used on both ends.
    pub rail: usize,
    /// Sending node.
    pub src_node: NodeId,
    /// Receiving node.
    pub dst_node: NodeId,
    /// Sending GPU (the rail's proxy on the source node).
    pub src_gpu: GpuId,
    /// Receiving GPU (the rail's proxy on the destination node).
    pub dst_gpu: GpuId,
}

/// The complete flow plan of a ring collective.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RingPlan {
    /// Intra-node NVLink edges `(src, dst)`, each carrying `B` bytes.
    pub intra_edges: Vec<(GpuId, GpuId)>,
    /// Inter-node rail streams, each carrying `B` bytes via `Q` QPs.
    pub boundaries: Vec<BoundaryStream>,
}

impl RingPlan {
    /// Builds the plan for a communicator on a topology.
    ///
    /// Intra-node edges chain the node's participating GPUs in rank order.
    /// Boundary streams exist for every cyclic pair of adjacent nodes and
    /// every rail that has a participating GPU on the source node; the rail's
    /// *proxy* is its lowest-ranked participating GPU. On the destination
    /// node the stream terminates at the proxy of the same rail when present,
    /// falling back to a round-robin participating GPU otherwise (rail
    /// mismatch across heterogeneous groups).
    pub fn build(topo: &Topology, comm: &Communicator) -> RingPlan {
        let mut plan = RingPlan::default();
        let nodes = comm.nodes();

        // Group participating GPUs by node in ONE pass over the rank order
        // (the former per-node `devices_on` scans were quadratic in nodes,
        // a real cost in thousand-GPU plan builds).
        let mut pos_of_node: Vec<u32> = vec![u32::MAX; topo.num_nodes()];
        for (i, &n) in nodes.iter().enumerate() {
            pos_of_node[n.index()] = i as u32;
        }
        let mut members: Vec<Vec<GpuId>> = vec![Vec::new(); nodes.len()];
        for &g in comm.devices() {
            let pos = pos_of_node[topo.gpu(g).node.index()];
            members[pos as usize].push(g);
        }

        // Intra-node chains.
        for node_members in &members {
            for pair in node_members.windows(2) {
                plan.intra_edges.push((pair[0], pair[1]));
            }
        }

        // Boundary streams over the cyclic node order. Proxy per rail on
        // each side: lowest-ranked member.
        if nodes.len() > 1 {
            let rail_of = |g: GpuId| topo.nic(topo.gpu(g).nic).local_index;
            let by_rail: Vec<Vec<(usize, GpuId)>> = members
                .iter()
                .map(|ms| {
                    let mut v: Vec<(usize, GpuId)> = Vec::new();
                    for &g in ms {
                        let r = rail_of(g);
                        if !v.iter().any(|(rr, _)| *rr == r) {
                            v.push((r, g));
                        }
                    }
                    v
                })
                .collect();
            for (b, &src_node) in nodes.iter().enumerate() {
                let d = (b + 1) % nodes.len();
                let dst_node = nodes[d];
                let dst_members = &members[d];
                for (i, &(rail, src_gpu)) in by_rail[b].iter().enumerate() {
                    let dst_gpu = by_rail[d]
                        .iter()
                        .find(|(r, _)| *r == rail)
                        .map(|&(_, g)| g)
                        .unwrap_or(dst_members[i % dst_members.len()]);
                    plan.boundaries.push(BoundaryStream {
                        boundary: b,
                        rail,
                        src_node,
                        dst_node,
                        src_gpu,
                        dst_gpu,
                    });
                }
            }
        }
        plan
    }

    /// Total flows this plan will create with `qps` QPs per stream.
    pub fn flow_count(&self, qps: u16) -> usize {
        self.intra_edges.len() + self.boundaries.len() * qps as usize
    }
}

/// The flow plan of a tree collective (reduce up a binary rank tree, then
/// broadcast down), the "tree-based algorithm" of the paper's Fig 6.
///
/// Trees trade bandwidth for latency: each phase moves the full message `S`
/// over every tree edge with no ring pipelining, so large messages favour
/// rings (which is why the paper's benchmarks pin the ring algorithm) while
/// trees shine for small/latency-bound operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreePlan {
    /// Reduce-phase edges `(child, parent)`, each carrying `S` bytes.
    pub up_edges: Vec<(GpuId, GpuId)>,
    /// Broadcast-phase edges `(parent, child)`, each carrying `S` bytes.
    pub down_edges: Vec<(GpuId, GpuId)>,
}

impl TreePlan {
    /// Builds a binary tree over rank order: rank `r`'s parent is
    /// `(r−1)/2`.
    pub fn build(comm: &Communicator) -> TreePlan {
        let mut plan = TreePlan::default();
        for r in 1..comm.nranks() {
            let parent = (r - 1) / 2;
            let child_gpu = comm.device(r as u32);
            let parent_gpu = comm.device(parent as u32);
            plan.up_edges.push((child_gpu, parent_gpu));
            plan.down_edges.push((parent_gpu, child_gpu));
        }
        plan
    }

    /// Depth of the tree (edges on the longest root-leaf path).
    pub fn depth(nranks: usize) -> u32 {
        if nranks <= 1 {
            0
        } else {
            usize::BITS - (nranks).leading_zeros() - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::ClosConfig;

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    fn full_comm(t: &Topology, nodes: usize) -> Communicator {
        let devices: Vec<GpuId> = (0..nodes)
            .flat_map(|n| t.node(NodeId::from_index(n)).gpus.clone())
            .collect();
        Communicator::new(1, devices, t).unwrap()
    }

    #[test]
    fn bus_factors_match_nccl_tests() {
        assert!((bus_factor(CollKind::AllReduce, 16) - 2.0 * 15.0 / 16.0).abs() < 1e-12);
        assert!((bus_factor(CollKind::AllGather, 8) - 7.0 / 8.0).abs() < 1e-12);
        assert!((bus_factor(CollKind::ReduceScatter, 8) - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(bus_factor(CollKind::Broadcast, 8), 1.0);
        assert_eq!(bus_factor(CollKind::AllReduce, 1), 0.0);
    }

    #[test]
    fn two_full_nodes_make_full_rail_plan() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let plan = RingPlan::build(&t, &comm);
        // 7 intra edges per node × 2 nodes.
        assert_eq!(plan.intra_edges.len(), 14);
        // 2 cyclic boundaries × 8 rails.
        assert_eq!(plan.boundaries.len(), 16);
        assert_eq!(plan.flow_count(2), 14 + 32);
        // Same-rail proxies on both ends.
        for b in &plan.boundaries {
            let rail_src = t.nic(t.gpu(b.src_gpu).nic).local_index;
            let rail_dst = t.nic(t.gpu(b.dst_gpu).nic).local_index;
            assert_eq!(rail_src, b.rail);
            assert_eq!(rail_dst, b.rail);
        }
    }

    #[test]
    fn single_node_comm_has_no_boundaries() {
        let t = topo();
        let comm = full_comm(&t, 1);
        let plan = RingPlan::build(&t, &comm);
        assert_eq!(plan.intra_edges.len(), 7);
        assert!(plan.boundaries.is_empty());
    }

    #[test]
    fn one_gpu_per_node_dp_group_uses_one_rail() {
        let t = topo();
        // DP group: GPU local index 3 on each of 16 nodes.
        let devices: Vec<GpuId> = (0..16)
            .map(|n| t.gpu_at(NodeId::from_index(n), 3))
            .collect();
        let comm = Communicator::new(5, devices, &t).unwrap();
        let plan = RingPlan::build(&t, &comm);
        assert!(plan.intra_edges.is_empty());
        assert_eq!(plan.boundaries.len(), 16); // 16 cyclic boundaries × 1 rail
        assert!(plan.boundaries.iter().all(|b| b.rail == 3));
    }

    #[test]
    fn k_nodes_have_k_cyclic_boundaries() {
        let t = topo();
        let comm = full_comm(&t, 4);
        let plan = RingPlan::build(&t, &comm);
        assert_eq!(plan.boundaries.len(), 4 * 8);
        // Last boundary wraps to node 0.
        let wrap = plan
            .boundaries
            .iter()
            .find(|b| b.boundary == 3)
            .expect("wrap boundary");
        assert_eq!(wrap.src_node.index(), 3);
        assert_eq!(wrap.dst_node.index(), 0);
    }

    #[test]
    fn tree_plan_is_a_binary_tree() {
        let t = topo();
        let comm = full_comm(&t, 2);
        let plan = TreePlan::build(&comm);
        assert_eq!(plan.up_edges.len(), 15);
        assert_eq!(plan.down_edges.len(), 15);
        // Rank 0 (the root) is nobody's child.
        let root = comm.device(0);
        assert!(plan.up_edges.iter().all(|(c, _)| *c != root));
        // Every down edge mirrors an up edge.
        for (p, c) in &plan.down_edges {
            assert!(plan.up_edges.contains(&(*c, *p)));
        }
        assert_eq!(TreePlan::depth(16), 4);
        assert_eq!(TreePlan::depth(1), 0);
        assert_eq!(TreePlan::depth(2), 1);
    }

    #[test]
    fn heterogeneous_rails_fall_back_round_robin() {
        let t = topo();
        // Source node contributes rails {0,1}; destination only rail 5.
        let a0 = t.gpu_at(NodeId::from_index(0), 0);
        let a1 = t.gpu_at(NodeId::from_index(0), 1);
        let b5 = t.gpu_at(NodeId::from_index(1), 5);
        let comm = Communicator::new(6, vec![a0, a1, b5], &t).unwrap();
        let plan = RingPlan::build(&t, &comm);
        // Boundary 0→1 has rails 0 and 1; dst falls back to b5 for both.
        let to_n1: Vec<_> = plan
            .boundaries
            .iter()
            .filter(|b| b.dst_node == NodeId::from_index(1))
            .collect();
        assert_eq!(to_n1.len(), 2);
        assert!(to_n1.iter().all(|b| b.dst_gpu == b5));
    }
}
