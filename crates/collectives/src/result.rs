//! Result of one collective operation.

use c4_netsim::{DrainReport, FlowOutcome};
use c4_simcore::{ByteSize, SimDuration, SimTime};
use c4_telemetry::CollKind;

/// Everything one collective run produced: timing, bus bandwidth, per-QP
/// outcomes and the raw network report (link bytes, CNP rates).
#[derive(Debug, Clone)]
pub struct CollectiveResult {
    /// Communicator id.
    pub comm: u64,
    /// Sequence number within the communicator.
    pub seq: u64,
    /// Operation type.
    pub kind: CollKind,
    /// Message size `S` (per-rank payload).
    pub message_bytes: ByteSize,
    /// Per-edge stream size `B = S × bus_factor`.
    pub edge_bytes: ByteSize,
    /// When the collective entered the network (all ranks ready).
    pub started: SimTime,
    /// When the slowest flow drained; `None` when the collective hung
    /// (a flow stalled on a dead link until the drain deadline).
    pub finished: Option<SimTime>,
    /// Outcomes of the intra-node NVLink flows.
    pub intra_outcomes: Vec<FlowOutcome>,
    /// Outcomes of the boundary QP flows (network side).
    pub qp_outcomes: Vec<FlowOutcome>,
    /// The raw drain report (per-link bytes, CNP accounting).
    pub report: DrainReport,
}

impl CollectiveResult {
    /// True when the collective never completed (hang syndrome).
    pub fn hung(&self) -> bool {
        self.finished.is_none()
    }

    /// Wall-clock duration, if completed.
    pub fn duration(&self) -> Option<SimDuration> {
        self.finished.map(|f| f - self.started)
    }

    /// Bus bandwidth in Gbps (`nccl-tests` metric): `B / T`.
    ///
    /// Returns `None` for hung collectives and zero-byte operations.
    pub fn busbw_gbps(&self) -> Option<f64> {
        let d = self.duration()?.as_secs_f64();
        if d <= 0.0 || self.edge_bytes == ByteSize::ZERO {
            return None;
        }
        Some(self.edge_bytes.as_bytes() as f64 * 8.0 / d / 1e9)
    }

    /// Algorithm bandwidth in Gbps: `S / T`.
    pub fn algbw_gbps(&self) -> Option<f64> {
        let d = self.duration()?.as_secs_f64();
        if d <= 0.0 {
            return None;
        }
        Some(self.message_bytes.as_bytes() as f64 * 8.0 / d / 1e9)
    }

    /// The slowest boundary QP flow's mean rate in Gbps (0 when there are no
    /// boundary flows). C4P's dynamic load balancing watches this.
    pub fn slowest_qp_gbps(&self) -> f64 {
        let v = self
            .qp_outcomes
            .iter()
            .map(|o| o.mean_rate.as_gbps())
            .fold(f64::INFINITY, f64::min);
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_netsim::FlowKey;
    use c4_simcore::Bandwidth;

    fn outcome(rate_gbps: f64) -> FlowOutcome {
        FlowOutcome {
            key: FlowKey::default(),
            bytes: ByteSize::from_mib(1),
            start: SimTime::ZERO,
            finish: Some(SimTime::from_secs(1)),
            mean_rate: Bandwidth::from_gbps(rate_gbps),
            min_rate: Bandwidth::from_gbps(rate_gbps),
            max_rate: Bandwidth::from_gbps(rate_gbps),
        }
    }

    fn result(finished: Option<SimTime>) -> CollectiveResult {
        CollectiveResult {
            comm: 1,
            seq: 0,
            kind: CollKind::AllReduce,
            message_bytes: ByteSize::from_bytes(1_000_000_000),
            edge_bytes: ByteSize::from_bytes(1_875_000_000),
            started: SimTime::ZERO,
            finished,
            intra_outcomes: vec![],
            qp_outcomes: vec![outcome(100.0), outcome(200.0)],
            report: DrainReport {
                outcomes: vec![],
                end: finished.unwrap_or(SimTime::ZERO),
                link_bytes: vec![],
                cnp_per_port: vec![],
                congested_flows: 0,
                solver: Default::default(),
            },
        }
    }

    #[test]
    fn busbw_is_edge_bytes_over_duration() {
        let r = result(Some(SimTime::from_secs(1)));
        // 1.875e9 bytes in 1 s = 15 Gbps.
        assert!((r.busbw_gbps().unwrap() - 15.0).abs() < 1e-9);
        assert!((r.algbw_gbps().unwrap() - 8.0).abs() < 1e-9);
        assert_eq!(r.duration(), Some(SimDuration::from_secs(1)));
        assert!(!r.hung());
    }

    #[test]
    fn hung_collective_has_no_bandwidth() {
        let r = result(None);
        assert!(r.hung());
        assert_eq!(r.busbw_gbps(), None);
        assert_eq!(r.duration(), None);
    }

    #[test]
    fn slowest_qp_is_min_rate() {
        let r = result(Some(SimTime::from_secs(1)));
        assert!((r.slowest_qp_gbps() - 100.0).abs() < 1e-9);
        let empty = CollectiveResult {
            qp_outcomes: vec![],
            ..result(Some(SimTime::from_secs(1)))
        };
        assert_eq!(empty.slowest_qp_gbps(), 0.0);
    }
}
