//! # c4 — reproduction of the C4 system (HPCA 2025)
//!
//! *Enhancing Large-Scale AI Training Efficiency: The C4 Solution for
//! Real-Time Anomaly Detection and Communication Optimization*, Dong et al.,
//! Alibaba Group.
//!
//! This facade crate wires the workspace together and hosts the experiment
//! scenarios that regenerate every table and figure of the paper's
//! evaluation:
//!
//! | Paper artifact | Scenario |
//! |---|---|
//! | Table I (crash census) | [`scenarios::tables::table1`] |
//! | Table III (downtime) | [`scenarios::tables::table3`] |
//! | Fig 3 (scaling loss) | [`scenarios::fig3::run`] |
//! | Fig 7 (delay matrices) | [`scenarios::fig7::run`] |
//! | Fig 9 (dual-port balance) | [`scenarios::fig9::run`] |
//! | Fig 10a/b (multi-job TE) | [`scenarios::fig10::run`] |
//! | Fig 11 (CNP counts) | [`scenarios::fig10::run`] (CNP series) |
//! | Fig 12/13 (link failure) | [`scenarios::fig12::run`] |
//! | Fig 14 (real jobs) | [`scenarios::fig14::run`] |
//!
//! # Quickstart
//!
//! ```
//! use c4::prelude::*;
//!
//! // Build the paper's 128-GPU testbed and run one allreduce with the ECMP
//! // baseline and with C4P.
//! let topo = Topology::build(&ClosConfig::testbed_128());
//! let devices: Vec<_> = topo.gpus().iter().take(16).map(|g| g.id).collect();
//! let comm = Communicator::new(1, devices, &topo).unwrap();
//! let req = CollectiveRequest {
//!     comm: &comm,
//!     seq: 0,
//!     kind: CollKind::AllReduce,
//!     dtype: DataType::Bf16,
//!     count: 64 * 1024 * 1024,
//!     config: CommConfig::default(),
//!     start: SimTime::ZERO,
//!     rank_ready: None,
//!     drain: DrainConfig::default(),
//! };
//! let mut rng = DetRng::seed_from(7);
//! let mut ecmp = EcmpSelector::new(1);
//! let baseline = run_collective(&topo, &req, &mut ecmp, None, &mut rng, None);
//! let mut c4p = C4pMaster::new(&topo, C4pConfig::default());
//! let engineered = run_collective(&topo, &req, &mut c4p, None, &mut rng, None);
//! assert!(engineered.busbw_gbps().unwrap() > baseline.busbw_gbps().unwrap());
//! ```

pub mod prelude;
pub mod scenarios;

pub use prelude::*;
