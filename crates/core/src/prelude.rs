//! One-stop re-exports of the workspace's public API.

pub use c4_simcore::{
    scoped_map, Bandwidth, ByteSize, DetRng, Engine, EventQueue, Histogram, JsonValue,
    ParallelPolicy, SimDuration, SimTime, StreamingStats, TimeSeries,
};

pub use c4_topology::{
    ClosConfig, FabricPath, Gpu, GpuId, Link, LinkId, LinkKind, Nic, NicId, NicPort, Node, NodeId,
    PortId, PortSide, Switch, SwitchId, SwitchTier, Topology, WiringMode,
};

pub use c4_netsim::maxmin;
pub use c4_netsim::{
    drain, drain_reference, mix64, CnpModel, DrainConfig, DrainReport, DrainSolverStats,
    EcmpSelector, FlowKey, FlowOutcome, FlowSpec, MaxMinState, PathChoice, PathSelector,
    RailLocalSelector, SolveMode,
};

pub use c4_telemetry::csv::{
    parse_csv_document, quote_field, split_fields, to_csv_document, FromCsv,
};
pub use c4_telemetry::pipeline::{
    events_from_snapshots, group_by_key, run_pipeline, Aggregate, Combiner, CsvEventReader,
    CsvSink, EventSink, EventSource, MemorySource, SummarySink, TimeAxis, WindowPane, WindowSpec,
    WindowSummaryRecord, WindowedAggregate,
};
pub use c4_telemetry::{
    AlgoKind, C4Event, ClusterSummary, CollKind, CollRecord, CommRecord, ConnKey, ConnRecord,
    DataType, EventKind, EventLog, LoadSample, RankRecord, Severity, TelemetryEvent,
    TelemetrySnapshot, ToCsv, WorkerTelemetry,
};

pub use c4_collectives::{
    bus_factor, channel_pair, pair_channel, run_collective, run_concurrent, run_concurrent_cached,
    run_tree_collective, AllToAllPlan, BoundaryStream, CollectiveRequest, CollectiveResult,
    CommConfig, Communicator, EpSkew, PairEdge, PlanCache, QpWeightFn, RingPlan, TreePlan,
};

pub use c4_faults::{
    ComputePerturbation, Degradation, DegradeTarget, FaultEvent, FaultInjector, FaultKind,
    FaultRates, UserView,
};

pub use c4_diagnosis::{
    analyze_root_cause, detect_hang, detect_noncomm_slow, raw_straggler, C4dMaster,
    CollHealthDetector, DelayMatrix, DetectorConfig, Diagnosis, Hypothesis, JobSteering,
    LoadSmoother, MatrixFinding, RcaReport, ReplacementPlan, SteeringConfig, SteeringError,
    StepVerdict, StreamSmoother, StreamVerdict, StreamingC4dMaster, Syndrome,
};

pub use c4_traffic::{C4pConfig, C4pMaster, PathCatalog, PathLoadLedger};

pub use c4_fleet::{
    FaultCounts, FlapTracker, FleetConfig, FleetController, FleetReport, JobAccounting, JobOutcome,
    JobTemplate, Reconciliation, RecoveryPolicy,
};

pub use c4_trainsim::{
    simulate_operation, CrashRecord, DetectionModel, DiagnosisModel, HybridIterationReport,
    HybridJob, HybridSpec, IterationReport, JobSpec, OperationConfig, OperationReport,
    ParallelLayout, RecoveryConfig, TrainingJob,
};
