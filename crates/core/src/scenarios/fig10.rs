//! Fig 10 (and Fig 11): eight concurrent two-node allreduce jobs contending
//! for the spine fabric, with and without C4P's global traffic engineering,
//! at 1:1 and 2:1 oversubscription.
//!
//! Paper results:
//! * 1:1 — baseline tasks range 171.93–263.27 Gbps; C4P 353.86–360.57 Gbps;
//!   +70.3 % mean throughput.
//! * 2:1 — C4P tasks within an 11.27 Gbps spread around ≈180 Gbps (CNP rate
//!   control), +65.55 % over baseline.
//! * Fig 11 — each bonded port receives ≈15 k CNPs/s (12.5–17.5 k band).

use c4_collectives::{run_concurrent, CollectiveRequest, Communicator};
use c4_netsim::{CnpModel, DrainConfig, EcmpSelector, FlowKey, PathSelector};
use c4_simcore::DetRng;
use c4_topology::{ClosConfig, GpuId, NodeId, Topology};
use c4_traffic::{C4pConfig, C4pMaster};

use crate::scenarios::benchmark_request;

/// One task's mean bus bandwidth under both selectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Task {
    /// Task index (1-based in the paper).
    pub task: usize,
    /// Baseline (uncoordinated ECMP) mean busbw, Gbps.
    pub baseline_gbps: f64,
    /// C4P global-traffic-engineering mean busbw, Gbps.
    pub c4p_gbps: f64,
}

/// The full Fig 10 (+ Fig 11) result.
#[derive(Debug, Clone)]
pub struct Fig10Report {
    /// True for the 2:1 oversubscription variant (spines halved).
    pub two_to_one: bool,
    /// Per-task means.
    pub tasks: Vec<Fig10Task>,
    /// Mean over tasks, baseline.
    pub baseline_mean: f64,
    /// Mean over tasks, C4P.
    pub c4p_mean: f64,
    /// Relative improvement (C4P/baseline − 1).
    pub improvement: f64,
    /// Fig 11: per-iteration CNP rates of every active sender port (kp/s)
    /// during the C4P run, as `(time_s, rates)` samples.
    pub cnp_series: Vec<(f64, Vec<f64>)>,
}

fn build_jobs(topo: &Topology) -> Vec<Communicator> {
    (0..8)
        .map(|i| {
            let devices: Vec<GpuId> = [i, 8 + i]
                .iter()
                .flat_map(|&n| topo.node(NodeId::from_index(n)).gpus.clone())
                .collect();
            Communicator::new(1 + i as u64, devices, topo).expect("valid job comm")
        })
        .collect()
}

/// Which selector drives an iteration loop.
enum Mode<'a> {
    /// ECMP with per-iteration re-salting: benchmark runs re-establish their
    /// QPs, so the hash placement varies run to run (what nccl-test
    /// averages over).
    Baseline {
        /// Base hash salt.
        salt: u64,
    },
    /// One C4P master serving all jobs; a clone observes QP rates for
    /// dynamic byte-splitting (the selector borrow is exclusive).
    C4p {
        /// The selecting master.
        master: &'a mut C4pMaster,
        /// The observing/weighting master.
        observer: &'a mut C4pMaster,
    },
}

fn run_mode(
    topo: &Topology,
    jobs: &[Communicator],
    mut mode: Mode<'_>,
    drain: &DrainConfig,
    iters: usize,
    rng: &mut DetRng,
) -> (Vec<f64>, Vec<(f64, Vec<f64>)>) {
    let mut sums = vec![0.0_f64; jobs.len()];
    let mut cnp = Vec::new();
    let mut clock = 0.0_f64;
    for it in 0..iters {
        let weight_table = match &mode {
            Mode::Baseline { .. } => Default::default(),
            Mode::C4p { observer, .. } => observer.weight_table(),
        };
        let weight_fn = move |k: &FlowKey| weight_table.get(k).copied().unwrap_or(1.0);
        let requests: Vec<CollectiveRequest<'_>> = jobs
            .iter()
            .map(|c| benchmark_request(c, it as u64, drain.clone()))
            .collect();
        let mut fresh_ecmp;
        let selector: &mut dyn PathSelector = match &mut mode {
            Mode::Baseline { salt } => {
                fresh_ecmp = EcmpSelector::new(*salt ^ (it as u64).wrapping_mul(0x9E37_79B9));
                &mut fresh_ecmp
            }
            Mode::C4p { master, .. } => *master,
        };
        let results = run_concurrent(topo, &requests, selector, Some(&weight_fn), rng, None);
        let mut iter_secs = 0.0_f64;
        for (i, res) in results.iter().enumerate() {
            sums[i] += res.busbw_gbps().unwrap_or(0.0);
            iter_secs = iter_secs.max(res.duration().map(|d| d.as_secs_f64()).unwrap_or(0.0));
            if let Mode::C4p { observer, .. } = &mut mode {
                observer.observe(&res.qp_outcomes);
            }
        }
        clock += iter_secs;
        let ports: Vec<f64> = results[0]
            .report
            .cnp_per_port
            .iter()
            .copied()
            .filter(|&c| c > 0.0)
            .collect();
        if !ports.is_empty() {
            cnp.push((clock, ports));
        }
    }
    (sums.iter().map(|s| s / iters as f64).collect(), cnp)
}

/// Runs Fig 10a (`two_to_one = false`) or Fig 10b + Fig 11 (`true`).
pub fn run(two_to_one: bool, seed: u64, iters: usize) -> Fig10Report {
    let mut topo = Topology::build(&ClosConfig::testbed_128_grouped(2).trunked());
    if two_to_one {
        for s in 4..8 {
            let spine = topo.spines()[s];
            topo.set_spine_up(spine, false);
        }
    }
    let jobs = build_jobs(&topo);
    let drain = DrainConfig {
        rate_noise: if two_to_one { 0.10 } else { 0.04 },
        cnp: Some(CnpModel::paper_default()),
        ..DrainConfig::default()
    };
    let mut rng = DetRng::seed_from(seed);

    let (baseline, _) = run_mode(
        &topo,
        &jobs,
        Mode::Baseline {
            salt: seed ^ 0xEC3F,
        },
        &drain,
        iters,
        &mut rng,
    );

    let mut master = C4pMaster::new(&topo, C4pConfig::default());
    let mut observer = master.clone();
    let (c4p, cnp_series) = run_mode(
        &topo,
        &jobs,
        Mode::C4p {
            master: &mut master,
            observer: &mut observer,
        },
        &drain,
        iters,
        &mut rng,
    );

    let baseline_mean = baseline.iter().sum::<f64>() / baseline.len() as f64;
    let c4p_mean = c4p.iter().sum::<f64>() / c4p.len() as f64;
    Fig10Report {
        two_to_one,
        tasks: (0..jobs.len())
            .map(|i| Fig10Task {
                task: i + 1,
                baseline_gbps: baseline[i],
                c4p_gbps: c4p[i],
            })
            .collect(),
        baseline_mean,
        c4p_mean,
        improvement: c4p_mean / baseline_mean - 1.0,
        cnp_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_matches_paper_shape() {
        let r = run(false, 42, 4);
        assert_eq!(r.tasks.len(), 8);
        for t in &r.tasks {
            assert!(
                t.c4p_gbps > 330.0,
                "task {}: C4P {:.1} should approach 360",
                t.task,
                t.c4p_gbps
            );
            assert!(
                t.baseline_gbps < 300.0,
                "task {}: baseline {:.1} should be degraded",
                t.task,
                t.baseline_gbps
            );
        }
        assert!(
            r.improvement > 0.40,
            "mean improvement {:.2} (paper: 0.703)",
            r.improvement
        );
    }

    #[test]
    fn two_to_one_keeps_small_spread_under_c4p() {
        let r = run(true, 42, 4);
        let min = r
            .tasks
            .iter()
            .map(|t| t.c4p_gbps)
            .fold(f64::INFINITY, f64::min);
        let max = r.tasks.iter().map(|t| t.c4p_gbps).fold(0.0_f64, f64::max);
        assert!(
            max - min < 40.0,
            "C4P spread {:.1} should be small (paper: 11.27)",
            max - min
        );
        // Congested regime: C4P lands near 180, not near the 362 cap.
        assert!(
            (140.0..230.0).contains(&r.c4p_mean),
            "c4p mean {}",
            r.c4p_mean
        );
        assert!(r.improvement > 0.30, "improvement {:.2}", r.improvement);
        // Fig 11: CNP band 12.5–17.5 kp/s.
        assert!(!r.cnp_series.is_empty());
        for (_, rates) in &r.cnp_series {
            for &c in rates {
                assert!(
                    (8_000.0..25_000.0).contains(&c),
                    "CNP rate {c} outside plausible band"
                );
            }
        }
    }
}
