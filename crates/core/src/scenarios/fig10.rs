//! Fig 10 (and Fig 11): eight concurrent two-node allreduce jobs contending
//! for the spine fabric, with and without C4P's global traffic engineering,
//! at 1:1 and 2:1 oversubscription.
//!
//! Paper results:
//! * 1:1 — baseline tasks range 171.93–263.27 Gbps; C4P 353.86–360.57 Gbps;
//!   +70.3 % mean throughput.
//! * 2:1 — C4P tasks within an 11.27 Gbps spread around ≈180 Gbps (CNP rate
//!   control), +65.55 % over baseline.
//! * Fig 11 — each bonded port receives ≈15 k CNPs/s (12.5–17.5 k band).
//!
//! This module also scales the concurrent-jobs comparison far past the
//! paper's 128-GPU testbed: [`C4pScaleConfig::scale_4096`] runs the same
//! eight-tenant contention pattern on [`ClosConfig::pod_grouped_railed`]
//! fabrics of 512…4096 GPUs at 1:1, 2:1 and 4:1 oversubscription, with
//! every job interleaved across all leaf groups so each ring boundary
//! crosses the spine layer — the regime where ECMP collisions compound and
//! C4P's engineered allocation pays. Every cell runs the paper's DCQCN
//! rate-noise and CNP models (the event-driven drain engine keeps the
//! noisy event loops tractable at this scale). Each point records the
//! **plan-build wall clock** of both selectors (from
//! [`PlanCache::build_wall_ms`]) — the metric `bench_c4p` emits into
//! `BENCH_c4p.json` — and the **drain wall clock**, which the
//! `bench_drain` binary emits into `BENCH_drain.json`; CI gates both.

use std::time::Instant;

use c4_collectives::{
    run_concurrent, run_concurrent_cached, CollectiveRequest, Communicator, PlanCache,
};
use c4_netsim::{mix64, CnpModel, DrainConfig, EcmpSelector, PathSelector};
use c4_simcore::{DetRng, JsonValue, ParallelPolicy};
use c4_topology::{ClosConfig, GpuId, NodeId, Topology};
use c4_traffic::{C4pConfig, C4pMaster};

use crate::scenarios::benchmark_request;

/// One task's mean bus bandwidth under both selectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Task {
    /// Task index (1-based in the paper).
    pub task: usize,
    /// Baseline (uncoordinated ECMP) mean busbw, Gbps.
    pub baseline_gbps: f64,
    /// C4P global-traffic-engineering mean busbw, Gbps.
    pub c4p_gbps: f64,
}

/// The full Fig 10 (+ Fig 11) result.
#[derive(Debug, Clone)]
pub struct Fig10Report {
    /// True for the 2:1 oversubscription variant (spines halved).
    pub two_to_one: bool,
    /// Per-task means.
    pub tasks: Vec<Fig10Task>,
    /// Mean over tasks, baseline.
    pub baseline_mean: f64,
    /// Mean over tasks, C4P.
    pub c4p_mean: f64,
    /// Relative improvement (C4P/baseline − 1).
    pub improvement: f64,
    /// Fig 11: per-iteration CNP rates of every active sender port (kp/s)
    /// during the C4P run, as `(time_s, rates)` samples.
    pub cnp_series: Vec<(f64, Vec<f64>)>,
}

fn build_jobs(topo: &Topology) -> Vec<Communicator> {
    (0..8)
        .map(|i| {
            let devices: Vec<GpuId> = [i, 8 + i]
                .iter()
                .flat_map(|&n| topo.node(NodeId::from_index(n)).gpus.clone())
                .collect();
            Communicator::new(1 + i as u64, devices, topo).expect("valid job comm")
        })
        .collect()
}

/// Which selector drives an iteration loop.
enum Mode<'a> {
    /// ECMP with per-iteration re-salting: benchmark runs re-establish their
    /// QPs, so the hash placement varies run to run (what nccl-test
    /// averages over).
    Baseline {
        /// Base hash salt.
        salt: u64,
    },
    /// One C4P master serving all jobs. The engine reads byte-split
    /// weights off the master's rate EMA through
    /// [`PathSelector::byte_split_weight`] — no observer clone, no
    /// per-iteration weight-table snapshot.
    C4p {
        /// The selecting (and observing) master.
        master: &'a mut C4pMaster,
    },
}

fn run_mode(
    topo: &Topology,
    jobs: &[Communicator],
    mut mode: Mode<'_>,
    drain: &DrainConfig,
    iters: usize,
    rng: &mut DetRng,
) -> (Vec<f64>, Vec<(f64, Vec<f64>)>) {
    let mut sums = vec![0.0_f64; jobs.len()];
    let mut cnp = Vec::new();
    let mut clock = 0.0_f64;
    for it in 0..iters {
        let requests: Vec<CollectiveRequest<'_>> = jobs
            .iter()
            .map(|c| benchmark_request(c, it as u64, drain.clone()))
            .collect();
        let mut fresh_ecmp;
        let selector: &mut dyn PathSelector = match &mut mode {
            Mode::Baseline { salt } => {
                fresh_ecmp = EcmpSelector::new(*salt ^ (it as u64).wrapping_mul(0x9E37_79B9));
                &mut fresh_ecmp
            }
            Mode::C4p { master } => *master,
        };
        let results = run_concurrent(topo, &requests, selector, None, rng, None);
        let mut iter_secs = 0.0_f64;
        for (i, res) in results.iter().enumerate() {
            sums[i] += res.busbw_gbps().unwrap_or(0.0);
            iter_secs = iter_secs.max(res.duration().map(|d| d.as_secs_f64()).unwrap_or(0.0));
            if let Mode::C4p { master } = &mut mode {
                master.observe(&res.qp_outcomes);
            }
        }
        clock += iter_secs;
        let ports: Vec<f64> = results[0]
            .report
            .cnp_per_port
            .iter()
            .copied()
            .filter(|&c| c > 0.0)
            .collect();
        if !ports.is_empty() {
            cnp.push((clock, ports));
        }
    }
    (sums.iter().map(|s| s / iters as f64).collect(), cnp)
}

/// Runs Fig 10a (`two_to_one = false`) or Fig 10b + Fig 11 (`true`).
pub fn run(two_to_one: bool, seed: u64, iters: usize) -> Fig10Report {
    let mut topo = Topology::build(&ClosConfig::testbed_128_grouped(2).trunked());
    if two_to_one {
        for s in 4..8 {
            let spine = topo.spines()[s];
            topo.set_spine_up(spine, false);
        }
    }
    let jobs = build_jobs(&topo);
    let drain = DrainConfig {
        rate_noise: if two_to_one { 0.10 } else { 0.04 },
        cnp: Some(CnpModel::paper_default()),
        ..DrainConfig::default()
    };
    let mut rng = DetRng::seed_from(seed);

    let (baseline, _) = run_mode(
        &topo,
        &jobs,
        Mode::Baseline {
            salt: seed ^ 0xEC3F,
        },
        &drain,
        iters,
        &mut rng,
    );

    let mut master = C4pMaster::new(&topo, C4pConfig::default());
    let (c4p, cnp_series) = run_mode(
        &topo,
        &jobs,
        Mode::C4p {
            master: &mut master,
        },
        &drain,
        iters,
        &mut rng,
    );

    let baseline_mean = baseline.iter().sum::<f64>() / baseline.len() as f64;
    let c4p_mean = c4p.iter().sum::<f64>() / c4p.len() as f64;
    Fig10Report {
        two_to_one,
        tasks: (0..jobs.len())
            .map(|i| Fig10Task {
                task: i + 1,
                baseline_gbps: baseline[i],
                c4p_gbps: c4p[i],
            })
            .collect(),
        baseline_mean,
        c4p_mean,
        improvement: c4p_mean / baseline_mean - 1.0,
        cnp_series,
    }
}

/// Configuration of the C4P-vs-ECMP scale sweep (the Fig 10 contention
/// pattern on production-scale `pod_grouped` fabrics).
#[derive(Debug, Clone)]
pub struct C4pScaleConfig {
    /// Root random seed.
    pub seed: u64,
    /// BSP iterations per (scale, oversubscription, selector) cell.
    pub iters: usize,
    /// Cluster sizes to sweep, in nodes (GPUs = 8 × nodes, 8 jobs of
    /// `nodes / 8` nodes each). Every entry must be ≥ 32 (the smallest
    /// valid 8-group fabric) and `nodes / 8` must be ≤ 8 or divisible
    /// by 8 (the group-interleaving stripe).
    pub node_scales: Vec<usize>,
    /// Oversubscription ratios to sweep (`1.0` = non-blocking, `2.0` =
    /// the `pod_grouped` default).
    pub oversub: Vec<f64>,
    /// Thread budget for the solver, plan and batch-selection layers.
    /// Simulated throughput is bit-identical at any value; only wall
    /// clocks move.
    pub parallel: ParallelPolicy,
}

impl C4pScaleConfig {
    /// The CI-gated sweep: 512…4096 GPUs at 1:1, 2:1 and 4:1
    /// oversubscription, with the paper's DCQCN rate noise and CNP
    /// accounting live in every cell.
    pub fn scale_4096(seed: u64, iters: usize) -> Self {
        C4pScaleConfig {
            seed,
            iters,
            node_scales: vec![64, 128, 256, 512],
            oversub: vec![1.0, 2.0, 4.0],
            parallel: ParallelPolicy::default(),
        }
    }

    /// The 16k extension: 8192- and 16384-GPU cells at the `pod_grouped`
    /// 2:1 default, DCQCN noise and CNP live — the regime where the SoA
    /// waterfill kernel and the pod-level split path earn their keep.
    /// (Gated separately from the 4k sweep so that baseline stays
    /// comparable across PRs.)
    pub fn scale_16384(seed: u64, iters: usize) -> Self {
        C4pScaleConfig {
            seed,
            iters,
            node_scales: vec![1024, 2048],
            oversub: vec![2.0],
            parallel: ParallelPolicy::default(),
        }
    }

    /// The 32k extension: the 32768-GPU cell at 2:1.
    pub fn scale_32768(seed: u64, iters: usize) -> Self {
        C4pScaleConfig {
            seed,
            iters,
            node_scales: vec![4096],
            oversub: vec![2.0],
            parallel: ParallelPolicy::default(),
        }
    }

    /// The drain-focused sweep behind `BENCH_drain.json`: the full
    /// 4096-GPU fabric at every oversubscription ratio (the noisy
    /// worst-case cells the event-driven drain engine exists for).
    pub fn drain_4096(seed: u64, iters: usize) -> Self {
        C4pScaleConfig {
            seed,
            iters,
            node_scales: vec![512],
            oversub: vec![1.0, 2.0, 4.0],
            parallel: ParallelPolicy::default(),
        }
    }
}

/// The DCQCN rate-noise level of one scale cell — the classic Fig 10
/// calibration: 4 % jitter on the non-blocking fabric, 10 % once the
/// fabric oversubscribes (§IV-B2's congested regime).
fn scale_rate_noise(oversub: f64) -> f64 {
    if oversub >= 2.0 {
        0.10
    } else {
        0.04
    }
}

/// One cell of the scale sweep: a cluster size × oversubscription ratio
/// with both selectors measured on identical workloads.
#[derive(Debug, Clone)]
pub struct C4pScaleRow {
    /// Total GPUs in the fabric (8 jobs share them).
    pub gpus: usize,
    /// Leaf downlink:uplink capacity ratio (1.0 or 2.0).
    pub oversub: f64,
    /// Mean per-job bus bandwidth under uncoordinated ECMP, Gbps.
    pub ecmp_gbps: f64,
    /// Mean per-job bus bandwidth under C4P dynamic load balance, Gbps.
    pub c4p_gbps: f64,
    /// `c4p / ecmp − 1`.
    pub improvement: f64,
    /// ECMP plan-build wall clock (ring planning + path selection + route
    /// assembly across all cache misses), milliseconds.
    pub ecmp_plan_ms: f64,
    /// C4P plan-build wall clock, milliseconds — the number the dense
    /// ledger + catalog indexes and batched selection exist to shrink.
    pub c4p_plan_ms: f64,
    /// Wall clock of the ECMP iterations minus plan building — the shared
    /// network drains (noisy DCQCN/CNP event loops), milliseconds. The
    /// workload the event-driven drain engine exists to shrink.
    pub ecmp_drain_ms: f64,
    /// Drain wall clock of the C4P iterations, milliseconds.
    pub c4p_drain_ms: f64,
    /// Whole-cell wall clock (topology build + both selectors), ms.
    pub wall_ms: f64,
}

/// The full scale sweep plus the timing metadata `BENCH_c4p.json` records.
#[derive(Debug, Clone)]
pub struct C4pScaleSweep {
    /// Per-cell results, in (scale, oversubscription) order.
    pub rows: Vec<C4pScaleRow>,
    /// Whole-sweep wall clock, milliseconds.
    pub total_wall_ms: f64,
    /// Thread budget the sweep ran under.
    pub threads: usize,
    /// The root seed.
    pub seed: u64,
    /// Iterations per cell.
    pub iters: usize,
}

/// Eight equal jobs interleaved across the fabric's leaf groups: job `i`
/// takes nodes `i, i+8, i+16, …`, ordered so consecutive ring nodes sit in
/// different groups — every boundary stream crosses the spine layer.
/// (Shared with the Fig 12-style fault-at-scale scenario.)
pub(crate) fn build_scale_jobs(topo: &Topology, nodes: usize) -> Vec<Communicator> {
    let per_job = nodes / 8;
    let order: Vec<usize> = if per_job <= 8 {
        // Stride-8 node ids already hop one group per step.
        (0..per_job).collect()
    } else {
        assert!(
            per_job.is_multiple_of(8),
            "group stripe needs nodes/8 ≤ 8 or divisible by 8, got {per_job}"
        );
        (0..per_job)
            .map(|k| (k % 8) * (per_job / 8) + k / 8)
            .collect()
    };
    (0..8u64)
        .map(|i| {
            let devices: Vec<GpuId> = order
                .iter()
                .map(|&s| NodeId::from_index(i as usize + 8 * s))
                .flat_map(|n| topo.node(n).gpus.clone())
                .collect();
            Communicator::new(1 + i, devices, topo).expect("valid scale job comm")
        })
        .collect()
}

/// The selector driving one scale cell. C4P observes its own QP outcomes
/// between iterations (the engine reads its byte-split weights by borrow).
enum ScaleMode<'a> {
    /// Uncoordinated ECMP with a fixed salt (plans cache across iters).
    Ecmp(EcmpSelector),
    /// The C4P master, batch-selecting under the sweep's thread budget.
    C4p(&'a mut C4pMaster),
}

/// Runs one selector over `iters` BSP iterations of the 8-job workload,
/// returning (mean per-job busbw Gbps, plan-build wall ms, drain wall ms).
/// The drain wall is the iteration loop's residual after plan building —
/// dominated by the shared noisy network drains.
fn run_scale_mode(
    topo: &Topology,
    jobs: &[Communicator],
    mut mode: ScaleMode<'_>,
    drain: &DrainConfig,
    iters: usize,
    rng: &mut DetRng,
) -> (f64, f64, f64) {
    let mode_start = Instant::now();
    let mut cache = PlanCache::new();
    let mut sum = 0.0_f64;
    let mut n = 0usize;
    for it in 0..iters {
        let requests: Vec<CollectiveRequest<'_>> = jobs
            .iter()
            .map(|c| benchmark_request(c, it as u64, drain.clone()))
            .collect();
        let selector: &mut dyn PathSelector = match &mut mode {
            ScaleMode::Ecmp(s) => s,
            ScaleMode::C4p(m) => *m,
        };
        let results =
            run_concurrent_cached(topo, &requests, selector, None, rng, None, Some(&mut cache));
        for res in &results {
            sum += res.busbw_gbps().unwrap_or(0.0);
            n += 1;
            if let ScaleMode::C4p(master) = &mut mode {
                master.observe(&res.qp_outcomes);
            }
        }
    }
    let plan_ms = cache.build_wall_ms();
    let mode_ms = mode_start.elapsed().as_secs_f64() * 1e3;
    (sum / n.max(1) as f64, plan_ms, (mode_ms - plan_ms).max(0.0))
}

/// Runs the C4P-vs-ECMP scale sweep.
///
/// # Panics
///
/// Panics if a scale point does not form a valid 8-group fabric (see
/// [`C4pScaleConfig::node_scales`]).
pub fn run_scale(cfg: &C4pScaleConfig) -> C4pScaleSweep {
    assert!(
        !cfg.node_scales.is_empty(),
        "sweep needs at least one scale"
    );
    let sweep_start = Instant::now();
    let mut rows = Vec::new();
    for &nodes in &cfg.node_scales {
        for &ratio in &cfg.oversub {
            let row_start = Instant::now();
            // Rail-dense leaves: past 256 nodes the leaf tier pins to the
            // 8 NIC rails and the trunks widen, so the per-flow fair share
            // stops halving at 4096 GPUs.
            let mut clos = ClosConfig::pod_grouped_railed(nodes, 8);
            // The railed pod wires 2:1; scale the trunk capacity for the
            // 1:1 (non-blocking) and 4:1 (congested) variants.
            clos.fabric_gbps *= 2.0 / ratio;
            let topo = Topology::build(&clos);
            let jobs = build_scale_jobs(&topo, nodes);
            // The paper's congestion dynamics run at full scale: DCQCN
            // rate jitter on congested flows plus CNP accounting, exactly
            // as in the classic 128-GPU cells. (The event-driven drain
            // keeps noisy cells tractable — noise used to stagger
            // thousands of same-size completions into individual
            // giant-component re-solves.)
            let drain = DrainConfig {
                rate_noise: scale_rate_noise(ratio),
                cnp: Some(CnpModel::paper_default()),
                parallel: cfg.parallel,
                ..DrainConfig::default()
            };
            let mut rng =
                DetRng::seed_from(cfg.seed ^ mix64(nodes as u64 ^ ((ratio as u64) << 32)));

            let ecmp = EcmpSelector::new(cfg.seed ^ 0xEC3F ^ nodes as u64);
            let (ecmp_gbps, ecmp_plan_ms, ecmp_drain_ms) = run_scale_mode(
                &topo,
                &jobs,
                ScaleMode::Ecmp(ecmp),
                &drain,
                cfg.iters,
                &mut rng,
            );

            let mut master =
                C4pMaster::new(&topo, C4pConfig::default()).with_parallel(cfg.parallel);
            let (c4p_gbps, c4p_plan_ms, c4p_drain_ms) = run_scale_mode(
                &topo,
                &jobs,
                ScaleMode::C4p(&mut master),
                &drain,
                cfg.iters,
                &mut rng,
            );

            rows.push(C4pScaleRow {
                gpus: nodes * clos.gpus_per_node,
                oversub: ratio,
                ecmp_gbps,
                c4p_gbps,
                improvement: c4p_gbps / ecmp_gbps.max(1e-9) - 1.0,
                ecmp_plan_ms,
                c4p_plan_ms,
                ecmp_drain_ms,
                c4p_drain_ms,
                wall_ms: row_start.elapsed().as_secs_f64() * 1e3,
            });
        }
    }
    C4pScaleSweep {
        rows,
        total_wall_ms: sweep_start.elapsed().as_secs_f64() * 1e3,
        threads: cfg.parallel.threads(),
        seed: cfg.seed,
        iters: cfg.iters,
    }
}

impl C4pScaleSweep {
    /// The sweep as a `BENCH_c4p.json`-schema document (`c4-bench-v1`).
    pub fn to_json(&self) -> JsonValue {
        let mut config = JsonValue::object();
        config
            .push("seed", self.seed)
            .push("iters", self.iters)
            .push("threads", self.threads);
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = JsonValue::object();
                row.push("gpus", r.gpus)
                    .push("oversub", r.oversub)
                    .push("ecmp_gbps", r.ecmp_gbps)
                    .push("c4p_gbps", r.c4p_gbps)
                    .push("improvement", r.improvement)
                    .push("ecmp_plan_ms", r.ecmp_plan_ms)
                    .push("c4p_plan_ms", r.c4p_plan_ms)
                    .push("ecmp_drain_ms", r.ecmp_drain_ms)
                    .push("c4p_drain_ms", r.c4p_drain_ms)
                    .push("wall_ms", r.wall_ms);
                row
            })
            .collect();
        let mut doc = JsonValue::object();
        doc.push("schema", "c4-bench-v1")
            .push("bench", "c4p_scale_sweep")
            .push("config", config)
            .push("rows", JsonValue::Array(rows))
            .push("total_wall_ms", self.total_wall_ms);
        doc
    }

    /// The sweep as a **drain-focused** `c4-bench-v1` document — the
    /// `BENCH_drain.json` schema: per-cell drain wall clocks of the noisy
    /// DCQCN/CNP event loops under both selectors, plus the simulated
    /// throughputs for context.
    pub fn to_drain_json(&self) -> JsonValue {
        let mut config = JsonValue::object();
        config
            .push("seed", self.seed)
            .push("iters", self.iters)
            .push("threads", self.threads);
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = JsonValue::object();
                row.push("gpus", r.gpus)
                    .push("oversub", r.oversub)
                    .push("ecmp_drain_ms", r.ecmp_drain_ms)
                    .push("c4p_drain_ms", r.c4p_drain_ms)
                    .push("ecmp_gbps", r.ecmp_gbps)
                    .push("c4p_gbps", r.c4p_gbps)
                    .push("wall_ms", r.wall_ms);
                row
            })
            .collect();
        let mut doc = JsonValue::object();
        doc.push("schema", "c4-bench-v1")
            .push("bench", "drain_noise_scale")
            .push("config", config)
            .push("rows", JsonValue::Array(rows))
            .push("total_wall_ms", self.total_wall_ms);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_matches_paper_shape() {
        let r = run(false, 42, 4);
        assert_eq!(r.tasks.len(), 8);
        for t in &r.tasks {
            assert!(
                t.c4p_gbps > 330.0,
                "task {}: C4P {:.1} should approach 360",
                t.task,
                t.c4p_gbps
            );
            assert!(
                t.baseline_gbps < 300.0,
                "task {}: baseline {:.1} should be degraded",
                t.task,
                t.baseline_gbps
            );
        }
        assert!(
            r.improvement > 0.40,
            "mean improvement {:.2} (paper: 0.703)",
            r.improvement
        );
    }

    #[test]
    fn scale_sweep_shows_c4p_gain_and_times_plan_builds() {
        // A shrunken scale point (32 nodes = 256 GPUs, the smallest valid
        // 8-group fabric) exercises the full cell end to end.
        let cfg = C4pScaleConfig {
            seed: 7,
            iters: 2,
            node_scales: vec![32],
            oversub: vec![1.0, 2.0],
            parallel: ParallelPolicy::default(),
        };
        let sweep = run_scale(&cfg);
        assert_eq!(sweep.rows.len(), 2);
        for r in &sweep.rows {
            assert_eq!(r.gpus, 256);
            assert!(
                r.c4p_gbps > r.ecmp_gbps,
                "C4P {:.1} must beat ECMP {:.1} at {}:1",
                r.c4p_gbps,
                r.ecmp_gbps,
                r.oversub
            );
            assert!(r.ecmp_plan_ms > 0.0 && r.c4p_plan_ms > 0.0);
            assert!(r.ecmp_drain_ms > 0.0 && r.c4p_drain_ms > 0.0);
            assert!(r.wall_ms > 0.0);
        }
        // The blocking fabric carries less than the non-blocking one.
        assert!(sweep.rows[1].c4p_gbps < sweep.rows[0].c4p_gbps * 1.02);
        assert!(sweep.total_wall_ms >= sweep.rows.iter().map(|r| r.wall_ms).sum::<f64>());
    }

    #[test]
    fn scale_sweep_json_matches_schema() {
        let cfg = C4pScaleConfig {
            seed: 3,
            iters: 2,
            node_scales: vec![32],
            oversub: vec![2.0],
            parallel: ParallelPolicy::default(),
        };
        let doc = run_scale(&cfg).to_json();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("c4-bench-v1")
        );
        assert_eq!(
            doc.get("bench").and_then(|v| v.as_str()),
            Some("c4p_scale_sweep")
        );
        assert!(doc.get("total_wall_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let back = JsonValue::parse(&doc.pretty()).expect("round-trip");
        let rows = back.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("gpus").and_then(|v| v.as_f64()), Some(256.0));
        assert!(rows[0].get("c4p_plan_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert!(
            rows[0]
                .get("c4p_drain_ms")
                .and_then(|v| v.as_f64())
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn scale_cells_run_the_noise_model() {
        // The scale sweep's cells carry the paper's congestion dynamics:
        // under contention the drains must mark congested flows (DCQCN
        // caps drawn, CNPs emitted) rather than run noise-free.
        let cfg = C4pScaleConfig {
            seed: 5,
            iters: 1,
            node_scales: vec![32],
            oversub: vec![2.0],
            parallel: ParallelPolicy::default(),
        };
        let sweep = run_scale(&cfg);
        let r = &sweep.rows[0];
        // A noisy congested cell cannot sit exactly on the noise-free
        // plateau; the fair share is jittered a few percent below it.
        assert!(
            r.c4p_gbps < 362.0,
            "noisy 2:1 cell should sit below the NVLink cap: {}",
            r.c4p_gbps
        );
        assert!(r.c4p_gbps > 100.0, "but not collapse: {}", r.c4p_gbps);
    }

    #[test]
    fn scale_sweep_is_thread_count_invariant() {
        // Simulated throughput must not depend on the thread budget —
        // batch selection, component re-solves and route assembly all
        // promise bit-identical results.
        let mk = |threads: usize| {
            let cfg = C4pScaleConfig {
                seed: 11,
                iters: 2,
                node_scales: vec![32],
                oversub: vec![2.0],
                parallel: ParallelPolicy::with_threads(threads),
            };
            run_scale(&cfg)
        };
        let serial = mk(1);
        for threads in [2, 4] {
            let par = mk(threads);
            for (a, b) in par.rows.iter().zip(&serial.rows) {
                assert_eq!(
                    a.ecmp_gbps.to_bits(),
                    b.ecmp_gbps.to_bits(),
                    "ECMP diverged at {threads} threads"
                );
                assert_eq!(
                    a.c4p_gbps.to_bits(),
                    b.c4p_gbps.to_bits(),
                    "C4P diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn two_to_one_keeps_small_spread_under_c4p() {
        let r = run(true, 42, 4);
        let min = r
            .tasks
            .iter()
            .map(|t| t.c4p_gbps)
            .fold(f64::INFINITY, f64::min);
        let max = r.tasks.iter().map(|t| t.c4p_gbps).fold(0.0_f64, f64::max);
        assert!(
            max - min < 40.0,
            "C4P spread {:.1} should be small (paper: 11.27)",
            max - min
        );
        // Congested regime: C4P lands near 180, not near the 362 cap.
        assert!(
            (140.0..230.0).contains(&r.c4p_mean),
            "c4p mean {}",
            r.c4p_mean
        );
        assert!(r.improvement > 0.30, "improvement {:.2}", r.improvement);
        // Fig 11: CNP band 12.5–17.5 kp/s.
        assert!(!r.cnp_series.is_empty());
        for (_, rates) in &r.cnp_series {
            for &c in rates {
                assert!(
                    (8_000.0..25_000.0).contains(&c),
                    "CNP rate {c} outside plausible band"
                );
            }
        }
    }
}
