//! Fig 12 (and Fig 13): tolerance to a link failure during the 8-job
//! concurrent run — C4P static traffic engineering vs dynamic load balance.
//!
//! Paper results: after one of the 8 uplinks dies, static TE degrades to
//! 160–220 Gbps (mean 185.76) because hash-threshold rerouting piles the
//! orphaned flows onto a neighbour port; dynamic load balance recovers to
//! 290–335 Gbps (mean 301.46) against a 7/8 ideal of 315. Fig 13 shows the
//! same event at the leaf ports: static — a few ports overloaded, the rest
//! dragged down; dynamic — all surviving ports near-evenly loaded.

use std::time::Instant;

use c4_collectives::{run_concurrent, CollectiveRequest, Communicator};
use c4_netsim::{CnpModel, DrainConfig};
use c4_simcore::{DetRng, JsonValue};
use c4_topology::{ClosConfig, GpuId, NodeId, Topology, WiringMode};
use c4_traffic::{C4pConfig, C4pMaster};

use crate::scenarios::benchmark_request;

/// The Fig 12 testbed: the grouped 128-GPU cluster rewired so each leaf has
/// exactly **8 uplinks** (one 800 Gbps trunk per spine), matching the
/// paper's "1 link error among the 8 uplinks" framing at 1:1
/// oversubscription.
pub fn fig12_testbed() -> ClosConfig {
    ClosConfig {
        wiring: WiringMode::NodeGrouped { groups: 2 },
        ..ClosConfig::testbed_128()
    }
    .trunked()
}

/// The full Fig 12/13 result for one mode.
#[derive(Debug, Clone)]
pub struct Fig12Report {
    /// True for dynamic load balance, false for static TE.
    pub dynamic: bool,
    /// Iteration index at which the uplink died.
    pub fail_at: usize,
    /// Per-iteration, per-task bus bandwidth (Gbps).
    pub per_iter_busbw: Vec<Vec<f64>>,
    /// Mean busbw over tasks before the failure.
    pub pre_mean: f64,
    /// Mean busbw over tasks after the failure.
    pub post_mean: f64,
    /// Capacity-proportional ideal after losing 1 of 8 uplinks (7/8 of the
    /// healthy NVLink-capped rate).
    pub ideal_post: f64,
    /// Fig 13: `(time_s, per-uplink Gbps)` for leaf 0's 8 uplinks.
    pub port_series: Vec<(f64, Vec<f64>)>,
}

/// Runs the failure experiment in one mode.
pub fn run(dynamic: bool, seed: u64, iters: usize, fail_at: usize) -> Fig12Report {
    let mut topo = Topology::build(&fig12_testbed());
    let jobs: Vec<Communicator> = (0..8)
        .map(|i| {
            let devices: Vec<GpuId> = [i, 8 + i]
                .iter()
                .flat_map(|&n| topo.node(NodeId::from_index(n)).gpus.clone())
                .collect();
            Communicator::new(1 + i as u64, devices, &topo).expect("valid job comm")
        })
        .collect();

    let drain = DrainConfig {
        rate_noise: 0.07,
        cnp: Some(CnpModel::paper_default()),
        ..DrainConfig::default()
    };
    let mut rng = DetRng::seed_from(seed);
    let mut selector = C4pMaster::new(
        &topo,
        C4pConfig {
            dynamic,
            ema_alpha: 0.5,
        },
    );

    // Leaf 0's eight uplinks, one per spine.
    let uplinks: Vec<_> = (0..topo.num_spines())
        .map(|s| topo.fabric_up_links(0, s)[0])
        .collect();

    let mut per_iter = Vec::with_capacity(iters);
    let mut port_series = Vec::with_capacity(iters);
    let mut clock = 0.0_f64;
    for it in 0..iters {
        if it == fail_at {
            let spine = topo.spines()[0];
            topo.set_spine_up(spine, false);
            if dynamic {
                // C4P notices the network change and reallocates.
                selector.rebalance(&topo);
            }
        }
        // Byte-split weights come off the master's own rate EMA through the
        // engine's selector hook — no observer clone, no table snapshot.
        let requests: Vec<CollectiveRequest<'_>> = jobs
            .iter()
            .map(|c| benchmark_request(c, it as u64, drain.clone()))
            .collect();
        let results = run_concurrent(&topo, &requests, &mut selector, None, &mut rng, None);
        let mut iter_secs = 0.0_f64;
        let busbws: Vec<f64> = results
            .iter()
            .map(|r| {
                iter_secs = iter_secs.max(r.duration().map(|d| d.as_secs_f64()).unwrap_or(0.0));
                r.busbw_gbps().unwrap_or(0.0)
            })
            .collect();
        for r in &results {
            selector.observe(&r.qp_outcomes);
        }
        clock += iter_secs;
        // Fig 13: per-uplink bandwidth this iteration.
        let link_bytes = &results[0].report.link_bytes;
        let ports: Vec<f64> = uplinks
            .iter()
            .map(|l| {
                if iter_secs > 0.0 {
                    link_bytes[l.index()] * 8.0 / iter_secs / 1e9
                } else {
                    0.0
                }
            })
            .collect();
        port_series.push((clock, ports));
        per_iter.push(busbws);
    }

    let mean_over = |range: std::ops::Range<usize>| -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for row in &per_iter[range] {
            for &v in row {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };
    let pre_mean = mean_over(0..fail_at.min(iters));
    let post_mean = mean_over(fail_at.min(iters)..iters);

    Fig12Report {
        dynamic,
        fail_at,
        per_iter_busbw: per_iter,
        pre_mean,
        post_mean,
        ideal_post: 362.0 * 7.0 / 8.0,
        port_series,
    }
}

/// Configuration of the Fig 12-style **fault-at-scale** experiment: the
/// eight-job contention pattern on a `pod_grouped_railed` fabric with the
/// paper's DCQCN/CNP noise live, one spine killed mid-run, and C4P either
/// rebalancing (dynamic) or not (static). Noise-at-scale was the blocker
/// here — before the event-driven drain engine, a single noisy 4096-GPU
/// iteration cost ~23 s, so the scale cells ran noise-free and this
/// scenario could not exist.
#[derive(Debug, Clone)]
pub struct FaultScaleConfig {
    /// Root random seed.
    pub seed: u64,
    /// Cluster size in nodes (GPUs = 8 × nodes); same validity rules as
    /// [`crate::scenarios::fig10::C4pScaleConfig::node_scales`].
    pub nodes: usize,
    /// BSP iterations per mode.
    pub iters: usize,
    /// Iteration at which one spine's trunks die.
    pub fail_at: usize,
    /// Thread budget (bit-identical results at any value).
    pub parallel: c4_simcore::ParallelPolicy,
}

impl FaultScaleConfig {
    /// The CI-gated point: the spine kill on the full 4096-GPU fabric,
    /// mid-run.
    pub fn scale_4096(seed: u64, iters: usize) -> Self {
        FaultScaleConfig {
            seed,
            nodes: 512,
            iters,
            fail_at: iters / 2,
            parallel: c4_simcore::ParallelPolicy::default(),
        }
    }
}

/// One mode's outcome in the fault-at-scale experiment.
#[derive(Debug, Clone)]
pub struct FaultScaleReport {
    /// True for dynamic load balance (rebalance after the kill).
    pub dynamic: bool,
    /// Mean per-job busbw before the failure, Gbps.
    pub pre_mean: f64,
    /// Mean per-job busbw after the failure, Gbps.
    pub post_mean: f64,
    /// Capacity-proportional ideal after losing 1 of 8 spines.
    pub ideal_post: f64,
}

/// Runs the fault-at-scale experiment in one mode. The fabric runs at 2:1
/// oversubscription with 10 % DCQCN noise and CNP accounting — the same
/// congested regime as the classic Fig 12, three orders of magnitude
/// larger.
pub fn run_scale(cfg: &FaultScaleConfig, dynamic: bool) -> FaultScaleReport {
    let clos = ClosConfig::pod_grouped_railed(cfg.nodes, 8);
    let mut topo = Topology::build(&clos);
    let jobs = crate::scenarios::fig10::build_scale_jobs(&topo, cfg.nodes);
    let drain = DrainConfig {
        rate_noise: 0.10,
        cnp: Some(CnpModel::paper_default()),
        parallel: cfg.parallel,
        ..DrainConfig::default()
    };
    let mut rng = DetRng::seed_from(cfg.seed ^ 0xF12);
    let mut selector = C4pMaster::new(
        &topo,
        C4pConfig {
            dynamic,
            ema_alpha: 0.5,
        },
    )
    .with_parallel(cfg.parallel);
    let mut cache = c4_collectives::PlanCache::new();

    let mut pre = (0.0_f64, 0usize);
    let mut post = (0.0_f64, 0usize);
    for it in 0..cfg.iters {
        if it == cfg.fail_at {
            let spine = topo.spines()[0];
            topo.set_spine_up(spine, false);
            if dynamic {
                selector.rebalance(&topo);
            }
        }
        let requests: Vec<CollectiveRequest<'_>> = jobs
            .iter()
            .map(|c| benchmark_request(c, it as u64, drain.clone()))
            .collect();
        let results = c4_collectives::run_concurrent_cached(
            &topo,
            &requests,
            &mut selector,
            None,
            &mut rng,
            None,
            Some(&mut cache),
        );
        let acc = if it < cfg.fail_at {
            &mut pre
        } else {
            &mut post
        };
        for r in &results {
            acc.0 += r.busbw_gbps().unwrap_or(0.0);
            acc.1 += 1;
            selector.observe(&r.qp_outcomes);
        }
    }
    // The healthy 2:1 plateau (CNP-controlled fair share, ≈187 Gbps at
    // rail density) scaled by surviving spine capacity.
    let healthy = pre.0 / pre.1.max(1) as f64;
    FaultScaleReport {
        dynamic,
        pre_mean: healthy,
        post_mean: post.0 / post.1.max(1) as f64,
        ideal_post: healthy * 7.0 / 8.0,
    }
}

/// Both modes of the fault-at-scale experiment, with the timing metadata
/// the `bench_fig12` binary emits into `BENCH_fig12.json`.
#[derive(Debug, Clone)]
pub struct FaultScaleSweep {
    /// Static traffic engineering (no rebalance after the kill).
    pub static_mode: FaultScaleReport,
    /// Dynamic load balance (rebalance after the kill).
    pub dynamic_mode: FaultScaleReport,
    /// Total GPUs in the fabric.
    pub gpus: usize,
    /// Iteration at which the spine died.
    pub fail_at: usize,
    /// Whole-sweep wall clock, milliseconds.
    pub total_wall_ms: f64,
    /// Thread budget the sweep ran under.
    pub threads: usize,
    /// The root seed.
    pub seed: u64,
    /// Iterations per mode.
    pub iters: usize,
}

/// Runs the fault-at-scale experiment in **both** modes on the identical
/// seed and workload, timing the whole sweep.
pub fn run_scale_sweep(cfg: &FaultScaleConfig) -> FaultScaleSweep {
    let start = Instant::now();
    let static_mode = run_scale(cfg, false);
    let dynamic_mode = run_scale(cfg, true);
    FaultScaleSweep {
        static_mode,
        dynamic_mode,
        gpus: cfg.nodes * 8,
        fail_at: cfg.fail_at,
        total_wall_ms: start.elapsed().as_secs_f64() * 1e3,
        threads: cfg.parallel.threads(),
        seed: cfg.seed,
        iters: cfg.iters,
    }
}

impl FaultScaleSweep {
    /// The sweep as the `BENCH_fig12.json` document (`c4-bench-v1`).
    pub fn to_json(&self) -> JsonValue {
        let mut config = JsonValue::object();
        config
            .push("seed", self.seed)
            .push("iters", self.iters)
            .push("threads", self.threads)
            .push("gpus", self.gpus)
            .push("fail_at", self.fail_at);
        let mode = |r: &FaultScaleReport| {
            let mut m = JsonValue::object();
            m.push("dynamic", r.dynamic)
                .push("pre_mean_gbps", r.pre_mean)
                .push("post_mean_gbps", r.post_mean)
                .push("ideal_post_gbps", r.ideal_post);
            m
        };
        let mut doc = JsonValue::object();
        doc.push("schema", "c4-bench-v1")
            .push("bench", "fault_scale")
            .push("config", config)
            .push("static", mode(&self.static_mode))
            .push("dynamic", mode(&self.dynamic_mode))
            .push("total_wall_ms", self.total_wall_ms);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_te_collapses_after_failure() {
        let r = run(false, 42, 12, 4);
        assert!(r.pre_mean > 330.0, "pre-failure mean {:.1}", r.pre_mean);
        assert!(
            r.post_mean < 280.0,
            "static post-failure mean {:.1} (paper: 185.76)",
            r.post_mean
        );
    }

    #[test]
    fn dynamic_lb_recovers_near_ideal() {
        let r = run(true, 42, 12, 4);
        assert!(r.pre_mean > 330.0, "pre-failure mean {:.1}", r.pre_mean);
        assert!(
            r.post_mean > 270.0,
            "dynamic post-failure mean {:.1} (paper: 301.46)",
            r.post_mean
        );
        assert!(
            r.post_mean < r.ideal_post * 1.15,
            "dynamic {:.1} cannot beat the 7/8 ideal {:.1} by much",
            r.post_mean,
            r.ideal_post
        );
    }

    #[test]
    fn dynamic_beats_static_after_failure() {
        let s = run(false, 7, 10, 3);
        let d = run(true, 7, 10, 3);
        assert!(
            d.post_mean > s.post_mean * 1.2,
            "dynamic {:.1} vs static {:.1} (paper: +62.3%)",
            d.post_mean,
            s.post_mean
        );
    }

    #[test]
    fn fault_at_scale_dynamic_rebalance_beats_static() {
        // A shrunken scale point (32 nodes = 256 GPUs) runs the noisy
        // spine-kill end to end: dynamic rebalance must recover toward the
        // 7/8 capacity ideal while static TE is dragged further down by
        // orphaned flows piling onto surviving paths.
        let cfg = FaultScaleConfig {
            seed: 42,
            nodes: 32,
            iters: 6,
            fail_at: 2,
            parallel: c4_simcore::ParallelPolicy::default(),
        };
        let st = run_scale(&cfg, false);
        let dy = run_scale(&cfg, true);
        assert!(
            st.pre_mean > 150.0 && dy.pre_mean > 150.0,
            "healthy 2:1 plateau expected: static {:.1}, dynamic {:.1}",
            st.pre_mean,
            dy.pre_mean
        );
        assert!(
            st.post_mean < st.pre_mean && dy.post_mean < dy.pre_mean,
            "losing a spine must cost bandwidth"
        );
        assert!(
            dy.post_mean > st.post_mean,
            "rebalance {:.1} must beat static {:.1} after the kill",
            dy.post_mean,
            st.post_mean
        );
        assert!(
            dy.post_mean > dy.ideal_post * 0.80,
            "dynamic {:.1} should approach the 7/8 ideal {:.1}",
            dy.post_mean,
            dy.ideal_post
        );
    }

    #[test]
    fn fault_scale_sweep_json_matches_schema() {
        let cfg = FaultScaleConfig {
            seed: 9,
            nodes: 32,
            iters: 4,
            fail_at: 2,
            parallel: c4_simcore::ParallelPolicy::default(),
        };
        let sweep = run_scale_sweep(&cfg);
        assert!(!sweep.static_mode.dynamic && sweep.dynamic_mode.dynamic);
        let doc = sweep.to_json();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("c4-bench-v1")
        );
        assert_eq!(
            doc.get("bench").and_then(|v| v.as_str()),
            Some("fault_scale")
        );
        let back = JsonValue::parse(&doc.pretty()).expect("round-trip");
        assert!(back.get("total_wall_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let dynamic = back.get("dynamic").unwrap();
        assert!(
            dynamic
                .get("post_mean_gbps")
                .and_then(|v| v.as_f64())
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn port_series_shows_takeover_vs_spreading() {
        let s = run(false, 11, 10, 3);
        // After failure under static TE the dead uplink carries nothing and
        // its neighbour is the hottest port.
        let (_, last) = s.port_series.last().unwrap();
        assert!(last[0] < 1.0, "dead uplink still carrying traffic");
        let hottest = last
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(hottest, 1, "orphans should pile on the neighbour port");

        let d = run(true, 11, 10, 3);
        let (_, last) = d.port_series.last().unwrap();
        let live: Vec<f64> = last[1..].to_vec();
        let max = live.iter().copied().fold(0.0_f64, f64::max);
        let min = live.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            max / min.max(1.0) < 1.8,
            "dynamic LB should even out surviving ports: {live:?}"
        );
    }
}
