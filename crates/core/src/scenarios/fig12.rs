//! Fig 12 (and Fig 13): tolerance to a link failure during the 8-job
//! concurrent run — C4P static traffic engineering vs dynamic load balance.
//!
//! Paper results: after one of the 8 uplinks dies, static TE degrades to
//! 160–220 Gbps (mean 185.76) because hash-threshold rerouting piles the
//! orphaned flows onto a neighbour port; dynamic load balance recovers to
//! 290–335 Gbps (mean 301.46) against a 7/8 ideal of 315. Fig 13 shows the
//! same event at the leaf ports: static — a few ports overloaded, the rest
//! dragged down; dynamic — all surviving ports near-evenly loaded.

use std::time::Instant;

use c4_collectives::{run_concurrent, CollectiveRequest, Communicator};
use c4_diagnosis::{C4dMaster, DetectorConfig, Diagnosis, StreamingC4dMaster};
use c4_netsim::{CnpModel, DrainConfig};
use c4_simcore::{DetRng, JsonValue, SimTime};
use c4_telemetry::pipeline::{run_pipeline, CsvEventReader, CsvSink, EventSink, MemorySource};
use c4_telemetry::{
    AlgoKind, CollKind, CollRecord, CommRecord, ConnKey, DataType, TelemetrySnapshot,
    WorkerTelemetry,
};
use c4_topology::{ClosConfig, GpuId, NodeId, PortId, Topology, WiringMode};
use c4_traffic::{C4pConfig, C4pMaster};

use crate::scenarios::benchmark_request;

/// The Fig 12 testbed: the grouped 128-GPU cluster rewired so each leaf has
/// exactly **8 uplinks** (one 800 Gbps trunk per spine), matching the
/// paper's "1 link error among the 8 uplinks" framing at 1:1
/// oversubscription.
pub fn fig12_testbed() -> ClosConfig {
    ClosConfig {
        wiring: WiringMode::NodeGrouped { groups: 2 },
        ..ClosConfig::testbed_128()
    }
    .trunked()
}

/// The full Fig 12/13 result for one mode.
#[derive(Debug, Clone)]
pub struct Fig12Report {
    /// True for dynamic load balance, false for static TE.
    pub dynamic: bool,
    /// Iteration index at which the uplink died.
    pub fail_at: usize,
    /// Per-iteration, per-task bus bandwidth (Gbps).
    pub per_iter_busbw: Vec<Vec<f64>>,
    /// Mean busbw over tasks before the failure.
    pub pre_mean: f64,
    /// Mean busbw over tasks after the failure.
    pub post_mean: f64,
    /// Capacity-proportional ideal after losing 1 of 8 uplinks (7/8 of the
    /// healthy NVLink-capped rate).
    pub ideal_post: f64,
    /// Fig 13: `(time_s, per-uplink Gbps)` for leaf 0's 8 uplinks.
    pub port_series: Vec<(f64, Vec<f64>)>,
}

/// Per-rank telemetry captured from **job 0** of a Fig 12 run, re-based
/// onto one monotone clock (each iteration's collectives start at
/// `SimTime::ZERO` inside the engine; the capture shifts them by the
/// accumulated iteration wall so the stream is a valid time series).
///
/// This is the recorded-scenario traffic the stream==batch detection
/// differential runs on: [`run_detection`] feeds the same snapshots to the
/// matrix-based [`C4dMaster`] and, as an event stream, to the incremental
/// [`StreamingC4dMaster`] — live and replayed from CSV.
#[derive(Debug, Clone)]
pub struct Fig12Telemetry {
    comm: CommRecord,
    workers: Vec<WorkerTelemetry>,
    offset_ns: u64,
}

impl Fig12Telemetry {
    fn new(comm: CommRecord) -> Self {
        let workers = comm
            .devices
            .iter()
            .map(|&g| WorkerTelemetry::new(g))
            .collect();
        Fig12Telemetry {
            comm,
            workers,
            offset_ns: 0,
        }
    }

    /// The observed communicator (job 0: 16 GPUs over two nodes).
    pub fn comm(&self) -> &CommRecord {
        &self.comm
    }

    /// End of capture on the re-based clock — the detection scan time.
    pub fn taken(&self) -> SimTime {
        SimTime::from_nanos(self.offset_ns)
    }

    /// Per-rank snapshots at end of run (`snapshots[rank]` is rank
    /// `rank`'s).
    pub fn snapshots(&self) -> Vec<TelemetrySnapshot> {
        let taken = self.taken();
        self.workers.iter().map(|w| w.snapshot(taken)).collect()
    }

    /// Folds one iteration's job-0 result into the per-rank stores.
    fn record_iteration(
        &mut self,
        it: u64,
        r0: &c4_collectives::CollectiveResult,
        iter_end: Option<SimTime>,
    ) {
        let off = self.offset_ns;
        let shift = move |t: SimTime| SimTime::from_nanos(off + t.as_nanos());
        for (rank, w) in self.workers.iter_mut().enumerate() {
            w.record_coll(CollRecord {
                comm: self.comm.comm,
                seq: it,
                rank: rank as u32,
                kind: CollKind::AllReduce,
                algo: AlgoKind::Ring,
                dtype: DataType::Bf16,
                count: 512 * 1024 * 1024,
                start: shift(r0.started),
                end: r0.finished.map(shift),
            });
        }
        for o in &r0.qp_outcomes {
            let Some(finish) = o.finish else { continue };
            let Some(rank) = self.comm.rank_of(o.key.src_gpu) else {
                continue;
            };
            self.workers[rank].record_message(
                ConnKey {
                    comm: self.comm.comm,
                    channel: o.key.channel,
                    qp: o.key.qp,
                    src_gpu: o.key.src_gpu,
                    dst_gpu: o.key.dst_gpu,
                },
                // Source ports are not re-derived from the path; the delay
                // matrix keys on (src, dst) only.
                PortId::from_index(0),
                o.bytes.as_bytes(),
                finish - o.start,
                shift(finish),
            );
        }
        self.offset_ns += iter_end.map(|t| t.as_nanos()).unwrap_or(0);
    }
}

/// Runs the failure experiment in one mode.
pub fn run(dynamic: bool, seed: u64, iters: usize, fail_at: usize) -> Fig12Report {
    run_inner(dynamic, seed, iters, fail_at, false).0
}

/// Runs the failure experiment in one mode, capturing job 0's telemetry
/// for the streaming-detection differential. The capture only *reads* the
/// per-iteration results — the report is bit-identical to [`run`]'s.
pub fn run_with_telemetry(
    dynamic: bool,
    seed: u64,
    iters: usize,
    fail_at: usize,
) -> (Fig12Report, Fig12Telemetry) {
    let (report, tele) = run_inner(dynamic, seed, iters, fail_at, true);
    (report, tele.expect("capture requested"))
}

fn run_inner(
    dynamic: bool,
    seed: u64,
    iters: usize,
    fail_at: usize,
    capture: bool,
) -> (Fig12Report, Option<Fig12Telemetry>) {
    let mut topo = Topology::build(&fig12_testbed());
    let jobs: Vec<Communicator> = (0..8)
        .map(|i| {
            let devices: Vec<GpuId> = [i, 8 + i]
                .iter()
                .flat_map(|&n| topo.node(NodeId::from_index(n)).gpus.clone())
                .collect();
            Communicator::new(1 + i as u64, devices, &topo).expect("valid job comm")
        })
        .collect();

    let drain = DrainConfig {
        rate_noise: 0.07,
        cnp: Some(CnpModel::paper_default()),
        ..DrainConfig::default()
    };
    let mut rng = DetRng::seed_from(seed);
    let mut selector = C4pMaster::new(
        &topo,
        C4pConfig {
            dynamic,
            ema_alpha: 0.5,
        },
    );

    // Leaf 0's eight uplinks, one per spine.
    let uplinks: Vec<_> = (0..topo.num_spines())
        .map(|s| topo.fabric_up_links(0, s)[0])
        .collect();

    let mut tele = capture.then(|| {
        Fig12Telemetry::new(CommRecord {
            comm: jobs[0].id(),
            devices: jobs[0].devices().to_vec(),
            created: SimTime::ZERO,
        })
    });

    let mut per_iter = Vec::with_capacity(iters);
    let mut port_series = Vec::with_capacity(iters);
    let mut clock = 0.0_f64;
    for it in 0..iters {
        if it == fail_at {
            let spine = topo.spines()[0];
            topo.set_spine_up(spine, false);
            if dynamic {
                // C4P notices the network change and reallocates.
                selector.rebalance(&topo);
            }
        }
        // Byte-split weights come off the master's own rate EMA through the
        // engine's selector hook — no observer clone, no table snapshot.
        let requests: Vec<CollectiveRequest<'_>> = jobs
            .iter()
            .map(|c| benchmark_request(c, it as u64, drain.clone()))
            .collect();
        let results = run_concurrent(&topo, &requests, &mut selector, None, &mut rng, None);
        let mut iter_secs = 0.0_f64;
        let busbws: Vec<f64> = results
            .iter()
            .map(|r| {
                iter_secs = iter_secs.max(r.duration().map(|d| d.as_secs_f64()).unwrap_or(0.0));
                r.busbw_gbps().unwrap_or(0.0)
            })
            .collect();
        for r in &results {
            selector.observe(&r.qp_outcomes);
        }
        if let Some(t) = tele.as_mut() {
            let iter_end = results.iter().filter_map(|r| r.finished).max();
            t.record_iteration(it as u64, &results[0], iter_end);
        }
        clock += iter_secs;
        // Fig 13: per-uplink bandwidth this iteration.
        let link_bytes = &results[0].report.link_bytes;
        let ports: Vec<f64> = uplinks
            .iter()
            .map(|l| {
                if iter_secs > 0.0 {
                    link_bytes[l.index()] * 8.0 / iter_secs / 1e9
                } else {
                    0.0
                }
            })
            .collect();
        port_series.push((clock, ports));
        per_iter.push(busbws);
    }

    let mean_over = |range: std::ops::Range<usize>| -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for row in &per_iter[range] {
            for &v in row {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };
    let pre_mean = mean_over(0..fail_at.min(iters));
    let post_mean = mean_over(fail_at.min(iters)..iters);

    (
        Fig12Report {
            dynamic,
            fail_at,
            per_iter_busbw: per_iter,
            pre_mean,
            post_mean,
            ideal_post: 362.0 * 7.0 / 8.0,
            port_series,
        },
        tele,
    )
}

/// The streaming-vs-batch detection differential over one telemetry
/// capture: every field triple must agree for the stream==batch invariant
/// to hold.
#[derive(Debug, Clone)]
pub struct Fig12Detection {
    /// Matrix-based (batch) diagnoses from [`C4dMaster::scan`].
    pub batch: Vec<Diagnosis>,
    /// Incremental diagnoses from the live event feed.
    pub streamed: Vec<Diagnosis>,
    /// Incremental diagnoses after a CSV round trip of the same feed.
    pub replayed: Vec<Diagnosis>,
    /// Batch master `events.csv`.
    pub batch_log_csv: String,
    /// Streaming master `events.csv` (live feed).
    pub streamed_log_csv: String,
    /// Streaming master `events.csv` (CSV replay).
    pub replayed_log_csv: String,
    /// The recorded event stream itself (lossless CSV transport).
    pub events_csv: String,
}

/// Runs C4D three ways over a Fig 12 capture: the batch (whole-matrix)
/// reference, the streaming master on the live canonical event feed, and
/// the streaming master again on a CSV round trip of that feed. All three
/// must produce identical diagnoses and event logs — the differential the
/// `streaming_differential` integration test pins.
pub fn run_detection(tele: &Fig12Telemetry) -> Fig12Detection {
    let topo = Topology::build(&fig12_testbed());
    let cfg = DetectorConfig::default();
    let snaps = tele.snapshots();
    let now = tele.taken();

    let mut batch = C4dMaster::new(cfg);
    let batch_diags = batch.scan(now, &topo, tele.comm(), &snaps);

    // Live feed: the canonical event order of the snapshot set, recorded
    // to CSV as it streams past.
    let mut csv_sink = CsvSink::new();
    let mut live = StreamingC4dMaster::new(cfg, tele.comm().clone());
    let mut source = MemorySource::from_snapshots(&snaps);
    let mut sinks: [&mut dyn EventSink; 2] = [&mut live, &mut csv_sink];
    run_pipeline(&mut source, &mut sinks);
    let streamed = live.scan(now, &topo);

    // Replay: parse the recorded stream and drive a fresh master.
    let events_csv = csv_sink.document();
    let mut replay_src = CsvEventReader::from_document(&events_csv).expect("lossless transport");
    let mut replay = StreamingC4dMaster::new(cfg, tele.comm().clone());
    let mut replay_sinks: [&mut dyn EventSink; 1] = [&mut replay];
    run_pipeline(&mut replay_src, &mut replay_sinks);
    let replayed = replay.scan(now, &topo);

    Fig12Detection {
        batch: batch_diags,
        streamed,
        replayed,
        batch_log_csv: batch.log().to_csv(),
        streamed_log_csv: live.log().to_csv(),
        replayed_log_csv: replay.log().to_csv(),
        events_csv,
    }
}

/// Configuration of the Fig 12-style **fault-at-scale** experiment: the
/// eight-job contention pattern on a `pod_grouped_railed` fabric with the
/// paper's DCQCN/CNP noise live, one spine killed mid-run, and C4P either
/// rebalancing (dynamic) or not (static). Noise-at-scale was the blocker
/// here — before the event-driven drain engine, a single noisy 4096-GPU
/// iteration cost ~23 s, so the scale cells ran noise-free and this
/// scenario could not exist.
#[derive(Debug, Clone)]
pub struct FaultScaleConfig {
    /// Root random seed.
    pub seed: u64,
    /// Cluster size in nodes (GPUs = 8 × nodes); same validity rules as
    /// [`crate::scenarios::fig10::C4pScaleConfig::node_scales`].
    pub nodes: usize,
    /// BSP iterations per mode.
    pub iters: usize,
    /// Iteration at which one spine's trunks die.
    pub fail_at: usize,
    /// Thread budget (bit-identical results at any value).
    pub parallel: c4_simcore::ParallelPolicy,
}

impl FaultScaleConfig {
    /// The CI-gated point: the spine kill on the full 4096-GPU fabric,
    /// mid-run.
    pub fn scale_4096(seed: u64, iters: usize) -> Self {
        FaultScaleConfig {
            seed,
            nodes: 512,
            iters,
            fail_at: iters / 2,
            parallel: c4_simcore::ParallelPolicy::default(),
        }
    }
}

/// One mode's outcome in the fault-at-scale experiment.
#[derive(Debug, Clone)]
pub struct FaultScaleReport {
    /// True for dynamic load balance (rebalance after the kill).
    pub dynamic: bool,
    /// Mean per-job busbw before the failure, Gbps.
    pub pre_mean: f64,
    /// Mean per-job busbw after the failure, Gbps.
    pub post_mean: f64,
    /// Capacity-proportional ideal after losing 1 of 8 spines.
    pub ideal_post: f64,
}

/// Runs the fault-at-scale experiment in one mode. The fabric runs at 2:1
/// oversubscription with 10 % DCQCN noise and CNP accounting — the same
/// congested regime as the classic Fig 12, three orders of magnitude
/// larger.
pub fn run_scale(cfg: &FaultScaleConfig, dynamic: bool) -> FaultScaleReport {
    let clos = ClosConfig::pod_grouped_railed(cfg.nodes, 8);
    let mut topo = Topology::build(&clos);
    let jobs = crate::scenarios::fig10::build_scale_jobs(&topo, cfg.nodes);
    let drain = DrainConfig {
        rate_noise: 0.10,
        cnp: Some(CnpModel::paper_default()),
        parallel: cfg.parallel,
        ..DrainConfig::default()
    };
    let mut rng = DetRng::seed_from(cfg.seed ^ 0xF12);
    let mut selector = C4pMaster::new(
        &topo,
        C4pConfig {
            dynamic,
            ema_alpha: 0.5,
        },
    )
    .with_parallel(cfg.parallel);
    let mut cache = c4_collectives::PlanCache::new();

    let mut pre = (0.0_f64, 0usize);
    let mut post = (0.0_f64, 0usize);
    for it in 0..cfg.iters {
        if it == cfg.fail_at {
            let spine = topo.spines()[0];
            topo.set_spine_up(spine, false);
            if dynamic {
                selector.rebalance(&topo);
            }
        }
        let requests: Vec<CollectiveRequest<'_>> = jobs
            .iter()
            .map(|c| benchmark_request(c, it as u64, drain.clone()))
            .collect();
        let results = c4_collectives::run_concurrent_cached(
            &topo,
            &requests,
            &mut selector,
            None,
            &mut rng,
            None,
            Some(&mut cache),
        );
        let acc = if it < cfg.fail_at {
            &mut pre
        } else {
            &mut post
        };
        for r in &results {
            acc.0 += r.busbw_gbps().unwrap_or(0.0);
            acc.1 += 1;
            selector.observe(&r.qp_outcomes);
        }
    }
    // The healthy 2:1 plateau (CNP-controlled fair share, ≈187 Gbps at
    // rail density) scaled by surviving spine capacity.
    let healthy = pre.0 / pre.1.max(1) as f64;
    FaultScaleReport {
        dynamic,
        pre_mean: healthy,
        post_mean: post.0 / post.1.max(1) as f64,
        ideal_post: healthy * 7.0 / 8.0,
    }
}

/// Both modes of the fault-at-scale experiment, with the timing metadata
/// the `bench_fig12` binary emits into `BENCH_fig12.json`.
#[derive(Debug, Clone)]
pub struct FaultScaleSweep {
    /// Static traffic engineering (no rebalance after the kill).
    pub static_mode: FaultScaleReport,
    /// Dynamic load balance (rebalance after the kill).
    pub dynamic_mode: FaultScaleReport,
    /// Total GPUs in the fabric.
    pub gpus: usize,
    /// Iteration at which the spine died.
    pub fail_at: usize,
    /// Whole-sweep wall clock, milliseconds.
    pub total_wall_ms: f64,
    /// Thread budget the sweep ran under.
    pub threads: usize,
    /// The root seed.
    pub seed: u64,
    /// Iterations per mode.
    pub iters: usize,
}

/// Runs the fault-at-scale experiment in **both** modes on the identical
/// seed and workload, timing the whole sweep.
pub fn run_scale_sweep(cfg: &FaultScaleConfig) -> FaultScaleSweep {
    let start = Instant::now();
    let static_mode = run_scale(cfg, false);
    let dynamic_mode = run_scale(cfg, true);
    FaultScaleSweep {
        static_mode,
        dynamic_mode,
        gpus: cfg.nodes * 8,
        fail_at: cfg.fail_at,
        total_wall_ms: start.elapsed().as_secs_f64() * 1e3,
        threads: cfg.parallel.threads(),
        seed: cfg.seed,
        iters: cfg.iters,
    }
}

impl FaultScaleSweep {
    /// The sweep as the `BENCH_fig12.json` document (`c4-bench-v1`).
    pub fn to_json(&self) -> JsonValue {
        let mut config = JsonValue::object();
        config
            .push("seed", self.seed)
            .push("iters", self.iters)
            .push("threads", self.threads)
            .push("gpus", self.gpus)
            .push("fail_at", self.fail_at);
        let mode = |r: &FaultScaleReport| {
            let mut m = JsonValue::object();
            m.push("dynamic", r.dynamic)
                .push("pre_mean_gbps", r.pre_mean)
                .push("post_mean_gbps", r.post_mean)
                .push("ideal_post_gbps", r.ideal_post);
            m
        };
        let mut doc = JsonValue::object();
        doc.push("schema", "c4-bench-v1")
            .push("bench", "fault_scale")
            .push("config", config)
            .push("static", mode(&self.static_mode))
            .push("dynamic", mode(&self.dynamic_mode))
            .push("total_wall_ms", self.total_wall_ms);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_te_collapses_after_failure() {
        let r = run(false, 42, 12, 4);
        assert!(r.pre_mean > 330.0, "pre-failure mean {:.1}", r.pre_mean);
        assert!(
            r.post_mean < 280.0,
            "static post-failure mean {:.1} (paper: 185.76)",
            r.post_mean
        );
    }

    #[test]
    fn dynamic_lb_recovers_near_ideal() {
        let r = run(true, 42, 12, 4);
        assert!(r.pre_mean > 330.0, "pre-failure mean {:.1}", r.pre_mean);
        assert!(
            r.post_mean > 270.0,
            "dynamic post-failure mean {:.1} (paper: 301.46)",
            r.post_mean
        );
        assert!(
            r.post_mean < r.ideal_post * 1.15,
            "dynamic {:.1} cannot beat the 7/8 ideal {:.1} by much",
            r.post_mean,
            r.ideal_post
        );
    }

    #[test]
    fn dynamic_beats_static_after_failure() {
        let s = run(false, 7, 10, 3);
        let d = run(true, 7, 10, 3);
        assert!(
            d.post_mean > s.post_mean * 1.2,
            "dynamic {:.1} vs static {:.1} (paper: +62.3%)",
            d.post_mean,
            s.post_mean
        );
    }

    #[test]
    fn fault_at_scale_dynamic_rebalance_beats_static() {
        // A shrunken scale point (32 nodes = 256 GPUs) runs the noisy
        // spine-kill end to end: dynamic rebalance must recover toward the
        // 7/8 capacity ideal while static TE is dragged further down by
        // orphaned flows piling onto surviving paths.
        let cfg = FaultScaleConfig {
            seed: 42,
            nodes: 32,
            iters: 6,
            fail_at: 2,
            parallel: c4_simcore::ParallelPolicy::default(),
        };
        let st = run_scale(&cfg, false);
        let dy = run_scale(&cfg, true);
        assert!(
            st.pre_mean > 150.0 && dy.pre_mean > 150.0,
            "healthy 2:1 plateau expected: static {:.1}, dynamic {:.1}",
            st.pre_mean,
            dy.pre_mean
        );
        assert!(
            st.post_mean < st.pre_mean && dy.post_mean < dy.pre_mean,
            "losing a spine must cost bandwidth"
        );
        assert!(
            dy.post_mean > st.post_mean,
            "rebalance {:.1} must beat static {:.1} after the kill",
            dy.post_mean,
            st.post_mean
        );
        assert!(
            dy.post_mean > dy.ideal_post * 0.80,
            "dynamic {:.1} should approach the 7/8 ideal {:.1}",
            dy.post_mean,
            dy.ideal_post
        );
    }

    #[test]
    fn telemetry_capture_is_monotone_and_does_not_perturb_the_run() {
        let (r, tele) = run_with_telemetry(false, 42, 4, 2);
        let plain = run(false, 42, 4, 2);
        assert_eq!(
            r.per_iter_busbw, plain.per_iter_busbw,
            "capture must not perturb the simulation"
        );
        let snaps = tele.snapshots();
        assert_eq!(snaps.len(), 16, "one snapshot per job-0 rank");
        for s in &snaps {
            assert_eq!(s.colls.len(), 4, "one collective record per iteration");
            let starts: Vec<u64> = s.colls.iter().map(|c| c.start.as_nanos()).collect();
            assert!(
                starts.windows(2).all(|w| w[0] < w[1]),
                "re-based clock must be monotone: {starts:?}"
            );
            assert!(s.colls.iter().all(|c| c.end.is_some()), "healthy run");
        }
        assert!(
            snaps.iter().any(|s| !s.conns.is_empty()),
            "boundary flows must produce connection aggregates"
        );
        assert!(tele.taken() > SimTime::ZERO);
    }

    #[test]
    fn fault_scale_sweep_json_matches_schema() {
        let cfg = FaultScaleConfig {
            seed: 9,
            nodes: 32,
            iters: 4,
            fail_at: 2,
            parallel: c4_simcore::ParallelPolicy::default(),
        };
        let sweep = run_scale_sweep(&cfg);
        assert!(!sweep.static_mode.dynamic && sweep.dynamic_mode.dynamic);
        let doc = sweep.to_json();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("c4-bench-v1")
        );
        assert_eq!(
            doc.get("bench").and_then(|v| v.as_str()),
            Some("fault_scale")
        );
        let back = JsonValue::parse(&doc.pretty()).expect("round-trip");
        assert!(back.get("total_wall_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let dynamic = back.get("dynamic").unwrap();
        assert!(
            dynamic
                .get("post_mean_gbps")
                .and_then(|v| v.as_f64())
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn port_series_shows_takeover_vs_spreading() {
        let s = run(false, 11, 10, 3);
        // After failure under static TE the dead uplink carries nothing and
        // its neighbour is the hottest port.
        let (_, last) = s.port_series.last().unwrap();
        assert!(last[0] < 1.0, "dead uplink still carrying traffic");
        let hottest = last
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(hottest, 1, "orphans should pile on the neighbour port");

        let d = run(true, 11, 10, 3);
        let (_, last) = d.port_series.last().unwrap();
        let live: Vec<f64> = last[1..].to_vec();
        let max = live.iter().copied().fold(0.0_f64, f64::max);
        let min = live.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            max / min.max(1.0) < 1.8,
            "dynamic LB should even out surviving ports: {live:?}"
        );
    }
}
