//! Fig 14: end-to-end throughput of the paper's three production-style jobs
//! with and without C4P.
//!
//! Paper results: Job1 (GPT-22B, Megatron TP8/DP16) +15.95 % (74.82 → 86.76
//! samples/s); Job2 (Llama-7B, DeepSpeed ZeRO pure-DP) +14.1 % (156.59 →
//! 178.65); Job3 (GPT-175B, TP8/PP8 with GA=16) no noticeable change — the
//! 16× gradient accumulation amortizes the communication C4P accelerates.

use c4_netsim::{EcmpSelector, PathSelector};
use c4_simcore::DetRng;
use c4_topology::{ClosConfig, NodeId, Topology};
use c4_traffic::{C4pConfig, C4pMaster};
use c4_trainsim::{JobSpec, ParallelLayout, TrainingJob};

/// One bar pair of Fig 14.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Job name.
    pub name: String,
    /// Baseline samples/s.
    pub baseline_sps: f64,
    /// C4P samples/s.
    pub c4p_sps: f64,
    /// Relative improvement.
    pub improvement: f64,
}

fn measure(
    topo: &Topology,
    spec: &JobSpec,
    selector: &mut dyn PathSelector,
    rng: &mut DetRng,
    iters: usize,
) -> f64 {
    let nodes: Vec<NodeId> = (0..16).map(NodeId::from_index).collect();
    let layout = ParallelLayout::place(topo, spec, nodes).expect("testbed placement");
    let mut job = TrainingJob::new(topo, spec.clone(), layout, 1000);
    let mut sps = Vec::new();
    for it in 0..iters {
        // Byte-split weights come from the selector's own
        // `byte_split_weight` hook (uniform until a master observes rates;
        // TrainingJob does not retain per-QP outcomes to observe).
        let report = job.run_iteration(topo, selector, None, rng, &[], None);
        if it > 0 {
            // Skip the first (warm-up) iteration.
            sps.push(report.samples_per_sec(spec.global_batch));
        }
    }
    sps.iter().sum::<f64>() / sps.len().max(1) as f64
}

/// Runs all three jobs in both modes.
pub fn run(seed: u64, iters: usize) -> Vec<Fig14Row> {
    let topo = Topology::build(&ClosConfig::testbed_128().trunked());
    let mut rng = DetRng::seed_from(seed);
    [
        JobSpec::gpt22b_tp8_dp16(),
        JobSpec::llama7b_dp128_zero(),
        JobSpec::gpt175b_tp8_pp8_ga16(),
    ]
    .into_iter()
    .map(|spec| {
        let mut ecmp = EcmpSelector::new(seed ^ 0xF16);
        let baseline = measure(&topo, &spec, &mut ecmp, &mut rng, iters);
        let mut master = C4pMaster::new(&topo, C4pConfig::default());
        let c4p = measure(&topo, &spec, &mut master, &mut rng, iters);
        Fig14Row {
            name: spec.name.clone(),
            baseline_sps: baseline,
            c4p_sps: c4p,
            improvement: c4p / baseline - 1.0,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvements_match_paper_pattern() {
        let rows = run(42, 3);
        assert_eq!(rows.len(), 3);
        // Job1 and Job2: double-digit percentage gains.
        assert!(
            rows[0].improvement > 0.08,
            "Job1 improvement {:.3} (paper: 0.1595)",
            rows[0].improvement
        );
        assert!(
            rows[1].improvement > 0.08,
            "Job2 improvement {:.3} (paper: 0.141)",
            rows[1].improvement
        );
        // Job3: gradient accumulation hides the gain.
        assert!(
            rows[2].improvement < 0.06,
            "Job3 improvement {:.3} should be marginal",
            rows[2].improvement
        );
        // Absolute throughputs in the paper's ballpark.
        assert!(
            (55.0..100.0).contains(&rows[0].baseline_sps),
            "Job1 baseline {:.1} (paper: 74.82)",
            rows[0].baseline_sps
        );
        assert!(
            (120.0..200.0).contains(&rows[1].baseline_sps),
            "Job2 baseline {:.1} (paper: 156.59)",
            rows[1].baseline_sps
        );
    }
}
