//! Fig 3: actual vs ideal training throughput of a GPT-22B job as the
//! system scales from 16 to 512 GPUs under baseline (ECMP) networking in a
//! shared pod.
//!
//! Paper result: the gap between actual and linearly-scaled ideal
//! throughput widens with scale — ≈30 % below ideal at 512 GPUs — because
//! the extent of traffic collision grows with the number of flows.

use c4_netsim::EcmpSelector;
use c4_simcore::DetRng;
use c4_topology::{ClosConfig, NodeId, Topology};
use c4_trainsim::{JobSpec, ParallelLayout, TrainingJob};

/// One scale point of Fig 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// GPU count.
    pub gpus: usize,
    /// Measured throughput, samples/s.
    pub actual_sps: f64,
    /// Linear scaling of the smallest measured point.
    pub ideal_sps: f64,
    /// `1 − actual/ideal`.
    pub loss: f64,
}

/// Runs the scaling sweep at GPU = 16 … 512.
pub fn run(seed: u64, iters: usize) -> Vec<Fig3Row> {
    let topo = Topology::build(&ClosConfig::pod_shared(64));
    let mut rng = DetRng::seed_from(seed);
    let scales = [2usize, 4, 8, 16, 32, 64];

    let mut actuals = Vec::new();
    for &dp in &scales {
        let spec = JobSpec::gpt22b_scaling(dp);
        let nodes: Vec<NodeId> = (0..dp).map(NodeId::from_index).collect();
        let layout = ParallelLayout::place(&topo, &spec, nodes).expect("pod placement");
        let mut job = TrainingJob::new(&topo, spec.clone(), layout, dp as u64 * 100);
        let mut ecmp = EcmpSelector::new(seed ^ dp as u64);
        let mut sps = Vec::new();
        for it in 0..iters.max(2) {
            let report = job.run_iteration(&topo, &mut ecmp, None, &mut rng, &[], None);
            if it > 0 {
                sps.push(report.samples_per_sec(spec.global_batch));
            }
        }
        actuals.push(sps.iter().sum::<f64>() / sps.len() as f64);
    }

    let base_per_unit = actuals[0] / scales[0] as f64;
    scales
        .iter()
        .zip(&actuals)
        .map(|(&dp, &actual)| {
            let ideal = base_per_unit * dp as f64;
            Fig3Row {
                gpus: dp * 8,
                actual_sps: actual,
                ideal_sps: ideal,
                loss: 1.0 - actual / ideal,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_grows_with_scale() {
        let rows = run(42, 3);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].gpus, 16);
        assert_eq!(rows[5].gpus, 512);
        // First point defines the ideal.
        assert!(rows[0].loss.abs() < 1e-9);
        // Monotone-ish growth: the largest scale loses the most.
        let max_loss = rows.iter().map(|r| r.loss).fold(0.0_f64, f64::max);
        assert!(
            (rows[5].loss - max_loss).abs() < 0.05,
            "largest scale should be at/near the worst loss: {:?}",
            rows.iter().map(|r| r.loss).collect::<Vec<_>>()
        );
        assert!(
            rows[5].loss > 0.12,
            "512-GPU loss {:.3} should be substantial (paper: ≈0.30)",
            rows[5].loss
        );
        // Throughput still rises with scale (no collapse).
        assert!(rows[5].actual_sps > rows[0].actual_sps * 10.0);
    }
}
