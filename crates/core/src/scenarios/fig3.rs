//! Fig 3: actual vs ideal training throughput of a GPT-22B job as the
//! system scales under baseline (ECMP) networking in a shared pod.
//!
//! Paper result (16…512 GPUs): the gap between actual and linearly-scaled
//! ideal throughput widens with scale — ≈30 % below ideal at 512 GPUs —
//! because the extent of traffic collision grows with the number of flows.
//!
//! This module also carries the sweep **beyond** the paper's largest
//! measured point: [`Fig3Config::scale_4096`] runs the same job family up
//! to 4096 GPUs on a [`ClosConfig::pod_grouped`] fabric (leaf tier scaling
//! with the cluster, grouped wiring, 2:1 oversubscription), which is only
//! tractable because the max-min re-solve and flow-plan construction fan
//! out over a [`ParallelPolicy`]-sized thread pool. Each scale point is
//! wall-clock timed so the bench binary can emit `BENCH_scale.json` and CI
//! can gate on simulator-performance regressions.

use std::time::Instant;

use c4_netsim::{mix64, EcmpSelector};
use c4_simcore::{scoped_map, DetRng, JsonValue, ParallelPolicy};
use c4_topology::{ClosConfig, NodeId, Topology};
use c4_trainsim::{JobSpec, ParallelLayout, TrainingJob};

/// One scale point of Fig 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// GPU count.
    pub gpus: usize,
    /// Measured throughput, samples/s.
    pub actual_sps: f64,
    /// Linear scaling of the smallest measured point.
    pub ideal_sps: f64,
    /// `1 − actual/ideal`.
    pub loss: f64,
    /// Simulator wall-clock spent on this point, milliseconds (all
    /// iterations, including the warm-up one).
    pub wall_ms: f64,
}

/// Everything one sweep produced (rows plus the timing metadata the
/// `BENCH_scale.json` schema records).
#[derive(Debug, Clone)]
pub struct Fig3Sweep {
    /// Per-scale results, smallest first.
    pub rows: Vec<Fig3Row>,
    /// Whole-sweep wall clock, milliseconds (topology build included).
    pub total_wall_ms: f64,
    /// Thread budget the sweep ran under.
    pub threads: usize,
    /// The seed the sweep ran with.
    pub seed: u64,
    /// Iterations per scale point.
    pub iters: usize,
}

/// Configuration of one Fig 3 scaling sweep.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Root random seed.
    pub seed: u64,
    /// Iterations per scale point (the first is warm-up and unmeasured;
    /// values below 2 are raised to 2).
    pub iters: usize,
    /// Data-parallel widths to sweep (nodes per point; GPUs = 8 × dp),
    /// smallest first — the first point defines the linear-scaling ideal.
    pub scales: Vec<usize>,
    /// The shared fabric every point runs on (jobs occupy the first `dp`
    /// nodes).
    pub clos: ClosConfig,
    /// Thread budget for the solver / plan-build layers. Throughput
    /// numbers are bit-identical at any value; only `wall_ms` moves.
    pub parallel: ParallelPolicy,
}

impl Fig3Config {
    /// The paper's sweep: 16…512 GPUs in the 64-node shared pod.
    pub fn paper(seed: u64, iters: usize) -> Self {
        Fig3Config {
            seed,
            iters,
            scales: vec![2, 4, 8, 16, 32, 64],
            clos: ClosConfig::pod_shared(64),
            parallel: ParallelPolicy::default(),
        }
    }

    /// The extended sweep: 16…4096 GPUs on a 512-node grouped fabric at
    /// 2:1 oversubscription ([`ClosConfig::pod_grouped`]). Jobs wider than
    /// one 64-node leaf group span groups and contend on the spine layer.
    pub fn scale_4096(seed: u64, iters: usize) -> Self {
        Fig3Config {
            seed,
            iters,
            scales: vec![2, 4, 8, 16, 32, 64, 128, 256, 512],
            clos: ClosConfig::pod_grouped(512, 8),
            parallel: ParallelPolicy::default(),
        }
    }

    /// The 16k extension: 512…16384 GPUs on a rail-dense 2048-node fabric
    /// ([`ClosConfig::pod_grouped_railed`], 2:1 oversubscription). The
    /// 64-node anchor point defines the linear-scaling ideal so the loss
    /// column stays comparable with the 4k sweep.
    pub fn scale_16384(seed: u64, iters: usize) -> Self {
        Fig3Config {
            seed,
            iters,
            scales: vec![64, 512, 1024, 2048],
            clos: ClosConfig::pod_grouped_railed(2048, 8),
            parallel: ParallelPolicy::default(),
        }
    }

    /// The 32k extension: up to 32768 GPUs on a rail-dense 4096-node
    /// fabric, same anchor-point convention as [`Fig3Config::scale_16384`].
    pub fn scale_32768(seed: u64, iters: usize) -> Self {
        Fig3Config {
            seed,
            iters,
            scales: vec![64, 2048, 4096],
            clos: ClosConfig::pod_grouped_railed(4096, 8),
            parallel: ParallelPolicy::default(),
        }
    }
}

/// Runs the paper's 16…512 GPU sweep (compatibility wrapper over
/// [`run_config`] with [`Fig3Config::paper`]).
pub fn run(seed: u64, iters: usize) -> Vec<Fig3Row> {
    run_config(&Fig3Config::paper(seed, iters)).rows
}

/// Runs a configured scaling sweep.
///
/// Scale points are mutually independent — each draws from its own
/// [`DetRng`] stream derived from the root seed and the point's width — so
/// whole points fan out over the `cfg.parallel` thread pool and merge back
/// in scale order. Per-seed output (and therefore the bench binary's
/// stdout) is byte-identical at any thread count; only wall clocks move.
///
/// # Panics
///
/// Panics if `cfg.scales` is empty, the topology is invalid, or a scale
/// point does not fit the fabric.
pub fn run_config(cfg: &Fig3Config) -> Fig3Sweep {
    assert!(!cfg.scales.is_empty(), "sweep needs at least one scale");
    let sweep_start = Instant::now();
    let topo = Topology::build(&cfg.clos);

    let measured: Vec<(f64, f64)> = scoped_map(cfg.parallel, &cfg.scales, |&dp| {
        let point_start = Instant::now();
        let mut rng = DetRng::seed_from(mix64(
            cfg.seed ^ (dp as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        let spec = JobSpec::gpt22b_scaling(dp);
        let nodes: Vec<NodeId> = (0..dp).map(NodeId::from_index).collect();
        let layout = ParallelLayout::place(&topo, &spec, nodes).expect("pod placement");
        let mut job = TrainingJob::new(&topo, spec.clone(), layout, dp as u64 * 100);
        job.parallel = cfg.parallel;
        let mut ecmp = EcmpSelector::new(cfg.seed ^ dp as u64);
        let mut sps = Vec::new();
        for it in 0..cfg.iters.max(2) {
            let report = job.run_iteration(&topo, &mut ecmp, None, &mut rng, &[], None);
            if it > 0 {
                sps.push(report.samples_per_sec(spec.global_batch));
            }
        }
        (
            sps.iter().sum::<f64>() / sps.len() as f64,
            point_start.elapsed().as_secs_f64() * 1e3,
        )
    });
    let (actuals, walls): (Vec<f64>, Vec<f64>) = measured.into_iter().unzip();

    let base_per_unit = actuals[0] / cfg.scales[0] as f64;
    let rows = cfg
        .scales
        .iter()
        .zip(actuals.iter().zip(&walls))
        .map(|(&dp, (&actual, &wall_ms))| {
            let ideal = base_per_unit * dp as f64;
            Fig3Row {
                gpus: dp * cfg.clos.gpus_per_node,
                actual_sps: actual,
                ideal_sps: ideal,
                loss: 1.0 - actual / ideal,
                wall_ms,
            }
        })
        .collect();
    Fig3Sweep {
        rows,
        total_wall_ms: sweep_start.elapsed().as_secs_f64() * 1e3,
        threads: cfg.parallel.threads(),
        seed: cfg.seed,
        iters: cfg.iters.max(2),
    }
}

impl Fig3Sweep {
    /// The sweep as a `BENCH_scale.json`-schema document (`c4-bench-v1`:
    /// top-level `schema`/`bench`/`config`/`rows`/`total_wall_ms`, numbers
    /// in base units with `_ms`/`_sps` suffixes spelling the rest out).
    pub fn to_json(&self) -> JsonValue {
        let mut config = JsonValue::object();
        config
            .push("seed", self.seed)
            .push("iters", self.iters)
            .push("threads", self.threads)
            .push(
                "scales_gpus",
                self.rows.iter().map(|r| r.gpus).collect::<Vec<_>>(),
            );
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = JsonValue::object();
                row.push("gpus", r.gpus)
                    .push("actual_sps", r.actual_sps)
                    .push("ideal_sps", r.ideal_sps)
                    .push("loss", r.loss)
                    .push("wall_ms", r.wall_ms);
                row
            })
            .collect();
        let mut doc = JsonValue::object();
        doc.push("schema", "c4-bench-v1")
            .push("bench", "fig3_scale_sweep")
            .push("config", config)
            .push("rows", JsonValue::Array(rows))
            .push("total_wall_ms", self.total_wall_ms);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_grows_with_scale() {
        let rows = run(42, 3);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].gpus, 16);
        assert_eq!(rows[5].gpus, 512);
        // First point defines the ideal.
        assert!(rows[0].loss.abs() < 1e-9);
        // Monotone-ish growth: the largest scale loses the most.
        let max_loss = rows.iter().map(|r| r.loss).fold(0.0_f64, f64::max);
        assert!(
            (rows[5].loss - max_loss).abs() < 0.05,
            "largest scale should be at/near the worst loss: {:?}",
            rows.iter().map(|r| r.loss).collect::<Vec<_>>()
        );
        assert!(
            rows[5].loss > 0.12,
            "512-GPU loss {:.3} should be substantial (paper: ≈0.30)",
            rows[5].loss
        );
        // Throughput still rises with scale (no collapse).
        assert!(rows[5].actual_sps > rows[0].actual_sps * 10.0);
    }

    #[test]
    fn grouped_scale_sweep_runs_and_times_points() {
        // A shrunken scale_4096 shape (same wiring family, 32 nodes / 2
        // groups) keeps this test fast while exercising the grouped
        // cross-spine path end to end.
        let cfg = Fig3Config {
            seed: 7,
            iters: 2,
            scales: vec![2, 8, 32],
            clos: ClosConfig::pod_grouped(32, 2),
            parallel: ParallelPolicy::default(),
        };
        let sweep = run_config(&cfg);
        assert_eq!(sweep.rows.len(), 3);
        assert_eq!(sweep.rows[2].gpus, 256);
        assert!(sweep.rows.iter().all(|r| r.actual_sps > 0.0));
        assert!(sweep.rows.iter().all(|r| r.wall_ms > 0.0));
        assert!(sweep.total_wall_ms >= sweep.rows.iter().map(|r| r.wall_ms).sum::<f64>());
        // Spanning both leaf groups (32 nodes) must lose more than the
        // in-group point (8 nodes): cross-spine collisions at 2:1.
        assert!(
            sweep.rows[2].loss > sweep.rows[1].loss,
            "cross-group loss {:?}",
            sweep.rows.iter().map(|r| r.loss).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sweep_json_matches_schema_and_round_trips() {
        let cfg = Fig3Config {
            seed: 3,
            iters: 2,
            scales: vec![2, 4],
            clos: ClosConfig::pod_grouped(16, 2),
            parallel: ParallelPolicy::default(),
        };
        let doc = run_config(&cfg).to_json();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("c4-bench-v1")
        );
        assert_eq!(
            doc.get("bench").and_then(|v| v.as_str()),
            Some("fig3_scale_sweep")
        );
        assert!(doc.get("total_wall_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let back = JsonValue::parse(&doc.pretty()).expect("round-trip");
        let rows = back.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("gpus").and_then(|v| v.as_f64()), Some(16.0));
    }

    #[test]
    fn throughput_is_thread_count_invariant() {
        // The tentpole guarantee at the scenario level: simulated results
        // are identical whatever the thread budget; only wall time moves.
        let mk = |threads: usize| {
            let cfg = Fig3Config {
                seed: 11,
                iters: 2,
                scales: vec![2, 8],
                clos: ClosConfig::pod_grouped(16, 2),
                parallel: ParallelPolicy::with_threads(threads),
            };
            run_config(&cfg)
        };
        let serial = mk(1);
        for threads in [2, 4] {
            let par = mk(threads);
            for (a, b) in par.rows.iter().zip(&serial.rows) {
                assert_eq!(a.gpus, b.gpus);
                assert_eq!(
                    a.actual_sps.to_bits(),
                    b.actual_sps.to_bits(),
                    "{threads} threads diverged at {} GPUs",
                    a.gpus
                );
            }
        }
    }
}
