//! Fig 7: the three communication-slow syndromes in the delay matrix —
//! a single hot cell (one congested connection), a hot row (sender Tx slow),
//! a hot column (receiver Rx slow) — and C4D's localization of each.

use c4_collectives::{run_collective, CollectiveRequest, CommConfig, Communicator};
use c4_diagnosis::{DelayMatrix, MatrixFinding};
use c4_faults::Degradation;
use c4_netsim::{DrainConfig, FlowKey};
use c4_simcore::{DetRng, SimTime};
use c4_telemetry::{CollKind, DataType, WorkerTelemetry};
use c4_topology::{ClosConfig, GpuId, NodeId, Topology};
use c4_traffic::{C4pConfig, C4pMaster};

/// Which syndrome to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig7Case {
    /// No fault: reference matrix.
    Healthy,
    /// One congested fabric path on the (3→4) connection.
    ConnectionSlow,
    /// Rank 3's NIC send side congested.
    TxSlow,
    /// Rank 4's NIC receive side congested.
    RxSlow,
}

/// One case's matrix and C4D findings.
#[derive(Debug, Clone)]
pub struct Fig7Report {
    /// The injected case.
    pub case: Fig7Case,
    /// The 8×8 delay matrix in milliseconds (`NaN` on the diagonal).
    pub matrix_ms: Vec<Vec<f64>>,
    /// C4D's localization.
    pub findings: Vec<MatrixFinding>,
}

/// The eight matrix workers: rail-0 GPUs of four nodes per leaf group, so
/// cross-group pairs traverse the spine fabric.
fn workers(topo: &Topology) -> Vec<GpuId> {
    [0usize, 1, 2, 3, 8, 9, 10, 11]
        .iter()
        .map(|&n| topo.gpu_at(NodeId::from_index(n), 0))
        .collect()
}

fn full_mesh(
    topo: &Topology,
    devices: &[GpuId],
    master: &mut C4pMaster,
    rng: &mut DetRng,
    tel: &mut [WorkerTelemetry],
) {
    let mut comm_id = 1u64;
    for i in 0..devices.len() {
        for j in (i + 1)..devices.len() {
            let comm =
                Communicator::new(comm_id, vec![devices[i], devices[j]], topo).expect("pair");
            comm_id += 1;
            let req = CollectiveRequest {
                comm: &comm,
                seq: 0,
                kind: CollKind::SendRecv,
                dtype: DataType::Bf16,
                count: 128 * 1024 * 1024, // 256 MiB per direction
                config: CommConfig::default(),
                start: SimTime::ZERO,
                rank_ready: None,
                drain: DrainConfig::default(),
            };
            run_collective(topo, &req, master, None, rng, Some(tel));
        }
    }
}

/// Runs one case and returns the matrix plus C4D's findings.
pub fn run(case: Fig7Case, seed: u64) -> Fig7Report {
    let mut topo = Topology::build(&ClosConfig::testbed_128_grouped(2));
    let devices = workers(&topo);
    let mut rng = DetRng::seed_from(seed);
    let mut master = C4pMaster::new(&topo, C4pConfig::default());

    // Dry run to establish sticky paths (needed to find the (3→4) path).
    let mut warmup_tel: Vec<WorkerTelemetry> = topo
        .gpus()
        .iter()
        .map(|g| WorkerTelemetry::new(g.id))
        .collect();
    full_mesh(&topo, &devices, &mut master, &mut rng, &mut warmup_tel);

    // Inject.
    let degradation = match case {
        Fig7Case::Healthy => None,
        Fig7Case::ConnectionSlow => {
            // Rank 3 (node 3, group 0) → rank 4 (node 8, group 1) crosses
            // the fabric; congest the up link of its allocated path.
            let key = FlowKey {
                src_gpu: devices[3],
                dst_gpu: devices[4],
                comm: 0, // unknown; search allocations by endpoints below
                channel: 0,
                qp: 0,
                incarnation: 0,
            };
            // Find the sticky allocation whose endpoints match (the comm id
            // differs per pair, so scan plausible ids).
            let path = (1..100u64).find_map(|c| {
                let mut k = key;
                k.comm = c;
                master.allocation(&k).and_then(|choice| choice.fabric)
            });
            let path = path.expect("pair (3,4) crosses the fabric");
            Some(Degradation::link_congested(path.up, 0.2))
        }
        Fig7Case::TxSlow => Some(Degradation::node_tx_slow(NodeId::from_index(3), 0.25)),
        Fig7Case::RxSlow => Some(Degradation::node_rx_slow(NodeId::from_index(8), 0.25)),
    };
    if let Some(d) = &degradation {
        d.apply(&mut topo);
    }

    // Measured run.
    let mut tel: Vec<WorkerTelemetry> = topo
        .gpus()
        .iter()
        .map(|g| WorkerTelemetry::new(g.id))
        .collect();
    full_mesh(&topo, &devices, &mut master, &mut rng, &mut tel);

    let matrix = DelayMatrix::from_conn_records(&devices, tel.iter().flat_map(|w| w.conns()));
    let findings = matrix.analyze(2.0, 0.7);
    Fig7Report {
        case,
        matrix_ms: matrix.to_display_ms(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_matrix_is_clean() {
        let r = run(Fig7Case::Healthy, 42);
        assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    }

    #[test]
    fn connection_slow_localizes_the_cell() {
        let r = run(Fig7Case::ConnectionSlow, 42);
        assert!(
            r.findings
                .iter()
                .any(|f| matches!(f, MatrixFinding::ConnectionSlow { src: 3, dst: 4, .. })),
            "findings: {:?}",
            r.findings
        );
    }

    #[test]
    fn tx_slow_localizes_the_row() {
        let r = run(Fig7Case::TxSlow, 42);
        assert!(
            r.findings
                .iter()
                .any(|f| matches!(f, MatrixFinding::TxSlow { rank: 3, .. })),
            "findings: {:?}",
            r.findings
        );
    }

    #[test]
    fn rx_slow_localizes_the_column() {
        let r = run(Fig7Case::RxSlow, 42);
        assert!(
            r.findings
                .iter()
                .any(|f| matches!(f, MatrixFinding::RxSlow { rank: 4, .. })),
            "findings: {:?}",
            r.findings
        );
    }
}
