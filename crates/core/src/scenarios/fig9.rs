//! Fig 9: bus bandwidth of a single allreduce with and without C4P's
//! dual-port balancing, at GPU = 16 / 32 / 64 / 128.
//!
//! Paper result: without C4P the effective busbw stays **below 240 Gbps**
//! (receive-side collisions on the bonded ports); with C4P it rises close to
//! the 362 Gbps NVLink-fabric peak (≈50 % gain).

use c4_collectives::run_collective;
use c4_netsim::{DrainConfig, EcmpSelector};
use c4_simcore::DetRng;
use c4_topology::{ClosConfig, GpuId, NodeId, Topology};
use c4_traffic::{C4pConfig, C4pMaster};

use crate::scenarios::benchmark_request;
use c4_collectives::Communicator;

/// One bar pair of Fig 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// GPU count (2–16 nodes × 8).
    pub gpus: usize,
    /// Baseline (NIC-bond + ECMP hashing) bus bandwidth, Gbps.
    pub baseline_gbps: f64,
    /// C4P (dual-port balanced) bus bandwidth, Gbps.
    pub c4p_gbps: f64,
}

/// Runs the sweep. `trials` allreduces are averaged per point (the paper
/// reports nccl-test averages).
pub fn run(seed: u64, trials: usize) -> Vec<Fig9Row> {
    let topo = Topology::build(&ClosConfig::testbed_128().trunked());
    let mut rng = DetRng::seed_from(seed);
    let drain = DrainConfig {
        rate_noise: 0.08,
        ..DrainConfig::default()
    };

    [2usize, 4, 8, 16]
        .iter()
        .map(|&nodes| {
            let devices: Vec<GpuId> = (0..nodes)
                .flat_map(|n| topo.node(NodeId::from_index(n)).gpus.clone())
                .collect();
            let comm = Communicator::new(nodes as u64, devices, &topo).expect("valid comm");

            let mut baseline_sum = 0.0;
            let mut c4p_sum = 0.0;
            for t in 0..trials.max(1) {
                // A fresh ECMP salt per trial models re-established QPs.
                let mut ecmp = EcmpSelector::new(seed ^ (t as u64) << 8 ^ nodes as u64);
                let req = benchmark_request(&comm, t as u64, drain.clone());
                let res = run_collective(&topo, &req, &mut ecmp, None, &mut rng, None);
                baseline_sum += res.busbw_gbps().expect("baseline completes");

                let mut c4p = C4pMaster::new(&topo, C4pConfig::default());
                let res = run_collective(&topo, &req, &mut c4p, None, &mut rng, None);
                c4p_sum += res.busbw_gbps().expect("c4p completes");
            }
            Fig9Row {
                gpus: nodes * 8,
                baseline_gbps: baseline_sum / trials.max(1) as f64,
                c4p_gbps: c4p_sum / trials.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let rows = run(42, 3);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.baseline_gbps < 240.0,
                "GPU={}: baseline {:.1} must stay below 240",
                row.gpus,
                row.baseline_gbps
            );
            assert!(
                row.c4p_gbps > 340.0,
                "GPU={}: C4P {:.1} must approach the 362 NVLink cap",
                row.gpus,
                row.c4p_gbps
            );
            let gain = row.c4p_gbps / row.baseline_gbps;
            assert!(
                gain > 1.3,
                "GPU={}: gain {:.2} should be ≈1.5×",
                row.gpus,
                gain
            );
        }
    }
}
