//! The fleet soak: many concurrent training jobs with arrival/departure
//! churn run through the **live** network stack while scheduled faults
//! land on the topology, and every fault flows the full
//! detect → isolate → replace → restart loop (§IV-B's C4D pipeline closed
//! end to end, not just measured per stage).
//!
//! The closing reconciliation ties the live loop back to the closed-form
//! operation model behind Table III: the soak's mean downtime charged per
//! recovery event must agree with [`simulate_operation`]'s mean downtime
//! per crash on a **matched** configuration — same detection latency
//! (hang timeout + localization), same steering turnaround, same
//! checkpoint cadence and re-init cost, deterministic tails.

use std::time::Instant;

use c4_fleet::{FleetConfig, FleetController, FleetReport, Reconciliation};
use c4_simcore::{JsonValue, SimDuration};
use c4_topology::Topology;
use c4_trainsim::{
    simulate_operation, DetectionModel, DiagnosisModel, OperationConfig, OperationReport,
    RecoveryConfig,
};

/// Builds the closed-form [`OperationConfig`] matched to a fleet soak:
/// the same working cluster (backups excluded — they hold no job), the
/// same accelerated fault rates, and a recovery pipeline whose stages
/// mirror what the controller actually charges per recovery:
///
/// - detection = hang timeout + localization delay (the controller charges
///   both before steering), with a fixed 1-second notification tail;
/// - diagnosis = the steering turnaround (isolation + restart), tails
///   pinned deterministic;
/// - checkpoint interval and re-init copied verbatim, so the redone
///   post-checkpoint work distributes identically.
pub fn matched_operation(cfg: &FleetConfig) -> OperationConfig {
    let topo = Topology::build(&cfg.clos);
    let nodes = topo.num_nodes().saturating_sub(cfg.backup_nodes).max(1);
    let gpus_per_node = topo.num_gpus() / topo.num_nodes().max(1);
    let turnaround = cfg.steering.isolation_delay + cfg.steering.restart_delay;
    // DetRng::lognormal needs a positive median; sigma 0 makes the 1 s
    // tails exact constants, keeping the model as deterministic as the
    // fleet's charges.
    let tick = SimDuration::from_secs(1);
    OperationConfig {
        gpus: nodes * gpus_per_node,
        nodes,
        gpus_per_node,
        horizon: cfg.horizon,
        rates: cfg.rates.scaled(cfg.rate_multiplier),
        recovery: RecoveryConfig {
            detection: DetectionModel::C4d {
                latency: cfg.detector.hang_timeout + cfg.localize_delay,
                tail_median: tick,
                tail_sigma: 0.0,
            },
            diagnosis: DiagnosisModel::C4dAuto {
                localize: SimDuration::ZERO,
                steering: turnaround,
                tail_median: tick,
                tail_sigma: 0.0,
                nonlocal_median: tick,
            },
            checkpoint_interval: cfg.checkpoint_interval,
            reinit: cfg.reinit,
        },
    }
}

/// One fleet soak plus its closed-form counterpart, with the timing
/// metadata the `bench_fleet` binary emits into `BENCH_fleet.json`.
#[derive(Debug, Clone)]
pub struct FleetSoakSweep {
    /// The live soak's full report.
    pub report: FleetReport,
    /// The matched closed-form operation run.
    pub model: OperationReport,
    /// Live-vs-model downtime comparison.
    pub reconciliation: Reconciliation,
    /// Working GPUs (backup pool excluded).
    pub gpus: usize,
    /// Working nodes.
    pub nodes: usize,
    /// Whole-sweep wall clock, milliseconds.
    pub total_wall_ms: f64,
    /// Thread budget the soak ran under.
    pub threads: usize,
    /// The root seed.
    pub seed: u64,
}

/// Runs the fleet soak and the matched closed-form model on the same seed,
/// timing the whole sweep.
pub fn run_soak(cfg: &FleetConfig) -> FleetSoakSweep {
    let start = Instant::now();
    let op = matched_operation(cfg);
    let report = FleetController::new(cfg.clone()).run();
    let model = simulate_operation(&op, cfg.seed);
    let reconciliation = report.reconcile(&model);
    FleetSoakSweep {
        report,
        model,
        reconciliation,
        gpus: op.gpus,
        nodes: op.nodes,
        total_wall_ms: start.elapsed().as_secs_f64() * 1e3,
        threads: cfg.parallel.threads(),
        seed: cfg.seed,
    }
}

impl FleetSoakSweep {
    /// The sweep as the `BENCH_fleet.json` document (`c4-bench-v1`).
    pub fn to_json(&self) -> JsonValue {
        let r = &self.report;
        let mut config = JsonValue::object();
        config
            .push("seed", self.seed)
            .push("threads", self.threads)
            .push("gpus", self.gpus)
            .push("nodes", self.nodes)
            .push("horizon_hours", r.horizon.as_secs_f64() / 3600.0)
            .push("jobs", r.jobs.len());

        let mut soak = JsonValue::object();
        soak.push("rounds", r.rounds)
            .push("live_iterations", r.live_iterations)
            .push(
                "jobs_completed",
                r.jobs.iter().filter(|j| j.completed).count(),
            )
            .push("jobs_failed", r.jobs.iter().filter(|j| j.failed).count())
            .push("goodput_fraction", r.aggregate_goodput_fraction())
            .push("downtime_fraction", r.aggregate_downtime_fraction())
            .push(
                "mean_ettr_s",
                r.mean_ettr().map_or(0.0, |d| d.as_secs_f64()),
            )
            .push("recoveries", r.total_recoveries());

        let mut faults = JsonValue::object();
        faults
            .push("crashes", r.faults.crashes)
            .push("degradations", r.faults.degradations)
            .push("link_failures", r.faults.link_failures)
            .push("skipped", r.faults.skipped);

        let mut control = JsonValue::object();
        control
            .push("detections", r.detections)
            .push("isolations", r.isolations)
            .push("replacements", r.replacements)
            .push("dp_shrinks", r.dp_shrinks)
            .push("retries", r.retries)
            .push("escalations", r.escalations)
            .push("repairs_returned", r.repairs_returned);

        let mut cache = JsonValue::object();
        cache
            .push("hits", r.cache_hits)
            .push("misses", r.cache_misses)
            .push("rebased_drops", r.cache_rebased_drops)
            .push("stale_plan_routes", r.stale_plan_routes);

        let rec = self.reconciliation;
        let mut reconcile = JsonValue::object();
        reconcile
            .push(
                "fleet_downtime_per_recovery_s",
                rec.fleet_downtime_per_recovery_s,
            )
            .push("model_downtime_per_crash_s", rec.model_downtime_per_crash_s)
            .push("per_event_ratio", rec.per_event_ratio().unwrap_or(0.0))
            .push("fleet_downtime_fraction", rec.fleet_downtime_fraction)
            .push("model_downtime_fraction", rec.model_downtime_fraction)
            .push("fleet_recoveries", rec.fleet_recoveries)
            .push("model_crashes", rec.model_crashes);

        let mut doc = JsonValue::object();
        doc.push("schema", "c4-bench-v1")
            .push("bench", "fleet")
            .push("config", config)
            .push("soak", soak)
            .push("faults", faults)
            .push("control", control)
            .push("plan_cache", cache)
            .push("reconciliation", reconcile)
            .push("total_wall_ms", self.total_wall_ms);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_smoke(seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::smoke(seed);
        cfg.horizon = SimDuration::from_hours(2);
        cfg
    }

    #[test]
    fn soak_sweep_json_matches_schema() {
        let sweep = run_soak(&short_smoke(42));
        let doc = sweep.to_json();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("c4-bench-v1")
        );
        assert_eq!(doc.get("bench").and_then(|v| v.as_str()), Some("fleet"));
        let back = JsonValue::parse(&doc.pretty()).expect("round-trip");
        assert!(back.get("total_wall_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let cache = back.get("plan_cache").unwrap();
        assert_eq!(
            cache.get("stale_plan_routes").and_then(|v| v.as_f64()),
            Some(0.0),
            "the zero-stale-route invariant is part of the document"
        );
        let soak = back.get("soak").unwrap();
        let goodput = soak
            .get("goodput_fraction")
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!((0.0..=1.0).contains(&goodput), "goodput {goodput}");
    }

    #[test]
    fn matched_model_mirrors_the_fleet_charges() {
        let cfg = FleetConfig::smoke(7);
        let op = matched_operation(&cfg);
        assert_eq!(op.nodes, 32 - cfg.backup_nodes);
        assert_eq!(op.gpus, op.nodes * 8);
        assert_eq!(op.horizon, cfg.horizon);
        assert_eq!(op.recovery.checkpoint_interval, cfg.checkpoint_interval);
        assert_eq!(op.recovery.reinit, cfg.reinit);
        match op.recovery.detection {
            DetectionModel::C4d {
                latency,
                tail_sigma,
                ..
            } => {
                assert_eq!(latency, cfg.detector.hang_timeout + cfg.localize_delay);
                assert_eq!(tail_sigma, 0.0, "deterministic tail");
            }
            other => panic!("expected C4d detection, got {other:?}"),
        }
        match op.recovery.diagnosis {
            DiagnosisModel::C4dAuto { steering, .. } => {
                assert_eq!(
                    steering,
                    cfg.steering.isolation_delay + cfg.steering.restart_delay
                );
            }
            other => panic!("expected C4dAuto diagnosis, got {other:?}"),
        }
        // Accelerated rates reach the model too.
        assert!(op.rates.total_crash_rate(op.gpus, op.nodes) > 0.0);
    }

    #[test]
    fn soak_reconciles_with_the_closed_form_model() {
        let sweep = run_soak(&short_smoke(11));
        // Per-event downtime means agree within 50 % whenever both sides
        // saw events (vacuously true otherwise — a 2 h window may draw no
        // crash on either side).
        assert!(
            sweep.reconciliation.per_event_within(0.5),
            "reconciliation out of tolerance: {:?}",
            sweep.reconciliation
        );
        assert_eq!(sweep.report.stale_plan_routes, 0);
    }
}
