//! The 4D-hybrid workload at scale: TP/PP/DP/EP traffic competing for one
//! `pod_grouped_railed` fabric, ECMP vs C4P, plus the Expert-Parallel
//! imbalance study behind the paper's §V smoothing proposal.
//!
//! Two experiments:
//!
//! * [`run_scale`] — a Mixtral-style TP8/PP8/EP8 job on 512…4096 GPUs, one
//!   BSP iteration = four back-to-back traffic phases (NVLink all-gathers,
//!   stage-edge send/recv, expert all-to-alls with a rotating hot expert,
//!   cross-fabric allreduce rings), all planned through the batched
//!   selection path with the paper's DCQCN noise and CNP accounting live.
//!   Both selectors run the identical workload; the row records per-phase
//!   bus bandwidths, the simulated iteration wall, plan-build and drain
//!   wall clocks — the `BENCH_hybrid.json` document CI gates at 2×.
//! * [`run_ep_imbalance`] — the detection-side study: per-expert received
//!   bytes from the EP all-to-alls feed both the **raw** straggler test and
//!   [`LoadSmoother`]'s windowed-mean test. A rotating hot expert (healthy
//!   MoE routing) makes the raw detector fire nearly every step; the
//!   smoothed detector stays silent, yet still catches a genuinely pinned
//!   hot expert within a window of its onset.
//!
//! [`LoadSmoother`]: c4_diagnosis::LoadSmoother

use std::time::Instant;

use c4_collectives::EpSkew;
use c4_diagnosis::{raw_straggler, LoadSmoother, StepVerdict, StreamSmoother};
use c4_netsim::{
    mix64, CnpModel, DrainConfig, DrainSolverStats, EcmpSelector, PathSelector, SolveMode,
};
use c4_simcore::{DetRng, JsonValue, ParallelPolicy};
use c4_telemetry::{CollKind, TelemetryEvent};
use c4_topology::{ClosConfig, NodeId, Topology};
use c4_traffic::{C4pConfig, C4pMaster};
use c4_trainsim::{HybridJob, HybridSpec};

/// Configuration of the hybrid-workload scale sweep.
#[derive(Debug, Clone)]
pub struct HybridScaleConfig {
    /// Root random seed.
    pub seed: u64,
    /// BSP iterations per (scale, selector) cell.
    pub iters: usize,
    /// Cluster sizes in nodes (GPUs = 8 × nodes). Each must be a multiple
    /// of 64 so TP8/PP8/EP8 places: 8 stages of `nodes / 8` nodes, with 8
    /// dividing nodes/stage.
    pub node_scales: Vec<usize>,
    /// The job shape and message sizes every cell runs.
    pub spec: HybridSpec,
    /// Thread budget (simulated results are bit-identical at any value).
    pub parallel: ParallelPolicy,
    /// Rate solver the drains run under. The 4k sweep stays on the exact
    /// solver (its baseline predates the two-tier mode); the 16k/32k
    /// extensions run [`SolveMode::TwoTier`] with ε = 1% — the differential
    /// proptests pin the rate error bound.
    pub solve_mode: SolveMode,
}

impl HybridScaleConfig {
    /// The CI-gated sweep: the full-size TP8/PP8/EP8 MoE job at 512…4096
    /// GPUs.
    pub fn scale_4096(seed: u64, iters: usize) -> Self {
        HybridScaleConfig {
            seed,
            iters,
            node_scales: vec![64, 128, 256, 512],
            spec: HybridSpec::moe(8, 8, 8),
            parallel: ParallelPolicy::default(),
            solve_mode: SolveMode::Exact,
        }
    }

    /// The 16k extension: the same TP8/PP8/EP8 MoE job at 8192 and 16384
    /// GPUs (gated separately from the 4k sweep so that baseline stays
    /// comparable across PRs).
    pub fn scale_16384(seed: u64, iters: usize) -> Self {
        HybridScaleConfig {
            seed,
            iters,
            node_scales: vec![1024, 2048],
            spec: HybridSpec::moe(8, 8, 8),
            parallel: ParallelPolicy::default(),
            solve_mode: SolveMode::TwoTier { epsilon: 0.01 },
        }
    }

    /// The 32k extension: the 32768-GPU cell.
    pub fn scale_32768(seed: u64, iters: usize) -> Self {
        HybridScaleConfig {
            seed,
            iters,
            node_scales: vec![4096],
            spec: HybridSpec::moe(8, 8, 8),
            parallel: ParallelPolicy::default(),
            solve_mode: SolveMode::TwoTier { epsilon: 0.01 },
        }
    }
}

/// One scale point: both selectors on the identical 4-phase workload.
#[derive(Debug, Clone)]
pub struct HybridScaleRow {
    /// Total GPUs.
    pub gpus: usize,
    /// Mean simulated iteration wall under ECMP, milliseconds.
    pub ecmp_iter_ms: f64,
    /// Mean simulated iteration wall under C4P, milliseconds.
    pub c4p_iter_ms: f64,
    /// Iteration-time advantage: `ecmp_iter / c4p_iter − 1`.
    pub improvement: f64,
    /// Mean EP all-to-all bus bandwidth, ECMP, Gbps.
    pub ecmp_ep_gbps: f64,
    /// Mean EP all-to-all bus bandwidth, C4P, Gbps.
    pub c4p_ep_gbps: f64,
    /// Mean DP allreduce bus bandwidth, ECMP, Gbps.
    pub ecmp_dp_gbps: f64,
    /// Mean DP allreduce bus bandwidth, C4P, Gbps.
    pub c4p_dp_gbps: f64,
    /// ECMP plan-build wall clock (all four families), milliseconds.
    pub ecmp_plan_ms: f64,
    /// C4P plan-build wall clock, milliseconds.
    pub c4p_plan_ms: f64,
    /// ECMP iteration-loop wall net of plan building, milliseconds.
    pub ecmp_drain_ms: f64,
    /// C4P drain wall clock, milliseconds.
    pub c4p_drain_ms: f64,
    /// Whole-cell wall clock, milliseconds.
    pub wall_ms: f64,
    /// Solver counters folded over every ECMP iteration of the cell.
    pub ecmp_solver: DrainSolverStats,
    /// Solver counters folded over every C4P iteration of the cell.
    pub c4p_solver: DrainSolverStats,
}

/// The full hybrid sweep plus `BENCH_hybrid.json` timing metadata.
#[derive(Debug, Clone)]
pub struct HybridScaleSweep {
    /// Per-scale rows.
    pub rows: Vec<HybridScaleRow>,
    /// Whole-sweep wall clock, milliseconds.
    pub total_wall_ms: f64,
    /// Thread budget the sweep ran under.
    pub threads: usize,
    /// The root seed.
    pub seed: u64,
    /// Iterations per cell.
    pub iters: usize,
    /// Rate solver every drain of the sweep ran under.
    pub solve_mode: SolveMode,
}

/// Stage-major node order for `pp` stages over `nodes` stride-`pp` ids:
/// stage `s` owns nodes `s, s+pp, s+2·pp, …` — adjacent stages sit on
/// adjacent node ids (PP edges stay leaf-group-local on the grouped
/// fabrics) while each stage's DP/EP rings stride across the groups and
/// cross the spine layer.
fn stage_major_nodes(nodes: usize, pp: usize) -> Vec<NodeId> {
    let per_stage = nodes / pp;
    let mut out = Vec::with_capacity(nodes);
    for s in 0..pp {
        for k in 0..per_stage {
            out.push(NodeId::from_index(s + pp * k));
        }
    }
    out
}

/// Per-selector outcome of one cell.
struct ModeStats {
    iter_ms: f64,
    ep_gbps: f64,
    dp_gbps: f64,
    plan_ms: f64,
    drain_ms: f64,
    solver: DrainSolverStats,
}

/// Runs one selector over `iters` hybrid iterations, rotating the hot
/// expert round-robin (offset by the cell rng) so both selectors see the
/// identical skew sequence.
fn run_hybrid_mode(
    topo: &Topology,
    cfg: &HybridScaleConfig,
    selector: &mut dyn PathSelector,
    rng: &mut DetRng,
) -> ModeStats {
    let mode_start = Instant::now();
    let spec = cfg.spec.clone();
    let ep = spec.ep;
    let nodes = stage_major_nodes(topo.num_nodes(), spec.pp);
    let mut job = HybridJob::new(topo, spec, nodes, 1).expect("sweep shape places");
    job.drain = DrainConfig {
        rate_noise: 0.10,
        cnp: Some(CnpModel::paper_default()),
        parallel: cfg.parallel,
        solve_mode: cfg.solve_mode,
        ..DrainConfig::default()
    };
    let offset = rng.index(ep);
    let mut iter_secs = 0.0;
    let (mut ep_sum, mut dp_sum) = (0.0, 0.0);
    let mut solver = DrainSolverStats::default();
    for it in 0..cfg.iters {
        job.set_ep_skew(EpSkew::hot(((offset + it) % ep) as u32, 4.0));
        let r = job.run_iteration(topo, selector, None, rng);
        assert!(!r.hung, "healthy fabric must not hang");
        solver.merge(&r.solver);
        iter_secs += r.total.as_secs_f64();
        ep_sum += r
            .phase(CollKind::AllToAll)
            .and_then(|p| p.busbw_mean_gbps)
            .unwrap_or(0.0);
        dp_sum += r
            .phase(CollKind::AllReduce)
            .and_then(|p| p.busbw_mean_gbps)
            .unwrap_or(0.0);
    }
    let n = cfg.iters.max(1) as f64;
    let plan_ms = job.plan_cache().build_wall_ms();
    let mode_ms = mode_start.elapsed().as_secs_f64() * 1e3;
    ModeStats {
        iter_ms: iter_secs * 1e3 / n,
        ep_gbps: ep_sum / n,
        dp_gbps: dp_sum / n,
        plan_ms,
        drain_ms: (mode_ms - plan_ms).max(0.0),
        solver,
    }
}

/// Runs the hybrid-workload scale sweep: ECMP vs C4P on identical 4-phase
/// iterations at every scale point.
///
/// # Panics
///
/// Panics if a scale point cannot place the TP8/PP8/EP8 job (see
/// [`HybridScaleConfig::node_scales`]).
pub fn run_scale(cfg: &HybridScaleConfig) -> HybridScaleSweep {
    assert!(
        !cfg.node_scales.is_empty(),
        "sweep needs at least one scale"
    );
    let sweep_start = Instant::now();
    let mut rows = Vec::new();
    for &nodes in &cfg.node_scales {
        let row_start = Instant::now();
        let clos = ClosConfig::pod_grouped_railed(nodes, 8);
        let topo = Topology::build(&clos);
        let mut rng = DetRng::seed_from(cfg.seed ^ mix64(0x4D ^ nodes as u64));

        let mut ecmp = EcmpSelector::new(cfg.seed ^ 0xEC3F ^ nodes as u64);
        let e = run_hybrid_mode(&topo, cfg, &mut ecmp, &mut rng);

        let mut master = C4pMaster::new(&topo, C4pConfig::default()).with_parallel(cfg.parallel);
        let c = run_hybrid_mode(&topo, cfg, &mut master, &mut rng);

        rows.push(HybridScaleRow {
            gpus: nodes * clos.gpus_per_node,
            ecmp_iter_ms: e.iter_ms,
            c4p_iter_ms: c.iter_ms,
            improvement: e.iter_ms / c.iter_ms.max(1e-9) - 1.0,
            ecmp_ep_gbps: e.ep_gbps,
            c4p_ep_gbps: c.ep_gbps,
            ecmp_dp_gbps: e.dp_gbps,
            c4p_dp_gbps: c.dp_gbps,
            ecmp_plan_ms: e.plan_ms,
            c4p_plan_ms: c.plan_ms,
            ecmp_drain_ms: e.drain_ms,
            c4p_drain_ms: c.drain_ms,
            wall_ms: row_start.elapsed().as_secs_f64() * 1e3,
            ecmp_solver: e.solver,
            c4p_solver: c.solver,
        });
    }
    HybridScaleSweep {
        rows,
        total_wall_ms: sweep_start.elapsed().as_secs_f64() * 1e3,
        threads: cfg.parallel.threads(),
        seed: cfg.seed,
        iters: cfg.iters,
        solve_mode: cfg.solve_mode,
    }
}

/// A [`DrainSolverStats`] as the nested `c4-bench-v1` solver column.
fn solver_json(s: &DrainSolverStats) -> JsonValue {
    let mut o = JsonValue::object();
    o.push("events", s.events)
        .push("flows", s.flows)
        .push("full_solves", s.full_solves)
        .push("component_solves", s.component_solves)
        .push("sparse_solves", s.sparse_solves)
        .push("spine_rounds", s.spine_rounds)
        .push("spine_link_updates", s.spine_link_updates)
        .push("fallback_solves", s.fallback_solves)
        .push("batched_instants", s.batched_instants)
        .push("batched_completions", s.batched_completions)
        .push("components", s.components)
        .push("arena_hwm_bytes", s.arena_hwm_bytes);
    o
}

impl HybridScaleSweep {
    /// The sweep as the `BENCH_hybrid.json` document (`c4-bench-v1`).
    pub fn to_json(&self) -> JsonValue {
        let mut config = JsonValue::object();
        config
            .push("seed", self.seed)
            .push("iters", self.iters)
            .push("threads", self.threads)
            .push("solve_mode", format!("{:?}", self.solve_mode));
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = JsonValue::object();
                row.push("gpus", r.gpus)
                    .push("ecmp_iter_ms", r.ecmp_iter_ms)
                    .push("c4p_iter_ms", r.c4p_iter_ms)
                    .push("improvement", r.improvement)
                    .push("ecmp_ep_gbps", r.ecmp_ep_gbps)
                    .push("c4p_ep_gbps", r.c4p_ep_gbps)
                    .push("ecmp_dp_gbps", r.ecmp_dp_gbps)
                    .push("c4p_dp_gbps", r.c4p_dp_gbps)
                    .push("ecmp_plan_ms", r.ecmp_plan_ms)
                    .push("c4p_plan_ms", r.c4p_plan_ms)
                    .push("ecmp_drain_ms", r.ecmp_drain_ms)
                    .push("c4p_drain_ms", r.c4p_drain_ms)
                    .push("wall_ms", r.wall_ms)
                    .push("ecmp_solver", solver_json(&r.ecmp_solver))
                    .push("c4p_solver", solver_json(&r.c4p_solver));
                row
            })
            .collect();
        let mut doc = JsonValue::object();
        doc.push("schema", "c4-bench-v1")
            .push("bench", "hybrid_scale_sweep")
            .push("config", config)
            .push("rows", JsonValue::Array(rows))
            .push("total_wall_ms", self.total_wall_ms);
        doc
    }
}

/// Configuration of the EP-imbalance detection study.
#[derive(Debug, Clone)]
pub struct EpImbalanceConfig {
    /// Root random seed.
    pub seed: u64,
    /// Cluster size in nodes — a valid 8-group railed fabric (≥ 32) on
    /// which TP8/PP2/EP8 places.
    pub nodes: usize,
    /// Steps with healthy (rotating) expert routing.
    pub rotate_steps: usize,
    /// Steps after the hot expert pins to one rank.
    pub pinned_steps: usize,
    /// Smoothing window (steps); the paper's "predefined period".
    pub window: usize,
    /// Straggler threshold: worst/median load ratio that fires a detector.
    pub factor: f64,
    /// Hot-expert byte skew factor of every step.
    pub hot_factor: f64,
}

impl EpImbalanceConfig {
    /// The default study: 256 GPUs, 8 experts, a 2× detection threshold
    /// against a 4× routing skew, smoothing window = one full rotation.
    pub fn default_study(seed: u64) -> Self {
        EpImbalanceConfig {
            seed,
            nodes: 32,
            rotate_steps: 16,
            pinned_steps: 8,
            window: 8,
            factor: 2.0,
            hot_factor: 4.0,
        }
    }
}

/// Outcome of the EP-imbalance detection study.
#[derive(Debug, Clone)]
pub struct EpImbalanceReport {
    /// Steps with rotating (healthy) routing.
    pub rotate_steps: usize,
    /// Steps with the hot expert pinned (systemic imbalance).
    pub pinned_steps: usize,
    /// Rotation steps where the **raw** per-step detector fired — every one
    /// a false positive.
    pub raw_false_positives: usize,
    /// Rotation steps where the smoothed detector fired (should be zero).
    pub smoothed_false_positives: usize,
    /// Step index (within the pinned phase) at which the smoothed detector
    /// first flagged the pinned expert; `None` if it never did.
    pub smoothed_detect_step: Option<usize>,
    /// The rank the smoothed detector flagged.
    pub detected_rank: Option<usize>,
    /// The rank the hot expert was pinned to.
    pub pinned_rank: usize,
    /// Rotation steps the **streamed** raw detector (a window-1
    /// [`StreamSmoother`] fed [`TelemetryEvent::Load`]s) flagged — must
    /// equal [`raw_false_positives`](Self::raw_false_positives).
    pub streamed_raw_false_positives: usize,
    /// Rotation steps the streamed windowed detector flagged — must equal
    /// [`smoothed_false_positives`](Self::smoothed_false_positives).
    pub streamed_smoothed_false_positives: usize,
    /// First pinned-phase step the streamed windowed detector fired — must
    /// equal [`smoothed_detect_step`](Self::smoothed_detect_step).
    pub streamed_detect_step: Option<usize>,
    /// The rank the streamed windowed detector flagged.
    pub streamed_detected_rank: Option<usize>,
    /// The recorded EP load stream (first EP group, canonical rank order) —
    /// the input both streamed detectors consumed, kept for CSV-replay
    /// differentials.
    pub load_events: Vec<TelemetryEvent>,
}

/// Runs the EP-imbalance study: real all-to-all traffic on a hybrid job
/// feeds per-expert received bytes into both detectors.
///
/// During the healthy phase the hot expert walks a random rotation (a fresh
/// permutation of the experts each round, so any `window`-step span sees a
/// rank hot at most twice) — per-step skew is large, windowed means stay
/// flat. Then the hot expert pins to one rank: a systemic imbalance the
/// smoothed detector must still catch.
pub fn run_ep_imbalance(cfg: &EpImbalanceConfig) -> EpImbalanceReport {
    let clos = ClosConfig::pod_grouped_railed(cfg.nodes, 8);
    let topo = Topology::build(&clos);
    let mut spec = HybridSpec::moe(8, 2, 8);
    // The study watches the EP phase; shrink the other families to keep the
    // step loop cheap.
    spec.tp_elems = 1024 * 1024;
    spec.pp_elems = 1024 * 1024;
    spec.dp_elems = 1024 * 1024;
    spec.ep_elems = 8 * 1024 * 1024;
    let ep = spec.ep;
    let nodes = stage_major_nodes(cfg.nodes, spec.pp);
    // The detection signal is byte skew from token routing; DCQCN noise
    // and CNP accounting are orthogonal to it (and the smoothing proptests
    // cover noise robustness), so the study drains noise-free.
    let mut job = HybridJob::new(&topo, spec, nodes, 1).expect("study shape places");
    let mut rng = DetRng::seed_from(cfg.seed ^ 0xE9);
    let mut selector = EcmpSelector::new(cfg.seed ^ 0xEC3F);

    let mut smoother = LoadSmoother::new(ep, cfg.window);
    let mut raw_fp = 0usize;
    let mut smoothed_fp = 0usize;
    let mut rotation: Vec<usize> = Vec::new();
    // The live telemetry stream: per-step Load events for the first EP
    // group, in the canonical rank order the batch loads vector uses.
    let mut events: Vec<TelemetryEvent> = Vec::new();
    let mut step_no: u64 = 0;
    let mut step_loads = |job: &mut HybridJob,
                          hot: usize,
                          rng: &mut DetRng,
                          events: &mut Vec<TelemetryEvent>,
                          step: u64|
     -> Vec<f64> {
        job.set_ep_skew(EpSkew::hot(hot as u32, cfg.hot_factor));
        let r = job.run_iteration(&topo, &mut selector, None, rng);
        // Expert load signal: bytes received by each rank of the first EP
        // group (all groups share the skew; one suffices).
        let first = job.ep_comms()[0].id();
        events.extend(
            job.ep_load_samples(&r, step)
                .into_iter()
                .filter(|s| s.comm == first)
                .map(TelemetryEvent::Load),
        );
        r.ep_recv_bytes[0].iter().map(|&b| b as f64).collect()
    };

    for _ in 0..cfg.rotate_steps {
        if rotation.is_empty() {
            rotation = (0..ep).collect();
            rng.shuffle(&mut rotation);
        }
        let hot = rotation.pop().expect("refilled above");
        let loads = step_loads(&mut job, hot, &mut rng, &mut events, step_no);
        step_no += 1;
        if raw_straggler(&loads, cfg.factor).is_some() {
            raw_fp += 1;
        }
        smoother.push_step(&loads);
        if smoother.detect_straggler(cfg.factor).is_some() {
            smoothed_fp += 1;
        }
    }

    // The imbalance turns systemic: the hot expert stops moving.
    let pinned_rank = rng.index(ep);
    let mut detect = None;
    let mut detected_rank = None;
    for step in 0..cfg.pinned_steps {
        let loads = step_loads(&mut job, pinned_rank, &mut rng, &mut events, step_no);
        step_no += 1;
        smoother.push_step(&loads);
        if detect.is_none() {
            if let Some((rank, _)) = smoother.detect_straggler(cfg.factor) {
                detect = Some(step);
                detected_rank = Some(rank);
            }
        }
    }

    // The streaming twins consume the recorded event stream: a window-1
    // smoother is exactly the raw per-step test, the window-W smoother the
    // batch `LoadSmoother` — both must reproduce the batch verdicts.
    let (raw_verdicts, smooth_verdicts) = stream_ep_verdicts(&events, ep, cfg);
    let rotate = cfg.rotate_steps as u64;
    let streamed_raw_fp = raw_verdicts
        .iter()
        .filter(|v| v.step < rotate && v.verdict.is_some())
        .count();
    let streamed_smoothed_fp = smooth_verdicts
        .iter()
        .filter(|v| v.step < rotate && v.verdict.is_some())
        .count();
    let first_hit = smooth_verdicts
        .iter()
        .find(|v| v.step >= rotate && v.verdict.is_some());
    let streamed_detect_step = first_hit.map(|v| (v.step - rotate) as usize);
    let streamed_detected_rank = first_hit.and_then(|v| v.verdict.map(|(r, _)| r));

    EpImbalanceReport {
        rotate_steps: cfg.rotate_steps,
        pinned_steps: cfg.pinned_steps,
        raw_false_positives: raw_fp,
        smoothed_false_positives: smoothed_fp,
        smoothed_detect_step: detect,
        detected_rank,
        pinned_rank,
        streamed_raw_false_positives: streamed_raw_fp,
        streamed_smoothed_false_positives: streamed_smoothed_fp,
        streamed_detect_step,
        streamed_detected_rank,
        load_events: events,
    }
}

/// Drives the streamed raw (window 1) and windowed EP detectors over a load
/// event stream, returning their per-step verdicts. Public so the CSV-replay
/// differential can re-run detection on a parsed copy of the stream.
pub fn stream_ep_verdicts(
    events: &[TelemetryEvent],
    ep: usize,
    cfg: &EpImbalanceConfig,
) -> (Vec<StepVerdict>, Vec<StepVerdict>) {
    let mut raw = StreamSmoother::new(ep, 1, cfg.factor);
    let mut smooth = StreamSmoother::new(ep, cfg.window, cfg.factor);
    let mut raw_verdicts = Vec::new();
    let mut smooth_verdicts = Vec::new();
    for e in events {
        raw_verdicts.extend(raw.feed(e));
        smooth_verdicts.extend(smooth.feed(e));
    }
    raw_verdicts.extend(raw.flush());
    smooth_verdicts.extend(smooth.flush());
    (raw_verdicts, smooth_verdicts)
}

impl EpImbalanceReport {
    /// The study as a JSON object (embedded in `BENCH_hybrid.json`).
    pub fn to_json(&self) -> JsonValue {
        let mut doc = JsonValue::object();
        doc.push("rotate_steps", self.rotate_steps)
            .push("pinned_steps", self.pinned_steps)
            .push("raw_false_positives", self.raw_false_positives)
            .push("smoothed_false_positives", self.smoothed_false_positives)
            .push(
                "smoothed_detect_step",
                self.smoothed_detect_step.map_or(-1.0, |s| s as f64),
            )
            .push("pinned_rank", self.pinned_rank);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> HybridScaleConfig {
        // The full shape with 16×-shrunken messages: the same flow graph
        // and planning work as the real sweep, far shorter drains.
        let mut spec = HybridSpec::moe(8, 8, 8);
        spec.tp_elems /= 16;
        spec.pp_elems /= 16;
        spec.dp_elems /= 16;
        spec.ep_elems /= 16;
        HybridScaleConfig {
            seed,
            iters: 2,
            node_scales: vec![64],
            spec,
            parallel: ParallelPolicy::default(),
            solve_mode: SolveMode::Exact,
        }
    }

    #[test]
    fn stage_major_order_is_a_permutation() {
        let order = stage_major_nodes(64, 8);
        let mut idx: Vec<usize> = order.iter().map(|n| n.index()).collect();
        // Stage 0 = nodes 0, 8, 16, …
        assert_eq!(idx[0], 0);
        assert_eq!(idx[1], 8);
        idx.sort_unstable();
        assert_eq!(idx, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn scale_cell_runs_and_c4p_speeds_the_iteration() {
        let sweep = run_scale(&small_cfg(7));
        assert_eq!(sweep.rows.len(), 1);
        let r = &sweep.rows[0];
        assert_eq!(r.gpus, 512);
        assert!(r.ecmp_iter_ms > 0.0 && r.c4p_iter_ms > 0.0);
        assert!(
            r.c4p_iter_ms < r.ecmp_iter_ms,
            "C4P iteration {:.1} ms must beat ECMP {:.1} ms",
            r.c4p_iter_ms,
            r.ecmp_iter_ms
        );
        assert!(r.c4p_dp_gbps > r.ecmp_dp_gbps, "DP rings gain from C4P");
        assert!(r.ecmp_ep_gbps > 0.0 && r.c4p_ep_gbps > 0.0);
        assert!(r.ecmp_plan_ms > 0.0 && r.c4p_plan_ms > 0.0);
        assert!(r.wall_ms > 0.0 && sweep.total_wall_ms >= r.wall_ms);

        // The same sweep as the BENCH_hybrid.json document.
        let doc = sweep.to_json();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("c4-bench-v1")
        );
        assert_eq!(
            doc.get("bench").and_then(|v| v.as_str()),
            Some("hybrid_scale_sweep")
        );
        let back = JsonValue::parse(&doc.pretty()).expect("round-trip");
        let rows = back.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows[0].get("gpus").and_then(|v| v.as_f64()), Some(512.0));
        assert!(back.get("total_wall_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        // Invariance is about the planning/selection layers, not scale: a
        // 32-node PP2 shape builds the same four families far cheaper.
        let mk = |threads: usize| {
            let mut cfg = small_cfg(11);
            cfg.node_scales = vec![32];
            cfg.spec.pp = 2;
            cfg.parallel = ParallelPolicy::with_threads(threads);
            run_scale(&cfg)
        };
        let serial = mk(1);
        let par = mk(4);
        for (a, b) in par.rows.iter().zip(&serial.rows) {
            assert_eq!(a.ecmp_iter_ms.to_bits(), b.ecmp_iter_ms.to_bits());
            assert_eq!(a.c4p_iter_ms.to_bits(), b.c4p_iter_ms.to_bits());
            assert_eq!(a.c4p_ep_gbps.to_bits(), b.c4p_ep_gbps.to_bits());
        }
    }

    #[test]
    fn smoothing_kills_rotation_false_positives_but_catches_pinning() {
        let r = run_ep_imbalance(&EpImbalanceConfig::default_study(42));
        // Healthy rotation: the raw detector cries wolf almost every step…
        assert!(
            r.raw_false_positives > r.rotate_steps / 2,
            "raw detector should fire on most rotation steps: {}/{}",
            r.raw_false_positives,
            r.rotate_steps
        );
        // …the smoothed detector never does…
        assert_eq!(
            r.smoothed_false_positives, 0,
            "windowed means must absorb healthy rotation"
        );
        // …and still catches the pinned expert within one window.
        let step = r.smoothed_detect_step.expect("pinned expert detected");
        assert!(
            step < 8,
            "detection within the window of the onset, got step {step}"
        );
        assert_eq!(r.detected_rank, Some(r.pinned_rank));
        // The streaming twins, fed the recorded event stream, reproduce the
        // batch verdicts exactly.
        assert_eq!(r.streamed_raw_false_positives, r.raw_false_positives);
        assert_eq!(
            r.streamed_smoothed_false_positives,
            r.smoothed_false_positives
        );
        assert_eq!(r.streamed_detect_step, r.smoothed_detect_step);
        assert_eq!(r.streamed_detected_rank, r.detected_rank);
        assert!(!r.load_events.is_empty(), "stream must carry load events");
    }
}
