//! Experiment scenarios regenerating the paper's tables and figures.
//!
//! Each submodule exposes a `run(...)`-style entry point returning plain
//! data, so the `c4-bench` binaries print them, integration tests assert
//! their shapes, and EXPERIMENTS.md records paper-vs-measured values from a
//! single source of truth.

pub mod fig10;
pub mod fig12;
pub mod fig14;
pub mod fig3;
pub mod fig7;
pub mod fig9;
pub mod fleet;
pub mod hybrid;
pub mod tables;

use c4_collectives::{CollectiveRequest, CommConfig, Communicator};
use c4_netsim::DrainConfig;
use c4_simcore::SimTime;
use c4_telemetry::{CollKind, DataType};

/// A standard large-message allreduce request used by the benchmark
/// scenarios (1 GiB of BF16, ring algorithm, 2 QPs per stream — the
/// `nccl-test` configuration of §IV-A).
pub fn benchmark_request<'a>(
    comm: &'a Communicator,
    seq: u64,
    drain: DrainConfig,
) -> CollectiveRequest<'a> {
    CollectiveRequest {
        comm,
        seq,
        kind: CollKind::AllReduce,
        dtype: DataType::Bf16,
        count: 512 * 1024 * 1024, // 1 GiB message
        config: CommConfig::default(),
        start: SimTime::ZERO,
        rank_ready: None,
        drain,
    }
}
