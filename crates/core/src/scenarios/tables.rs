//! Table I (crash census) and Table III (error-induced downtime).

use c4_trainsim::{simulate_operation, OperationConfig, OperationReport};

/// Table I: one month of a 4,096-GPU job under June-2023 conditions.
///
/// Paper: 40 crashes; CUDA 12.5 % (100 % local), ECC/NVLink 27.5 % (100 %),
/// NCCL timeout 20 % (75 %), ACK timeout 27.5 % (81.8 %), others 12.5 %
/// (40 %).
pub fn table1(seed: u64) -> OperationReport {
    simulate_operation(&OperationConfig::june_2023_4096(), seed)
}

/// Table III: the 2,400-GPU 175-B job, before (June) and after (December)
/// C4D + frequent checkpointing.
///
/// Paper totals: 31.19 % → 1.16 % downtime (≈30×).
pub fn table3(seed: u64) -> (OperationReport, OperationReport) {
    (
        simulate_operation(&OperationConfig::june_2023_175b(), seed),
        simulate_operation(&OperationConfig::december_2023_175b(), seed ^ 0xDEC),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_census_shape() {
        let report = table1(42);
        let rows = report.cause_census();
        // Five cause rows summing to 1.
        assert_eq!(rows.len(), 5);
        let total: f64 = rows.iter().map(|r| r.proportion).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // ECC/NVLink should be among the most frequent causes.
        let ecc = rows.iter().find(|r| r.cause == "ECC/NVLink Error").unwrap();
        assert!(ecc.proportion > 0.1, "ECC/NVLink {:.2}", ecc.proportion);
    }

    #[test]
    fn table3_improvement_shape() {
        let (june, dec) = table3(42);
        let jf = june.downtime_fraction();
        let df = dec.downtime_fraction();
        assert!((0.20..0.45).contains(&jf), "June {jf}");
        assert!(df < 0.04, "December {df}");
        assert!(jf / df.max(1e-9) > 10.0, "ratio {}", jf / df.max(1e-9));
    }
}
