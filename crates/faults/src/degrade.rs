//! Applying degradations to the topology (and to compute phases).
//!
//! A [`Degradation`] is a reversible change to link state that models a
//! non-critical hardware issue: PCIe downgrade, half-down dual-port NIC,
//! fabric link failure, or congestion on a NIC's send/receive side. C4D's
//! Fig 7 delay-matrix experiments inject exactly these and ask the analyzer
//! to localize them.

use c4_simcore::SimDuration;
use c4_topology::{GpuId, LinkId, NodeId, PortId, Topology};

use crate::kind::FaultKind;

/// What a degradation touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeTarget {
    /// Both PCIe directions of a GPU.
    GpuPcie(GpuId),
    /// One physical NIC port (both directions).
    Port(PortId),
    /// A single directed link.
    Link(LinkId),
    /// A node's NIC send side (all ports' host-up links) — the paper's
    /// "Rank Tx slow" row syndrome.
    NodeTx(NodeId),
    /// A node's NIC receive side (all ports' host-down links) — the
    /// "Rank Rx slow" column syndrome.
    NodeRx(NodeId),
}

/// A reversible capacity degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// The fault kind this degradation models.
    pub kind: FaultKind,
    /// What it touches.
    pub target: DegradeTarget,
    /// Remaining capacity fraction (0 = down, 1 = healthy).
    pub factor: f64,
}

impl Degradation {
    /// PCIe ×16 trained down to the given fraction (e.g. 0.25 for ×4).
    pub fn pcie_downgrade(gpu: GpuId, factor: f64) -> Self {
        Degradation {
            kind: FaultKind::PcieDowngrade,
            target: DegradeTarget::GpuPcie(gpu),
            factor,
        }
    }

    /// One physical port of a dual-port NIC down.
    pub fn nic_half_down(port: PortId) -> Self {
        Degradation {
            kind: FaultKind::NicHalfDown,
            target: DegradeTarget::Port(port),
            factor: 0.0,
        }
    }

    /// A fabric link fully down.
    pub fn link_down(link: LinkId) -> Self {
        Degradation {
            kind: FaultKind::LinkFailure,
            target: DegradeTarget::Link(link),
            factor: 0.0,
        }
    }

    /// A single link congested/degraded to `factor` of nominal capacity.
    pub fn link_congested(link: LinkId, factor: f64) -> Self {
        Degradation {
            kind: FaultKind::LinkFailure,
            target: DegradeTarget::Link(link),
            factor,
        }
    }

    /// Node NIC send side congested (Fig 7 "Rank Tx slow").
    pub fn node_tx_slow(node: NodeId, factor: f64) -> Self {
        Degradation {
            kind: FaultKind::NicHalfDown,
            target: DegradeTarget::NodeTx(node),
            factor,
        }
    }

    /// Node NIC receive side congested (Fig 7 "Rank Rx slow").
    pub fn node_rx_slow(node: NodeId, factor: f64) -> Self {
        Degradation {
            kind: FaultKind::NicHalfDown,
            target: DegradeTarget::NodeRx(node),
            factor,
        }
    }

    fn links_of(&self, topo: &Topology) -> Vec<LinkId> {
        match &self.target {
            DegradeTarget::GpuPcie(g) => {
                let gpu = topo.gpu(*g);
                vec![gpu.pcie_tx, gpu.pcie_rx]
            }
            DegradeTarget::Port(p) => {
                let port = topo.port(*p);
                vec![port.host_up, port.host_down]
            }
            DegradeTarget::Link(l) => vec![*l],
            DegradeTarget::NodeTx(n) => topo
                .node(*n)
                .nics
                .iter()
                .flat_map(|&nic| topo.nic(nic).ports)
                .map(|p| topo.port(p).host_up)
                .collect(),
            DegradeTarget::NodeRx(n) => topo
                .node(*n)
                .nics
                .iter()
                .flat_map(|&nic| topo.nic(nic).ports)
                .map(|p| topo.port(p).host_down)
                .collect(),
        }
    }

    /// Applies the degradation to the topology.
    pub fn apply(&self, topo: &mut Topology) {
        for l in self.links_of(topo) {
            if self.factor <= 0.0 {
                topo.link_mut(l).set_up(false);
            } else {
                topo.link_mut(l).set_degradation(self.factor);
            }
        }
    }

    /// Reverts the degradation (link back up, full capacity).
    pub fn revert(&self, topo: &mut Topology) {
        for l in self.links_of(topo) {
            topo.link_mut(l).set_up(true);
            topo.link_mut(l).set_degradation(1.0);
        }
    }
}

/// A compute-side perturbation (slow GPU, GC pause, dataloader stall):
/// consumed by the training simulator, which stretches the affected worker's
/// non-communication phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputePerturbation {
    /// The fault kind this models.
    pub kind: FaultKind,
    /// Affected GPU (worker).
    pub gpu: GpuId,
    /// Multiplier on the worker's compute time (≥ 1).
    pub slowdown: f64,
    /// Additive stall per iteration (GC pause, dataloader hiccup).
    pub extra: SimDuration,
}

impl ComputePerturbation {
    /// A GPU running at `1/slowdown` of nominal speed.
    pub fn slow_gpu(gpu: GpuId, slowdown: f64) -> Self {
        ComputePerturbation {
            kind: FaultKind::SlowGpu,
            gpu,
            slowdown: slowdown.max(1.0),
            extra: SimDuration::ZERO,
        }
    }

    /// A recurring host-side stall of `pause` per iteration.
    pub fn gc_pause(gpu: GpuId, pause: SimDuration) -> Self {
        ComputePerturbation {
            kind: FaultKind::GcPause,
            gpu,
            slowdown: 1.0,
            extra: pause,
        }
    }

    /// The perturbed compute duration for a nominal `base`.
    pub fn perturb(&self, base: SimDuration) -> SimDuration {
        base * self.slowdown + self.extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::{ClosConfig, PortSide};

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    #[test]
    fn pcie_downgrade_applies_and_reverts() {
        let mut t = topo();
        let g = t.gpus()[5].id;
        let d = Degradation::pcie_downgrade(g, 0.25);
        d.apply(&mut t);
        let gpu = *t.gpu(g);
        assert!((t.link(gpu.pcie_tx).capacity().as_gbps() - 100.0).abs() < 1e-9);
        assert!((t.link(gpu.pcie_rx).capacity().as_gbps() - 100.0).abs() < 1e-9);
        d.revert(&mut t);
        assert!((t.link(gpu.pcie_tx).capacity().as_gbps() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn nic_half_down_kills_one_port() {
        let mut t = topo();
        let g = t.gpus()[0].id;
        let p = t.port_of_gpu(g, PortSide::Right);
        let d = Degradation::nic_half_down(p);
        d.apply(&mut t);
        assert!(!t.link(t.port(p).host_up).is_up());
        assert!(!t.link(t.port(p).host_down).is_up());
        // Left port unaffected.
        let lp = t.port_of_gpu(g, PortSide::Left);
        assert!(t.link(t.port(lp).host_up).is_up());
        d.revert(&mut t);
        assert!(t.link(t.port(p).host_up).is_up());
    }

    #[test]
    fn node_tx_slow_degrades_all_uplinks() {
        let mut t = topo();
        let n = NodeId::from_index(3);
        let d = Degradation::node_tx_slow(n, 0.5);
        d.apply(&mut t);
        for &nic in &t.node(n).nics.clone() {
            for p in t.nic(nic).ports {
                assert!((t.link(t.port(p).host_up).capacity().as_gbps() - 100.0).abs() < 1e-9);
                // Rx untouched.
                assert!((t.link(t.port(p).host_down).capacity().as_gbps() - 200.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn node_rx_slow_degrades_all_downlinks() {
        let mut t = topo();
        let n = NodeId::from_index(2);
        Degradation::node_rx_slow(n, 0.25).apply(&mut t);
        let nic = t.node(n).nics[0];
        let p = t.nic(nic).ports[0];
        assert!((t.link(t.port(p).host_down).capacity().as_gbps() - 50.0).abs() < 1e-9);
        assert!((t.link(t.port(p).host_up).capacity().as_gbps() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn compute_perturbations_stretch_time() {
        let g = GpuId::from_index(0);
        let slow = ComputePerturbation::slow_gpu(g, 1.5);
        assert_eq!(
            slow.perturb(SimDuration::from_millis(100)),
            SimDuration::from_millis(150)
        );
        let gc = ComputePerturbation::gc_pause(g, SimDuration::from_millis(30));
        assert_eq!(
            gc.perturb(SimDuration::from_millis(100)),
            SimDuration::from_millis(130)
        );
        // Slowdown below 1 clamps to 1.
        let clamped = ComputePerturbation::slow_gpu(g, 0.5);
        assert_eq!(
            clamped.perturb(SimDuration::from_millis(100)),
            SimDuration::from_millis(100)
        );
    }
}
