//! Fault events: a concrete fault occurring at a time and place.

use std::fmt;

use c4_simcore::SimTime;
use c4_topology::{GpuId, LinkId, NodeId};

use crate::kind::FaultKind;

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Monotone event id.
    pub id: u64,
    /// When the fault strikes.
    pub time: SimTime,
    /// What kind of fault.
    pub kind: FaultKind,
    /// Whether this instance is confined to one node/device (drawn from
    /// [`FaultKind::locality_probability`]).
    pub local: bool,
    /// Affected node (for node/GPU scoped faults).
    pub node: Option<NodeId>,
    /// Affected GPU (for GPU-scoped faults).
    pub gpu: Option<GpuId>,
    /// Affected link (for fabric faults).
    pub link: Option<LinkId>,
}

impl FaultEvent {
    /// True when the fault crashes the job.
    pub fn is_crash(&self) -> bool {
        self.kind.is_crash()
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} {}", self.id, self.time, self.kind)?;
        if let Some(n) = self.node {
            write!(f, " @{n}")?;
        }
        if let Some(g) = self.gpu {
            write!(f, " {g}")?;
        }
        if let Some(l) = self.link {
            write!(f, " {l}")?;
        }
        write!(f, " ({})", if self.local { "local" } else { "systemic" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_location() {
        let e = FaultEvent {
            id: 3,
            time: SimTime::from_secs(60),
            kind: FaultKind::EccError,
            local: true,
            node: Some(NodeId::from_index(5)),
            gpu: Some(GpuId::from_index(42)),
            link: None,
        };
        let s = e.to_string();
        assert!(s.contains("ECC Error"));
        assert!(s.contains("node5"));
        assert!(s.contains("gpu42"));
        assert!(s.contains("local"));
        assert!(e.is_crash());
    }
}
