//! Poisson fault injection over a simulated horizon.

use c4_simcore::{DetRng, SimDuration, SimTime};
use c4_topology::{GpuId, LinkId, NodeId};

use crate::event::FaultEvent;
use crate::kind::FaultKind;
use crate::rates::FaultRates;

/// Stream label for crash schedules.
const STREAM_CRASH: u64 = 1;
/// Stream label for degradation schedules.
const STREAM_DEGRADATION: u64 = 2;
/// Stream label for link-failure schedules.
const STREAM_LINK: u64 = 3;

/// Event-id namespace base for degradations (crashes start at 0).
const ID_BASE_DEGRADATION: u64 = 1 << 40;
/// Event-id namespace base for link failures.
const ID_BASE_LINK: u64 = 2 << 40;

/// Derives the generator of one scheduling call: a splitmix64-style fold
/// of the injector seed, the fault-class stream label and the per-class
/// call counter. Each class advances independently, so interleaving (or
/// omitting) calls of one class never perturbs another class's schedule.
fn stream_rng(seed: u64, stream: u64, call: u64) -> DetRng {
    let mut x = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ call.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    DetRng::seed_from(x)
}

/// Generates fault schedules for a job of a given shape.
///
/// The three fault classes (crashes, degradations, link failures) draw
/// from **disjoint random streams**: each `schedule_*` method seeds its
/// own generator from `(seed, class, per-class call count)`, so the
/// schedule one class produces is independent of whether — or how often —
/// the other classes were sampled. Event ids are likewise namespaced per
/// class (crashes from 0, degradations from `2^40`, link failures from
/// `2^41`) and monotone within each class.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rates: FaultRates,
    seed: u64,
    crash_calls: u64,
    degradation_calls: u64,
    link_calls: u64,
    next_crash_id: u64,
    next_degradation_id: u64,
    next_link_id: u64,
}

impl FaultInjector {
    /// Creates an injector with the given rates and seed.
    pub fn new(rates: FaultRates, seed: u64) -> Self {
        FaultInjector {
            rates,
            seed,
            crash_calls: 0,
            degradation_calls: 0,
            link_calls: 0,
            next_crash_id: 0,
            next_degradation_id: ID_BASE_DEGRADATION,
            next_link_id: ID_BASE_LINK,
        }
    }

    /// The configured rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Draws the crash schedule for a job over `[start, start+horizon)`.
    ///
    /// Inter-arrivals are exponential with the job's total crash rate;
    /// each crash is assigned a kind by the calibrated Table I mix, a
    /// locality coin per the kind's locality probability, and a uniformly
    /// random victim node/GPU.
    pub fn schedule_crashes(
        &mut self,
        gpus: usize,
        nodes: usize,
        gpus_per_node: usize,
        start: SimTime,
        horizon: SimDuration,
    ) -> Vec<FaultEvent> {
        let mut rng = stream_rng(self.seed, STREAM_CRASH, self.crash_calls);
        self.crash_calls += 1;
        let rate_per_hour = self.rates.total_crash_rate(gpus, nodes);
        let weights = self.rates.crash_weights(gpus, nodes);
        let mut out = Vec::new();
        if rate_per_hour <= 0.0 {
            return out;
        }
        let mut t = start;
        let end = start + horizon;
        loop {
            let gap_hours = rng.exponential(1.0 / rate_per_hour);
            t += SimDuration::from_secs_f64(gap_hours * 3600.0);
            if t >= end {
                break;
            }
            let kind = FaultKind::CRASH_KINDS[rng
                .pick_weighted(&weights)
                .expect("crash weights are positive")];
            let id = self.next_crash_id;
            self.next_crash_id += 1;
            out.push(make_event(&mut rng, id, t, kind, nodes, gpus_per_node));
        }
        out
    }

    /// Draws degradation events (slow GPUs, PCIe downgrades, half-down
    /// NICs, GC pauses) over the horizon.
    pub fn schedule_degradations(
        &mut self,
        gpus: usize,
        nodes: usize,
        gpus_per_node: usize,
        start: SimTime,
        horizon: SimDuration,
    ) -> Vec<FaultEvent> {
        let mut rng = stream_rng(self.seed, STREAM_DEGRADATION, self.degradation_calls);
        self.degradation_calls += 1;
        let g = gpus as f64;
        let n = nodes as f64;
        let kinds = [
            (FaultKind::SlowGpu, self.rates.slow_gpu_per_gpu_hour * g),
            (
                FaultKind::PcieDowngrade,
                self.rates.pcie_downgrade_per_gpu_hour * g,
            ),
            (
                FaultKind::NicHalfDown,
                self.rates.nic_half_down_per_node_hour * n,
            ),
            (FaultKind::GcPause, self.rates.gc_pause_per_node_hour * n),
        ];
        let mut out = Vec::new();
        for (kind, rate) in kinds {
            if rate <= 0.0 {
                continue;
            }
            let mut t = start;
            let end = start + horizon;
            loop {
                let gap_hours = rng.exponential(1.0 / rate);
                t += SimDuration::from_secs_f64(gap_hours * 3600.0);
                if t >= end {
                    break;
                }
                let id = self.next_degradation_id;
                self.next_degradation_id += 1;
                out.push(make_event(&mut rng, id, t, kind, nodes, gpus_per_node));
            }
        }
        out.sort_by_key(|e| e.time);
        out
    }

    /// Draws fabric link failures over the candidate links.
    pub fn schedule_link_failures(
        &mut self,
        links: &[LinkId],
        start: SimTime,
        horizon: SimDuration,
    ) -> Vec<FaultEvent> {
        let mut rng = stream_rng(self.seed, STREAM_LINK, self.link_calls);
        self.link_calls += 1;
        let rate = self.rates.link_failure_per_link_hour * links.len() as f64;
        let mut out = Vec::new();
        if rate <= 0.0 || links.is_empty() {
            return out;
        }
        let mut t = start;
        let end = start + horizon;
        loop {
            let gap_hours = rng.exponential(1.0 / rate);
            t += SimDuration::from_secs_f64(gap_hours * 3600.0);
            if t >= end {
                break;
            }
            let link = *rng.pick(links).expect("links not empty");
            let id = self.next_link_id;
            self.next_link_id += 1;
            out.push(FaultEvent {
                id,
                time: t,
                kind: FaultKind::LinkFailure,
                local: false,
                node: None,
                gpu: None,
                link: Some(link),
            });
        }
        out
    }
}

/// Draws the locality coin and victim node/GPU of one scheduled fault.
fn make_event(
    rng: &mut DetRng,
    id: u64,
    time: SimTime,
    kind: FaultKind,
    nodes: usize,
    gpus_per_node: usize,
) -> FaultEvent {
    let local = rng.chance(kind.locality_probability());
    let node = NodeId::from_index(rng.index(nodes.max(1)));
    let gpu = kind
        .is_gpu_scoped()
        .then(|| GpuId::from_index(node.index() * gpus_per_node + rng.index(gpus_per_node.max(1))));
    FaultEvent {
        id,
        time,
        kind,
        local,
        node: Some(node),
        gpu,
        link: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::MONTH_HOURS;

    #[test]
    fn month_of_crashes_is_near_forty() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 42);
        let events = inj.schedule_crashes(
            4096,
            512,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(MONTH_HOURS as u64),
        );
        // Poisson(40): overwhelmingly within ±3σ ≈ ±19.
        assert!(
            (21..=59).contains(&events.len()),
            "got {} crashes",
            events.len()
        );
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(events.iter().all(|e| e.is_crash()));
    }

    #[test]
    fn kind_mix_is_roughly_table_one() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 7);
        // Many months for statistics.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50 {
            for e in inj.schedule_crashes(4096, 512, 8, SimTime::ZERO, SimDuration::from_hours(720))
            {
                *counts.entry(e.kind).or_insert(0usize) += 1;
            }
        }
        let total: usize = counts.values().sum();
        let frac = |k: FaultKind| *counts.get(&k).unwrap_or(&0) as f64 / total as f64;
        assert!((frac(FaultKind::CudaError) - 0.125).abs() < 0.03);
        assert!((frac(FaultKind::EccError) + frac(FaultKind::NvlinkError) - 0.275).abs() < 0.03);
        assert!((frac(FaultKind::NcclTimeout) - 0.20).abs() < 0.03);
        assert!((frac(FaultKind::AckTimeout) - 0.275).abs() < 0.03);
        assert!((frac(FaultKind::NetworkError) - 0.125).abs() < 0.03);
    }

    #[test]
    fn gpu_scoped_events_have_gpus_on_their_node() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 11);
        for e in inj.schedule_crashes(
            4096,
            512,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(720 * 10),
        ) {
            if let Some(g) = e.gpu {
                let node = e.node.unwrap();
                assert_eq!(g.index() / 8, node.index());
                assert!(e.kind.is_gpu_scoped());
            }
        }
    }

    #[test]
    fn determinism() {
        let ev1 = FaultInjector::new(FaultRates::june_2023(), 5).schedule_crashes(
            1024,
            128,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(720),
        );
        let ev2 = FaultInjector::new(FaultRates::june_2023(), 5).schedule_crashes(
            1024,
            128,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(720),
        );
        assert_eq!(ev1, ev2);
    }

    #[test]
    fn successive_calls_draw_fresh_months() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 19);
        let m1 = inj.schedule_crashes(1024, 128, 8, SimTime::ZERO, SimDuration::from_hours(720));
        let m2 = inj.schedule_crashes(1024, 128, 8, SimTime::ZERO, SimDuration::from_hours(720));
        assert_ne!(m1, m2, "per-class call counter must advance");
    }

    #[test]
    fn classes_draw_disjoint_streams() {
        // Interleaving other classes must not perturb a class's schedule.
        let mut a = FaultInjector::new(FaultRates::june_2023(), 23);
        let links: Vec<LinkId> = (0..64).map(LinkId::from_index).collect();
        let horizon = SimDuration::from_hours(720);
        let crashes_a = a.schedule_crashes(1024, 128, 8, SimTime::ZERO, horizon);

        let mut b = FaultInjector::new(FaultRates::june_2023(), 23);
        b.schedule_degradations(1024, 128, 8, SimTime::ZERO, horizon);
        b.schedule_link_failures(&links, SimTime::ZERO, horizon);
        let crashes_b = b.schedule_crashes(1024, 128, 8, SimTime::ZERO, horizon);
        assert_eq!(crashes_a, crashes_b, "crash stream independent of others");
    }

    #[test]
    fn event_ids_are_namespaced_per_class() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 29);
        let links: Vec<LinkId> = (0..64).map(LinkId::from_index).collect();
        let horizon = SimDuration::from_hours(720 * 4);
        let crashes = inj.schedule_crashes(4096, 512, 8, SimTime::ZERO, horizon);
        let degs = inj.schedule_degradations(4096, 512, 8, SimTime::ZERO, horizon);
        let fails = inj.schedule_link_failures(&links, SimTime::ZERO, horizon);
        assert!(crashes.iter().all(|e| e.id < ID_BASE_DEGRADATION));
        assert!(degs
            .iter()
            .all(|e| (ID_BASE_DEGRADATION..ID_BASE_LINK).contains(&e.id)));
        assert!(fails.iter().all(|e| e.id >= ID_BASE_LINK));
    }

    #[test]
    fn link_failures_pick_from_candidates() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 13);
        let links: Vec<LinkId> = (0..64).map(LinkId::from_index).collect();
        let events =
            inj.schedule_link_failures(&links, SimTime::ZERO, SimDuration::from_hours(720 * 1000));
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.kind, FaultKind::LinkFailure);
            assert!(links.contains(&e.link.unwrap()));
        }
        assert!(inj
            .schedule_link_failures(&[], SimTime::ZERO, SimDuration::from_hours(720))
            .is_empty());
    }

    #[test]
    fn degradations_cover_expected_kinds() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 17);
        let events = inj.schedule_degradations(
            4096,
            512,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(720 * 20),
        );
        let kinds: std::collections::HashSet<_> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FaultKind::GcPause));
        assert!(kinds.contains(&FaultKind::SlowGpu));
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
    }
}
