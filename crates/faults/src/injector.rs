//! Poisson fault injection over a simulated horizon.

use c4_simcore::{DetRng, SimDuration, SimTime};
use c4_topology::{GpuId, LinkId, NodeId};

use crate::event::FaultEvent;
use crate::kind::FaultKind;
use crate::rates::FaultRates;

/// Generates fault schedules for a job of a given shape.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rates: FaultRates,
    rng: DetRng,
    next_id: u64,
}

impl FaultInjector {
    /// Creates an injector with the given rates and seed.
    pub fn new(rates: FaultRates, seed: u64) -> Self {
        FaultInjector {
            rates,
            rng: DetRng::seed_from(seed),
            next_id: 0,
        }
    }

    /// The configured rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Draws the crash schedule for a job over `[start, start+horizon)`.
    ///
    /// Inter-arrivals are exponential with the job's total crash rate;
    /// each crash is assigned a kind by the calibrated Table I mix, a
    /// locality coin per the kind's locality probability, and a uniformly
    /// random victim node/GPU.
    pub fn schedule_crashes(
        &mut self,
        gpus: usize,
        nodes: usize,
        gpus_per_node: usize,
        start: SimTime,
        horizon: SimDuration,
    ) -> Vec<FaultEvent> {
        let rate_per_hour = self.rates.total_crash_rate(gpus, nodes);
        let weights = self.rates.crash_weights(gpus, nodes);
        let mut out = Vec::new();
        if rate_per_hour <= 0.0 {
            return out;
        }
        let mut t = start;
        let end = start + horizon;
        loop {
            let gap_hours = self.rng.exponential(1.0 / rate_per_hour);
            t += SimDuration::from_secs_f64(gap_hours * 3600.0);
            if t >= end {
                break;
            }
            let kind = FaultKind::CRASH_KINDS[self
                .rng
                .pick_weighted(&weights)
                .expect("crash weights are positive")];
            out.push(self.make_event(t, kind, nodes, gpus_per_node));
        }
        out
    }

    /// Draws degradation events (slow GPUs, PCIe downgrades, half-down
    /// NICs, GC pauses) over the horizon.
    pub fn schedule_degradations(
        &mut self,
        gpus: usize,
        nodes: usize,
        gpus_per_node: usize,
        start: SimTime,
        horizon: SimDuration,
    ) -> Vec<FaultEvent> {
        let g = gpus as f64;
        let n = nodes as f64;
        let kinds = [
            (FaultKind::SlowGpu, self.rates.slow_gpu_per_gpu_hour * g),
            (
                FaultKind::PcieDowngrade,
                self.rates.pcie_downgrade_per_gpu_hour * g,
            ),
            (
                FaultKind::NicHalfDown,
                self.rates.nic_half_down_per_node_hour * n,
            ),
            (FaultKind::GcPause, self.rates.gc_pause_per_node_hour * n),
        ];
        let mut out = Vec::new();
        for (kind, rate) in kinds {
            if rate <= 0.0 {
                continue;
            }
            let mut t = start;
            let end = start + horizon;
            loop {
                let gap_hours = self.rng.exponential(1.0 / rate);
                t += SimDuration::from_secs_f64(gap_hours * 3600.0);
                if t >= end {
                    break;
                }
                out.push(self.make_event(t, kind, nodes, gpus_per_node));
            }
        }
        out.sort_by_key(|e| e.time);
        out
    }

    /// Draws fabric link failures over the candidate links.
    pub fn schedule_link_failures(
        &mut self,
        links: &[LinkId],
        start: SimTime,
        horizon: SimDuration,
    ) -> Vec<FaultEvent> {
        let rate = self.rates.link_failure_per_link_hour * links.len() as f64;
        let mut out = Vec::new();
        if rate <= 0.0 || links.is_empty() {
            return out;
        }
        let mut t = start;
        let end = start + horizon;
        loop {
            let gap_hours = self.rng.exponential(1.0 / rate);
            t += SimDuration::from_secs_f64(gap_hours * 3600.0);
            if t >= end {
                break;
            }
            let link = *self.rng.pick(links).expect("links not empty");
            let id = self.next_id;
            self.next_id += 1;
            out.push(FaultEvent {
                id,
                time: t,
                kind: FaultKind::LinkFailure,
                local: false,
                node: None,
                gpu: None,
                link: Some(link),
            });
        }
        out
    }

    fn make_event(
        &mut self,
        time: SimTime,
        kind: FaultKind,
        nodes: usize,
        gpus_per_node: usize,
    ) -> FaultEvent {
        let local = self.rng.chance(kind.locality_probability());
        let node = NodeId::from_index(self.rng.index(nodes.max(1)));
        let gpu = kind.is_gpu_scoped().then(|| {
            GpuId::from_index(node.index() * gpus_per_node + self.rng.index(gpus_per_node.max(1)))
        });
        let id = self.next_id;
        self.next_id += 1;
        FaultEvent {
            id,
            time,
            kind,
            local,
            node: Some(node),
            gpu,
            link: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::MONTH_HOURS;

    #[test]
    fn month_of_crashes_is_near_forty() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 42);
        let events = inj.schedule_crashes(
            4096,
            512,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(MONTH_HOURS as u64),
        );
        // Poisson(40): overwhelmingly within ±3σ ≈ ±19.
        assert!(
            (21..=59).contains(&events.len()),
            "got {} crashes",
            events.len()
        );
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(events.iter().all(|e| e.is_crash()));
    }

    #[test]
    fn kind_mix_is_roughly_table_one() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 7);
        // Many months for statistics.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50 {
            for e in inj.schedule_crashes(4096, 512, 8, SimTime::ZERO, SimDuration::from_hours(720))
            {
                *counts.entry(e.kind).or_insert(0usize) += 1;
            }
        }
        let total: usize = counts.values().sum();
        let frac = |k: FaultKind| *counts.get(&k).unwrap_or(&0) as f64 / total as f64;
        assert!((frac(FaultKind::CudaError) - 0.125).abs() < 0.03);
        assert!((frac(FaultKind::EccError) + frac(FaultKind::NvlinkError) - 0.275).abs() < 0.03);
        assert!((frac(FaultKind::NcclTimeout) - 0.20).abs() < 0.03);
        assert!((frac(FaultKind::AckTimeout) - 0.275).abs() < 0.03);
        assert!((frac(FaultKind::NetworkError) - 0.125).abs() < 0.03);
    }

    #[test]
    fn gpu_scoped_events_have_gpus_on_their_node() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 11);
        for e in inj.schedule_crashes(
            4096,
            512,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(720 * 10),
        ) {
            if let Some(g) = e.gpu {
                let node = e.node.unwrap();
                assert_eq!(g.index() / 8, node.index());
                assert!(e.kind.is_gpu_scoped());
            }
        }
    }

    #[test]
    fn determinism() {
        let ev1 = FaultInjector::new(FaultRates::june_2023(), 5).schedule_crashes(
            1024,
            128,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(720),
        );
        let ev2 = FaultInjector::new(FaultRates::june_2023(), 5).schedule_crashes(
            1024,
            128,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(720),
        );
        assert_eq!(ev1, ev2);
    }

    #[test]
    fn link_failures_pick_from_candidates() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 13);
        let links: Vec<LinkId> = (0..64).map(LinkId::from_index).collect();
        let events =
            inj.schedule_link_failures(&links, SimTime::ZERO, SimDuration::from_hours(720 * 1000));
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.kind, FaultKind::LinkFailure);
            assert!(links.contains(&e.link.unwrap()));
        }
        assert!(inj
            .schedule_link_failures(&[], SimTime::ZERO, SimDuration::from_hours(720))
            .is_empty());
    }

    #[test]
    fn degradations_cover_expected_kinds() {
        let mut inj = FaultInjector::new(FaultRates::june_2023(), 17);
        let events = inj.schedule_degradations(
            4096,
            512,
            8,
            SimTime::ZERO,
            SimDuration::from_hours(720 * 20),
        );
        let kinds: std::collections::HashSet<_> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FaultKind::GcPause));
        assert!(kinds.contains(&FaultKind::SlowGpu));
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
    }
}
