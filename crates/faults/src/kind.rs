//! The fault taxonomy (paper Fig 1, Table I).

use std::fmt;

/// Everything that can go wrong, per the paper's operational experience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// CUDA runtime error on a GPU (crash; Table I: 12.5%, 100% local).
    CudaError,
    /// GPU memory ECC error (crash; part of Table I's 27.5% ECC/NVLink).
    EccError,
    /// NVLink fault (crash; part of Table I's 27.5% ECC/NVLink).
    NvlinkError,
    /// Collective-library timeout — a peer stopped responding (crash;
    /// Table I: 20%, 75% local).
    NcclTimeout,
    /// RDMA ACK timeout — transport-level loss of a peer (crash;
    /// Table I: 27.5%, 81.8% local).
    AckTimeout,
    /// Other network errors (crash; Table I: 12.5%, 40% local).
    NetworkError,
    /// GPU running below nominal throughput (degradation: slow node).
    SlowGpu,
    /// PCIe link trained down (e.g. ×16→×4); degrades NIC-bound traffic.
    PcieDowngrade,
    /// One physical port of a dual-port NIC down (degradation).
    NicHalfDown,
    /// Host-software stall: Python GC, CPU contention (turbulence).
    GcPause,
    /// Storage slow/hang: dataloader starves the GPUs.
    DataloaderStall,
    /// Leaf↔spine fabric link failure (degradation at cluster level; the
    /// Fig 12/13 experiments inject exactly this).
    LinkFailure,
}

/// How the failure surfaces to the job owner before C4D (Table I's
/// "Users' View" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UserView {
    /// The opaque "NCCL Error" that most root causes collapse into.
    NcclError,
    /// Explicit network error reported by the framework.
    NetworkError,
    /// No error at all — throughput just drops (degradations).
    Slowdown,
}

impl FaultKind {
    /// True when the fault crashes the whole job (BSP: any worker failure
    /// blocks every peer).
    pub fn is_crash(self) -> bool {
        matches!(
            self,
            FaultKind::CudaError
                | FaultKind::EccError
                | FaultKind::NvlinkError
                | FaultKind::NcclTimeout
                | FaultKind::AckTimeout
                | FaultKind::NetworkError
        )
    }

    /// How the fault presents to users before C4D (Table I).
    pub fn user_view(self) -> UserView {
        match self {
            FaultKind::CudaError
            | FaultKind::EccError
            | FaultKind::NvlinkError
            | FaultKind::NcclTimeout
            | FaultKind::AckTimeout => UserView::NcclError,
            FaultKind::NetworkError => UserView::NetworkError,
            _ => UserView::Slowdown,
        }
    }

    /// Probability the fault is confined to one node/device (Table I's
    /// "Local" column). The remainder are systemic (fabric, storage,
    /// software) and cannot be fixed by isolating one node.
    pub fn locality_probability(self) -> f64 {
        match self {
            FaultKind::CudaError | FaultKind::EccError | FaultKind::NvlinkError => 1.0,
            FaultKind::NcclTimeout => 0.75,
            FaultKind::AckTimeout => 0.818,
            FaultKind::NetworkError => 0.40,
            FaultKind::SlowGpu
            | FaultKind::PcieDowngrade
            | FaultKind::NicHalfDown
            | FaultKind::GcPause => 1.0,
            FaultKind::DataloaderStall => 0.3,
            FaultKind::LinkFailure => 0.0,
        }
    }

    /// True for faults pinned to a single GPU (vs node-level or fabric).
    pub fn is_gpu_scoped(self) -> bool {
        matches!(
            self,
            FaultKind::CudaError
                | FaultKind::EccError
                | FaultKind::NvlinkError
                | FaultKind::SlowGpu
                | FaultKind::PcieDowngrade
        )
    }

    /// The crash kinds in Table I order.
    pub const CRASH_KINDS: [FaultKind; 6] = [
        FaultKind::CudaError,
        FaultKind::EccError,
        FaultKind::NvlinkError,
        FaultKind::NcclTimeout,
        FaultKind::AckTimeout,
        FaultKind::NetworkError,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::CudaError => "CUDA Error",
            FaultKind::EccError => "ECC Error",
            FaultKind::NvlinkError => "NVLink Error",
            FaultKind::NcclTimeout => "NCCL timeout",
            FaultKind::AckTimeout => "ACK timeout",
            FaultKind::NetworkError => "Network error",
            FaultKind::SlowGpu => "Slow GPU",
            FaultKind::PcieDowngrade => "PCIe downgrade",
            FaultKind::NicHalfDown => "NIC half-down",
            FaultKind::GcPause => "GC pause",
            FaultKind::DataloaderStall => "Dataloader stall",
            FaultKind::LinkFailure => "Link failure",
        };
        f.write_str(s)
    }
}

impl fmt::Display for UserView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UserView::NcclError => "NCCL Error",
            UserView::NetworkError => "Network Error",
            UserView::Slowdown => "Slowdown",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_kinds_are_crashes() {
        for k in FaultKind::CRASH_KINDS {
            assert!(k.is_crash(), "{k} should crash");
        }
        assert!(!FaultKind::SlowGpu.is_crash());
        assert!(!FaultKind::LinkFailure.is_crash());
    }

    #[test]
    fn user_views_match_table_one() {
        assert_eq!(FaultKind::CudaError.user_view(), UserView::NcclError);
        assert_eq!(FaultKind::EccError.user_view(), UserView::NcclError);
        assert_eq!(FaultKind::NcclTimeout.user_view(), UserView::NcclError);
        assert_eq!(FaultKind::AckTimeout.user_view(), UserView::NcclError);
        assert_eq!(FaultKind::NetworkError.user_view(), UserView::NetworkError);
        assert_eq!(FaultKind::SlowGpu.user_view(), UserView::Slowdown);
    }

    #[test]
    fn locality_matches_table_one() {
        assert_eq!(FaultKind::CudaError.locality_probability(), 1.0);
        assert_eq!(FaultKind::NcclTimeout.locality_probability(), 0.75);
        assert!((FaultKind::AckTimeout.locality_probability() - 0.818).abs() < 1e-12);
        assert_eq!(FaultKind::NetworkError.locality_probability(), 0.40);
        assert_eq!(FaultKind::LinkFailure.locality_probability(), 0.0);
    }

    #[test]
    fn gpu_scoping() {
        assert!(FaultKind::EccError.is_gpu_scoped());
        assert!(FaultKind::PcieDowngrade.is_gpu_scoped());
        assert!(!FaultKind::AckTimeout.is_gpu_scoped());
        assert!(!FaultKind::GcPause.is_gpu_scoped());
    }
}
