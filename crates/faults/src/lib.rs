//! # c4-faults
//!
//! Fault catalog, injection schedules and degradation models for large AI
//! clusters, reproducing the failure taxonomy of the paper's §II
//! (Fig 1/Fig 2) and the empirical crash-cause mix of Table I.
//!
//! Two families of anomalies:
//!
//! * **Crashes** ([`FaultKind::is_crash`]) — CUDA errors, ECC/NVLink errors,
//!   NCCL timeouts, ACK timeouts, other network errors. These kill the job;
//!   from the user's view most surface as the same opaque "NCCL Error"
//!   ([`UserView`]), which is why manual diagnosis took hours (§II-C).
//! * **Degradations** — slow GPUs, PCIe downgrades, half-down dual-port
//!   NICs, GC pauses, dataloader stalls, link failures. These don't crash
//!   the job but produce the *slow* syndromes C4D localizes.
//!
//! [`FaultRates`] presets are calibrated to the paper: `june_2023()`
//! reproduces ~40 crashes/month on a 4096-GPU job with Table I's cause mix;
//! `december_2023()` scales rates down 3.33× (the fleet hardening the paper
//! credits for the residual improvement).

pub mod degrade;
pub mod event;
pub mod injector;
pub mod kind;
pub mod rates;

pub use degrade::{ComputePerturbation, Degradation, DegradeTarget};
pub use event::FaultEvent;
pub use injector::FaultInjector;
pub use kind::{FaultKind, UserView};
pub use rates::FaultRates;
