//! Fault rate presets calibrated to the paper's operational data.
//!
//! Table I records 40 crashes in one month on a 4,096-GPU (512-node) job;
//! §IV-B1 reports the average error rate dropping ≈3.33× between June and
//! December 2023 (3.2× for GPU-related kinds, 3.4× for the rest) after the
//! most vulnerable components were hardened.

/// Per-component fault rates (events per hour per component).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// CUDA errors per GPU-hour.
    pub cuda_per_gpu_hour: f64,
    /// ECC errors per GPU-hour.
    pub ecc_per_gpu_hour: f64,
    /// NVLink errors per GPU-hour.
    pub nvlink_per_gpu_hour: f64,
    /// NCCL timeouts per node-hour.
    pub nccl_timeout_per_node_hour: f64,
    /// ACK timeouts per node-hour.
    pub ack_timeout_per_node_hour: f64,
    /// Other network errors per job-hour (systemic).
    pub network_per_job_hour: f64,
    /// Slow-GPU degradations per GPU-hour.
    pub slow_gpu_per_gpu_hour: f64,
    /// PCIe downgrades per GPU-hour.
    pub pcie_downgrade_per_gpu_hour: f64,
    /// Half-down dual-port NICs per node-hour.
    pub nic_half_down_per_node_hour: f64,
    /// GC/CPU-contention pauses per node-hour.
    pub gc_pause_per_node_hour: f64,
    /// Fabric link failures per link-hour.
    pub link_failure_per_link_hour: f64,
}

/// Hours in the one-month observation window of Table I.
pub const MONTH_HOURS: f64 = 720.0;

impl FaultRates {
    /// June-2023 fleet: calibrated so a 4,096-GPU / 512-node job sees ~40
    /// crashes per month with Table I's cause mix (5 CUDA, 11 ECC+NVLink,
    /// 8 NCCL timeout, 11 ACK timeout, 5 network).
    pub fn june_2023() -> Self {
        let gpu_month = 4096.0 * MONTH_HOURS;
        let node_month = 512.0 * MONTH_HOURS;
        FaultRates {
            cuda_per_gpu_hour: 5.0 / gpu_month,
            ecc_per_gpu_hour: 6.0 / gpu_month,
            nvlink_per_gpu_hour: 5.0 / gpu_month,
            nccl_timeout_per_node_hour: 8.0 / node_month,
            ack_timeout_per_node_hour: 11.0 / node_month,
            network_per_job_hour: 5.0 / MONTH_HOURS,
            slow_gpu_per_gpu_hour: 2.0 / gpu_month,
            pcie_downgrade_per_gpu_hour: 1.0 / gpu_month,
            nic_half_down_per_node_hour: 1.0 / node_month,
            gc_pause_per_node_hour: 0.01,
            link_failure_per_link_hour: 2e-6,
        }
    }

    /// December-2023 fleet: GPU-related kinds reduced 3.2×, the rest 3.4×
    /// (§IV-B1).
    pub fn december_2023() -> Self {
        let j = Self::june_2023();
        FaultRates {
            cuda_per_gpu_hour: j.cuda_per_gpu_hour / 3.2,
            ecc_per_gpu_hour: j.ecc_per_gpu_hour / 3.2,
            nvlink_per_gpu_hour: j.nvlink_per_gpu_hour / 3.2,
            nccl_timeout_per_node_hour: j.nccl_timeout_per_node_hour / 3.4,
            ack_timeout_per_node_hour: j.ack_timeout_per_node_hour / 3.4,
            network_per_job_hour: j.network_per_job_hour / 3.4,
            slow_gpu_per_gpu_hour: j.slow_gpu_per_gpu_hour / 3.2,
            pcie_downgrade_per_gpu_hour: j.pcie_downgrade_per_gpu_hour / 3.2,
            nic_half_down_per_node_hour: j.nic_half_down_per_node_hour / 3.4,
            gc_pause_per_node_hour: j.gc_pause_per_node_hour,
            link_failure_per_link_hour: j.link_failure_per_link_hour,
        }
    }

    /// Every rate multiplied by `factor` (clamped non-negative) — soak
    /// acceleration: compress months of fault churn into a simulable
    /// horizon without changing the cause mix.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        let m = factor.max(0.0);
        FaultRates {
            cuda_per_gpu_hour: self.cuda_per_gpu_hour * m,
            ecc_per_gpu_hour: self.ecc_per_gpu_hour * m,
            nvlink_per_gpu_hour: self.nvlink_per_gpu_hour * m,
            nccl_timeout_per_node_hour: self.nccl_timeout_per_node_hour * m,
            ack_timeout_per_node_hour: self.ack_timeout_per_node_hour * m,
            network_per_job_hour: self.network_per_job_hour * m,
            slow_gpu_per_gpu_hour: self.slow_gpu_per_gpu_hour * m,
            pcie_downgrade_per_gpu_hour: self.pcie_downgrade_per_gpu_hour * m,
            nic_half_down_per_node_hour: self.nic_half_down_per_node_hour * m,
            gc_pause_per_node_hour: self.gc_pause_per_node_hour * m,
            link_failure_per_link_hour: self.link_failure_per_link_hour * m,
        }
    }

    /// Total crash rate (events/hour) for a job of the given size.
    pub fn total_crash_rate(&self, gpus: usize, nodes: usize) -> f64 {
        let g = gpus as f64;
        let n = nodes as f64;
        (self.cuda_per_gpu_hour + self.ecc_per_gpu_hour + self.nvlink_per_gpu_hour) * g
            + (self.nccl_timeout_per_node_hour + self.ack_timeout_per_node_hour) * n
            + self.network_per_job_hour
    }

    /// Crash-kind weights for a job of the given size, in the order of the
    /// crash-kind catalog (CUDA, ECC, NVLink, NCCL timeout, ACK timeout,
    /// network).
    pub fn crash_weights(&self, gpus: usize, nodes: usize) -> [f64; 6] {
        let g = gpus as f64;
        let n = nodes as f64;
        [
            self.cuda_per_gpu_hour * g,
            self.ecc_per_gpu_hour * g,
            self.nvlink_per_gpu_hour * g,
            self.nccl_timeout_per_node_hour * n,
            self.ack_timeout_per_node_hour * n,
            self.network_per_job_hour,
        ]
    }

    /// Expected crashes over `hours` for a job of the given size.
    pub fn expected_crashes(&self, gpus: usize, nodes: usize, hours: f64) -> f64 {
        self.total_crash_rate(gpus, nodes) * hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn june_reproduces_forty_crashes_per_month() {
        let r = FaultRates::june_2023();
        let expected = r.expected_crashes(4096, 512, MONTH_HOURS);
        assert!((expected - 40.0).abs() < 1e-9, "expected {expected}");
    }

    #[test]
    fn june_mix_matches_table_one() {
        let r = FaultRates::june_2023();
        let w = r.crash_weights(4096, 512);
        let total: f64 = w.iter().sum();
        // CUDA 12.5%
        assert!((w[0] / total - 0.125).abs() < 1e-9);
        // ECC + NVLink 27.5%
        assert!(((w[1] + w[2]) / total - 0.275).abs() < 1e-9);
        // NCCL timeout 20%
        assert!((w[3] / total - 0.20).abs() < 1e-9);
        // ACK timeout 27.5%
        assert!((w[4] / total - 0.275).abs() < 1e-9);
        // Network others 12.5%
        assert!((w[5] / total - 0.125).abs() < 1e-9);
    }

    #[test]
    fn december_is_roughly_one_third() {
        let j = FaultRates::june_2023();
        let d = FaultRates::december_2023();
        let ratio =
            j.expected_crashes(2400, 300, MONTH_HOURS) / d.expected_crashes(2400, 300, MONTH_HOURS);
        assert!((3.2..=3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rates_scale_with_job_size() {
        let r = FaultRates::june_2023();
        let small = r.total_crash_rate(1024, 128);
        let large = r.total_crash_rate(4096, 512);
        // Component terms scale 4×; the constant systemic network term
        // (5 events/month either way) pulls the ratio below 4.
        assert!(
            large / small > 2.8 && large / small < 3.0,
            "{}",
            large / small
        );
    }
}
