//! Runnable fleet-soak demo: a 128-GPU pod hosting a churn mix of nine
//! jobs for one simulated day, with accelerated node crashes, component
//! degradations and fabric link flaps injected into the **live** topology
//! and every fault driven through the closed detect → isolate → replace →
//! restart loop.
//!
//! ```text
//! cargo run --release -p c4_fleet --example fleet_soak [seed]
//! ```
//!
//! Output is seed-deterministic and bit-identical at any thread count
//! (`C4_THREADS`). For the 512-GPU one-week gated run, see
//! `bench_fleet` in the `c4_bench` crate.

use c4_fleet::{FleetConfig, FleetController};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);
    let mut cfg = FleetConfig::smoke(seed);
    // Push the December-2023 Table-I rates hard enough that a single
    // simulated day draws faults from all three injector streams.
    cfg.rate_multiplier = 120.0;
    let report = FleetController::new(cfg).run();

    println!(
        "soak: {:.0} h horizon, {} rounds, {} live iterations, seed {seed}",
        report.horizon.as_secs_f64() / 3600.0,
        report.rounds,
        report.live_iterations,
    );
    println!(
        "faults applied: {} crashes, {} degradations, {} link failures ({} skipped)",
        report.faults.crashes,
        report.faults.degradations,
        report.faults.link_failures,
        report.faults.skipped,
    );
    println!(
        "control loop: {} detections -> {} isolations -> {} replacements + {} DP shrinks ({} retries, {} escalations, {} repairs returned)",
        report.detections,
        report.isolations,
        report.replacements,
        report.dp_shrinks,
        report.retries,
        report.escalations,
        report.repairs_returned,
    );
    println!(
        "plan cache: {} hits / {} misses, {} surgical drops, {} stale routes (invariant: 0)",
        report.cache_hits,
        report.cache_misses,
        report.cache_rebased_drops,
        report.stale_plan_routes,
    );

    println!("\n  id  outcome    dp  iters   recov  goodput  policy / job");
    for j in &report.jobs {
        let outcome = if j.completed {
            "done"
        } else if j.failed {
            "failed"
        } else {
            "running"
        };
        println!(
            "  {:>2}  {:<8} {:>3}  {:>6}  {:>5}  {:>6.1}%  {:?} / {}",
            j.id,
            outcome,
            j.final_dp,
            j.accounting.iterations,
            j.accounting.recoveries,
            100.0 * j.accounting.goodput_fraction(report.ended),
            j.policy,
            j.name,
        );
    }
    println!(
        "\nfleet goodput {:.1}%, downtime {:.1}%, mean ETTR {:.0} s over {} recoveries",
        100.0 * report.aggregate_goodput_fraction(),
        100.0 * report.aggregate_downtime_fraction(),
        report.mean_ettr().map_or(0.0, |d| d.as_secs_f64()),
        report.total_recoveries(),
    );
    assert_eq!(report.stale_plan_routes, 0, "stale cached route served");
}
