//! Per-job and fleet-wide goodput/downtime accounting, and the
//! reconciliation bridge to the closed-form operation model.

use c4_simcore::{SimDuration, SimTime};
use c4_trainsim::OperationReport;

use crate::policy::RecoveryPolicy;

/// Running time ledger of one job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobAccounting {
    /// When the job was admitted (fleet clock).
    pub admitted: SimTime,
    /// When it departed (completed, failed, or end of horizon).
    pub finished: Option<SimTime>,
    /// BSP iterations credited (live + extrapolated).
    pub iterations: u64,
    /// Iterations run while a slow component was being absorbed
    /// (degraded-continue accounting).
    pub degraded_iterations: u64,
    /// Productive training time.
    pub productive: SimDuration,
    /// Total unproductive time: detection + steering + re-init + redone
    /// post-checkpoint work + retry stalls.
    pub downtime: SimDuration,
    /// Completed recovery events (isolate/replace/shrink).
    pub recoveries: u64,
    /// Transient-fault retries (backoff waits that did not isolate).
    pub retries: u64,
    /// Times the job shrank its DP width because no backup remained.
    pub dp_shrinks: u64,
}

impl JobAccounting {
    /// Wall time from admission to departure (or `now` if still running).
    pub fn wall(&self, now: SimTime) -> SimDuration {
        self.finished.unwrap_or(now).saturating_since(self.admitted)
    }

    /// Fraction of wall time lost to faults.
    pub fn downtime_fraction(&self, now: SimTime) -> f64 {
        let w = self.wall(now).as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.downtime.as_secs_f64() / w
        }
    }

    /// Fraction of wall time spent training (`1 - downtime_fraction` up to
    /// admission/round rounding).
    pub fn goodput_fraction(&self, now: SimTime) -> f64 {
        let w = self.wall(now).as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.productive.as_secs_f64() / w
        }
    }

    /// Estimated time to recovery: mean downtime per recovery event.
    pub fn ettr(&self) -> Option<SimDuration> {
        if self.recoveries == 0 {
            None
        } else {
            Some(SimDuration::from_secs_f64(
                self.downtime.as_secs_f64() / self.recoveries as f64,
            ))
        }
    }
}

/// Final record of one job's life in the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Fleet-assigned job id (admission order).
    pub id: u64,
    /// Job name from its spec.
    pub name: String,
    /// The job's recovery policy.
    pub policy: RecoveryPolicy,
    /// True when the job reached its iteration target.
    pub completed: bool,
    /// True when the job could no longer run (shrunk below minimum size).
    pub failed: bool,
    /// DP width at departure (tracks shrinks).
    pub final_dp: usize,
    /// The time ledger.
    pub accounting: JobAccounting,
}

/// Counters of fault events actually applied to the live topology.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Crash events (node-fatal) applied.
    pub crashes: u64,
    /// Degradation events (slow GPU, PCIe, NIC, GC) applied.
    pub degradations: u64,
    /// Fabric link failures applied.
    pub link_failures: u64,
    /// Events skipped because their victim was already out of service.
    pub skipped: u64,
}

impl FaultCounts {
    /// Total events applied.
    pub fn total(&self) -> u64 {
        self.crashes + self.degradations + self.link_failures
    }
}

/// What a fleet soak produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Configured horizon.
    pub horizon: SimDuration,
    /// Fleet clock at the end of the run.
    pub ended: SimTime,
    /// Controller rounds executed.
    pub rounds: u64,
    /// Live (network-simulated) iterations executed.
    pub live_iterations: u64,
    /// Per-job outcomes, admission order.
    pub jobs: Vec<JobOutcome>,
    /// Fault events applied per class.
    pub faults: FaultCounts,
    /// Critical diagnoses produced by the streaming detectors.
    pub detections: u64,
    /// Node isolations executed through the steering service.
    pub isolations: u64,
    /// Successful backup swaps / re-placements.
    pub replacements: u64,
    /// DP shrinks after backup-pool exhaustion.
    pub dp_shrinks: u64,
    /// Transient retries (backoff without isolation).
    pub retries: u64,
    /// Transient faults escalated to permanent after N strikes.
    pub escalations: u64,
    /// Repaired nodes returned to the pools.
    pub repairs_returned: u64,
    /// Plan-cache hits summed over all jobs.
    pub cache_hits: u64,
    /// Plan-cache misses summed over all jobs.
    pub cache_misses: u64,
    /// Cache entries surgically dropped by rebase (routes through changed
    /// links).
    pub cache_rebased_drops: u64,
    /// Audit counter: cached plans found routing through a link that was
    /// down at audit time. The controller's invariant is that this is
    /// **zero** — every topology mutation is followed by a rebase before
    /// any plan is served.
    pub stale_plan_routes: u64,
}

impl FleetReport {
    /// Aggregate downtime fraction: total job downtime over total job wall
    /// time.
    pub fn aggregate_downtime_fraction(&self) -> f64 {
        let (mut down, mut wall) = (0.0, 0.0);
        for j in &self.jobs {
            down += j.accounting.downtime.as_secs_f64();
            wall += j.accounting.wall(self.ended).as_secs_f64();
        }
        if wall <= 0.0 {
            0.0
        } else {
            down / wall
        }
    }

    /// Aggregate goodput fraction across jobs.
    pub fn aggregate_goodput_fraction(&self) -> f64 {
        let (mut prod, mut wall) = (0.0, 0.0);
        for j in &self.jobs {
            prod += j.accounting.productive.as_secs_f64();
            wall += j.accounting.wall(self.ended).as_secs_f64();
        }
        if wall <= 0.0 {
            0.0
        } else {
            prod / wall
        }
    }

    /// Mean downtime per recovery event across the fleet.
    pub fn mean_ettr(&self) -> Option<SimDuration> {
        let (mut down, mut n) = (SimDuration::ZERO, 0u64);
        for j in &self.jobs {
            if j.accounting.recoveries > 0 {
                down += j.accounting.downtime;
                n += j.accounting.recoveries;
            }
        }
        if n == 0 {
            None
        } else {
            Some(SimDuration::from_secs_f64(down.as_secs_f64() / n as f64))
        }
    }

    /// Total recovery events across the fleet.
    pub fn total_recoveries(&self) -> u64 {
        self.jobs.iter().map(|j| j.accounting.recoveries).sum()
    }

    /// Compares this soak against a matched closed-form
    /// [`simulate_operation`](c4_trainsim::simulate_operation) run.
    pub fn reconcile(&self, model: &OperationReport) -> Reconciliation {
        let fleet_per_recovery = self.mean_ettr().map_or(0.0, |d| d.as_secs_f64());
        let model_per_crash = if model.crashes.is_empty() {
            0.0
        } else {
            model
                .crashes
                .iter()
                .map(|c| c.downtime().as_secs_f64())
                .sum::<f64>()
                / model.crashes.len() as f64
        };
        Reconciliation {
            fleet_downtime_per_recovery_s: fleet_per_recovery,
            model_downtime_per_crash_s: model_per_crash,
            fleet_downtime_fraction: self.aggregate_downtime_fraction(),
            model_downtime_fraction: model.downtime_fraction(),
            fleet_recoveries: self.total_recoveries(),
            model_crashes: model.crashes.len() as u64,
        }
    }
}

/// Side-by-side comparison of the live fleet soak and the closed-form
/// operation model on a matched configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reconciliation {
    /// Mean downtime charged per fleet recovery event (seconds).
    pub fleet_downtime_per_recovery_s: f64,
    /// Mean downtime sampled per model crash (seconds).
    pub model_downtime_per_crash_s: f64,
    /// Fleet aggregate downtime fraction.
    pub fleet_downtime_fraction: f64,
    /// Model downtime fraction.
    pub model_downtime_fraction: f64,
    /// Fleet recovery-event count.
    pub fleet_recoveries: u64,
    /// Model crash count.
    pub model_crashes: u64,
}

impl Reconciliation {
    /// Ratio of mean per-event downtimes (fleet / model); `1.0` when the
    /// two agree exactly, `None` when either side saw no events.
    pub fn per_event_ratio(&self) -> Option<f64> {
        if self.fleet_downtime_per_recovery_s <= 0.0 || self.model_downtime_per_crash_s <= 0.0 {
            None
        } else {
            Some(self.fleet_downtime_per_recovery_s / self.model_downtime_per_crash_s)
        }
    }

    /// True when the per-event downtime means agree within `tolerance`
    /// (relative, e.g. `0.5` = within 50 %). Vacuously true when either
    /// side saw no events (nothing to reconcile).
    pub fn per_event_within(&self, tolerance: f64) -> bool {
        match self.per_event_ratio() {
            None => true,
            Some(r) => (r - 1.0).abs() <= tolerance,
        }
    }
}
