//! The fleet controller: concurrent training jobs with churn, live fault
//! injection, streaming detection, and closed-loop steering recovery.
//!
//! One controller *round* is a wall-clock tick of the fleet:
//!
//! 1. revert expired transient faults, return repaired nodes;
//! 2. apply fault events that came due (node crashes → host links down,
//!    degradations → capacity loss or compute stretch, fabric link flaps);
//! 3. surgically rebase every job's [`PlanCache`] against the changed
//!    links, then audit the zero-stale-route invariant;
//! 4. admit due arrivals onto free healthy nodes;
//! 5. run one **live** BSP iteration per unblocked job through
//!    `run_concurrent_cached`, feed its telemetry to the streaming
//!    detectors, and extrapolate `stride - 1` further iterations (BSP
//!    periodicity makes the extrapolation exact up to compute jitter);
//! 6. act on verdicts: retry/backoff transient flaps with N-strike
//!    escalation, otherwise isolate through [`JobSteering`] and resume per
//!    the job's [`RecoveryPolicy`] — backup swap, whole-job re-placement,
//!    or DP shrink when the backup pool is dry;
//! 7. depart finished jobs and advance the fleet clock.
//!
//! [`PlanCache`]: c4_collectives::PlanCache

use std::collections::{BTreeMap, VecDeque};

use c4_diagnosis::{
    CollHealthDetector, DetectorConfig, JobSteering, SteeringConfig, SteeringError, StreamVerdict,
    StreamingC4dMaster,
};
use c4_faults::{
    ComputePerturbation, Degradation, FaultEvent, FaultInjector, FaultKind, FaultRates,
};
use c4_netsim::EcmpSelector;
use c4_simcore::{DetRng, ParallelPolicy, SimDuration, SimTime};
use c4_telemetry::pipeline::events_from_snapshots;
use c4_telemetry::{CommRecord, TelemetrySnapshot, WorkerTelemetry};
use c4_topology::{ClosConfig, LinkId, NodeId, Topology};
use c4_trainsim::{JobSpec, ParallelLayout, TrainingJob};

use crate::accounting::{FaultCounts, FleetReport, JobAccounting, JobOutcome};
use crate::policy::{FlapTracker, RecoveryPolicy};

/// One job the fleet will run.
#[derive(Debug, Clone)]
pub struct JobTemplate {
    /// Workload shape (TP/PP/DP, payload, compute).
    pub spec: JobSpec,
    /// How this job recovers from localized faults.
    pub policy: RecoveryPolicy,
    /// Iterations until the job departs.
    pub target_iterations: u64,
}

/// Fleet soak configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master seed: fault schedules, compute jitter, ECMP salts.
    pub seed: u64,
    /// Cluster shape.
    pub clos: ClosConfig,
    /// Nodes reserved as the steering backup pool (taken from the top of
    /// the node range).
    pub backup_nodes: usize,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Iterations credited per live round (one network-simulated
    /// iteration extrapolated over the stride).
    pub stride: u64,
    /// Fault rates (scaled by `rate_multiplier`).
    pub rates: FaultRates,
    /// Multiplier on every fault rate (soak acceleration).
    pub rate_multiplier: f64,
    /// Jobs admitted at time zero.
    pub initial_jobs: Vec<JobTemplate>,
    /// Later arrivals: (offset from start, template). Queued until enough
    /// free healthy nodes exist.
    pub arrivals: Vec<(SimDuration, JobTemplate)>,
    /// Streaming-detector thresholds.
    pub detector: DetectorConfig,
    /// Localization latency charged on top of the hang timeout per
    /// detection (telemetry comparison on the C4D master).
    pub localize_delay: SimDuration,
    /// Steering service timing.
    pub steering: SteeringConfig,
    /// Checkpoint cadence: work since the last checkpoint is redone after
    /// a recovery.
    pub checkpoint_interval: SimDuration,
    /// Re-initialization time after a restart.
    pub reinit: SimDuration,
    /// Per-collective give-up horizon (hang modelling).
    pub comm_deadline: SimDuration,
    /// Strike window for transient faults.
    pub flap_window: SimDuration,
    /// Strikes within the window before a transient fault is escalated to
    /// permanent isolation.
    pub flap_strikes: usize,
    /// Auto-repair delay of a transient fault (link flap, NIC brown-out).
    pub flap_repair: SimDuration,
    /// Extra wait after a transient repair before the job retries.
    pub retry_backoff: SimDuration,
    /// How long degradation events (slow GPU, PCIe downgrade, GC pauses)
    /// persist before self-healing.
    pub degradation_duration: SimDuration,
    /// Time until a crashed/isolated node is repaired and returned to the
    /// backup pool; `ZERO` disables repair (bounded pools drain).
    pub node_repair: SimDuration,
    /// Slow strikes (windowed verdicts) before a non-degraded-continue job
    /// escalates persistent slowness to isolation.
    pub slow_strikes: usize,
    /// Tumbling-window width of the per-job collective-health detector.
    pub slow_window: SimDuration,
    /// Mean-over-baseline ratio flagging a slow window.
    pub slow_factor: f64,
    /// Trailing window means forming the health baseline.
    pub slow_baseline: usize,
    /// Thread budget for the network layers (bit-identical results at any
    /// setting).
    pub parallel: ParallelPolicy,
}

impl FleetConfig {
    /// A small, fast churn mix used by tests: 128-GPU pod, 8+ jobs.
    pub fn smoke(seed: u64) -> Self {
        let small = |dp: usize| JobSpec {
            // Shrink the payload so test drains stay cheap.
            params: 2_000_000_000,
            ..JobSpec::gpt22b_scaling(dp)
        };
        let job = |dp: usize, policy: RecoveryPolicy, iters: u64| JobTemplate {
            spec: small(dp),
            policy,
            target_iterations: iters,
        };
        FleetConfig {
            seed,
            clos: ClosConfig::pod(32),
            backup_nodes: 3,
            horizon: SimDuration::from_hours(24),
            stride: 200,
            rates: FaultRates::december_2023(),
            rate_multiplier: 40.0,
            initial_jobs: vec![
                job(3, RecoveryPolicy::CheckpointRestart, 4_000),
                job(2, RecoveryPolicy::DegradedContinue, 6_000),
                job(3, RecoveryPolicy::Replace, 6_000),
                job(2, RecoveryPolicy::CheckpointRestart, 8_000),
                job(2, RecoveryPolicy::CheckpointRestart, 20_000),
                job(3, RecoveryPolicy::DegradedContinue, 20_000),
            ],
            arrivals: vec![
                (
                    SimDuration::from_hours(2),
                    job(2, RecoveryPolicy::Replace, 6_000),
                ),
                (
                    SimDuration::from_hours(5),
                    job(3, RecoveryPolicy::CheckpointRestart, 8_000),
                ),
                (
                    SimDuration::from_hours(9),
                    job(2, RecoveryPolicy::DegradedContinue, 10_000),
                ),
            ],
            detector: DetectorConfig::default(),
            localize_delay: SimDuration::from_secs(30),
            steering: SteeringConfig::default(),
            checkpoint_interval: SimDuration::from_secs(600),
            reinit: SimDuration::from_secs(600),
            comm_deadline: SimDuration::from_secs(30),
            flap_window: SimDuration::from_hours(2),
            flap_strikes: 3,
            flap_repair: SimDuration::from_secs(300),
            retry_backoff: SimDuration::from_secs(30),
            degradation_duration: SimDuration::from_secs(1800),
            node_repair: SimDuration::from_hours(4),
            slow_strikes: 3,
            slow_window: SimDuration::from_secs(5),
            slow_factor: 1.8,
            slow_baseline: 8,
            parallel: ParallelPolicy::default(),
        }
    }

    /// The benchmark soak: a 512-GPU pod (64 nodes), 8 initial jobs plus
    /// churn, one simulated week.
    pub fn soak_512(seed: u64) -> Self {
        let job = |dp: usize, policy: RecoveryPolicy, iters: u64| JobTemplate {
            spec: JobSpec::gpt22b_scaling(dp),
            policy,
            target_iterations: iters,
        };
        FleetConfig {
            clos: ClosConfig::pod(64),
            backup_nodes: 4,
            horizon: SimDuration::from_hours(168),
            stride: 400,
            rate_multiplier: 12.0,
            initial_jobs: vec![
                job(8, RecoveryPolicy::CheckpointRestart, 200_000),
                job(6, RecoveryPolicy::DegradedContinue, 200_000),
                job(8, RecoveryPolicy::Replace, 200_000),
                job(6, RecoveryPolicy::CheckpointRestart, 150_000),
                job(4, RecoveryPolicy::CheckpointRestart, 60_000),
                job(6, RecoveryPolicy::DegradedContinue, 200_000),
                job(4, RecoveryPolicy::Replace, 80_000),
                job(4, RecoveryPolicy::CheckpointRestart, 200_000),
            ],
            arrivals: vec![
                (
                    SimDuration::from_hours(20),
                    job(4, RecoveryPolicy::CheckpointRestart, 60_000),
                ),
                (
                    SimDuration::from_hours(48),
                    job(6, RecoveryPolicy::DegradedContinue, 80_000),
                ),
                (
                    SimDuration::from_hours(90),
                    job(4, RecoveryPolicy::Replace, 60_000),
                ),
            ],
            node_repair: SimDuration::from_hours(12),
            ..Self::smoke(seed)
        }
    }
}

/// Links whose state a fault (or its repair) changed — tracked by the
/// controller independently of the degradation object so cache rebasing
/// and the stale-route audit need no topology introspection at audit time.
#[derive(Debug, Clone)]
struct ActiveFault {
    node: Option<NodeId>,
    link: Option<LinkId>,
    /// Topology-level effects to revert on repair.
    degradations: Vec<Degradation>,
    /// Compute-side effects (consumed by matching jobs each round).
    perturbations: Vec<ComputePerturbation>,
    /// Links this fault has taken down or degraded.
    links: Vec<LinkId>,
    /// When the fault self-heals; `None` = permanent until isolation.
    repair_at: Option<SimTime>,
}

/// One running job plus its control-loop state.
struct FleetJob {
    policy: RecoveryPolicy,
    target_iterations: u64,
    job: TrainingJob,
    selector: EcmpSelector,
    rng: DetRng,
    health: CollHealthDetector,
    acc: JobAccounting,
    /// Fleet time before which the job does not run (recovery/backoff).
    blocked_until: SimTime,
    productive_since_ckpt: SimDuration,
    /// Nodes swapped in since the last clean iteration. A hang right
    /// after a swap means the localizer blamed the wrong node (rank-level
    /// evidence is ambiguous when a whole ring stalls): the fresh node is
    /// above suspicion, so the next victim is chosen among the survivors.
    recent_replacements: Vec<NodeId>,
    failed: bool,
}

/// What the verdict loop decided for one job this round.
enum Action {
    /// Wait out a transient fault, optionally escalating it first.
    Retry {
        until: SimTime,
        strike_key: Option<u64>,
    },
    /// Isolate `victim` and resume per policy.
    Recover { victim: NodeId },
}

/// Pending repair of a whole node.
#[derive(Debug, Clone, Copy)]
struct NodeRepair {
    at: SimTime,
    node: NodeId,
    /// True when the node was isolated through the steering service (goes
    /// back to the backup pool); false for idle-node crashes (goes back to
    /// the free pool).
    via_steering: bool,
}

/// The long-horizon fleet controller. Construct with [`FleetController::new`]
/// and drive to completion with [`FleetController::run`].
pub struct FleetController {
    cfg: FleetConfig,
    topo: Topology,
    steering: JobSteering,
    free_nodes: Vec<NodeId>,
    jobs: BTreeMap<u64, FleetJob>,
    next_job_id: u64,
    /// Future arrivals, absolute fleet time, sorted.
    pending: VecDeque<(SimTime, JobTemplate)>,
    /// Arrivals waiting for capacity.
    queue: VecDeque<JobTemplate>,
    /// Merged fault schedule, sorted by time.
    events: VecDeque<FaultEvent>,
    active: Vec<ActiveFault>,
    node_repairs: Vec<NodeRepair>,
    flaps: FlapTracker,
    slow: FlapTracker,
    clock: SimTime,
    outcomes: Vec<JobOutcome>,
    faults: FaultCounts,
    detections: u64,
    isolations: u64,
    replacements: u64,
    dp_shrinks: u64,
    retries: u64,
    escalations: u64,
    repairs_returned: u64,
    cache_rebased_drops: u64,
    stale_plan_routes: u64,
    cache_hits: u64,
    cache_misses: u64,
    rounds: u64,
    live_iterations: u64,
}

/// Host-uplink/downlink + PCIe links of a node (the links a cached plan
/// can route through on that node; NVLink intra edges are node-internal
/// and only appear in the node's own jobs' plans, which are invalidated by
/// incarnation bumps).
fn node_links(topo: &Topology, node: NodeId) -> Vec<LinkId> {
    let mut out = Vec::new();
    for &nic in &topo.node(node).nics {
        for p in topo.nic(nic).ports {
            out.push(topo.port(p).host_up);
            out.push(topo.port(p).host_down);
        }
    }
    for &g in &topo.node(node).gpus {
        let gpu = topo.gpu(g);
        out.push(gpu.pcie_tx);
        out.push(gpu.pcie_rx);
    }
    out
}

/// Strike-tracker key namespaces (links and nodes share one tracker).
fn link_key(l: LinkId) -> u64 {
    (l.index() as u64) << 1
}
fn node_key(n: NodeId) -> u64 {
    ((n.index() as u64) << 1) | 1
}

impl FleetController {
    /// Builds the fleet: topology, backup pool, fault schedules.
    ///
    /// # Panics
    ///
    /// Panics when the initial jobs need more nodes than the cluster has
    /// outside the backup pool.
    pub fn new(cfg: FleetConfig) -> Self {
        let topo = Topology::build(&cfg.clos);
        let nodes = topo.num_nodes();
        assert!(
            cfg.backup_nodes < nodes,
            "backup pool must leave room for jobs"
        );
        let backup_start = nodes - cfg.backup_nodes;
        let backups: Vec<NodeId> = (backup_start..nodes).map(NodeId::from_index).collect();
        let free_nodes: Vec<NodeId> = (0..backup_start).map(NodeId::from_index).collect();
        let steering = JobSteering::new(cfg.steering, backups);

        // Pre-draw the three fault schedules over the whole horizon from
        // the injector's disjoint per-class streams.
        let mut injector = FaultInjector::new(cfg.rates.scaled(cfg.rate_multiplier), cfg.seed);
        let gpus = topo.gpus().len();
        let gpn = gpus / nodes;
        let mut events = injector.schedule_crashes(gpus, nodes, gpn, SimTime::ZERO, cfg.horizon);
        events.extend(injector.schedule_degradations(gpus, nodes, gpn, SimTime::ZERO, cfg.horizon));
        events.extend(injector.schedule_link_failures(
            &topo.fabric_links(),
            SimTime::ZERO,
            cfg.horizon,
        ));
        events.sort_by_key(|e| (e.time, e.id));

        let mut pending: Vec<(SimTime, JobTemplate)> = cfg
            .arrivals
            .iter()
            .map(|(off, t)| (SimTime::ZERO + *off, t.clone()))
            .collect();
        pending.sort_by_key(|(t, _)| *t);

        let mut ctl = FleetController {
            flaps: FlapTracker::new(cfg.flap_window, cfg.flap_strikes),
            slow: FlapTracker::new(cfg.flap_window, cfg.slow_strikes),
            topo,
            steering,
            free_nodes,
            jobs: BTreeMap::new(),
            next_job_id: 0,
            pending: pending.into(),
            queue: VecDeque::new(),
            events: events.into(),
            active: Vec::new(),
            node_repairs: Vec::new(),
            clock: SimTime::ZERO,
            outcomes: Vec::new(),
            faults: FaultCounts::default(),
            detections: 0,
            isolations: 0,
            replacements: 0,
            dp_shrinks: 0,
            retries: 0,
            escalations: 0,
            repairs_returned: 0,
            cache_rebased_drops: 0,
            stale_plan_routes: 0,
            cache_hits: 0,
            cache_misses: 0,
            rounds: 0,
            live_iterations: 0,
            cfg,
        };
        let initial = ctl.cfg.initial_jobs.clone();
        for t in initial {
            ctl.queue.push_back(t);
        }
        ctl.admit_queued();
        ctl
    }

    /// The live topology (for inspection in tests).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Nodes of a currently running job, admission order (test hook for
    /// aiming injected faults at live jobs).
    pub fn job_nodes(&self, job: u64) -> Option<Vec<NodeId>> {
        self.jobs.get(&job).map(|j| j.job.layout().nodes.clone())
    }

    /// Inserts a fault event into the schedule (test hook: deterministic
    /// scenarios aim specific faults at specific components instead of
    /// relying on the seeded schedule).
    pub fn inject_event(&mut self, e: FaultEvent) {
        let pos = self
            .events
            .iter()
            .position(|q| (q.time, q.id) > (e.time, e.id))
            .unwrap_or(self.events.len());
        self.events.insert(pos, e);
    }

    /// Runs the soak to the horizon and returns the report.
    pub fn run(mut self) -> FleetReport {
        let end = SimTime::ZERO + self.cfg.horizon;
        while self.clock < end {
            self.round();
            if self.jobs.is_empty() && self.pending.is_empty() && self.queue.is_empty() {
                break;
            }
        }
        // Departure ledger for jobs still running at the horizon.
        let ended = self.clock;
        let ids: Vec<u64> = self.jobs.keys().copied().collect();
        for id in ids {
            self.depart(id, false, false);
        }
        self.outcomes.sort_by_key(|o| o.id);
        FleetReport {
            horizon: self.cfg.horizon,
            ended,
            rounds: self.rounds,
            live_iterations: self.live_iterations,
            jobs: std::mem::take(&mut self.outcomes),
            faults: self.faults,
            detections: self.detections,
            isolations: self.isolations,
            replacements: self.replacements,
            dp_shrinks: self.dp_shrinks,
            retries: self.retries,
            escalations: self.escalations,
            repairs_returned: self.repairs_returned,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_rebased_drops: self.cache_rebased_drops,
            stale_plan_routes: self.stale_plan_routes,
        }
    }

    /// One controller tick.
    fn round(&mut self) {
        self.rounds += 1;
        let mut changed_links: Vec<LinkId> = Vec::new();

        self.process_repairs(&mut changed_links);
        self.apply_due_events(&mut changed_links);
        if !changed_links.is_empty() {
            self.rebase_caches(&changed_links);
            self.audit_stale_routes(&changed_links);
        }
        self.admit_queued();

        // --- live iterations + detection --------------------------------
        let ids: Vec<u64> = self.jobs.keys().copied().collect();
        let mut actions: Vec<(u64, Action)> = Vec::new();
        let mut round_wall = SimDuration::ZERO;
        for id in ids {
            let decision = self.run_job_round(id, &mut round_wall);
            if let Some(a) = decision {
                actions.push((id, a));
            }
        }

        // --- act on verdicts --------------------------------------------
        for (id, action) in actions {
            match action {
                Action::Retry { until, strike_key } => {
                    self.retries += 1;
                    let escalate = match strike_key {
                        Some(k) => self.flaps.record(k, self.clock),
                        None => false,
                    };
                    if escalate {
                        self.escalate(strike_key.expect("escalation implies a key"), id);
                    } else if let Some(fj) = self.jobs.get_mut(&id) {
                        let wait = until.saturating_since(self.clock) + self.cfg.retry_backoff;
                        fj.blocked_until = self.clock + wait;
                        fj.acc.retries += 1;
                        fj.acc.downtime += wait;
                        fj.job.advance_clock(wait);
                    }
                }
                Action::Recover { victim } => self.recover(id, victim),
            }
        }

        // --- advance the fleet clock -------------------------------------
        if round_wall.is_zero() {
            round_wall = SimDuration::from_secs(1) * self.cfg.stride as f64;
        }
        self.clock += round_wall;

        // --- departures (after the clock advance, so the final round's
        // productive time is inside the job's wall time) ------------------
        let done: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.acc.iterations >= j.target_iterations || j.failed)
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            let failed = self.jobs[&id].failed;
            self.depart(id, !failed, failed);
        }
    }

    /// Runs one job's live iteration + detection; returns what to do.
    fn run_job_round(&mut self, id: u64, round_wall: &mut SimDuration) -> Option<Action> {
        let cfg_detector = self.cfg.detector;
        let stride = self.cfg.stride;
        let topo = &self.topo;
        let fj = self.jobs.get_mut(&id).expect("job exists");
        if fj.blocked_until > self.clock {
            return None;
        }

        // Compute-side perturbations hitting this job.
        let job_gpus: Vec<_> = fj.job.layout().gpus(topo);
        let perturbs: Vec<ComputePerturbation> = self
            .active
            .iter()
            .flat_map(|f| f.perturbations.iter())
            .filter(|p| job_gpus.contains(&p.gpu))
            .copied()
            .collect();

        let mut tel: Vec<WorkerTelemetry> = topo
            .gpus()
            .iter()
            .map(|g| WorkerTelemetry::new(g.id))
            .collect();
        let round_start = fj.job.now();
        let report = fj.job.run_iteration(
            topo,
            &mut fj.selector,
            None,
            &mut fj.rng,
            &perturbs,
            Some(&mut tel),
        );
        self.live_iterations += 1;

        // Stream this round's telemetry through one per-communicator
        // streaming master each: a half-down NIC only hangs the DP groups
        // hashed onto the dead port, so every group must be watched.
        let scan_at = fj.job.now() + cfg_detector.hang_timeout + SimDuration::from_secs(1);
        let mut diags = Vec::new();
        let mut verdicts: Vec<StreamVerdict> = Vec::new();
        for comm in fj.job.comms() {
            let snaps: Vec<TelemetrySnapshot> = comm
                .devices()
                .iter()
                .map(|&g| tel[g.index()].snapshot(fj.job.now()))
                .collect();
            let events = events_from_snapshots(&snaps);
            let mut master = StreamingC4dMaster::new(
                cfg_detector,
                CommRecord {
                    comm: comm.id(),
                    devices: comm.devices().to_vec(),
                    created: round_start,
                },
            );
            for e in &events {
                master.feed(e);
                verdicts.extend(fj.health.feed(e));
            }
            diags.extend(master.scan(scan_at, topo));
        }

        if std::env::var("FLEET_DEBUG").is_ok() {
            eprintln!(
                "round={} job={} now={:?} hung={} total={:?} diags={:?}",
                self.rounds,
                id,
                fj.job.now(),
                report.hung,
                report.total,
                diags
            );
        }
        let job_nodes = fj.job.layout().nodes.clone();
        let mut candidates: Vec<NodeId> = diags
            .iter()
            .filter(|d| d.critical)
            .filter_map(|d| d.suspect)
            .filter(|n| job_nodes.contains(n))
            .collect();
        candidates.dedup();
        let critical_suspect = candidates
            .iter()
            .find(|n| !fj.recent_replacements.contains(n))
            .or_else(|| candidates.first())
            .copied();
        if diags.iter().any(|d| d.critical) {
            self.detections += 1;
        }

        if report.hung {
            // The wasted iteration attempt plus the hang-detection latency
            // are downtime no matter how the job resumes.
            let waste = report.total + cfg_detector.hang_timeout + self.cfg.localize_delay;
            fj.acc.downtime += waste;
            fj.job
                .advance_clock(cfg_detector.hang_timeout + self.cfg.localize_delay);

            // Prefer the detector's localization; corroborate against the
            // fault ledger to classify transient vs permanent.
            let victim = critical_suspect.or_else(|| {
                self.active
                    .iter()
                    .filter(|f| f.repair_at.is_none())
                    .find_map(|f| f.node.filter(|n| job_nodes.contains(n)))
            });
            if let Some(v) = victim {
                let transient = self
                    .active
                    .iter()
                    .find(|f| f.node == Some(v) && f.repair_at.is_some());
                if let Some(f) = transient {
                    return Some(Action::Retry {
                        until: f.repair_at.expect("transient has repair time"),
                        strike_key: Some(node_key(v)),
                    });
                }
                return Some(Action::Recover { victim: v });
            }
            // No localization: wait out the nearest pending repair (or a
            // plain backoff when the ledger has nothing — e.g. a race with
            // an event this controller has not applied yet).
            let until = self
                .active
                .iter()
                .filter_map(|f| f.repair_at)
                .min()
                .unwrap_or(self.clock);
            return Some(Action::Retry {
                until,
                strike_key: None,
            });
        }

        // Healthy (or merely slow) round: credit the stride.
        fj.recent_replacements.clear();
        let credited = report.total * stride as f64;
        fj.acc.iterations += stride;
        fj.acc.productive += credited;
        fj.productive_since_ckpt += credited;
        fj.job.advance_clock(report.total * (stride - 1) as f64);
        *round_wall = (*round_wall).max(credited);

        let slow = verdicts
            .iter()
            .any(|v| matches!(v, StreamVerdict::CollSlow { .. }))
            || diags.iter().any(|d| !d.critical);
        if slow {
            if fj.policy == RecoveryPolicy::DegradedContinue {
                fj.acc.degraded_iterations += stride;
                return None;
            }
            if self.slow.record(id, self.clock) {
                // Persistent slowness: isolate whatever slow component the
                // detectors or the ledger point at.
                let victim = diags
                    .iter()
                    .filter(|d| !d.critical)
                    .find_map(|d| d.suspect)
                    .filter(|n| job_nodes.contains(n))
                    .or_else(|| {
                        self.active
                            .iter()
                            .find_map(|f| f.node.filter(|n| job_nodes.contains(n)))
                    });
                if let Some(v) = victim {
                    return Some(Action::Recover { victim: v });
                }
            }
        }
        None
    }

    /// Escalates a transient fault (by strike key) to permanent: cancels
    /// its auto-repair; node-scoped faults then isolate through the normal
    /// recovery path.
    fn escalate(&mut self, key: u64, job_id: u64) {
        self.escalations += 1;
        let mut victim = None;
        for f in &mut self.active {
            let matches = match (f.node, f.link) {
                (Some(n), _) if node_key(n) == key => {
                    victim = Some(n);
                    true
                }
                (_, Some(l)) if link_key(l) == key => true,
                _ => false,
            };
            if matches {
                f.repair_at = None;
            }
        }
        if let Some(v) = victim {
            self.recover(job_id, v);
        }
    }

    /// Isolates `victim` through steering and resumes the job per policy.
    fn recover(&mut self, id: u64, victim: NodeId) {
        // Charge the recovery downtime: steering turnaround + re-init +
        // redone post-checkpoint work (detection was charged at verdict
        // time).
        let (redo, policy, old_nodes) = {
            let fj = self.jobs.get_mut(&id).expect("job exists");
            let interval = self.cfg.checkpoint_interval;
            let redo = if interval.is_zero() {
                SimDuration::ZERO
            } else {
                SimDuration::from_secs_f64(
                    fj.productive_since_ckpt.as_secs_f64() % interval.as_secs_f64(),
                )
            };
            (redo, fj.policy, fj.job.layout().nodes.clone())
        };
        let spent = self.steering.turnaround() + self.cfg.reinit + redo;

        // Clear the victim's standing faults before the swap so its links
        // are clean when repair eventually returns it to the pool.
        self.clear_faults_on(victim);

        let swap = self
            .steering
            .isolate_and_replace(&mut self.topo, victim, self.clock);
        let victim_links = node_links(&self.topo, victim);

        let new_nodes: Option<Vec<NodeId>> = match swap {
            Ok(plan) => {
                self.isolations += 1;
                if self.cfg.node_repair > SimDuration::ZERO {
                    self.node_repairs.push(NodeRepair {
                        at: self.clock + self.cfg.node_repair,
                        node: victim,
                        via_steering: true,
                    });
                }
                let fresh: Vec<NodeId> = if policy == RecoveryPolicy::Replace
                    && self.free_nodes.len() >= old_nodes.len()
                {
                    // Whole-job re-placement: take fresh nodes, hand the
                    // unused backup straight back to the pool and release
                    // the job's healthy survivors.
                    self.steering
                        .return_repaired(&mut self.topo, plan.replacement);
                    let taken: Vec<NodeId> = self.free_nodes.drain(..old_nodes.len()).collect();
                    for n in old_nodes.iter().filter(|&&n| n != victim) {
                        self.free_nodes.push(*n);
                    }
                    self.free_nodes.sort();
                    taken
                } else {
                    old_nodes
                        .iter()
                        .map(|&n| if n == victim { plan.replacement } else { n })
                        .collect()
                };
                self.replacements += 1;
                Some(fresh)
            }
            Err(SteeringError::BackupPoolExhausted) => {
                // Victim is cordoned but nothing replaces it: shrink the
                // job's DP width over the surviving nodes.
                self.isolations += 1;
                None
            }
            Err(SteeringError::AlreadyIsolated(_)) => None,
        };

        let fj = self.jobs.get_mut(&id).expect("job exists");
        fj.acc.downtime += spent;
        fj.acc.recoveries += 1;
        fj.productive_since_ckpt = SimDuration::ZERO;
        fj.blocked_until = self.clock + spent;
        fj.job.advance_clock(spent);

        match new_nodes {
            Some(nodes) => {
                for &n in &nodes {
                    if !old_nodes.contains(&n) {
                        fj.recent_replacements.push(n);
                    }
                }
                let spec = fj.job.spec().clone();
                match ParallelLayout::place(&self.topo, &spec, nodes) {
                    Ok(layout) => fj.job.replace_layout(&self.topo, spec, layout),
                    Err(_) => {
                        fj.failed = true;
                    }
                }
            }
            None => {
                // Graceful degradation: drop the victim, shrink DP.
                let survivors: Vec<NodeId> = fj
                    .job
                    .layout()
                    .nodes
                    .iter()
                    .copied()
                    .filter(|&n| n != victim)
                    .collect();
                let old_spec = fj.job.spec().clone();
                let old_node_count = fj.job.layout().nodes.len();
                let dp_per_node = (old_spec.dp / old_node_count.max(1)).max(1);
                let new_dp = dp_per_node * survivors.len();
                if survivors.len() < 2 || new_dp == 0 {
                    fj.failed = true;
                } else {
                    let mut spec = old_spec.clone();
                    spec.dp = new_dp;
                    spec.global_batch = (spec.global_batch / old_spec.dp.max(1)) * new_dp;
                    match ParallelLayout::place(&self.topo, &spec, survivors) {
                        Ok(layout) => {
                            fj.job.replace_layout(&self.topo, spec, layout);
                            fj.acc.dp_shrinks += 1;
                            self.dp_shrinks += 1;
                        }
                        Err(_) => fj.failed = true,
                    }
                }
            }
        }

        self.slow.clear_key(id);
        self.flaps.clear_key(node_key(victim));
        self.rebase_caches(&victim_links);
        self.audit_stale_routes(&victim_links);
    }

    /// Reverts and removes every standing fault on a node.
    fn clear_faults_on(&mut self, node: NodeId) {
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].node == Some(node) {
                let f = self.active.remove(i);
                for d in &f.degradations {
                    d.revert(&mut self.topo);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Processes due node repairs and transient-fault expiries.
    fn process_repairs(&mut self, changed: &mut Vec<LinkId>) {
        // Node repairs: return to the appropriate pool.
        let mut i = 0;
        while i < self.node_repairs.len() {
            if self.node_repairs[i].at <= self.clock {
                let r = self.node_repairs.remove(i);
                self.clear_faults_on(r.node);
                if r.via_steering {
                    self.steering.return_repaired(&mut self.topo, r.node);
                } else {
                    self.topo.set_node_healthy(r.node, true);
                    self.free_nodes.push(r.node);
                    self.free_nodes.sort();
                }
                self.repairs_returned += 1;
            } else {
                i += 1;
            }
        }
        // Transient fault expiries.
        let mut i = 0;
        while i < self.active.len() {
            let due = matches!(self.active[i].repair_at, Some(t) if t <= self.clock);
            if due {
                let f = self.active.remove(i);
                for d in &f.degradations {
                    d.revert(&mut self.topo);
                }
                changed.extend(f.links.iter().copied());
            } else {
                i += 1;
            }
        }
    }

    /// Applies fault events that came due this round.
    fn apply_due_events(&mut self, changed: &mut Vec<LinkId>) {
        while matches!(self.events.front(), Some(e) if e.time <= self.clock) {
            let e = self.events.pop_front().expect("front checked");
            self.apply_event(e, changed);
        }
    }

    fn apply_event(&mut self, e: FaultEvent, changed: &mut Vec<LinkId>) {
        if e.kind == FaultKind::LinkFailure {
            let link = e.link.expect("link failures carry a link");
            if !self.topo.link(link).is_up() {
                self.faults.skipped += 1;
                return;
            }
            let deg = Degradation::link_down(link);
            deg.apply(&mut self.topo);
            changed.push(link);
            self.faults.link_failures += 1;
            // N-strike ledger: a link that keeps flapping stops being
            // repaired (stays down; ECMP routes around it permanently).
            let escalate = self.flaps.record(link_key(link), self.clock);
            let repair_at = if escalate {
                self.escalations += 1;
                None
            } else {
                Some(self.clock + self.cfg.flap_repair)
            };
            self.active.push(ActiveFault {
                node: None,
                link: Some(link),
                degradations: vec![deg],
                perturbations: Vec::new(),
                links: vec![link],
                repair_at,
            });
            return;
        }

        let node = e.node.expect("node faults carry a node");
        if !self.topo.is_node_healthy(node) || self.active.iter().any(|f| f.node == Some(node)) {
            self.faults.skipped += 1;
            return;
        }

        if e.is_crash() {
            // Fatal node fault: host links go dark, processes die.
            let degs = vec![
                Degradation::node_tx_slow(node, 0.0),
                Degradation::node_rx_slow(node, 0.0),
            ];
            for d in &degs {
                d.apply(&mut self.topo);
            }
            let links = node_links(&self.topo, node);
            changed.extend(links.iter().copied());
            self.faults.crashes += 1;
            let hosts_job = self
                .jobs
                .values()
                .any(|j| j.job.layout().nodes.contains(&node));
            self.active.push(ActiveFault {
                node: Some(node),
                link: None,
                degradations: degs,
                perturbations: Vec::new(),
                links,
                repair_at: None,
            });
            if !hosts_job {
                // Idle-node crash: pull it out of the pools directly.
                self.topo.set_node_healthy(node, false);
                self.free_nodes.retain(|&n| n != node);
                if self.cfg.node_repair > SimDuration::ZERO {
                    self.node_repairs.push(NodeRepair {
                        at: self.clock + self.cfg.node_repair,
                        node,
                        via_steering: false,
                    });
                }
            }
            return;
        }

        // Degradations.
        self.faults.degradations += 1;
        let repair_at = Some(self.clock + self.cfg.degradation_duration);
        let fault = match e.kind {
            FaultKind::SlowGpu => ActiveFault {
                node: Some(node),
                link: None,
                degradations: Vec::new(),
                perturbations: vec![ComputePerturbation::slow_gpu(
                    e.gpu.expect("slow-gpu is gpu-scoped"),
                    2.0,
                )],
                links: Vec::new(),
                repair_at,
            },
            FaultKind::GcPause => ActiveFault {
                node: Some(node),
                link: None,
                degradations: Vec::new(),
                perturbations: vec![ComputePerturbation::gc_pause(
                    self.topo.gpu_at(node, 0),
                    SimDuration::from_millis(400),
                )],
                links: Vec::new(),
                repair_at,
            },
            FaultKind::PcieDowngrade => {
                let gpu = e.gpu.expect("pcie downgrade is gpu-scoped");
                let deg = Degradation::pcie_downgrade(gpu, 0.25);
                deg.apply(&mut self.topo);
                let g = self.topo.gpu(gpu);
                let links = vec![g.pcie_tx, g.pcie_rx];
                changed.extend(links.iter().copied());
                ActiveFault {
                    node: Some(node),
                    link: None,
                    degradations: vec![deg],
                    perturbations: Vec::new(),
                    links,
                    repair_at,
                }
            }
            FaultKind::NicHalfDown => {
                // Deterministically pick one bonded port on one NIC.
                let nics = &self.topo.node(node).nics;
                let nic = nics[(e.id as usize) % nics.len()];
                let port = self.topo.nic(nic).ports[(e.id as usize >> 1) % 2];
                let deg = Degradation::nic_half_down(port);
                deg.apply(&mut self.topo);
                let p = self.topo.port(port);
                let links = vec![p.host_up, p.host_down];
                changed.extend(links.iter().copied());
                ActiveFault {
                    node: Some(node),
                    link: None,
                    degradations: vec![deg],
                    perturbations: Vec::new(),
                    links,
                    repair_at,
                }
            }
            other => unreachable!("unhandled degradation kind {other:?}"),
        };
        self.active.push(fault);
    }

    /// Surgically rebases every job's plan cache after link-state changes.
    fn rebase_caches(&mut self, affected: &[LinkId]) {
        for fj in self.jobs.values_mut() {
            self.cache_rebased_drops += fj.job.plan_cache_mut().rebase(&self.topo, affected) as u64;
        }
    }

    /// Audits the zero-stale-route invariant right after a rebase: no
    /// cache may still hold a pre-mutation plan routing through the links
    /// whose state just changed. (A plan cached *after* a link silently
    /// died can legitimately route through it — host-link state is
    /// invisible to live ECMP, and that hang is exactly what the streaming
    /// detectors exist to catch.)
    fn audit_stale_routes(&mut self, changed: &[LinkId]) {
        if changed.is_empty() {
            return;
        }
        for fj in self.jobs.values() {
            if fj.job.plan_cache().any_route_through(changed) {
                self.stale_plan_routes += 1;
            }
        }
    }

    /// Admits queued arrivals (and newly due pending ones) while capacity
    /// lasts.
    fn admit_queued(&mut self) {
        while matches!(self.pending.front(), Some((t, _)) if *t <= self.clock) {
            let (_, t) = self.pending.pop_front().expect("front checked");
            self.queue.push_back(t);
        }
        while let Some(t) = self.queue.front() {
            let gpn = self.topo.gpus().len() / self.topo.num_nodes();
            let need = t.spec.gpus() / gpn;
            if need == 0 || need > self.free_nodes.len() {
                break;
            }
            let t = self.queue.pop_front().expect("front checked");
            let nodes: Vec<NodeId> = self.free_nodes.drain(..need).collect();
            let layout = match ParallelLayout::place(&self.topo, &t.spec, nodes.clone()) {
                Ok(l) => l,
                Err(_) => {
                    // Placement raced with a fault on a drained node; put
                    // the nodes back and retry next round.
                    self.free_nodes.extend(nodes);
                    self.free_nodes.sort();
                    self.queue.push_front(t);
                    break;
                }
            };
            let id = self.next_job_id;
            self.next_job_id += 1;
            let mut job = TrainingJob::new(&self.topo, t.spec.clone(), layout, id * 1024);
            job.comm_deadline = self.cfg.comm_deadline;
            job.parallel = self.cfg.parallel;
            let salt = self.cfg.seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let fj = FleetJob {
                policy: t.policy,
                target_iterations: t.target_iterations,
                job,
                selector: EcmpSelector::new(salt),
                rng: DetRng::seed_from(salt ^ 0xF1EE_7000),
                health: CollHealthDetector::new(
                    self.cfg.slow_window,
                    self.cfg.comm_deadline,
                    self.cfg.slow_factor,
                    self.cfg.slow_baseline,
                ),
                acc: JobAccounting {
                    admitted: self.clock,
                    ..JobAccounting::default()
                },
                blocked_until: self.clock,
                productive_since_ckpt: SimDuration::ZERO,
                recent_replacements: Vec::new(),
                failed: false,
            };
            self.jobs.insert(id, fj);
        }
    }

    /// Removes a job, frees its nodes, records the outcome.
    fn depart(&mut self, id: u64, completed: bool, failed: bool) {
        let fj = match self.jobs.remove(&id) {
            Some(j) => j,
            None => return,
        };
        self.cache_hits += fj.job.plan_cache().hits();
        self.cache_misses += fj.job.plan_cache().misses();
        for &n in &fj.job.layout().nodes {
            if self.topo.is_node_healthy(n) {
                self.free_nodes.push(n);
            }
        }
        self.free_nodes.sort();
        self.free_nodes.dedup();
        let mut acc = fj.acc;
        acc.finished = Some(self.clock);
        self.outcomes.push(JobOutcome {
            id,
            name: fj.job.spec().name.clone(),
            policy: fj.policy,
            completed,
            failed,
            final_dp: fj.job.spec().dp,
            accounting: acc,
        });
    }
}
