//! Fault-churn fleet controller: a long-horizon soak harness that runs many
//! concurrent training jobs through the **live** network stack while faults
//! arrive, and closes the full detect → isolate → replace → restart loop.
//!
//! The pieces:
//!
//! - [`FleetController`] — the round loop. Each round applies due fault
//!   events ([`c4_faults::FaultInjector`] schedules, disjoint per class) to
//!   the live [`c4_topology::Topology`], runs one network-simulated BSP
//!   iteration per job, streams its telemetry through the PR 8 detectors
//!   ([`c4_diagnosis::StreamingC4dMaster`] for hangs,
//!   [`c4_diagnosis::CollHealthDetector`] for windowed slowness), and acts
//!   on verdicts through [`c4_diagnosis::JobSteering`].
//! - [`RecoveryPolicy`] — the Chameleon-style per-job adaptation axis:
//!   checkpoint-restart with a backup swap, degraded-continue, or whole-job
//!   re-placement; when the backup pool is dry the controller shrinks the
//!   job's DP width instead of crashing it.
//! - [`FlapTracker`] — N-strikes-within-a-window escalation for transient
//!   link flaps and NIC brown-outs: retry with backoff first, isolate only
//!   a repeat offender.
//! - [`FleetReport`] / [`Reconciliation`] — goodput, ETTR, and downtime
//!   accounting, reconciled against the closed-form
//!   [`c4_trainsim::simulate_operation`] model on a matched configuration.
//!
//! Every recovery path re-plans through `run_concurrent_cached`'s plan
//! cache with surgical invalidation ([`c4_collectives::PlanCache::rebase`]),
//! and the controller audits after every topology mutation that **no cached
//! plan routes through a down link** ([`FleetReport::stale_plan_routes`]
//! must end at zero).

#![warn(missing_docs)]

pub mod accounting;
pub mod controller;
pub mod policy;

pub use accounting::{FaultCounts, FleetReport, JobAccounting, JobOutcome, Reconciliation};
pub use controller::{FleetConfig, FleetController, JobTemplate};
pub use policy::{FlapTracker, RecoveryPolicy};
