//! Per-job recovery policies and the transient-fault strike tracker.

use std::collections::{BTreeMap, VecDeque};

use c4_simcore::{SimDuration, SimTime};

/// How a job resumes after C4D localizes a faulty node (the Chameleon-style
/// per-job adaptation axis: different jobs tolerate faults differently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Swap the victim for a backup node (identical layout) and restart
    /// from the last checkpoint — the paper's C4a default.
    CheckpointRestart,
    /// Prefer running on, absorbing slow components at reduced goodput;
    /// only a *dead* node (hang) forces a node swap, and persistent
    /// slowness never escalates to isolation.
    DegradedContinue,
    /// Re-place the whole job on fresh nodes when the free pool allows it
    /// (jobs whose layout is cheap to move), falling back to a single-node
    /// swap otherwise.
    Replace,
}

impl RecoveryPolicy {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::CheckpointRestart => "checkpoint-restart",
            RecoveryPolicy::DegradedContinue => "degraded-continue",
            RecoveryPolicy::Replace => "replace",
        }
    }
}

/// Sliding-window strike counter for transient faults (link flaps, NIC
/// brown-outs, repeated slow verdicts).
///
/// Each key (a link, node or job identifier chosen by the caller)
/// accumulates timestamped strikes; [`FlapTracker::record`] returns `true`
/// when the key has reached the configured strike count within the window —
/// the signal to stop retrying and escalate to isolation.
#[derive(Debug, Clone)]
pub struct FlapTracker {
    window: SimDuration,
    strikes: usize,
    history: BTreeMap<u64, VecDeque<SimTime>>,
}

impl FlapTracker {
    /// Creates a tracker escalating after `strikes` strikes within `window`.
    pub fn new(window: SimDuration, strikes: usize) -> Self {
        FlapTracker {
            window,
            strikes: strikes.max(1),
            history: BTreeMap::new(),
        }
    }

    /// Records a strike against `key` at `now`; returns `true` when the
    /// key's strike count within the window (including this one) has
    /// reached the escalation threshold. Escalating clears the key's
    /// history so a later recurrence starts a fresh count.
    pub fn record(&mut self, key: u64, now: SimTime) -> bool {
        let entry = self.history.entry(key).or_default();
        entry.push_back(now);
        let cutoff = now
            .saturating_since(SimTime::ZERO)
            .saturating_sub(self.window);
        while let Some(&front) = entry.front() {
            if front.saturating_since(SimTime::ZERO) < cutoff {
                entry.pop_front();
            } else {
                break;
            }
        }
        if entry.len() >= self.strikes {
            self.history.remove(&key);
            true
        } else {
            false
        }
    }

    /// Current in-window strike count for a key.
    pub fn strikes_of(&self, key: u64) -> usize {
        self.history.get(&key).map_or(0, |v| v.len())
    }

    /// Forgets a key (e.g. the component was replaced).
    pub fn clear_key(&mut self, key: u64) {
        self.history.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_after_n_strikes_in_window() {
        let mut t = FlapTracker::new(SimDuration::from_secs(100), 3);
        let at = |s| SimTime::ZERO + SimDuration::from_secs(s);
        assert!(!t.record(7, at(0)));
        assert!(!t.record(7, at(10)));
        assert_eq!(t.strikes_of(7), 2);
        assert!(t.record(7, at(20)), "third strike escalates");
        assert_eq!(t.strikes_of(7), 0, "escalation clears history");
    }

    #[test]
    fn old_strikes_age_out() {
        let mut t = FlapTracker::new(SimDuration::from_secs(50), 3);
        let at = |s| SimTime::ZERO + SimDuration::from_secs(s);
        assert!(!t.record(1, at(0)));
        assert!(!t.record(1, at(10)));
        // 200s later the first two strikes left the window.
        assert!(!t.record(1, at(200)));
        assert_eq!(t.strikes_of(1), 1);
    }

    #[test]
    fn keys_are_independent() {
        let mut t = FlapTracker::new(SimDuration::from_secs(100), 2);
        let at = |s| SimTime::ZERO + SimDuration::from_secs(s);
        assert!(!t.record(1, at(0)));
        assert!(!t.record(2, at(1)));
        assert!(t.record(1, at(2)));
        t.clear_key(2);
        assert_eq!(t.strikes_of(2), 0);
    }
}
