//! Targeted recovery-path tests: each fault class is aimed at a live job
//! and must flow detect → isolate/retry → replace/shrink → restart through
//! the live network stack.

use c4_faults::{FaultEvent, FaultKind};
use c4_fleet::{FleetConfig, FleetController, RecoveryPolicy};
use c4_simcore::{SimDuration, SimTime};

/// A quiet config: no random faults, a couple of small jobs, short horizon.
fn quiet(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::smoke(seed);
    cfg.rate_multiplier = 0.0;
    cfg.horizon = SimDuration::from_hours(6);
    cfg.initial_jobs.truncate(2);
    cfg.arrivals.clear();
    cfg
}

fn crash_at(id: u64, secs: u64, node: c4_topology::NodeId) -> FaultEvent {
    FaultEvent {
        id,
        time: SimTime::ZERO + SimDuration::from_secs(secs),
        kind: FaultKind::CudaError,
        node: Some(node),
        gpu: None,
        link: None,
        local: true,
    }
}

#[test]
fn node_crash_is_detected_isolated_and_replaced() {
    let mut ctl = FleetController::new(quiet(11));
    let victim = ctl.job_nodes(0).expect("job 0 admitted")[1];
    ctl.inject_event(crash_at(900_000, 300, victim));
    let report = ctl.run();

    assert_eq!(report.faults.crashes, 1);
    assert!(
        report.detections >= 1,
        "hang must produce a critical diagnosis"
    );
    assert_eq!(report.isolations, 1, "the crashed node is isolated once");
    assert!(report.replacements >= 1, "a backup swaps in");
    assert_eq!(
        report.stale_plan_routes, 0,
        "no cached plan may route through the dead node"
    );
    let job0 = &report.jobs[0];
    assert!(
        job0.completed && !job0.failed,
        "job survives the crash: {job0:?}"
    );
    assert_eq!(job0.accounting.recoveries, 1);
    assert!(job0.accounting.downtime > SimDuration::ZERO);
}

#[test]
fn backup_exhaustion_shrinks_dp_instead_of_crashing() {
    let mut cfg = quiet(12);
    cfg.backup_nodes = 1;
    cfg.node_repair = SimDuration::ZERO; // pool never refills
    cfg.initial_jobs.truncate(1);
    cfg.initial_jobs[0].policy = RecoveryPolicy::CheckpointRestart;
    assert_eq!(
        cfg.initial_jobs[0].spec.dp, 3,
        "3-node job so a shrink leaves 2"
    );
    let mut ctl = FleetController::new(cfg);
    let nodes = ctl.job_nodes(0).expect("job 0 admitted");
    ctl.inject_event(crash_at(900_000, 300, nodes[0]));
    ctl.inject_event(crash_at(900_001, 2500, nodes[1]));
    let report = ctl.run();

    assert_eq!(report.isolations, 2);
    assert_eq!(report.replacements, 1, "only one backup existed");
    assert_eq!(report.dp_shrinks, 1, "second recovery shrinks DP");
    assert_eq!(report.stale_plan_routes, 0);
    let job0 = &report.jobs[0];
    assert!(!job0.failed, "shrunk, not dead: {job0:?}");
    assert!(job0.final_dp < 3, "DP width dropped, got {}", job0.final_dp);
}

#[test]
fn transient_nic_fault_retries_then_recovers_on_repair() {
    let mut cfg = quiet(13);
    cfg.initial_jobs.truncate(1);
    cfg.flap_strikes = 10; // never escalate in this test
    let mut ctl = FleetController::new(cfg);
    let victim = ctl.job_nodes(0).expect("job 0 admitted")[0];
    ctl.inject_event(FaultEvent {
        id: 900_002,
        time: SimTime::ZERO + SimDuration::from_secs(300),
        kind: FaultKind::NicHalfDown,
        node: Some(victim),
        gpu: None,
        link: None,
        local: true,
    });
    let report = ctl.run();

    assert_eq!(report.faults.degradations, 1);
    assert!(
        report.retries >= 1,
        "half-down NIC hangs flows; the job retries: {report:?}"
    );
    assert_eq!(report.isolations, 0, "a single flap never isolates");
    assert_eq!(report.escalations, 0);
    assert_eq!(report.stale_plan_routes, 0);
    let job0 = &report.jobs[0];
    assert!(
        job0.completed,
        "job finishes once the NIC repairs: {job0:?}"
    );
    assert!(job0.accounting.retries >= 1);
}

#[test]
fn repeated_nic_flaps_escalate_to_isolation() {
    let mut cfg = quiet(14);
    cfg.initial_jobs.truncate(1);
    cfg.flap_strikes = 2;
    cfg.degradation_duration = SimDuration::from_secs(120);
    cfg.retry_backoff = SimDuration::from_secs(10);
    let mut ctl = FleetController::new(cfg);
    let victim = ctl.job_nodes(0).expect("job 0 admitted")[0];
    for (i, secs) in [300u64, 1500, 2700, 3900].into_iter().enumerate() {
        ctl.inject_event(FaultEvent {
            id: 900_010 + i as u64,
            time: SimTime::ZERO + SimDuration::from_secs(secs),
            kind: FaultKind::NicHalfDown,
            node: Some(victim),
            gpu: None,
            link: None,
            local: true,
        });
    }
    let report = ctl.run();

    assert!(
        report.escalations >= 1,
        "repeat offender escalates: {report:?}"
    );
    assert!(report.isolations >= 1, "escalation isolates the node");
    assert_eq!(report.stale_plan_routes, 0);
    assert!(report.jobs[0].completed);
}

#[test]
fn fabric_link_flap_reroutes_without_isolation() {
    let mut cfg = quiet(15);
    cfg.initial_jobs.truncate(2);
    let mut ctl = FleetController::new(cfg);
    let link = ctl.topology().fabric_links()[0];
    ctl.inject_event(FaultEvent {
        id: 900_020,
        time: SimTime::ZERO + SimDuration::from_secs(300),
        kind: FaultKind::LinkFailure,
        node: None,
        gpu: None,
        link: Some(link),
        local: true,
    });
    let report = ctl.run();

    assert_eq!(report.faults.link_failures, 1);
    assert_eq!(
        report.isolations, 0,
        "ECMP routes around a down fabric link"
    );
    assert_eq!(
        report.stale_plan_routes, 0,
        "caches rebased when the link dropped"
    );
    assert!(report.jobs.iter().all(|j| j.completed));
}

#[test]
fn soak_is_deterministic_per_seed() {
    let mut cfg = FleetConfig::smoke(21);
    cfg.horizon = SimDuration::from_hours(3);
    let a = FleetController::new(cfg.clone()).run();
    let b = FleetController::new(cfg).run();
    assert_eq!(a, b, "same seed, same report");

    let mut other = FleetConfig::smoke(22);
    other.horizon = SimDuration::from_hours(3);
    let c = FleetController::new(other).run();
    assert_ne!(
        a.faults, c.faults,
        "different seed draws a different schedule"
    );
}
