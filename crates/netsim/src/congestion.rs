//! DCQCN/CNP congestion model.
//!
//! RoCE congestion control (DCQCN) works by switches ECN-marking packets on
//! congested queues; receivers reflect marks back to senders as Congestion
//! Notification Packets (CNPs), and senders throttle. The paper observes
//! (§IV-B2, Fig 11) that in a 2:1 oversubscribed fabric each bonded port
//! receives ≈15 k CNPs/s, fluctuating between 12.5 k and 17.5 k, and that
//! this produces a small spread in per-task bus bandwidth (Fig 10b).
//!
//! The fluid model has no queues, so CNP emission is derived from sharing
//! pressure: a flow crossing any saturated link it shares with a competitor
//! receives marking at the (saturated) base rate, jittered.

/// Parameters of the CNP emission model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnpModel {
    /// CNPs per second attributed to a flow per unit of congestion score
    /// (score 1 ≡ sharing a saturated link with exactly one competitor).
    pub base_rate_per_score: f64,
    /// Relative fluctuation amplitude of the emission rate (uniform).
    pub noise: f64,
    /// Fraction of capacity above which a link counts as saturated.
    pub saturation_threshold: f64,
}

impl CnpModel {
    /// Values calibrated to Fig 11: 15 kp/s nominal, ±17 % fluctuation.
    pub fn paper_default() -> Self {
        CnpModel {
            base_rate_per_score: 15_000.0,
            noise: 0.17,
            saturation_threshold: 0.999,
        }
    }

    /// Congestion score of a flow: 1 when it crosses at least one saturated
    /// link shared with a competitor, else 0.
    ///
    /// ECN marking saturates once a queue persists — a flow behind 8
    /// competitors is marked at (roughly) the same per-flow rate as one
    /// behind a single competitor, because its own packet rate shrinks in
    /// proportion. This is what keeps Fig 11's per-port band at ≈15 kp/s in
    /// both shallow and deep sharing.
    ///
    /// `link_load` and `link_capacity` are parallel per-link tables;
    /// `link_flows` counts flows crossing each link.
    pub fn flow_score(
        &self,
        route: &[u32],
        link_load: &[f64],
        link_capacity: &[f64],
        link_flows: &[u32],
    ) -> f64 {
        for &l in route {
            let l = l as usize;
            let cap = link_capacity[l];
            if cap <= 0.0 {
                continue;
            }
            if link_load[l] >= cap * self.saturation_threshold && link_flows[l] > 1 {
                return 1.0;
            }
        }
        0.0
    }

    /// Instantaneous CNP rate for a flow with the given score, jittered by
    /// `noise_draw` ∈ [0, 1).
    pub fn cnp_rate(&self, score: f64, noise_draw: f64) -> f64 {
        if score <= 0.0 {
            return 0.0;
        }
        let jitter = 1.0 + self.noise * (2.0 * noise_draw - 1.0);
        self.base_rate_per_score * score * jitter
    }
}

impl Default for CnpModel {
    fn default() -> Self {
        CnpModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unshared_saturated_link_emits_nothing() {
        let m = CnpModel::paper_default();
        // One flow fully using a link: saturated but unshared → score 0.
        let score = m.flow_score(&[0], &[200.0], &[200.0], &[1]);
        assert_eq!(score, 0.0);
        assert_eq!(m.cnp_rate(score, 0.5), 0.0);
    }

    #[test]
    fn shared_saturated_link_scores_one_regardless_of_depth() {
        let m = CnpModel::paper_default();
        let score = m.flow_score(&[0], &[200.0], &[200.0], &[2]);
        assert_eq!(score, 1.0);
        // Marking saturates: deeper sharing does not multiply CNPs.
        let eight = m.flow_score(&[0], &[200.0], &[200.0], &[8]);
        assert_eq!(eight, 1.0);
    }

    #[test]
    fn unsaturated_link_scores_zero() {
        let m = CnpModel::paper_default();
        let score = m.flow_score(&[0], &[100.0], &[200.0], &[4]);
        assert_eq!(score, 0.0);
    }

    #[test]
    fn cnp_rate_band_matches_figure_11() {
        let m = CnpModel::paper_default();
        let lo = m.cnp_rate(1.0, 0.0);
        let hi = m.cnp_rate(1.0, 1.0 - f64::EPSILON);
        assert!((lo - 12_450.0).abs() < 100.0, "lo={lo}");
        assert!((hi - 17_550.0).abs() < 100.0, "hi={hi}");
    }

    #[test]
    fn zero_capacity_links_ignored() {
        let m = CnpModel::paper_default();
        let score = m.flow_score(&[0, 1], &[0.0, 200.0], &[0.0, 200.0], &[5, 2]);
        assert_eq!(score, 1.0);
    }

    #[test]
    fn any_saturated_shared_link_triggers() {
        let m = CnpModel::paper_default();
        let score = m.flow_score(
            &[0, 1, 2],
            &[100.0, 200.0, 50.0],
            &[200.0, 200.0, 200.0],
            &[2, 4, 9],
        );
        assert_eq!(score, 1.0);
    }
}
