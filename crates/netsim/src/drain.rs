//! The drain loop: advances virtual time until a set of flows completes.
//!
//! Between re-solve points the rate allocation is constant, so the loop only
//! needs events at flow completions, epoch boundaries (when congestion noise
//! is enabled) and the optional deadline. Flows whose route crosses a dead
//! link receive rate 0 and are reported as *stalled* — exactly the syndrome
//! C4D's hang detector consumes.
//!
//! Two implementations share the [`DrainConfig`]/[`DrainReport`] surface:
//!
//! * [`drain`] — the production path, an event-driven engine whose
//!   per-event work is proportional to *what changed*, not to what exists:
//!   * one persistent [`MaxMinState`] carries the base allocation;
//!     completions become [`MaxMinState::remove_flow`] and only the dirtied
//!     components re-waterfill. Link loads, per-link flow counts and CNP
//!     congestion scores are maintained incrementally off the solver's
//!     dirty-component feed ([`MaxMinState::refresh`]) instead of being
//!     rebuilt over every active flow each event.
//!   * DCQCN noise needs no second solver: a noise cap only ever lands on a
//!     flow crossing a saturated link shared with a competitor, and every
//!     subscriber of such a link is capped, so the capped max-min
//!     allocation is exactly `min(base_rate, cap)` per flow — a one-pass
//!     re-cap from the resident base allocation.
//!   * the next completion comes from an indexed min-heap with lazy
//!     invalidation (rate changes bump a per-flow stamp) instead of a
//!     linear scan, and completions landing within the one-byte tolerance
//!     of one instant batch their removals so a shared component re-solves
//!     once per batch rather than once per flow.
//! * [`drain_reference`] — the retained from-scratch implementation
//!   (re-solves the whole allocation at every event). It consumes the RNG
//!   in exactly the same order as [`drain`], so for any topology, flow set,
//!   noise level and deadline the two produce the same report up to
//!   floating-point association; `tests/maxmin_differential.rs` holds them
//!   to 1e-9 — with identical RNG positions afterwards.

use std::collections::BinaryHeap;

use c4_simcore::{Bandwidth, DetRng, ParallelPolicy, SimDuration, SimTime};
use c4_topology::{LinkKind, Topology};

use crate::congestion::CnpModel;
use crate::flow::{FlowOutcome, FlowSpec};
use crate::maxmin::{self, MaxMinState, SolveMode, SolveScope};

/// Configuration of one drain run.
#[derive(Debug, Clone)]
pub struct DrainConfig {
    /// Virtual start time.
    pub start: SimTime,
    /// Absolute give-up time for stalled flows (`None` = stop as soon as all
    /// movable flows finished; stalled flows are reported immediately).
    pub deadline: Option<SimTime>,
    /// Re-solve cadence when `rate_noise` or `cnp` is active.
    pub epoch: SimDuration,
    /// DCQCN-style multiplicative rate jitter applied to congested flows
    /// (0 = off). A value of `a` throttles each congested flow by a uniform
    /// factor in `[1−a, 1]`, re-drawn every epoch.
    pub rate_noise: f64,
    /// CNP accounting model (`None` = no CNP accounting).
    pub cnp: Option<CnpModel>,
    /// Thread budget for the solver's batched component re-solves (and for
    /// the collective layer's route assembly, which reuses the drain
    /// config). Defaults to the `C4_THREADS` environment selection; the
    /// allocation is bit-identical at any thread count.
    pub parallel: ParallelPolicy,
    /// Base-allocation solver strategy. [`SolveMode::Exact`] (the default)
    /// is bit-identical to the historical behaviour; `TwoTier` trades an
    /// ε-bounded rate error across the spine tier for sparse per-event
    /// re-solves (see [`MaxMinState::set_solve_mode`]).
    pub solve_mode: SolveMode,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            start: SimTime::ZERO,
            deadline: None,
            epoch: SimDuration::from_millis(10),
            rate_noise: 0.0,
            cnp: None,
            parallel: ParallelPolicy::default(),
            solve_mode: SolveMode::Exact,
        }
    }
}

/// Everything a drain run produced.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Per-flow outcomes, in spec order.
    pub outcomes: Vec<FlowOutcome>,
    /// When the drain ended (last completion, or deadline).
    pub end: SimTime,
    /// Bytes carried per link (indexed by `LinkId`).
    pub link_bytes: Vec<f64>,
    /// Average CNPs/s received per sender port (indexed by `PortId`) over
    /// the drain; all zeros when CNP accounting is off.
    pub cnp_per_port: Vec<f64>,
    /// Number of flows that crossed at least one saturated shared link.
    pub congested_flows: usize,
    /// Solver/engine counters for the run (replaces the old
    /// `C4_DRAIN_STATS=1` stderr printing): how much work the event loop
    /// actually did, observable without environment variables.
    pub solver: DrainSolverStats,
}

/// Structured solver/engine counters carried on every [`DrainReport`].
///
/// All counters are additive across drains except `arena_hwm_bytes`, which
/// is a high-water mark — [`DrainSolverStats::merge`] folds accordingly, so
/// multi-phase callers (the collective engine, the hybrid trainer) can
/// aggregate per-phase reports into one summary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DrainSolverStats {
    /// Events the drain loop processed (completions, epochs, deadline).
    pub events: u64,
    /// Flows in the drained spec set.
    pub flows: u64,
    /// Distinct links referenced by at least one flow (dense table size).
    pub dense_links: u64,
    /// Full (global) base-allocation solves.
    pub full_solves: u64,
    /// Dirty-component re-solves (exact mode's incremental path).
    pub component_solves: u64,
    /// Sparse two-tier propagations (two-tier mode's incremental path).
    pub sparse_solves: u64,
    /// Worklist rounds across all two-tier propagations.
    pub spine_rounds: u64,
    /// Per-link advertised-level commits made by two-tier propagation.
    pub spine_link_updates: u64,
    /// Two-tier propagations that failed to settle and fell back to a
    /// full exact solve.
    pub fallback_solves: u64,
    /// Completion instants at which ≥ 2 flows finished together (their
    /// removals were batched into one re-solve).
    pub batched_instants: u64,
    /// Completions beyond the first at a batched instant — i.e. removals
    /// that did *not* cost their own re-solve.
    pub batched_completions: u64,
    /// Connected components the solver tracked at the end of the drain.
    pub components: u64,
    /// High-water mark of the solver's reusable scratch arena, in bytes.
    pub arena_hwm_bytes: u64,
}

impl DrainSolverStats {
    /// Folds `other` into `self`: counters add, high-water marks take the
    /// max.
    pub fn merge(&mut self, other: &DrainSolverStats) {
        self.events += other.events;
        self.flows += other.flows;
        self.dense_links += other.dense_links;
        self.full_solves += other.full_solves;
        self.component_solves += other.component_solves;
        self.sparse_solves += other.sparse_solves;
        self.spine_rounds += other.spine_rounds;
        self.spine_link_updates += other.spine_link_updates;
        self.fallback_solves += other.fallback_solves;
        self.batched_instants += other.batched_instants;
        self.batched_completions += other.batched_completions;
        self.components += other.components;
        self.arena_hwm_bytes = self.arena_hwm_bytes.max(other.arena_hwm_bytes);
    }
}

impl DrainReport {
    /// True when every flow completed (vacuously true for zero flows).
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(|o| o.completed())
    }

    /// Total drain duration from the configured start.
    pub fn duration_from(&self, start: SimTime) -> SimDuration {
        self.end - start
    }

    /// Indices of stalled flows.
    pub fn stalled(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.completed())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Rates below this (bytes/s) count as stalled.
const STALL_RATE: f64 = 1.0;

/// A projected flow completion in the drain's event heap (min-heap over
/// `(t_zero, flow)`).
///
/// `stamp` implements lazy invalidation: the entry is live only while the
/// flow's stamp still matches — every rate change bumps the flow's stamp,
/// and stale entries are discarded when they surface at the top.
#[derive(Debug, Clone, Copy)]
struct CompletionEvent {
    /// Projected instant (seconds since drain start) at which the flow's
    /// remaining bytes reach zero at its current rate.
    t_zero: f64,
    flow: u32,
    stamp: u32,
}

impl PartialEq for CompletionEvent {
    fn eq(&self, other: &Self) -> bool {
        self.t_zero == other.t_zero && self.flow == other.flow
    }
}
impl Eq for CompletionEvent {}
impl PartialOrd for CompletionEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CompletionEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // completion first (ties broken by flow id for determinism).
        // Projected instants are never NaN (rates are positive, finite).
        other
            .t_zero
            .partial_cmp(&self.t_zero)
            .expect("completion instants are not NaN")
            .then_with(|| other.flow.cmp(&self.flow))
    }
}

/// Materializes a flow's lazily-tracked remaining bytes at `now_s`.
///
/// Between rate changes a flow's remaining declines linearly, so one
/// multiply replaces the reference's per-event subtraction (the same series
/// summed in one step — the drift is pure floating-point association, far
/// inside the differential harness's 1e-9).
#[inline]
fn materialize(f: usize, now_s: f64, rate: f64, remaining: &mut [f64], touch_s: &mut [f64]) {
    let elapsed = now_s - touch_s[f];
    if elapsed > 0.0 && rate > 0.0 {
        remaining[f] = (remaining[f] - rate * elapsed).max(0.0);
    }
    touch_s[f] = now_s;
}

/// Releases a completed flow's contribution to the incrementally-maintained
/// link loads/counts (two-tier mode only — exact mode rebuilds them from the
/// solver's component feed instead). Marks the touched links so the next
/// sparse refresh re-scores their subscribers.
#[allow(clippy::too_many_arguments)]
fn release_completed(
    f: usize,
    route: &[u32],
    base_prev: &mut [f64],
    link_load: &mut [f64],
    link_flows: &mut [u32],
    touched_mask: &mut [bool],
    touched_links: &mut Vec<u32>,
) {
    for &l in route {
        let l = l as usize;
        link_load[l] -= base_prev[f];
        link_flows[l] -= 1;
        if !touched_mask[l] {
            touched_mask[l] = true;
            touched_links.push(l as u32);
        }
    }
    base_prev[f] = 0.0;
}

/// Closes a flow's current CNP score episode (two-tier mode only):
/// accumulates `cnp_rate(score) × Δt` at the model's mean jitter onto the
/// flow's sender port and restamps the episode start. Called whenever a
/// flow's score is about to change, when it completes, and once at drain
/// end — exact integration of the piecewise-constant score signal, without
/// the exact mode's per-event per-flow draws.
fn flush_cnp_episode(
    f: usize,
    now_s: f64,
    score: &[f64],
    src_port_of: &[Option<usize>],
    cnp_model: &CnpModel,
    cnp_last_s: &mut [f64],
    cnp_accum: &mut [f64],
) {
    if let Some(port) = src_port_of[f] {
        let dt = now_s - cnp_last_s[f];
        if dt > 0.0 {
            cnp_accum[port] += cnp_model.cnp_rate(score[f], 0.5) * dt;
        }
    }
    cnp_last_s[f] = now_s;
}

/// Static per-flow tables shared by both drain implementations.
struct Problem {
    /// Dense capacity table over links referenced by at least one flow.
    dense_capacity: Vec<f64>,
    /// Per-flow sorted, deduplicated dense link ids.
    dense_routes: Vec<Vec<u32>>,
    /// Per-flow sorted, deduplicated **original** link ids (byte accounting).
    orig_routes: Vec<Vec<u32>>,
    /// Sender port of each flow (first HostUp link on the route).
    src_port_of: Vec<Option<usize>>,
    /// Per-dense-link spine flag (leaf↔spine fabric links) — the tier the
    /// two-tier solve gates at ε.
    spine_mask: Vec<bool>,
}

impl Problem {
    fn build(topo: &Topology, specs: &[FlowSpec]) -> Self {
        let nl = topo.num_links();
        let mut dense_of = vec![u32::MAX; nl];
        let mut dense_capacity: Vec<f64> = Vec::new();
        let mut spine_mask: Vec<bool> = Vec::new();
        let mut dense_routes: Vec<Vec<u32>> = Vec::with_capacity(specs.len());
        let mut orig_routes: Vec<Vec<u32>> = Vec::with_capacity(specs.len());
        for s in specs {
            let mut orig: Vec<u32> = s.route.iter().map(|l| l.index() as u32).collect();
            orig.sort_unstable();
            orig.dedup();
            let mut dense: Vec<u32> = Vec::with_capacity(orig.len());
            for &l in &orig {
                if dense_of[l as usize] == u32::MAX {
                    dense_of[l as usize] = dense_capacity.len() as u32;
                    let link = topo.link(c4_topology::LinkId::from_index(l as usize));
                    dense_capacity.push(link.capacity().as_bytes_per_sec());
                    spine_mask.push(link.kind().is_fabric());
                }
                dense.push(dense_of[l as usize]);
            }
            dense.sort_unstable();
            dense_routes.push(dense);
            orig_routes.push(orig);
        }
        let src_port_of: Vec<Option<usize>> = specs
            .iter()
            .map(|s| {
                s.route.iter().find_map(|&l| match topo.link(l).kind() {
                    LinkKind::HostUp(p) => Some(p.index()),
                    _ => None,
                })
            })
            .collect();
        Problem {
            dense_capacity,
            dense_routes,
            orig_routes,
            src_port_of,
            spine_mask,
        }
    }
}

/// Drains `specs` over the topology's current link state.
///
/// Returns per-flow outcomes in spec order plus per-link byte counters and
/// CNP accounting. Deterministic for a given `rng` state, and equal (within
/// floating-point association) to [`drain_reference`] on the same inputs.
pub fn drain(
    topo: &Topology,
    specs: &[FlowSpec],
    cfg: &DrainConfig,
    rng: &mut DetRng,
) -> DrainReport {
    let nf = specs.len();
    let nl = topo.num_links();
    let p = Problem::build(topo, specs);
    let ndl = p.dense_capacity.len();

    let initial: Vec<f64> = specs.iter().map(|s| s.bytes.as_bytes() as f64).collect();
    let mut remaining = initial.clone();
    let mut finish: Vec<Option<SimTime>> = vec![None; nf];
    let mut min_rate = vec![f64::INFINITY; nf];
    let mut max_rate = vec![0.0_f64; nf];
    let mut cnp_accum = vec![0.0_f64; topo.ports().len()];
    let mut congested_flags = vec![false; nf];

    // Flows with zero bytes complete instantly. Their min_rate keeps the
    // same "no moving rate observed" sentinel as stalled flows, so both
    // report Bandwidth::ZERO through one path.
    for f in 0..nf {
        if remaining[f] <= 0.0 {
            finish[f] = Some(cfg.start);
        }
    }

    let noisy = cfg.rate_noise > 0.0 || cfg.cnp.is_some();
    let mut now = cfg.start;
    // Seconds since `cfg.start`, accumulated from the same raw `dt` chain
    // the byte accounting uses. (Deriving elapsed time from the quantized
    // `now` would lose up to half a nanosecond per event — enough to drift
    // completion times outside the differential tolerance.)
    let mut now_s = 0.0_f64;
    let mut active: Vec<usize> = (0..nf).filter(|&f| finish[f].is_none()).collect();

    // The persistent base (uncapped) allocation, perturbed only by flow
    // completions. DCQCN noise needs no second solver: a noise cap is only
    // ever applied to a congested flow — one crossing a saturated link it
    // shares with a competitor — and *every* flow crossing such a link is
    // congested, so the caps cover all of a saturated link's subscribers
    // and the freed capacity has no taker. The capped max-min allocation
    // is therefore exactly `min(base_rate, cap)` per flow: capped flows
    // pin to their caps, uncapped flows stay at their private bottlenecks.
    // The differential harness holds this identity against the reference's
    // full capped re-solve at 1e-9.
    let two_tier = matches!(cfg.solve_mode, SolveMode::TwoTier { .. });
    let mut base = MaxMinState::with_flows(&p.dense_capacity, &p.dense_routes, None)
        .with_parallel(cfg.parallel)
        .with_solve_mode(cfg.solve_mode);
    if two_tier {
        base.set_spine_links(&p.spine_mask);
    }
    for (f, fin) in finish.iter().enumerate() {
        if fin.is_some() {
            base.remove_flow(f);
        }
    }

    // Incrementally-maintained derived state. `rate` is each flow's actual
    // (possibly noise-capped) rate; `touch_s` is when its `remaining` was
    // last materialized; `stamp` versions its completion-heap entries.
    let mut rate = vec![0.0_f64; nf];
    let mut touch_s = vec![0.0_f64; nf];
    let mut score = vec![0.0_f64; nf];
    let mut stamp = vec![0u32; nf];
    let mut link_load = vec![0.0_f64; ndl];
    let mut link_flows = vec![0u32; ndl];
    // Active flows with score > 0, ascending — exactly the flows the noise
    // model re-draws each event, in the order the reference draws them.
    let mut congested: Vec<u32> = Vec::new();
    // Flows whose rate was set this event (they need exact per-event
    // remaining/dt bookkeeping; everything else rides the heap).
    let mut scan: Vec<usize> = Vec::new();
    let mut heap: BinaryHeap<CompletionEvent> = BinaryHeap::new();
    let cnp_model = cfg.cnp.unwrap_or_default();
    let mut events = 0u64;
    let mut batched_instants = 0u64;
    let mut batched_completions = 0u64;
    // Two-tier sparse bookkeeping: `base_prev` mirrors the base rate each
    // active flow last contributed to `link_load`, so a sparse refresh can
    // apply per-flow deltas instead of rebuilding loads; `touched_*` track
    // the links those deltas (and completion-time releases) moved, which
    // bounds the per-event score recompute to their subscribers.
    let mut base_prev = vec![0.0_f64; if two_tier { nf } else { 0 }];
    let mut touched_mask = vec![false; if two_tier { ndl } else { 0 }];
    let mut touched_links: Vec<u32> = Vec::new();
    let mut decongested: Vec<u32> = Vec::new();
    // Two-tier noise/CNP sparsification. The exact mode redraws every
    // congested flow's noise cap and draws a CNP jitter for every active
    // flow *per event* — reference semantics, but O(active) per event,
    // which dwarfs the sparse solver at 16k+. The ε mode instead redraws
    // caps only for flows whose base rate actually moved, with a full
    // congested redraw once per `epoch` of simulated time (so the cap
    // distribution still refreshes on the DCQCN cadence), and integrates
    // CNP per score *episode* at the model's mean jitter — exact for the
    // piecewise-constant scores the drain maintains.
    let epoch_s = cfg.epoch.as_secs_f64();
    let mut next_redraw_s = epoch_s;
    let episodic_cnp = two_tier && cfg.cnp.is_some();
    let mut cnp_last_s = vec![0.0_f64; if episodic_cnp { nf } else { 0 }];

    while !active.is_empty() {
        if let Some(deadline) = cfg.deadline {
            if now >= deadline {
                break;
            }
        }
        events += 1;

        // 1. Bring the base allocation up to date; only the components
        //    dirtied by completions re-solve.
        let scope = base.refresh();

        // 2. Refresh link loads/counts and congestion scores for exactly
        //    what the solver re-solved. Components partition the links, and
        //    component flow lists are ascending, so per-link accumulation
        //    order — and hence every bit of the sums — matches a
        //    from-scratch rebuild over all active flows.
        if scope != SolveScope::Unchanged {
            let rates = base.current_rates();
            let mut rebuild_congested = true;
            decongested.clear();
            match scope {
                SolveScope::Full => {
                    link_load.fill(0.0);
                    link_flows.fill(0);
                    for &f in &active {
                        for &l in &p.dense_routes[f] {
                            link_load[l as usize] += rates[f];
                            link_flows[l as usize] += 1;
                        }
                    }
                    if episodic_cnp {
                        // Scores are about to be rebuilt wholesale: close
                        // every open episode at its old score first.
                        for &f in &active {
                            flush_cnp_episode(
                                f,
                                now_s,
                                &score,
                                &p.src_port_of,
                                &cnp_model,
                                &mut cnp_last_s,
                                &mut cnp_accum,
                            );
                        }
                    }
                    for &f in &active {
                        score[f] = cnp_model.flow_score(
                            &p.dense_routes[f],
                            &link_load,
                            &p.dense_capacity,
                            &link_flows,
                        );
                    }
                    if two_tier {
                        // Loads were rebuilt wholesale — the delta mirror
                        // restarts from the fresh base rates.
                        for &l in &touched_links {
                            touched_mask[l as usize] = false;
                        }
                        touched_links.clear();
                        base_prev.fill(0.0);
                        for &f in &active {
                            base_prev[f] = rates[f];
                        }
                    }
                }
                SolveScope::Components => {
                    for &c in base.resolved_components() {
                        for &l in base.component_links(c) {
                            link_load[l as usize] = 0.0;
                            link_flows[l as usize] = 0;
                        }
                        for &f in base.component_flows(c) {
                            let f = f as usize;
                            if finish[f].is_none() {
                                for &l in &p.dense_routes[f] {
                                    link_load[l as usize] += rates[f];
                                    link_flows[l as usize] += 1;
                                }
                            }
                        }
                    }
                    for &c in base.resolved_components() {
                        for &f in base.component_flows(c) {
                            let f = f as usize;
                            if finish[f].is_none() {
                                score[f] = cnp_model.flow_score(
                                    &p.dense_routes[f],
                                    &link_load,
                                    &p.dense_capacity,
                                    &link_flows,
                                );
                            }
                        }
                    }
                }
                SolveScope::Sparse => {
                    // Two-tier sparse feed: only `changed_flows` moved.
                    // Apply their rate deltas to the link loads in place
                    // (completed flows already released theirs in step 6),
                    // then recompute scores for the alive subscribers of
                    // every touched link. The congested list is rebuilt
                    // only when a score actually flips.
                    for &f in base.changed_flows() {
                        let f = f as usize;
                        if finish[f].is_some() {
                            continue;
                        }
                        let delta = rates[f] - base_prev[f];
                        if delta != 0.0 {
                            for &l in &p.dense_routes[f] {
                                let l = l as usize;
                                link_load[l] += delta;
                                if !touched_mask[l] {
                                    touched_mask[l] = true;
                                    touched_links.push(l as u32);
                                }
                            }
                            base_prev[f] = rates[f];
                        }
                    }
                    let mut flipped = false;
                    for &l in &touched_links {
                        for &fid in base.two_tier_subscribers(l as usize) {
                            let f = fid as usize;
                            if finish[f].is_some() {
                                continue;
                            }
                            let s = cnp_model.flow_score(
                                &p.dense_routes[f],
                                &link_load,
                                &p.dense_capacity,
                                &link_flows,
                            );
                            if s != score[f] {
                                if s == 0.0 {
                                    // Leaving the congested set: the noise
                                    // pass stops re-capping it, so it must
                                    // re-adopt its base rate in step 3.
                                    decongested.push(f as u32);
                                }
                                if episodic_cnp {
                                    flush_cnp_episode(
                                        f,
                                        now_s,
                                        &score,
                                        &p.src_port_of,
                                        &cnp_model,
                                        &mut cnp_last_s,
                                        &mut cnp_accum,
                                    );
                                }
                                score[f] = s;
                                flipped = true;
                            }
                        }
                    }
                    for &l in &touched_links {
                        touched_mask[l as usize] = false;
                    }
                    touched_links.clear();
                    rebuild_congested = flipped;
                }
                SolveScope::Unchanged => unreachable!(),
            }
            if rebuild_congested {
                congested.clear();
                for &f in &active {
                    if score[f] > 0.0 {
                        congested_flags[f] = true;
                        congested.push(f as u32);
                    }
                }
            }
        }

        // 3. Rate updates. Noise first: every congested flow draws a fresh
        //    cap this event (ascending flow order — the sequence the
        //    reference consumes the RNG in). Congested flows re-enter
        //    `scan` every event, so they never need heap entries.
        scan.clear();
        let base_rates = base.current_rates();
        if cfg.rate_noise > 0.0 {
            let redraw = |f: usize,
                          rate: &mut [f64],
                          stamp: &mut [u32],
                          scan: &mut Vec<usize>,
                          remaining: &mut [f64],
                          touch_s: &mut [f64],
                          rng: &mut DetRng| {
                let b = base_rates[f];
                let cap = b * (1.0 - cfg.rate_noise * rng.uniform());
                let nr = if cap < b { cap } else { b };
                materialize(f, now_s, rate[f], remaining, touch_s);
                if nr.to_bits() != rate[f].to_bits() {
                    stamp[f] = stamp[f].wrapping_add(1);
                    rate[f] = nr;
                }
                scan.push(f);
            };
            if !two_tier {
                // Reference semantics: every congested flow redraws its cap
                // every event, in ascending flow order.
                for &f in &congested {
                    redraw(
                        f as usize,
                        &mut rate,
                        &mut stamp,
                        &mut scan,
                        &mut remaining,
                        &mut touch_s,
                        rng,
                    );
                }
            } else if now_s >= next_redraw_s || scope == SolveScope::Full {
                // ε mode: the full congested redraw runs on the epoch
                // cadence (and after a wholesale rebuild, whose fresh base
                // rates may undercut standing caps), not per event.
                next_redraw_s = now_s + epoch_s;
                for &f in &congested {
                    redraw(
                        f as usize,
                        &mut rate,
                        &mut stamp,
                        &mut scan,
                        &mut remaining,
                        &mut touch_s,
                        rng,
                    );
                }
            } else if scope == SolveScope::Sparse {
                // Between epochs only the solver-reported movers recap:
                // an unmoved base keeps its cap ≤ base valid, and the flow
                // keeps riding its completion-heap entry.
                for &f in base.changed_flows() {
                    let f = f as usize;
                    if finish[f].is_none() && score[f] > 0.0 {
                        redraw(
                            f,
                            &mut rate,
                            &mut stamp,
                            &mut scan,
                            &mut remaining,
                            &mut touch_s,
                            rng,
                        );
                    }
                }
            }
        }
        // Uncongested flows of re-solved components adopt their fresh base
        // rate; a flow whose recomputed rate is bit-identical keeps its
        // completion-heap entry untouched.
        if scope != SolveScope::Unchanged {
            let adopt = |f: usize,
                         rate: &mut [f64],
                         stamp: &mut [u32],
                         scan: &mut Vec<usize>,
                         remaining: &mut [f64],
                         touch_s: &mut [f64]| {
                if cfg.rate_noise > 0.0 && score[f] > 0.0 {
                    return; // handled by the noise pass
                }
                let nr = base_rates[f];
                if nr.to_bits() != rate[f].to_bits() {
                    materialize(f, now_s, rate[f], remaining, touch_s);
                    stamp[f] = stamp[f].wrapping_add(1);
                    rate[f] = nr;
                    scan.push(f);
                }
            };
            match scope {
                SolveScope::Full => {
                    for &f in &active {
                        adopt(
                            f,
                            &mut rate,
                            &mut stamp,
                            &mut scan,
                            &mut remaining,
                            &mut touch_s,
                        );
                    }
                }
                SolveScope::Components => {
                    for &c in base.resolved_components() {
                        for &f in base.component_flows(c) {
                            let f = f as usize;
                            if finish[f].is_none() {
                                adopt(
                                    f,
                                    &mut rate,
                                    &mut stamp,
                                    &mut scan,
                                    &mut remaining,
                                    &mut touch_s,
                                );
                            }
                        }
                    }
                }
                SolveScope::Sparse => {
                    // Only the solver-reported movers — plus flows that
                    // just left the congested set (their last rate was a
                    // noise cap the noise pass will no longer refresh).
                    for &f in base.changed_flows() {
                        let f = f as usize;
                        if finish[f].is_none() {
                            adopt(
                                f,
                                &mut rate,
                                &mut stamp,
                                &mut scan,
                                &mut remaining,
                                &mut touch_s,
                            );
                        }
                    }
                    for &f in &decongested {
                        adopt(
                            f as usize,
                            &mut rate,
                            &mut stamp,
                            &mut scan,
                            &mut remaining,
                            &mut touch_s,
                        );
                    }
                }
                SolveScope::Unchanged => unreachable!(),
            }
        }

        // 4. Time to next event: earliest completion (re-rated flows by
        //    direct scan, stable flows from the heap), epoch boundary,
        //    deadline.
        let mut dt = f64::INFINITY;
        for &f in &scan {
            if rate[f] > STALL_RATE {
                dt = dt.min(remaining[f] / rate[f]);
            }
        }
        while let Some(&top) = heap.peek() {
            let f = top.flow as usize;
            if top.stamp != stamp[f] || finish[f].is_some() {
                heap.pop();
                continue;
            }
            let heap_dt = top.t_zero - now_s;
            if heap_dt > 0.0 {
                dt = dt.min(heap_dt);
                break;
            }
            // Degenerate rounding: in a very long drain the absolute
            // instants can sit within one ulp of `now_s`, collapsing the
            // difference to ≤ 0 while bytes remain (which would end the
            // drain early through the `dt <= 0` guard below). Fall back to
            // the always-positive relative form, exactly as the reference
            // computes it, and track the flow by direct scan this event.
            heap.pop();
            materialize(f, now_s, rate[f], &mut remaining, &mut touch_s);
            if rate[f] > STALL_RATE {
                dt = dt.min(remaining[f] / rate[f]);
            }
            stamp[f] = stamp[f].wrapping_add(1);
            scan.push(f);
        }
        let any_moving = dt.is_finite();
        if noisy {
            dt = dt.min(cfg.epoch.as_secs_f64());
        }
        if let Some(deadline) = cfg.deadline {
            dt = dt.min((deadline - now).as_secs_f64());
        }
        if !any_moving {
            // Every remaining flow is at (effectively) zero rate. Whether
            // that is permanent is decided by the *unperturbed* base
            // allocation: noise only multiplies it by a factor ≤ 1, so a
            // base rate at or below the stall floor can never be revived by
            // a re-draw — but a base rate just above the floor can be
            // noise-scaled under it for one epoch and resume at the next
            // draw. Only when no base rate clears the floor do we end the
            // drain with a stalled report (waiting out a deadline
            // epoch-by-epoch would spin through millions of no-op events);
            // otherwise step to the epoch boundary and re-draw.
            let revivable = noisy && active.iter().any(|&f| base_rates[f] > STALL_RATE);
            if !revivable {
                break;
            }
        }
        if !dt.is_finite() || dt <= 0.0 {
            break;
        }

        // 5. Advance.
        let step = SimDuration::from_secs_f64(dt);
        if let Some(cnp) = cfg.cnp {
            if !two_tier {
                for &f in &active {
                    if let Some(port) = p.src_port_of[f] {
                        cnp_accum[port] += cnp.cnp_rate(score[f], rng.uniform()) * dt;
                    }
                }
            }
            // Two-tier: CNP integrates per score episode instead — see
            // `flush_cnp_episode` (score flips, completions, drain end).
        }
        let next_s = now_s + dt;
        for &f in &scan {
            remaining[f] = (remaining[f] - rate[f] * dt).max(0.0);
            touch_s[f] = next_s;
            if rate[f] > STALL_RATE {
                min_rate[f] = min_rate[f].min(rate[f]);
                max_rate[f] = max_rate[f].max(rate[f]);
            }
        }
        now_s = next_s;
        now += step;

        // 6. Completions (one-byte tolerance): re-rated flows by direct
        //    check, stable flows by popping every heap entry now due. A
        //    batch completing at one instant issues its removals together,
        //    so the dirtied components re-solve once next event.
        let mut completions_now = 0u64;
        for &f in &scan {
            if remaining[f] <= 1.0 && finish[f].is_none() {
                finish[f] = Some(now);
                base.remove_flow(f);
                completions_now += 1;
                if episodic_cnp {
                    flush_cnp_episode(
                        f,
                        now_s,
                        &score,
                        &p.src_port_of,
                        &cnp_model,
                        &mut cnp_last_s,
                        &mut cnp_accum,
                    );
                }
                if two_tier {
                    release_completed(
                        f,
                        &p.dense_routes[f],
                        &mut base_prev,
                        &mut link_load,
                        &mut link_flows,
                        &mut touched_mask,
                        &mut touched_links,
                    );
                }
            }
        }
        while let Some(&top) = heap.peek() {
            let f = top.flow as usize;
            if top.stamp != stamp[f] || finish[f].is_some() {
                heap.pop();
                continue;
            }
            // An entry is due once the flow is inside the one-byte
            // tolerance, which precedes its zero instant by 1/rate.
            if top.t_zero - 1.0 / rate[f] <= now_s {
                heap.pop();
                materialize(f, now_s, rate[f], &mut remaining, &mut touch_s);
                if remaining[f] <= 1.0 {
                    // min/max folds happened when this rate episode began.
                    finish[f] = Some(now);
                    base.remove_flow(f);
                    completions_now += 1;
                    if episodic_cnp {
                        flush_cnp_episode(
                            f,
                            now_s,
                            &score,
                            &p.src_port_of,
                            &cnp_model,
                            &mut cnp_last_s,
                            &mut cnp_accum,
                        );
                    }
                    if two_tier {
                        release_completed(
                            f,
                            &p.dense_routes[f],
                            &mut base_prev,
                            &mut link_load,
                            &mut link_flows,
                            &mut touched_mask,
                            &mut touched_links,
                        );
                    }
                } else {
                    // Floating-point shy of the tolerance: re-arm.
                    stamp[f] = stamp[f].wrapping_add(1);
                    heap.push(CompletionEvent {
                        t_zero: now_s + remaining[f] / rate[f],
                        flow: f as u32,
                        stamp: stamp[f],
                    });
                }
            } else {
                break;
            }
        }

        // 7. Re-arm completion events for this event's re-rated movers.
        //    In exact mode congested flows under noise skip the heap —
        //    they are re-scanned every event until a refresh clears their
        //    score. In two-tier mode caps persist between redraws, so
        //    capped flows ride the heap like everyone else.
        for &f in &scan {
            if finish[f].is_none()
                && rate[f] > STALL_RATE
                && (two_tier || !(cfg.rate_noise > 0.0 && score[f] > 0.0))
            {
                heap.push(CompletionEvent {
                    t_zero: now_s + remaining[f] / rate[f],
                    flow: f as u32,
                    stamp: stamp[f],
                });
            }
        }
        if completions_now > 0 {
            active.retain(|&f| finish[f].is_none());
            if completions_now >= 2 {
                batched_instants += 1;
                batched_completions += completions_now - 1;
            }
        }
    }

    // Materialize the lazily-tracked remaining bytes of survivors so the
    // byte accounting below sees the full elapsed drain.
    for &f in &active {
        materialize(f, now_s, rate[f], &mut remaining, &mut touch_s);
    }
    if episodic_cnp {
        // Close the surviving flows' open score episodes at the drain end.
        for &f in &active {
            flush_cnp_episode(
                f,
                now_s,
                &score,
                &p.src_port_of,
                &cnp_model,
                &mut cnp_last_s,
                &mut cnp_accum,
            );
        }
    }

    // Per-link byte accounting: every link on a flow's route carried
    // exactly the bytes the flow moved, so one pass at the end replaces the
    // reference's per-event accumulation (summing the same series).
    let mut link_bytes = vec![0.0_f64; nl];
    for f in 0..nf {
        let moved = initial[f] - remaining[f];
        if moved > 0.0 {
            for &l in &p.orig_routes[f] {
                link_bytes[l as usize] += moved;
            }
        }
    }

    let solver = DrainSolverStats {
        events,
        flows: nf as u64,
        dense_links: ndl as u64,
        full_solves: base.full_solves(),
        component_solves: base.component_solves(),
        sparse_solves: base.sparse_solves(),
        spine_rounds: base.spine_rounds(),
        spine_link_updates: base.spine_link_updates(),
        fallback_solves: base.fallback_solves(),
        batched_instants,
        batched_completions,
        components: base.component_count() as u64,
        arena_hwm_bytes: base.arena_hwm_bytes() as u64,
    };

    finalize_report(
        specs,
        cfg,
        now,
        finish,
        min_rate,
        max_rate,
        link_bytes,
        cnp_accum,
        congested_flags,
        solver,
    )
}

/// Drains `specs` with the retained from-scratch solver (the differential
/// reference): the full max-min allocation is recomputed at every event.
///
/// Semantics and RNG consumption match [`drain`]; only the solver strategy
/// differs. Kept for the differential harness and solver benchmarks — new
/// callers should use [`drain`].
pub fn drain_reference(
    topo: &Topology,
    specs: &[FlowSpec],
    cfg: &DrainConfig,
    rng: &mut DetRng,
) -> DrainReport {
    let nf = specs.len();
    let nl = topo.num_links();
    let capacity: Vec<f64> = (0..nl)
        .map(|l| {
            topo.link(c4_topology::LinkId::from_index(l))
                .capacity()
                .as_bytes_per_sec()
        })
        .collect();
    let routes: Vec<Vec<u32>> = specs
        .iter()
        .map(|s| s.route.iter().map(|l| l.index() as u32).collect())
        .collect();

    let src_port_of: Vec<Option<usize>> = specs
        .iter()
        .map(|s| {
            s.route.iter().find_map(|&l| match topo.link(l).kind() {
                LinkKind::HostUp(p) => Some(p.index()),
                _ => None,
            })
        })
        .collect();

    let mut remaining: Vec<f64> = specs.iter().map(|s| s.bytes.as_bytes() as f64).collect();
    let mut finish: Vec<Option<SimTime>> = vec![None; nf];
    let mut min_rate = vec![f64::INFINITY; nf];
    let mut max_rate = vec![0.0_f64; nf];
    let mut link_bytes = vec![0.0_f64; nl];
    let mut cnp_accum = vec![0.0_f64; topo.ports().len()];
    let mut congested_flags = vec![false; nf];

    // Instantly-completed zero-byte flows keep the same "no moving rate
    // observed" min_rate sentinel as stalled flows (both report ZERO).
    for f in 0..nf {
        if remaining[f] <= 0.0 {
            finish[f] = Some(cfg.start);
        }
    }

    let noisy = cfg.rate_noise > 0.0 || cfg.cnp.is_some();
    let mut now = cfg.start;
    let mut active: Vec<usize> = (0..nf).filter(|&f| finish[f].is_none()).collect();
    let mut events = 0u64;
    let mut full_solves = 0u64;

    while !active.is_empty() {
        if let Some(deadline) = cfg.deadline {
            if now >= deadline {
                break;
            }
        }
        events += 1;

        // Base max-min allocation over the active flows.
        let act_routes: Vec<Vec<u32>> = active.iter().map(|&f| routes[f].clone()).collect();
        let mut rates = maxmin::solve(&capacity, &act_routes, None);
        full_solves += 1;

        // Identify sharing pressure for noise/CNP.
        let mut link_load = vec![0.0_f64; nl];
        let mut link_flows = vec![0u32; nl];
        for (i, r) in act_routes.iter().enumerate() {
            let mut ls = r.clone();
            ls.sort_unstable();
            ls.dedup();
            for &l in &ls {
                link_load[l as usize] += rates[i];
                link_flows[l as usize] += 1;
            }
        }
        let cnp_model = cfg.cnp.unwrap_or_default();
        let scores: Vec<f64> = act_routes
            .iter()
            .map(|r| cnp_model.flow_score(r, &link_load, &capacity, &link_flows))
            .collect();

        // Whether any *base* allocation clears the stall floor — recorded
        // before the noise re-solve overwrites `rates`, because the stall
        // decision below must look through the per-epoch noise draw.
        let base_moving = rates.iter().any(|&r| r > STALL_RATE);
        if cfg.rate_noise > 0.0 {
            let caps: Vec<f64> = rates
                .iter()
                .zip(&scores)
                .map(|(&r, &s)| {
                    if s > 0.0 {
                        r * (1.0 - cfg.rate_noise * rng.uniform())
                    } else {
                        f64::INFINITY
                    }
                })
                .collect();
            rates = maxmin::solve(&capacity, &act_routes, Some(&caps));
            full_solves += 1;
        }

        for (i, &f) in active.iter().enumerate() {
            if scores[i] > 0.0 {
                congested_flags[f] = true;
            }
        }

        // Time to next event: earliest completion, epoch boundary, deadline.
        let mut dt = f64::INFINITY;
        for (i, &f) in active.iter().enumerate() {
            if rates[i] > STALL_RATE {
                dt = dt.min(remaining[f] / rates[i]);
            }
        }
        let any_moving = dt.is_finite();
        if noisy {
            dt = dt.min(cfg.epoch.as_secs_f64());
        }
        if let Some(deadline) = cfg.deadline {
            dt = dt.min((deadline - now).as_secs_f64());
        }
        if !any_moving {
            // All-stalled: permanent only if no *base* rate clears the stall
            // floor — noise multiplies the allocation by a factor ≤ 1, so a
            // zero base rate stays zero, but a base rate just above the
            // floor can dip under it for one epoch and resume at the next
            // draw. Mirrors the event-driven loop's termination exactly.
            let revivable = noisy && base_moving;
            if !revivable {
                break;
            }
        }
        if !dt.is_finite() || dt <= 0.0 {
            break;
        }

        // Advance.
        let step = SimDuration::from_secs_f64(dt);
        if let Some(cnp) = cfg.cnp {
            for (i, &f) in active.iter().enumerate() {
                if let Some(port) = src_port_of[f] {
                    cnp_accum[port] += cnp.cnp_rate(scores[i], rng.uniform()) * dt;
                }
            }
        }
        for (i, &f) in active.iter().enumerate() {
            let moved = rates[i] * dt;
            remaining[f] = (remaining[f] - moved).max(0.0);
            if rates[i] > STALL_RATE {
                min_rate[f] = min_rate[f].min(rates[i]);
                max_rate[f] = max_rate[f].max(rates[i]);
            }
            let mut ls = routes[f].clone();
            ls.sort_unstable();
            ls.dedup();
            for l in ls {
                link_bytes[l as usize] += moved;
            }
        }
        now += step;
        for &f in &active {
            if remaining[f] <= 1.0 && finish[f].is_none() {
                finish[f] = Some(now);
            }
        }
        active.retain(|&f| finish[f].is_none());
    }

    finalize_report(
        specs,
        cfg,
        now,
        finish,
        min_rate,
        max_rate,
        link_bytes,
        cnp_accum,
        congested_flags,
        DrainSolverStats {
            events,
            flows: nf as u64,
            full_solves,
            ..DrainSolverStats::default()
        },
    )
}

/// Assembles the [`DrainReport`] from the loop's accumulators (shared by
/// both implementations).
#[allow(clippy::too_many_arguments)]
fn finalize_report(
    specs: &[FlowSpec],
    cfg: &DrainConfig,
    now: SimTime,
    finish: Vec<Option<SimTime>>,
    min_rate: Vec<f64>,
    max_rate: Vec<f64>,
    link_bytes: Vec<f64>,
    cnp_accum: Vec<f64>,
    congested_flags: Vec<bool>,
    solver: DrainSolverStats,
) -> DrainReport {
    let end = finish
        .iter()
        .flatten()
        .copied()
        .max()
        .unwrap_or(now)
        .max(now.min(cfg.deadline.unwrap_or(now)));

    let span = (end - cfg.start).as_secs_f64().max(1e-12);
    let cnp_per_port: Vec<f64> = cnp_accum.iter().map(|c| c / span).collect();

    let outcomes = specs
        .iter()
        .enumerate()
        .map(|(f, s)| {
            let mean = match finish[f] {
                Some(t) => {
                    let secs = (t - cfg.start).as_secs_f64();
                    if secs > 0.0 {
                        Bandwidth::from_bps(s.bytes.as_bytes() as f64 * 8.0 / secs)
                    } else {
                        Bandwidth::ZERO
                    }
                }
                None => Bandwidth::ZERO,
            };
            FlowOutcome {
                key: s.key,
                bytes: s.bytes,
                start: cfg.start,
                finish: finish[f],
                mean_rate: mean,
                min_rate: if min_rate[f].is_finite() {
                    Bandwidth::from_bps(min_rate[f] * 8.0)
                } else {
                    Bandwidth::ZERO
                },
                max_rate: Bandwidth::from_bps(max_rate[f] * 8.0),
            }
        })
        .collect();

    DrainReport {
        outcomes,
        end,
        link_bytes,
        cnp_per_port,
        congested_flows: congested_flags.iter().filter(|c| **c).count(),
        solver,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use c4_simcore::ByteSize;
    use c4_topology::{ClosConfig, NodeId, PortSide};

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    fn key(src: usize, dst: usize, qp: u16) -> FlowKey {
        FlowKey {
            src_gpu: c4_topology::GpuId::from_index(src),
            dst_gpu: c4_topology::GpuId::from_index(dst),
            comm: 1,
            channel: 0,
            qp,
            incarnation: 0,
        }
    }

    /// Route gpu0@node0 → gpu0@node1, both left ports (same leaf).
    fn simple_route(t: &Topology) -> Vec<c4_topology::LinkId> {
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(1), 0);
        let pa = t.port_of_gpu(a, PortSide::Left);
        let pb = t.port_of_gpu(b, PortSide::Left);
        t.inter_node_route(a, pa, None, pb, b)
    }

    #[test]
    fn single_flow_gets_port_bandwidth() {
        let t = topo();
        let spec = FlowSpec::new(key(0, 8, 0), ByteSize::from_gib(1), simple_route(&t));
        let mut rng = DetRng::seed_from(1);
        let report = drain(&t, &[spec], &DrainConfig::default(), &mut rng);
        assert!(report.all_completed());
        let o = &report.outcomes[0];
        // Bottleneck is the 200 Gbps port.
        assert!(
            (o.mean_rate.as_gbps() - 200.0).abs() < 1.0,
            "{}",
            o.mean_rate
        );
    }

    #[test]
    fn two_flows_share_receive_port() {
        let t = topo();
        // Two flows into the same destination port → 100 Gbps each.
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(2), 0);
        let dst = t.gpu_at(NodeId::from_index(1), 0);
        let pd = t.port_of_gpu(dst, PortSide::Left);
        let ra = t.inter_node_route(a, t.port_of_gpu(a, PortSide::Left), None, pd, dst);
        let rb = t.inter_node_route(b, t.port_of_gpu(b, PortSide::Left), None, pd, dst);
        let specs = vec![
            FlowSpec::new(key(0, 8, 0), ByteSize::from_gib(1), ra),
            FlowSpec::new(key(16, 8, 1), ByteSize::from_gib(1), rb),
        ];
        let mut rng = DetRng::seed_from(2);
        let report = drain(&t, &specs, &DrainConfig::default(), &mut rng);
        assert!(report.all_completed());
        for o in &report.outcomes {
            assert!(
                (o.mean_rate.as_gbps() - 100.0).abs() < 1.0,
                "{}",
                o.mean_rate
            );
        }
    }

    #[test]
    fn down_link_stalls_flow() {
        let mut t = topo();
        let route = simple_route(&t);
        // Kill the host uplink on the route.
        let up = route[1];
        t.link_mut(up).set_up(false);
        let spec = FlowSpec::new(key(0, 8, 0), ByteSize::from_mib(64), route);
        let mut rng = DetRng::seed_from(3);
        let cfg = DrainConfig {
            deadline: Some(SimTime::from_secs(5)),
            ..DrainConfig::default()
        };
        let report = drain(&t, &[spec], &cfg, &mut rng);
        assert!(!report.all_completed());
        assert_eq!(report.stalled(), vec![0]);
        assert_eq!(report.outcomes[0].mean_rate, Bandwidth::ZERO);
    }

    #[test]
    fn stalled_without_deadline_returns_immediately() {
        let mut t = topo();
        let route = simple_route(&t);
        t.link_mut(route[1]).set_up(false);
        let spec = FlowSpec::new(key(0, 8, 0), ByteSize::from_mib(64), route);
        let mut rng = DetRng::seed_from(4);
        let report = drain(&t, &[spec], &DrainConfig::default(), &mut rng);
        assert!(!report.all_completed());
    }

    /// Regression (PR 1 open item): a fully dead port used to hang a *noisy*
    /// drain. With `rate_noise`/CNP enabled the loop clamped `dt` to the
    /// epoch and kept spinning even though every remaining flow sat at zero
    /// rate — noise multiplies the allocation by a factor ≤ 1, so a stalled
    /// flow can never revive. Without a deadline that spun forever; with a
    /// far deadline it stepped hundreds of millions of no-op epochs. Both
    /// must now end at the stall instant with a stalled report.
    #[test]
    fn noisy_stalled_drain_ends_without_deadline() {
        let mut t = topo();
        let route = simple_route(&t);
        t.link_mut(route[1]).set_up(false);
        let spec = FlowSpec::new(key(0, 8, 0), ByteSize::from_mib(64), route);
        let cfg = DrainConfig {
            rate_noise: 0.10,
            cnp: Some(CnpModel::default()),
            ..DrainConfig::default() // NO deadline
        };
        let mut rng = DetRng::seed_from(4);
        let report = drain(&t, std::slice::from_ref(&spec), &cfg, &mut rng);
        assert!(!report.all_completed());
        assert_eq!(report.stalled(), vec![0]);
        assert_eq!(report.end, SimTime::ZERO);

        // The reference implementation terminates identically.
        let mut rng = DetRng::seed_from(4);
        let reference = drain_reference(&t, &[spec], &cfg, &mut rng);
        assert!(!reference.all_completed());
        assert_eq!(reference.end, SimTime::ZERO);
    }

    #[test]
    fn noisy_stalled_drain_ends_at_stall_instant_not_deadline() {
        // A month-scale deadline at a 10 ms epoch is ~2.6e8 events — the
        // pre-fix loop would walk every one of them. The drain must instead
        // report the stall the moment no flow can move.
        let mut t = topo();
        let route = simple_route(&t);
        t.link_mut(route[1]).set_up(false);
        let spec = FlowSpec::new(key(0, 8, 0), ByteSize::from_mib(64), route);
        let cfg = DrainConfig {
            rate_noise: 0.10,
            cnp: Some(CnpModel::default()),
            deadline: Some(SimTime::from_secs(30 * 24 * 3600)),
            ..DrainConfig::default()
        };
        let mut rng = DetRng::seed_from(4);
        let report = drain(&t, &[spec], &cfg, &mut rng);
        assert!(!report.all_completed());
        assert_eq!(report.stalled(), vec![0]);
        assert_eq!(report.end, SimTime::ZERO);
        assert_eq!(report.outcomes[0].mean_rate, Bandwidth::ZERO);
    }

    #[test]
    fn zero_byte_flow_completes_instantly() {
        let t = topo();
        let spec = FlowSpec::new(key(0, 8, 0), ByteSize::ZERO, simple_route(&t));
        let mut rng = DetRng::seed_from(5);
        let report = drain(&t, &[spec], &DrainConfig::default(), &mut rng);
        assert!(report.all_completed());
        assert_eq!(report.outcomes[0].finish, Some(SimTime::ZERO));
    }

    #[test]
    fn zero_byte_and_stalled_flows_share_the_no_rate_sentinel() {
        // Regression: instantly-completed zero-byte flows used to write an
        // explicit `min_rate = 0.0` while never-started stalled flows kept
        // the INFINITY "nothing observed" sentinel — two representations
        // for the same fact. Both paths are unified: any flow that never
        // moved reports ZERO min/max/mean rate, in both implementations.
        let mut t = topo();
        let live_route = simple_route(&t);
        let mut dead_route = live_route.clone();
        dead_route[1] = {
            // A second rail's uplink, killed below.
            let g = t.gpu_at(NodeId::from_index(0), 1);
            let port = t.port_of_gpu(g, PortSide::Left);
            t.port(port).host_up
        };
        t.link_mut(dead_route[1]).set_up(false);
        let specs = vec![
            FlowSpec::new(key(0, 8, 0), ByteSize::ZERO, live_route.clone()),
            FlowSpec::new(key(1, 9, 0), ByteSize::from_mib(64), dead_route),
            FlowSpec::new(key(0, 8, 1), ByteSize::from_mib(64), live_route),
        ];
        let cfg = DrainConfig {
            deadline: Some(SimTime::from_secs(1)),
            ..DrainConfig::default()
        };
        for (name, report) in [
            ("drain", drain(&t, &specs, &cfg, &mut DetRng::seed_from(6))),
            (
                "reference",
                drain_reference(&t, &specs, &cfg, &mut DetRng::seed_from(6)),
            ),
        ] {
            let zero_byte = &report.outcomes[0];
            let stalled = &report.outcomes[1];
            let moving = &report.outcomes[2];
            assert!(zero_byte.completed() && !stalled.completed(), "{name}");
            assert_eq!(zero_byte.min_rate, Bandwidth::ZERO, "{name}: zero-byte");
            assert_eq!(zero_byte.max_rate, Bandwidth::ZERO, "{name}: zero-byte");
            assert_eq!(stalled.min_rate, Bandwidth::ZERO, "{name}: stalled");
            assert_eq!(stalled.max_rate, Bandwidth::ZERO, "{name}: stalled");
            assert_eq!(
                zero_byte.min_rate, stalled.min_rate,
                "{name}: one sentinel for 'never moved'"
            );
            assert!(moving.min_rate > Bandwidth::ZERO, "{name}: mover");
        }
    }

    #[test]
    fn link_bytes_account_for_traffic() {
        let t = topo();
        let route = simple_route(&t);
        let bytes = ByteSize::from_mib(256);
        let spec = FlowSpec::new(key(0, 8, 0), bytes, route.clone());
        let mut rng = DetRng::seed_from(6);
        let report = drain(&t, &[spec], &DrainConfig::default(), &mut rng);
        for l in route {
            let carried = report.link_bytes[l.index()];
            assert!(
                (carried - bytes.as_bytes() as f64).abs() < 2.0,
                "link {l} carried {carried}"
            );
        }
    }

    #[test]
    fn cnp_emitted_only_under_shared_saturation() {
        let t = topo();
        // Single flow: saturated but unshared → no CNPs.
        let spec = FlowSpec::new(key(0, 8, 0), ByteSize::from_gib(1), simple_route(&t));
        let mut rng = DetRng::seed_from(7);
        let cfg = DrainConfig {
            cnp: Some(CnpModel::paper_default()),
            rate_noise: 0.1,
            ..DrainConfig::default()
        };
        let report = drain(&t, &[spec], &cfg, &mut rng);
        assert!(report.cnp_per_port.iter().all(|&c| c == 0.0));
        assert_eq!(report.congested_flows, 0);

        // Two flows sharing an rx port → CNPs on both sender ports.
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(2), 0);
        let dst = t.gpu_at(NodeId::from_index(1), 0);
        let pd = t.port_of_gpu(dst, PortSide::Left);
        let ra = t.inter_node_route(a, t.port_of_gpu(a, PortSide::Left), None, pd, dst);
        let rb = t.inter_node_route(b, t.port_of_gpu(b, PortSide::Left), None, pd, dst);
        let specs = vec![
            FlowSpec::new(key(0, 8, 0), ByteSize::from_gib(1), ra),
            FlowSpec::new(key(16, 8, 1), ByteSize::from_gib(1), rb),
        ];
        let mut rng = DetRng::seed_from(8);
        let report = drain(&t, &specs, &cfg, &mut rng);
        assert_eq!(report.congested_flows, 2);
        let nonzero: Vec<f64> = report
            .cnp_per_port
            .iter()
            .copied()
            .filter(|&c| c > 0.0)
            .collect();
        assert_eq!(nonzero.len(), 2);
        for c in nonzero {
            assert!((10_000.0..=20_000.0).contains(&c), "cnp rate {c}");
        }
    }

    #[test]
    fn noise_reduces_rates_slightly() {
        let t = topo();
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(2), 0);
        let dst = t.gpu_at(NodeId::from_index(1), 0);
        let pd = t.port_of_gpu(dst, PortSide::Left);
        let ra = t.inter_node_route(a, t.port_of_gpu(a, PortSide::Left), None, pd, dst);
        let rb = t.inter_node_route(b, t.port_of_gpu(b, PortSide::Left), None, pd, dst);
        let specs = vec![
            FlowSpec::new(key(0, 8, 0), ByteSize::from_gib(1), ra),
            FlowSpec::new(key(16, 8, 1), ByteSize::from_gib(1), rb),
        ];
        let mut rng = DetRng::seed_from(9);
        let cfg = DrainConfig {
            rate_noise: 0.2,
            ..DrainConfig::default()
        };
        let report = drain(&t, &specs, &cfg, &mut rng);
        assert!(report.all_completed());
        for o in &report.outcomes {
            let g = o.mean_rate.as_gbps();
            assert!((80.0..100.0).contains(&g), "noisy rate {g}");
        }
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let t = topo();
        let specs = vec![FlowSpec::new(
            key(0, 8, 0),
            ByteSize::from_gib(1),
            simple_route(&t),
        )];
        let cfg = DrainConfig {
            rate_noise: 0.15,
            cnp: Some(CnpModel::paper_default()),
            ..DrainConfig::default()
        };
        let mut r1 = DetRng::seed_from(77);
        let mut r2 = DetRng::seed_from(77);
        let a = drain(&t, &specs, &cfg, &mut r1);
        let b = drain(&t, &specs, &cfg, &mut r2);
        assert_eq!(a.outcomes[0].finish, b.outcomes[0].finish);
        assert_eq!(a.cnp_per_port, b.cnp_per_port);
    }

    #[test]
    fn incremental_matches_reference_on_a_noisy_shared_drain() {
        let t = topo();
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(2), 0);
        let dst = t.gpu_at(NodeId::from_index(1), 0);
        let pd = t.port_of_gpu(dst, PortSide::Left);
        let ra = t.inter_node_route(a, t.port_of_gpu(a, PortSide::Left), None, pd, dst);
        let rb = t.inter_node_route(b, t.port_of_gpu(b, PortSide::Left), None, pd, dst);
        let specs = vec![
            FlowSpec::new(key(0, 8, 0), ByteSize::from_gib(1), ra),
            FlowSpec::new(key(16, 8, 1), ByteSize::from_mib(700), rb),
        ];
        let cfg = DrainConfig {
            rate_noise: 0.15,
            cnp: Some(CnpModel::paper_default()),
            ..DrainConfig::default()
        };
        let mut r1 = DetRng::seed_from(99);
        let mut r2 = DetRng::seed_from(99);
        let inc = drain(&t, &specs, &cfg, &mut r1);
        let reference = drain_reference(&t, &specs, &cfg, &mut r2);
        for (x, y) in inc.outcomes.iter().zip(&reference.outcomes) {
            let (fx, fy) = (x.finish.unwrap(), y.finish.unwrap());
            let d = (fx - fy.min(fx)).as_secs_f64() + (fy - fx.min(fy)).as_secs_f64();
            assert!(d < 1e-9, "finish {fx} vs {fy}");
        }
        assert_eq!(inc.congested_flows, reference.congested_flows);
    }

    #[test]
    fn stalled_report_edge_cases() {
        // Zero flows: vacuously complete, no stalls, end == start.
        let t = topo();
        let mut rng = DetRng::seed_from(10);
        let cfg = DrainConfig {
            start: SimTime::from_secs(3),
            ..DrainConfig::default()
        };
        let report = drain(&t, &[], &cfg, &mut rng);
        assert!(report.all_completed());
        assert!(report.stalled().is_empty());
        assert_eq!(report.end, SimTime::from_secs(3));

        // All flows stalled: every index reported, none completed. Without
        // noise nothing can unstick them, so the drain gives up immediately
        // (end == start) rather than waiting out the deadline.
        let mut t2 = topo();
        let route = simple_route(&t2);
        t2.link_mut(route[1]).set_up(false);
        let specs = vec![
            FlowSpec::new(key(0, 8, 0), ByteSize::from_mib(1), route.clone()),
            FlowSpec::new(key(0, 8, 1), ByteSize::from_mib(2), route),
        ];
        let cfg = DrainConfig {
            deadline: Some(SimTime::from_secs(2)),
            ..DrainConfig::default()
        };
        let report = drain(&t2, &specs, &cfg, &mut rng);
        assert!(!report.all_completed());
        assert_eq!(report.stalled(), vec![0, 1]);
        assert_eq!(report.end, SimTime::ZERO);
    }

    #[test]
    fn deadline_exactly_at_completion_counts_as_completed() {
        // A 200 Gbps port moves 25 GB/s; 50 GB takes exactly 2 s. A deadline
        // at exactly t=2 s must not turn the completion into a stall.
        let t = topo();
        let route = simple_route(&t);
        let bytes = ByteSize::from_bytes(50_000_000_000);
        let spec = FlowSpec::new(key(0, 8, 0), bytes, route);
        let mut rng = DetRng::seed_from(11);
        let no_deadline = drain(
            &t,
            std::slice::from_ref(&spec),
            &DrainConfig::default(),
            &mut DetRng::seed_from(11),
        );
        let completion = no_deadline.outcomes[0].finish.expect("completes");
        let cfg = DrainConfig {
            deadline: Some(completion),
            ..DrainConfig::default()
        };
        let report = drain(&t, &[spec], &cfg, &mut rng);
        assert!(
            report.all_completed(),
            "deadline tied to the completion instant must still complete"
        );
        assert!(report.stalled().is_empty());
        assert_eq!(report.end, completion);
    }
}
