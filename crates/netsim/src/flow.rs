//! Flow descriptions and outcomes.
//!
//! A [`FlowSpec`] is one RDMA QP's worth of traffic: a byte demand plus the
//! directed links it traverses. The collective layer produces specs; the
//! [`mod@crate::drain`] loop turns them into [`FlowOutcome`]s.

use c4_simcore::{Bandwidth, ByteSize, SimTime};
use c4_topology::{GpuId, LinkId};

/// Identity of a flow for hashing and telemetry: which communicator,
/// channel and QP it belongs to and which GPUs it connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowKey {
    /// Source GPU (the rank whose NIC sends).
    pub src_gpu: GpuId,
    /// Destination GPU.
    pub dst_gpu: GpuId,
    /// Communicator identifier (unique per collective group).
    pub comm: u64,
    /// Channel index within the communicator.
    pub channel: u16,
    /// QP index within the channel (paper: multiple QPs per connection).
    pub qp: u16,
    /// Incremented on reconnect so ECMP re-hashes after failures.
    pub incarnation: u32,
}

impl FlowKey {
    /// Deterministic 64-bit digest of the key with a salt (the salt models
    /// the switch's hash seed).
    pub fn digest(&self, salt: u64) -> u64 {
        use crate::hash::mix2;
        let a = (self.src_gpu.index() as u64) << 32 | self.dst_gpu.index() as u64;
        let b = (self.channel as u64) << 48 | (self.qp as u64) << 32 | self.incarnation as u64;
        mix2(mix2(a, self.comm), mix2(b, salt))
    }
}

/// One flow to be drained: demand, route and identity.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Flow identity (drives ECMP hashing and telemetry attribution).
    pub key: FlowKey,
    /// Bytes to move.
    pub bytes: ByteSize,
    /// Directed links traversed, in order.
    pub route: Vec<LinkId>,
}

impl FlowSpec {
    /// Creates a spec.
    pub fn new(key: FlowKey, bytes: ByteSize, route: Vec<LinkId>) -> Self {
        FlowSpec { key, bytes, route }
    }
}

/// Result of draining one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// The flow's identity, echoed from the spec.
    pub key: FlowKey,
    /// Bytes requested.
    pub bytes: ByteSize,
    /// When the flow started.
    pub start: SimTime,
    /// When the last byte drained; `None` if the flow stalled (e.g. its
    /// route contains a down link) until the drain deadline.
    pub finish: Option<SimTime>,
    /// Mean achieved rate over the flow's active lifetime.
    pub mean_rate: Bandwidth,
    /// Lowest instantaneous rate observed while active.
    pub min_rate: Bandwidth,
    /// Highest instantaneous rate observed while active.
    pub max_rate: Bandwidth,
}

impl FlowOutcome {
    /// True when the flow drained completely.
    pub fn completed(&self) -> bool {
        self.finish.is_some()
    }

    /// Completion duration, if completed.
    pub fn duration(&self) -> Option<c4_simcore::SimDuration> {
        self.finish.map(|f| f - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_key_sensitive() {
        let k = FlowKey {
            src_gpu: GpuId::from_index(1),
            dst_gpu: GpuId::from_index(2),
            comm: 99,
            channel: 3,
            qp: 0,
            incarnation: 0,
        };
        assert_eq!(k.digest(42), k.digest(42));
        assert_ne!(k.digest(42), k.digest(43));
        let mut k2 = k;
        k2.qp = 1;
        assert_ne!(k.digest(42), k2.digest(42));
        let mut k3 = k;
        k3.incarnation = 1;
        assert_ne!(k.digest(42), k3.digest(42));
    }

    #[test]
    fn outcome_helpers() {
        let key = FlowKey::default();
        let done = FlowOutcome {
            key,
            bytes: ByteSize::from_mib(1),
            start: SimTime::from_secs(1),
            finish: Some(SimTime::from_secs(3)),
            mean_rate: Bandwidth::from_gbps(1.0),
            min_rate: Bandwidth::from_gbps(1.0),
            max_rate: Bandwidth::from_gbps(1.0),
        };
        assert!(done.completed());
        assert_eq!(done.duration().unwrap().as_secs_f64(), 2.0);
        let stalled = FlowOutcome {
            finish: None,
            ..done.clone()
        };
        assert!(!stalled.completed());
        assert!(stalled.duration().is_none());
    }
}
