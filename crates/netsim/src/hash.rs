//! Deterministic mixing for ECMP-style hashing.
//!
//! Real switches hash the five-tuple of a flow to pick among equal-cost
//! paths; the source UDP port of an RoCE QP is the knob C4P turns to steer a
//! flow. The simulator reproduces the *determinism* of that mapping (same key
//! → same path) with a splitmix64 finalizer.

/// splitmix64 finalizer: a fast, well-distributed 64-bit mix.
///
/// # Example
///
/// ```
/// use c4_netsim::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines two words into one mixed word (order-sensitive).
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b).rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix64(12345), mix64(12345));
        assert_eq!(mix2(1, 2), mix2(1, 2));
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }

    #[test]
    fn mix_spreads_low_entropy_inputs() {
        // Consecutive keys should land in different mod-8 buckets reasonably
        // often (no catastrophic clustering).
        let mut buckets = [0u32; 8];
        for i in 0..800u64 {
            buckets[(mix64(i) % 8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((60..=140).contains(&b), "bucket count {b} out of range");
        }
    }
}
