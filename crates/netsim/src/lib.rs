//! # c4-netsim
//!
//! Flow-level (fluid) network simulator for the C4 reproduction.
//!
//! The paper's communication phenomena — traffic collision on leaf→spine
//! uplinks, dual-port receive imbalance, down-link rerouting, DCQCN/CNP rate
//! fluctuation — are all *bandwidth-sharing* effects over long-lived elephant
//! flows (§II-D: "parallel training tasks involve a small number of data
//! flows but transmit large volumes of data"). A fluid model therefore
//! captures them faithfully:
//!
//! * every flow has a byte demand and a route (a list of directed
//!   [`c4_topology::LinkId`]s);
//! * link bandwidth is shared **max-min fairly** ([`maxmin::solve`]);
//! * a drain loop ([`drain()`](drain::drain)) advances virtual time between flow
//!   completions, optionally re-solving each epoch with DCQCN-style rate
//!   noise on congested flows and accounting CNPs per sender port
//!   ([`congestion`]).
//!
//! Path selection is abstracted behind [`PathSelector`] so the ECMP baseline
//! ([`EcmpSelector`]) and C4P's engineered selector (crate `c4-traffic`) plug
//! into the same collective layer.
//!
//! ## The incremental max-min solver
//!
//! LLM-training traffic is repetitive: within one drain, successive
//! re-solve points differ by a handful of flow completions or per-epoch cap
//! perturbations, never by a wholesale rewrite of the problem. The drain
//! loop therefore keeps a persistent [`MaxMinState`] per run instead of
//! calling the from-scratch solver at every event. Its invariants:
//!
//! * **Component separability.** Max-min fairness decomposes exactly over
//!   connected components of the flow–link sharing graph (two flows are
//!   connected when they share a link, transitively): a flow's final rate
//!   depends only on its component. The state partitions flows once per
//!   full solve and re-waterfills only components containing a change —
//!   [`MaxMinState::remove_flow`] (completion), [`MaxMinState::rate_perturb`]
//!   (DCQCN noise cap), [`MaxMinState::link_change`] (failure/degradation).
//! * **Conservative partitions.** Removing a flow may split its component;
//!   the split is only discovered at the next full solve's re-partition.
//!   Until then the state re-solves the (superset) stale component — more
//!   work than strictly needed, never a wrong answer. Adding a flow marks
//!   the partition stale outright.
//! * **Re-partition on dead mass.** Once the flows removed since the last
//!   partition outweigh the survivors, the next solve re-partitions —
//!   dropping dead flows from the component tables and splitting
//!   components removals disconnected (amortized O(1) per removal).
//!   Allocations are independent of partition granularity, so only wall
//!   clock moves. Cap perturbations alone never force a re-partition.
//! * **Dirty-component feed.** [`MaxMinState::refresh`] reports what each
//!   lazy solve touched ([`SolveScope`]: nothing, a component list, or a
//!   full re-partition), so the drain engine maintains its link loads,
//!   congestion scores and completion heap incrementally for exactly the
//!   flows whose rates may have changed.
//! * **Deterministic parallelism.** Components are independent
//!   sub-problems, so batched re-solves fan out over a scoped-thread pool
//!   sized by [`DrainConfig::parallel`](drain::DrainConfig) (default: the
//!   `C4_THREADS` environment selection). Each component's rates are a pure
//!   function of its own inputs and results merge in component-index
//!   order, making allocations bit-identical at any thread count — the
//!   differential harness pins serial vs 2- and 4-thread states exactly.
//! * **Reference agreement.** The state's event-driven kernel (water level
//!   jumping between cap/saturation events on a lazy min-heap) produces the
//!   same allocation as the textbook progressive-filling loop retained in
//!   [`maxmin::solve`], within 1e-9 relative — enforced continuously by
//!   `tests/maxmin_differential.rs`, which also holds the incremental
//!   [`drain()`](drain::drain) to the retained
//!   [`drain_reference()`](drain::drain_reference) across randomized
//!   topologies, faults, noise epochs and deadlines.
//!
//! * **Opt-in two-tier spine solve.** At cluster scale the spine keeps
//!   every concurrent job in one connected component, so exact component
//!   re-solves still touch O(live flows) per completion.
//!   [`SolveMode::TwoTier`] solves pod-local subproblems exactly and
//!   couples them across the spine tier through per-link advertised
//!   levels, committing a spine level only when it moves by more than a
//!   fraction of the configured ε — re-solve work becomes proportional to
//!   the completion's blast radius instead of the component size, with the
//!   max relative rate error bounded by ε (pinned by differential
//!   proptest). The default [`SolveMode::Exact`] is bit-identical to the
//!   historical solver.
//!
//! Every [`DrainReport`] carries a
//! [`DrainSolverStats`] with per-run solver
//! counters (events, solves per tier, batched completion instants, scratch
//! arena high-water mark), surfaced as a column in the `c4-bench-v1` JSON.

pub mod congestion;
pub mod drain;
pub mod flow;
pub mod hash;
pub mod maxmin;
pub mod selector;

pub use congestion::CnpModel;
pub use drain::{drain, drain_reference, DrainConfig, DrainReport, DrainSolverStats};
pub use flow::{FlowKey, FlowOutcome, FlowSpec};
pub use hash::mix64;
pub use maxmin::{MaxMinState, SolveMode, SolveScope};
pub use selector::{EcmpSelector, PathChoice, PathSelector, RailLocalSelector};
