//! # c4-netsim
//!
//! Flow-level (fluid) network simulator for the C4 reproduction.
//!
//! The paper's communication phenomena — traffic collision on leaf→spine
//! uplinks, dual-port receive imbalance, down-link rerouting, DCQCN/CNP rate
//! fluctuation — are all *bandwidth-sharing* effects over long-lived elephant
//! flows (§II-D: "parallel training tasks involve a small number of data
//! flows but transmit large volumes of data"). A fluid model therefore
//! captures them faithfully:
//!
//! * every flow has a byte demand and a route (a list of directed
//!   [`c4_topology::LinkId`]s);
//! * link bandwidth is shared **max-min fairly** ([`maxmin::solve`]);
//! * a drain loop ([`drain()`](drain::drain)) advances virtual time between flow
//!   completions, optionally re-solving each epoch with DCQCN-style rate
//!   noise on congested flows and accounting CNPs per sender port
//!   ([`congestion`]).
//!
//! Path selection is abstracted behind [`PathSelector`] so the ECMP baseline
//! ([`EcmpSelector`]) and C4P's engineered selector (crate `c4-traffic`) plug
//! into the same collective layer.

pub mod congestion;
pub mod drain;
pub mod flow;
pub mod hash;
pub mod maxmin;
pub mod selector;

pub use congestion::CnpModel;
pub use drain::{drain, DrainConfig, DrainReport};
pub use flow::{FlowKey, FlowOutcome, FlowSpec};
pub use hash::mix64;
pub use selector::{EcmpSelector, PathChoice, PathSelector, RailLocalSelector};
