//! Max-min fair bandwidth allocation by progressive filling — both the
//! from-scratch reference solver and an incremental re-solver.
//!
//! Given link capacities and flow routes, raise every unfrozen flow's rate
//! uniformly; when a link saturates, freeze the flows crossing it; repeat.
//! Optional per-flow caps model DCQCN rate limiting. [`solve`] is the
//! textbook water-filling algorithm run from scratch; it is retained as the
//! *reference* implementation that `tests/maxmin_differential.rs` checks the
//! incremental path against.
//!
//! [`MaxMinState`] is the incremental form the drain loop consumes: it keeps
//! the problem (link capacities, flow routes, caps) resident, partitions it
//! into connected components of the flow–link sharing graph, and re-runs the
//! water-filling kernel only over components whose inputs changed since the
//! last query. LLM-training traffic makes this profitable: successive solves
//! within a drain differ by a handful of flow completions or per-epoch cap
//! perturbations, while disjoint jobs/NVLink chains never need re-solving at
//! all. When the dirty set grows past half the live flows the state falls
//! back to one full solve (and re-partitions), so the incremental path is
//! never slower than the reference by more than bookkeeping.

use c4_simcore::{scoped_map, ParallelPolicy, UnionFind};

/// Per-flow rate caps; `f64::INFINITY` means uncapped.
pub type RateCaps = Vec<f64>;

/// Minimum live-flow mass across the components of one re-solve batch
/// before worker threads are spawned; below it the per-thread setup cost
/// exceeds the solve itself. Purely a wall-clock heuristic — results are
/// bit-identical either way.
const PARALLEL_MIN_FLOWS: usize = 192;

/// Rate assigned to flows with an empty route and no finite cap
/// (represented as `f64::MAX / 4` to avoid arithmetic overflow downstream).
const UNBOUNDED: f64 = f64::MAX / 4.0;

/// Flow routes in struct-of-arrays (CSR) form: `links[offsets[f]..offsets[f+1]]`
/// is flow `f`'s sorted, deduplicated link list.
///
/// At 16k–32k GPUs a drain holds hundreds of thousands of routes; storing
/// them as one contiguous pair of arrays (instead of a `Vec<Vec<u32>>` with
/// one heap allocation per flow) lets the waterfill kernel and the dirty-
/// component re-accumulation stream link ids sequentially, and makes
/// cloning/rebuilding a component's route table two `memcpy`s.
#[derive(Debug, Clone)]
struct RouteTable {
    /// `len + 1` offsets into `links`.
    offsets: Vec<u32>,
    /// Concatenated per-flow link lists.
    links: Vec<u32>,
}

impl Default for RouteTable {
    fn default() -> Self {
        RouteTable {
            offsets: vec![0],
            links: Vec::new(),
        }
    }
}

impl RouteTable {
    /// Number of flows (routes) stored.
    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Appends one flow's link list.
    fn push(&mut self, route: &[u32]) {
        self.links.extend_from_slice(route);
        self.offsets.push(self.links.len() as u32);
    }

    /// Flow `f`'s link list.
    #[inline]
    fn route(&self, f: usize) -> &[u32] {
        &self.links[self.offsets[f] as usize..self.offsets[f + 1] as usize]
    }
}

/// Progressive-filling kernel shared by [`solve`] and [`MaxMinState`].
///
/// * `capacity[l]` — dense link capacities (negative treated as 0).
/// * `links_of[f]` — each flow's links as **sorted, deduplicated** indices
///   into `capacity`.
/// * `caps[f]` — per-flow rate cap; `f64::INFINITY` = uncapped, `0.0` pins
///   the flow to rate zero (how [`MaxMinState`] masks removed flows without
///   rebuilding route tables).
///
/// Writes one rate per flow into `rates` (which must be zeroed by the
/// caller). Arithmetic is identical to the original from-scratch solver:
/// the active-set bookkeeping only skips work, never reorders it.
fn waterfill(capacity: &[f64], links_of: &[Vec<u32>], caps: &[f64], rates: &mut [f64]) {
    let nf = links_of.len();
    debug_assert_eq!(caps.len(), nf);
    debug_assert_eq!(rates.len(), nf);
    if nf == 0 {
        return;
    }

    let nl = capacity.len();
    let mut remaining: Vec<f64> = capacity.iter().map(|c| c.max(0.0)).collect();
    let mut active_count = vec![0u32; nl];
    let mut active = vec![true; nf];
    let mut active_flows: Vec<u32> = Vec::with_capacity(nf);

    for (f, ls) in links_of.iter().enumerate() {
        if ls.is_empty() {
            // Unconstrained flow: its cap (or "infinity").
            rates[f] = if caps[f].is_finite() {
                caps[f].max(0.0)
            } else {
                UNBOUNDED
            };
            active[f] = false;
            continue;
        }
        for &l in ls {
            active_count[l as usize] += 1;
        }
        active_flows.push(f as u32);
    }
    // Links some active flow crosses; pruned lazily as counts hit zero.
    let mut active_links: Vec<u32> = (0..nl as u32)
        .filter(|&l| active_count[l as usize] > 0)
        .collect();

    let eps = 1e-9;
    while !active_flows.is_empty() {
        // Uniform increment limited by the tightest link or flow cap.
        let mut delta = f64::INFINITY;
        for &l in &active_links {
            let l = l as usize;
            if active_count[l] > 0 {
                delta = delta.min(remaining[l] / active_count[l] as f64);
            }
        }
        for &f in &active_flows {
            let f = f as usize;
            if caps[f].is_finite() {
                delta = delta.min((caps[f] - rates[f]).max(0.0));
            }
        }
        if !delta.is_finite() {
            // No constraining link and no cap: shouldn't happen for routed
            // flows, but guard against livelock.
            delta = 0.0;
        }

        if delta > 0.0 {
            for &f in &active_flows {
                rates[f as usize] += delta;
            }
            for &l in &active_links {
                let l = l as usize;
                if active_count[l] > 0 {
                    remaining[l] -= delta * active_count[l] as f64;
                }
            }
        }

        // Freeze flows on saturated links and flows at their cap.
        let mut froze_any = false;
        for &f in &active_flows {
            let f = f as usize;
            if !active[f] {
                continue;
            }
            let capped = caps[f].is_finite() && rates[f] + eps >= caps[f];
            let saturated = links_of[f]
                .iter()
                .any(|&l| remaining[l as usize] <= eps * capacity[l as usize].max(1.0));
            if capped || saturated {
                active[f] = false;
                froze_any = true;
                for &l in &links_of[f] {
                    active_count[l as usize] -= 1;
                }
            }
        }
        if !froze_any {
            // Numerical stalemate: freeze the slowest-growing flow to ensure
            // termination (practically unreachable, but cheap insurance).
            if let Some(&f) = active_flows.first() {
                active[f as usize] = false;
                for &l in &links_of[f as usize] {
                    active_count[l as usize] -= 1;
                }
            }
        }
        active_flows.retain(|&f| active[f as usize]);
        active_links.retain(|&l| active_count[l as usize] > 0);
    }
}

/// A saturation-level heap entry (min-heap over `level`).
///
/// `stamp` implements lazy invalidation: an entry is live only while the
/// link's stamp still matches (every count/remaining change bumps it).
#[derive(Debug, Clone, Copy)]
struct LinkEvent {
    level: f64,
    link: u32,
    stamp: u32,
}

impl PartialEq for LinkEvent {
    fn eq(&self, other: &Self) -> bool {
        self.level == other.level
    }
}
impl Eq for LinkEvent {}
impl PartialOrd for LinkEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LinkEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the lowest level first.
        // Levels are never NaN (capacities and caps are real).
        other
            .level
            .partial_cmp(&self.level)
            .expect("saturation levels are not NaN")
    }
}

/// Reusable buffers for [`waterfill_event_into`]: every per-call allocation
/// of the event kernel (index arenas, residual tables, the saturation heap,
/// the cap sweep order) plus the staging vectors the serial component loop
/// uses to assemble each sub-problem. Buffers are **cleared, not freed**
/// between solves, so the drain hot loop stops allocating once the largest
/// component has been seen; `hwm_bytes` records the arena's high-water mark
/// for [`DrainSolverStats`](crate::DrainSolverStats).
#[derive(Debug, Clone, Default)]
pub(crate) struct SolveScratch {
    active_count: Vec<u32>,
    active: Vec<bool>,
    fol_offsets: Vec<u32>,
    fol_flows: Vec<u32>,
    cursor: Vec<u32>,
    remaining: Vec<f64>,
    base_level: Vec<f64>,
    stamp: Vec<u32>,
    heap: std::collections::BinaryHeap<LinkEvent>,
    cap_order: Vec<u32>,
    /// Staging for the serial component loop (link capacities, masked caps
    /// and rates of the component being solved).
    local_capacity: Vec<f64>,
    local_caps: Vec<f64>,
    local_rates: Vec<f64>,
    /// Largest total capacity (bytes) this arena has held.
    hwm_bytes: usize,
}

impl SolveScratch {
    /// Records the arena's current footprint if it is a new high-water mark.
    fn note_hwm(&mut self) {
        let bytes = self.active_count.capacity() * 4
            + self.active.capacity()
            + self.fol_offsets.capacity() * 4
            + self.fol_flows.capacity() * 4
            + self.cursor.capacity() * 4
            + self.remaining.capacity() * 8
            + self.base_level.capacity() * 8
            + self.stamp.capacity() * 4
            + self.heap.capacity() * std::mem::size_of::<LinkEvent>()
            + self.cap_order.capacity() * 4
            + self.local_capacity.capacity() * 8
            + self.local_caps.capacity() * 8
            + self.local_rates.capacity() * 8;
        if bytes > self.hwm_bytes {
            self.hwm_bytes = bytes;
        }
    }
}

/// Event-driven progressive-filling kernel — the fast path behind
/// [`MaxMinState`]. Allocation-free wrapper state lives in `scratch`; see
/// [`waterfill_event_into`] for the algorithm.
fn waterfill_event(capacity: &[f64], links_of: &RouteTable, caps: &[f64], rates: &mut [f64]) {
    let mut scratch = SolveScratch::default();
    waterfill_event_into(capacity, links_of, caps, rates, &mut scratch, None);
}

/// Event-driven progressive-filling kernel.
///
/// Exploits the invariant that every *active* flow sits at the same water
/// level `L`: instead of raising rates round by round, it jumps `L` directly
/// to the next constraint — the smallest finite cap (flows sorted by cap
/// once) or the lowest link-saturation level (a lazy min-heap keyed by
/// `L + remaining/active_count`, re-pushed whenever a freeze changes a
/// link's count). Each flow freezes exactly once and each freeze touches
/// only that flow's links, so a solve costs `O(E log E)` in the total route
/// length `E` — versus the reference kernel's `O(flows · (links + flows))`.
///
/// Produces the same allocation as the reference [`waterfill`] up to
/// `O(eps)` freeze-threshold differences (the reference freezes flows an
/// `eps` early); the differential harness bounds the divergence at 1e-9
/// relative.
///
/// All working memory comes from `scratch` (cleared, never freed), so a
/// reused scratch makes repeated solves allocation-free; the reinitialized
/// buffers hold exactly the values a fresh allocation would, keeping results
/// bit-identical whether the scratch is new or recycled.
///
/// When `levels` is provided it receives each link's final saturation level:
/// the water level at which the link's residual reached zero, or
/// [`UNBOUNDED`] for links that never saturated. This is the per-link
/// bottleneck ("advertised") level the two-tier solve seeds its fixed point
/// with.
fn waterfill_event_into(
    capacity: &[f64],
    links_of: &RouteTable,
    caps: &[f64],
    rates: &mut [f64],
    scratch: &mut SolveScratch,
    levels: Option<&mut Vec<f64>>,
) {
    let nf = links_of.len();
    debug_assert_eq!(caps.len(), nf);
    debug_assert_eq!(rates.len(), nf);
    let nl = capacity.len();
    // Saturation levels for a problem with no routed flows: a link is
    // "saturated" only if it has no capacity at all.
    let trivial_levels = |levels: Option<&mut Vec<f64>>| {
        if let Some(levels) = levels {
            levels.clear();
            levels.extend(
                capacity
                    .iter()
                    .map(|c| if c.max(0.0) == 0.0 { 0.0 } else { UNBOUNDED }),
            );
        }
    };
    if nf == 0 {
        trivial_levels(levels);
        return;
    }

    let active_count = &mut scratch.active_count;
    active_count.clear();
    active_count.resize(nl, 0);
    let active = &mut scratch.active;
    active.clear();
    active.resize(nf, false);
    let mut n_active = 0usize;
    for f in 0..nf {
        let ls = links_of.route(f);
        if ls.is_empty() {
            rates[f] = if caps[f].is_finite() {
                caps[f].max(0.0)
            } else {
                UNBOUNDED
            };
            continue;
        }
        active[f] = true;
        n_active += 1;
        for &l in ls {
            active_count[l as usize] += 1;
        }
    }
    if n_active == 0 {
        trivial_levels(levels);
        return;
    }

    // Per-link flow lists in CSR form (counting sort over the route table:
    // two contiguous passes, zero per-link allocations).
    let fol_offsets = &mut scratch.fol_offsets;
    fol_offsets.clear();
    fol_offsets.resize(nl + 1, 0);
    for (f, &is_active) in active.iter().enumerate() {
        if is_active {
            for &l in links_of.route(f) {
                fol_offsets[l as usize + 1] += 1;
            }
        }
    }
    for l in 0..nl {
        fol_offsets[l + 1] += fol_offsets[l];
    }
    let fol_flows = &mut scratch.fol_flows;
    fol_flows.clear();
    fol_flows.resize(fol_offsets[nl] as usize, 0);
    let cursor = &mut scratch.cursor;
    cursor.clear();
    cursor.extend_from_slice(&fol_offsets[..nl]);
    for (f, &is_active) in active.iter().enumerate() {
        if is_active {
            for &l in links_of.route(f) {
                fol_flows[cursor[l as usize] as usize] = f as u32;
                cursor[l as usize] += 1;
            }
        }
    }

    // Lazily-materialized residuals: `remaining[l]` is exact as of water
    // level `base_level[l]`; in between, the true residual is
    // `remaining[l] - (L - base_level[l]) * active_count[l]`.
    let remaining = &mut scratch.remaining;
    remaining.clear();
    remaining.extend(capacity.iter().map(|c| c.max(0.0)));
    let base_level = &mut scratch.base_level;
    base_level.clear();
    base_level.resize(nl, 0.0);
    let stamp = &mut scratch.stamp;
    stamp.clear();
    stamp.resize(nl, 0);

    let heap = &mut scratch.heap;
    heap.clear();
    for l in 0..nl {
        if active_count[l] > 0 {
            heap.push(LinkEvent {
                level: remaining[l] / active_count[l] as f64,
                link: l as u32,
                stamp: 0,
            });
        }
    }

    // Flows with finite caps, sorted ascending; swept once.
    let cap_order = &mut scratch.cap_order;
    cap_order.clear();
    cap_order
        .extend((0..nf as u32).filter(|&f| active[f as usize] && caps[f as usize].is_finite()));
    cap_order.sort_unstable_by(|&a, &b| {
        caps[a as usize]
            .partial_cmp(&caps[b as usize])
            .expect("caps are not NaN")
    });
    let mut cap_idx = 0usize;

    let mut level = 0.0_f64;
    // Freezes `f` at the current level (or its cap), releasing its links.
    // Returns the links touched so the caller refreshes their heap entries.
    while n_active > 0 {
        // Next cap constraint.
        while cap_idx < cap_order.len() && !active[cap_order[cap_idx] as usize] {
            cap_idx += 1;
        }
        let cap_level = if cap_idx < cap_order.len() {
            caps[cap_order[cap_idx] as usize].max(0.0)
        } else {
            f64::INFINITY
        };

        // Next link constraint (discard stale heap entries).
        let mut link_event: Option<u32> = None;
        let mut link_level = f64::INFINITY;
        while let Some(&top) = heap.peek() {
            let l = top.link as usize;
            if top.stamp != stamp[l] || active_count[l] == 0 {
                heap.pop();
                continue;
            }
            link_level = top.level;
            link_event = Some(top.link);
            break;
        }

        if cap_level <= link_level {
            if !cap_level.is_finite() {
                // No finite constraint left: the reference kernel's
                // stalemate guard freezes everyone at the current level.
                for f in 0..nf {
                    if active[f] {
                        rates[f] = level;
                        active[f] = false;
                    }
                }
                break;
            }
            // Cap event: freeze every active flow at this cap value.
            level = cap_level;
            let cap_value = caps[cap_order[cap_idx] as usize];
            while cap_idx < cap_order.len() {
                let f = cap_order[cap_idx] as usize;
                if active[f] && caps[f] > cap_value {
                    break;
                }
                cap_idx += 1;
                if !active[f] {
                    continue;
                }
                active[f] = false;
                n_active -= 1;
                rates[f] = caps[f].max(0.0);
                for &l in links_of.route(f) {
                    release_link(
                        l as usize,
                        level,
                        remaining,
                        base_level,
                        active_count,
                        stamp,
                        heap,
                    );
                }
            }
        } else {
            let Some(l0) = link_event else {
                // No constraint at all (empty heap, no caps): freeze at the
                // current level, mirroring the reference stalemate guard.
                for f in 0..nf {
                    if active[f] {
                        rates[f] = level;
                        active[f] = false;
                    }
                }
                break;
            };
            // Link event: the link saturates at `link_level`; its active
            // flows freeze there.
            level = link_level;
            heap.pop();
            let (lo, hi) = (
                fol_offsets[l0 as usize] as usize,
                fol_offsets[l0 as usize + 1] as usize,
            );
            for &fid in &fol_flows[lo..hi] {
                let f = fid as usize;
                if !active[f] {
                    continue;
                }
                active[f] = false;
                n_active -= 1;
                rates[f] = level;
                for &l in links_of.route(f) {
                    release_link(
                        l as usize,
                        level,
                        remaining,
                        base_level,
                        active_count,
                        stamp,
                        heap,
                    );
                }
            }
        }
    }

    if let Some(levels) = levels {
        // A link's final `remaining` is its residual at `base_level` with
        // every subscriber frozen, so residual ≈ 0 means the link saturated
        // exactly at `base_level` — the advertised level the two-tier solve
        // seeds with. Links with slack never constrain anyone.
        levels.clear();
        levels.reserve(nl);
        for l in 0..nl {
            let cap_pos = capacity[l].max(0.0);
            levels.push(if remaining[l] <= 1e-9 * cap_pos.max(1.0) {
                base_level[l]
            } else {
                UNBOUNDED
            });
        }
    }
    scratch.note_hwm();
}

/// Materializes a link's residual at the current water level, drops one
/// active flow from it, and refreshes its heap entry.
#[allow(clippy::too_many_arguments)]
fn release_link(
    l: usize,
    level: f64,
    remaining: &mut [f64],
    base_level: &mut [f64],
    active_count: &mut [u32],
    stamp: &mut [u32],
    heap: &mut std::collections::BinaryHeap<LinkEvent>,
) {
    let drained = (level - base_level[l]) * active_count[l] as f64;
    remaining[l] = (remaining[l] - drained).max(0.0);
    base_level[l] = level;
    active_count[l] -= 1;
    stamp[l] = stamp[l].wrapping_add(1);
    if active_count[l] > 0 {
        heap.push(LinkEvent {
            level: level + remaining[l] / active_count[l] as f64,
            link: l as u32,
            stamp: stamp[l],
        });
    }
}

/// Sorts and deduplicates a route, asserting it stays within the link table.
fn normalize_route(route: &[u32], num_links: usize) -> Vec<u32> {
    let mut ls = route.to_vec();
    ls.sort_unstable();
    ls.dedup();
    for &l in &ls {
        assert!(
            (l as usize) < num_links,
            "route references link {l} beyond capacity table"
        );
    }
    ls
}

/// Computes the max-min fair rate for each flow **from scratch** (the
/// retained reference solver).
///
/// * `capacity[l]` — capacity of link `l` (any units; rates come back in the
///   same units). Zero-capacity links pin their flows to rate 0.
/// * `routes[f]` — the link indices flow `f` traverses (duplicates are
///   counted once).
/// * `caps` — optional per-flow rate caps.
///
/// Returns one rate per flow, in `routes` order.
///
/// # Panics
///
/// Panics if a route references a link index out of range, or if `caps` is
/// provided with a length different from `routes`.
pub fn solve(capacity: &[f64], routes: &[Vec<u32>], caps: Option<&RateCaps>) -> Vec<f64> {
    let nf = routes.len();
    if let Some(c) = caps {
        assert_eq!(c.len(), nf, "caps length must match flow count");
    }
    let mut rate = vec![0.0_f64; nf];
    if nf == 0 {
        return rate;
    }

    // Compact the link table to links actually referenced by some route —
    // topologies have thousands of links but a drain touches only hundreds,
    // and the filling loop scans the whole table every round.
    let mut dense_of = vec![u32::MAX; capacity.len()];
    let mut dense_capacity: Vec<f64> = Vec::new();
    let mut flow_links: Vec<Vec<u32>> = Vec::with_capacity(nf);
    for r in routes {
        let mut ls = normalize_route(r, capacity.len());
        for l in &mut ls {
            if dense_of[*l as usize] == u32::MAX {
                dense_of[*l as usize] = dense_capacity.len() as u32;
                dense_capacity.push(capacity[*l as usize]);
            }
            *l = dense_of[*l as usize];
        }
        // normalize_route sorted by original id; re-sort by dense id so the
        // kernel's invariant holds.
        ls.sort_unstable();
        flow_links.push(ls);
    }

    let full_caps: Vec<f64> = match caps {
        Some(c) => c.clone(),
        None => vec![f64::INFINITY; nf],
    };
    waterfill(&dense_capacity, &flow_links, &full_caps, &mut rate);
    rate
}

/// The per-link leftover capacity after the given allocation.
pub fn residual(capacity: &[f64], routes: &[Vec<u32>], rates: &[f64]) -> Vec<f64> {
    let mut res: Vec<f64> = capacity.to_vec();
    for (r, &rate) in routes.iter().zip(rates) {
        let mut ls = r.clone();
        ls.sort_unstable();
        ls.dedup();
        for l in ls {
            res[l as usize] -= rate;
        }
    }
    res
}

/// What the last [`MaxMinState::refresh`] call actually re-solved — the
/// dirty-component feed the event-driven drain loop consumes to update its
/// link loads, congestion scores and completion heap incrementally instead
/// of rebuilding them over every active flow each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveScope {
    /// Nothing was dirty: no rate changed since the previous refresh.
    Unchanged,
    /// Only the components listed by [`MaxMinState::resolved_components`]
    /// re-solved; every other flow's rate is bit-identical to before.
    Components,
    /// Two-tier propagation ran: only the flows listed by
    /// [`MaxMinState::changed_flows`] have different rates — every other
    /// flow's rate is bit-identical to before. Only produced under
    /// [`SolveMode::TwoTier`].
    Sparse,
    /// A full solve ran (with re-partition): component ids were reassigned
    /// and every rate is fresh — derived state must rebuild from scratch.
    Full,
}

/// How [`MaxMinState`] re-solves after perturbations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolveMode {
    /// Component-granular exact re-solves — bit-identical to the reference
    /// solver within 1e-9 and to itself at any thread count. The default
    /// everywhere.
    #[default]
    Exact,
    /// Two-tier approximate re-solves: pod-local updates propagate exactly,
    /// while updates crossing designated *spine* links
    /// ([`MaxMinState::set_spine_links`]) only commit when a link's
    /// advertised bottleneck level moves by more than `epsilon / 8`
    /// relative. Bounds every flow's rate within `epsilon` relative of the
    /// exact allocation (pinned by `tests/maxmin_differential.rs`) while
    /// turning each perturbation into work proportional to the links it
    /// actually moved — instead of an exact re-solve of the spine-connected
    /// giant component.
    TwoTier {
        /// Maximum relative rate error tolerated against the exact solver.
        epsilon: f64,
    },
}

/// Incremental state for [`SolveMode::TwoTier`]: a Charny-style fixed point
/// over per-link advertised bottleneck levels `mu`.
///
/// Invariants at quiescence: `mu[l]` is the water level at which link `l`
/// saturates given its alive subscribers' demands (or [`UNBOUNDED`] when it
/// never constrains anyone); each flow's `(min1, min1_link, min2)` caches
/// the two smallest `mu` values on its route; and each flow's rate is
/// `min(cap, min1)`. Perturbations mark route links dirty, and the worklist
/// re-fills each dirty link from its subscribers' demands — committing (and
/// rescanning subscribers) only when the level moves past the link's gate.
#[derive(Debug, Clone, Default)]
struct TwoTierState {
    /// Whether `mu`/triples/subscribers reflect the current flow table.
    initialized: bool,
    /// Advertised saturation level per link.
    mu: Vec<f64>,
    /// Subscriber CSR: alive routed flows per link (stale entries are
    /// alive-checked; compacted when dead entries reach half the table).
    sub_offsets: Vec<u32>,
    sub_flows: Vec<u32>,
    /// CSR entries owned by removed flows (compaction trigger).
    sub_dead_entries: usize,
    /// Smallest and second-smallest `mu` on each flow's route, plus the
    /// link holding the smallest.
    min1: Vec<f64>,
    min1_link: Vec<u32>,
    min2: Vec<f64>,
    /// Worklist of links whose fill level must be recomputed.
    link_dirty: Vec<bool>,
    dirty_links: Vec<u32>,
    /// Flows whose rate changed since the last refresh (mask-deduped).
    flow_mask: Vec<bool>,
    pending: Vec<u32>,
    /// The changed-flow set of the *last* refresh (ascending) — the
    /// [`SolveScope::Sparse`] feed.
    changed: Vec<u32>,
    /// Scratch: demand staging for the per-link fill, and the per-round
    /// worklist batch.
    demand: Vec<f64>,
    batch: Vec<u32>,
    /// Statistics for [`DrainSolverStats`](crate::DrainSolverStats).
    sparse_solves: u64,
    spine_rounds: u64,
    spine_link_updates: u64,
    fallback_solves: u64,
}

impl TwoTierState {
    /// Rewrites the subscriber CSR keeping only alive flows, so long drains
    /// do not scan ever-growing dead entries. In-place, O(entries).
    fn compact_subscribers(&mut self, alive: &[bool]) {
        let nl = self.sub_offsets.len().saturating_sub(1);
        let mut write = 0usize;
        let mut read = 0usize;
        for l in 0..nl {
            let read_end = self.sub_offsets[l + 1] as usize;
            while read < read_end {
                let f = self.sub_flows[read];
                if alive[f as usize] {
                    self.sub_flows[write] = f;
                    write += 1;
                }
                read += 1;
            }
            self.sub_offsets[l + 1] = write as u32;
        }
        self.sub_flows.truncate(write);
        self.sub_dead_entries = 0;
    }
}

/// One connected component of the flow–link sharing graph — the "pod" unit
/// of the hierarchical solve. All per-flow data is struct-of-arrays: the
/// flow ids, the CSR route table and the (caller-built) cap/rate slices are
/// parallel arrays, so a component re-solve streams contiguously.
#[derive(Debug, Clone, Default)]
struct Component {
    /// Flow ids in this component (alive at partition time), ascending.
    flows: Vec<u32>,
    /// Links referenced by those flows (original link-table indices).
    links: Vec<u32>,
    /// Per-flow routes in component-local dense indices (into `links`),
    /// parallel to `flows`, flattened CSR. Built once per partition so a
    /// component re-solve allocates nothing route-shaped.
    local_routes: RouteTable,
    /// Flows of this component still alive.
    alive_count: usize,
}

impl Component {
    /// Flows removed since this component was (re)built.
    fn dead_count(&self) -> usize {
        self.flows.len() - self.alive_count
    }
}

/// Persistent max-min problem with incremental re-solving.
///
/// The drain loop's access pattern is: build the problem once, then apply
/// small perturbations — a flow completes ([`remove_flow`]), DCQCN noise
/// re-caps congested flows for an epoch ([`rate_perturb`]), a link degrades
/// or dies ([`link_change`]) — and re-read [`rates`]. The state partitions
/// flows into connected components (two flows are connected when they share
/// a link, transitively) and re-runs the event-driven water-filling kernel
/// only over components containing a change. Max-min fairness is separable
/// across components and the event kernel computes the same fixed point as
/// the textbook loop, so the result matches the reference [`solve`] up to
/// floating-point association and the reference's `eps` freeze threshold
/// (≪ 1e-9 relative; `tests/maxmin_differential.rs` enforces this).
///
/// **Hierarchical re-partitioning.** The component tables are maintained at
/// two levels. Flow *additions* (which may merge components) trigger the
/// spine-level path: one global union-find re-partition plus a full
/// re-solve. Flow *removals* never merge components, so they are handled at
/// the pod level: when a dirty component's dead mass reaches its live mass,
/// just that component is rebuilt in place from its own live flows —
/// splitting pieces that removals disconnected and dropping dead flows from
/// its tables — under `SolveScope::Components`. Quiescent components are
/// never touched, scanned, or reallocated, which is what keeps 16k–32k-GPU
/// drains (hundreds of thousands of flows) event-cost-proportional to the
/// traffic that actually changed.
///
/// **Parallelism.** Components are independent sub-problems, so a batch of
/// re-solves (dirty components, or all components after a full
/// invalidation) fans out over a [`ParallelPolicy`]-sized scoped-thread
/// pool via [`scoped_map`]. Each component's rates are a pure function of
/// its own links/caps and worker results merge back in component-index
/// order, so allocations are **bit-identical to the serial path at any
/// thread count** — `tests/maxmin_differential.rs` pins this exactly.
///
/// [`remove_flow`]: MaxMinState::remove_flow
/// [`rate_perturb`]: MaxMinState::rate_perturb
/// [`link_change`]: MaxMinState::link_change
/// [`rates`]: MaxMinState::rates
#[derive(Debug, Clone)]
pub struct MaxMinState {
    capacity: Vec<f64>,
    /// Normalized (sorted, deduped) route per flow, original link indices,
    /// flattened CSR (struct-of-arrays).
    routes: RouteTable,
    /// Requested cap per flow (`INFINITY` = uncapped).
    caps: Vec<f64>,
    alive: Vec<bool>,
    n_alive: usize,
    rates: Vec<f64>,

    comps: Vec<Component>,
    /// Component id per flow; `u32::MAX` for empty-route flows.
    comp_of_flow: Vec<u32>,
    /// Component id per link; `u32::MAX` for unreferenced links.
    comp_of_link: Vec<u32>,
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    /// Flows added since the partition was built force a full re-solve.
    partition_stale: bool,
    /// What the last [`refresh`](MaxMinState::refresh) re-solved.
    last_scope: SolveScope,
    /// Component ids re-solved by the last refresh (when `last_scope` is
    /// [`SolveScope::Components`]), ascending.
    last_resolved: Vec<u32>,
    /// Thread budget for batched component re-solves.
    parallel: ParallelPolicy,
    /// Statistics: full solves vs component re-solves since construction.
    full_solves: u64,
    component_solves: u64,
    /// Reusable solve arena for the serial path (cleared, never freed).
    /// Worker threads allocate their own buffers; the merge order makes the
    /// results bit-identical either way.
    scratch: SolveScratch,
    /// Exact (default) or two-tier approximate re-solving.
    mode: SolveMode,
    /// Spine-link mask for [`SolveMode::TwoTier`] gating (empty = no link
    /// is spine: everything propagates at the exactness gate).
    spine: Vec<bool>,
    two_tier: TwoTierState,
}

/// Relative change below which a non-spine link's advertised level is not
/// worth re-propagating under [`SolveMode::TwoTier`] — tight enough that
/// pod-local arithmetic stays effectively exact.
const POD_GATE: f64 = 1e-12;

/// Worklist rounds before a two-tier propagation gives up and falls back
/// to one exact global solve (convergence insurance; the Charny iteration
/// settles in a handful of rounds in practice).
const TWO_TIER_MAX_ROUNDS: usize = 64;

impl MaxMinState {
    /// Creates an empty state over the given link-capacity table.
    pub fn new(capacity: &[f64]) -> Self {
        MaxMinState {
            capacity: capacity.to_vec(),
            routes: RouteTable::default(),
            caps: Vec::new(),
            alive: Vec::new(),
            n_alive: 0,
            rates: Vec::new(),
            comps: Vec::new(),
            comp_of_flow: Vec::new(),
            comp_of_link: vec![u32::MAX; capacity.len()],
            dirty: Vec::new(),
            dirty_list: Vec::new(),
            partition_stale: true,
            last_scope: SolveScope::Unchanged,
            last_resolved: Vec::new(),
            parallel: ParallelPolicy::default(),
            full_solves: 0,
            component_solves: 0,
            scratch: SolveScratch::default(),
            mode: SolveMode::Exact,
            spine: Vec::new(),
            two_tier: TwoTierState::default(),
        }
    }

    /// Sets the solve mode (builder form). Switching modes invalidates the
    /// incremental tables; the next refresh runs one full solve.
    pub fn with_solve_mode(mut self, mode: SolveMode) -> Self {
        self.set_solve_mode(mode);
        self
    }

    /// Sets the solve mode. Switching modes invalidates the incremental
    /// tables; the next refresh runs one full solve.
    pub fn set_solve_mode(&mut self, mode: SolveMode) {
        if self.mode == mode {
            return;
        }
        self.mode = mode;
        self.partition_stale = true;
        self.two_tier.initialized = false;
    }

    /// The current solve mode.
    pub fn solve_mode(&self) -> SolveMode {
        self.mode
    }

    /// Marks which links belong to the spine tier for
    /// [`SolveMode::TwoTier`] gating. `mask` is indexed like the capacity
    /// table; out-of-range links default to non-spine. A no-op for
    /// [`SolveMode::Exact`] correctness (the mask only affects gating).
    pub fn set_spine_links(&mut self, mask: &[bool]) {
        self.spine.clear();
        self.spine.extend_from_slice(mask);
    }

    /// Sets the thread budget for batched component re-solves (builder
    /// form). The allocation is bit-identical at any thread count; this
    /// only trades wall-clock time.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the thread budget for batched component re-solves.
    pub fn set_parallel(&mut self, parallel: ParallelPolicy) {
        self.parallel = parallel;
    }

    /// The current thread budget.
    pub fn parallel(&self) -> ParallelPolicy {
        self.parallel
    }

    /// Creates a state pre-loaded with flows (the drain-loop entry path).
    pub fn with_flows(capacity: &[f64], routes: &[Vec<u32>], caps: Option<&RateCaps>) -> Self {
        if let Some(c) = caps {
            assert_eq!(c.len(), routes.len(), "caps length must match flow count");
        }
        let mut s = Self::new(capacity);
        for (f, r) in routes.iter().enumerate() {
            s.add_flow(r, caps.map_or(f64::INFINITY, |c| c[f]));
        }
        s
    }

    /// Adds a flow; returns its id (dense, in insertion order).
    ///
    /// Adding flows marks the partition stale: the next [`rates`] call runs
    /// one full solve and re-partitions.
    ///
    /// [`rates`]: MaxMinState::rates
    ///
    /// # Panics
    ///
    /// Panics if the route references a link beyond the capacity table.
    pub fn add_flow(&mut self, route: &[u32], cap: f64) -> usize {
        let ls = normalize_route(route, self.capacity.len());
        let f = self.routes.len();
        self.rates.push(if ls.is_empty() {
            if cap.is_finite() {
                cap.max(0.0)
            } else {
                UNBOUNDED
            }
        } else {
            0.0
        });
        self.routes.push(&ls);
        self.caps.push(cap);
        self.alive.push(true);
        self.comp_of_flow.push(u32::MAX);
        self.n_alive += 1;
        self.partition_stale = true;
        f
    }

    /// Removes a flow (completion): its capacity share is released and only
    /// its component re-solves on the next [`rates`] call.
    ///
    /// [`rates`]: MaxMinState::rates
    pub fn remove_flow(&mut self, f: usize) {
        if !self.alive[f] {
            return;
        }
        self.alive[f] = false;
        self.n_alive -= 1;
        self.rates[f] = 0.0;
        if matches!(self.mode, SolveMode::TwoTier { .. }) {
            if self.two_tier.initialized {
                let MaxMinState {
                    routes,
                    alive,
                    two_tier,
                    ..
                } = self;
                let r = routes.route(f);
                if !two_tier.flow_mask[f] {
                    two_tier.flow_mask[f] = true;
                    two_tier.pending.push(f as u32);
                }
                for &l in r {
                    if !two_tier.link_dirty[l as usize] {
                        two_tier.link_dirty[l as usize] = true;
                        two_tier.dirty_links.push(l);
                    }
                }
                two_tier.sub_dead_entries += r.len();
                if two_tier.sub_dead_entries * 2 >= two_tier.sub_flows.len() {
                    two_tier.compact_subscribers(alive);
                }
            }
            return;
        }
        let c = self.comp_of_flow[f];
        if c != u32::MAX {
            self.comps[c as usize].alive_count =
                self.comps[c as usize].alive_count.saturating_sub(1);
            self.mark_dirty(c);
        }
    }

    /// Changes a flow's rate cap (DCQCN noise epoch); a no-op when the cap
    /// is unchanged, otherwise dirties the flow's component.
    pub fn rate_perturb(&mut self, f: usize, cap: f64) {
        if self.caps[f] == cap || !self.alive[f] {
            if self.alive[f] {
                self.caps[f] = cap;
            }
            return;
        }
        self.caps[f] = cap;
        if matches!(self.mode, SolveMode::TwoTier { .. }) {
            if self.two_tier.initialized {
                let MaxMinState {
                    routes,
                    rates,
                    two_tier,
                    ..
                } = self;
                let r = routes.route(f);
                // The rate tracks `min(cap, min1)` immediately — a cap move
                // must reach the drain even when no link level re-commits.
                let new_rate = if r.is_empty() {
                    if cap.is_finite() {
                        cap.max(0.0)
                    } else {
                        UNBOUNDED
                    }
                } else if cap.is_finite() {
                    cap.max(0.0).min(two_tier.min1[f])
                } else {
                    two_tier.min1[f]
                };
                if new_rate.to_bits() != rates[f].to_bits() {
                    rates[f] = new_rate;
                    if !two_tier.flow_mask[f] {
                        two_tier.flow_mask[f] = true;
                        two_tier.pending.push(f as u32);
                    }
                }
                // The flow's demand toward every route link changed.
                for &l in r {
                    if !two_tier.link_dirty[l as usize] {
                        two_tier.link_dirty[l as usize] = true;
                        two_tier.dirty_links.push(l);
                    }
                }
            }
            return;
        }
        let c = self.comp_of_flow[f];
        if c == u32::MAX {
            // Empty-route flow: rate is its cap directly.
            self.rates[f] = if cap.is_finite() {
                cap.max(0.0)
            } else {
                UNBOUNDED
            };
        } else {
            self.mark_dirty(c);
        }
    }

    /// Changes a link's capacity (degradation, failure, recovery); dirties
    /// the component crossing that link.
    ///
    /// # Panics
    ///
    /// Panics if `l` is beyond the capacity table.
    pub fn link_change(&mut self, l: usize, capacity: f64) {
        if self.capacity[l] == capacity {
            return;
        }
        self.capacity[l] = capacity;
        if matches!(self.mode, SolveMode::TwoTier { .. }) {
            if self.two_tier.initialized && !self.two_tier.link_dirty[l] {
                self.two_tier.link_dirty[l] = true;
                self.two_tier.dirty_links.push(l as u32);
            }
            return;
        }
        let c = self.comp_of_link[l];
        if c != u32::MAX {
            self.mark_dirty(c);
        }
    }

    /// The current allocation, re-solving lazily. Indexed by flow id;
    /// entries of removed flows read 0.
    pub fn rates(&mut self) -> &[f64] {
        self.refresh();
        &self.rates
    }

    /// Brings the allocation up to date (lazily, like [`rates`]) and reports
    /// what was re-solved, so derived per-flow state (link loads, scores,
    /// completion events) can be updated for exactly the flows whose rates
    /// may have changed. Read the result via [`current_rates`] and
    /// [`resolved_components`].
    ///
    /// [`rates`]: MaxMinState::rates
    /// [`current_rates`]: MaxMinState::current_rates
    /// [`resolved_components`]: MaxMinState::resolved_components
    pub fn refresh(&mut self) -> SolveScope {
        if let SolveMode::TwoTier { epsilon } = self.mode {
            return self.refresh_two_tier(epsilon);
        }
        self.last_resolved.clear();
        if self.needs_full_solve() {
            self.solve_full();
            self.last_scope = SolveScope::Full;
        } else if !self.dirty_list.is_empty() {
            let mut dirty = std::mem::take(&mut self.dirty_list);
            // Ascending component order keeps the thread-chunk assignment
            // deterministic (the merge is order-independent regardless:
            // components write disjoint flow ranges).
            dirty.sort_unstable();
            for &c in &dirty {
                self.dirty[c as usize] = false;
            }
            // Pod-level incremental re-partition: a dirty component whose
            // dead mass reached its live mass is rebuilt in place from its
            // own live flows (splitting pieces that removals disconnected
            // and dropping dead flows from its tables) before solving.
            // Removals never merge components, so this is exact — and it
            // happens entirely under `SolveScope::Components`, so quiescent
            // components are never touched even while long drains churn.
            let mut resolved: Vec<u32> = Vec::with_capacity(dirty.len());
            for &c in &dirty {
                let comp = &self.comps[c as usize];
                if comp.alive_count > 0 && comp.dead_count() >= comp.alive_count {
                    self.split_component(c, &mut resolved);
                } else {
                    resolved.push(c);
                }
            }
            // New piece ids append past the existing table, so ascending
            // order (the drain's per-link re-accumulation contract) needs
            // one sort.
            resolved.sort_unstable();
            self.solve_components(&resolved);
            self.component_solves += resolved.len() as u64;
            self.last_resolved = resolved;
            self.last_scope = SolveScope::Components;
        } else {
            self.last_scope = SolveScope::Unchanged;
        }
        self.last_scope
    }

    /// The allocation as of the last [`refresh`]/[`rates`] call, without
    /// re-solving. Indexed by flow id; removed flows read 0.
    ///
    /// [`refresh`]: MaxMinState::refresh
    /// [`rates`]: MaxMinState::rates
    pub fn current_rates(&self) -> &[f64] {
        &self.rates
    }

    /// Component ids the last [`refresh`](MaxMinState::refresh) re-solved
    /// (ascending). Meaningful when it returned [`SolveScope::Components`];
    /// empty after `Unchanged` or `Full`.
    pub fn resolved_components(&self) -> &[u32] {
        &self.last_resolved
    }

    /// The flows of component `c` as of the current partition, ascending.
    /// Includes flows removed since the partition was built (their rates
    /// read 0).
    pub fn component_flows(&self, c: u32) -> &[u32] {
        &self.comps[c as usize].flows
    }

    /// The links of component `c`, as indices into the capacity table this
    /// state was built over.
    pub fn component_links(&self, c: u32) -> &[u32] {
        &self.comps[c as usize].links
    }

    /// Live (not-removed) flow count.
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    /// Number of connected components in the current partition (0 before
    /// the first solve).
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// How many full solves this state has run (diagnostics/benchmarks).
    pub fn full_solves(&self) -> u64 {
        self.full_solves
    }

    /// How many single-component re-solves this state has run.
    pub fn component_solves(&self) -> u64 {
        self.component_solves
    }

    /// High-water mark (bytes) of the reusable solve arena — how much
    /// scratch the serial kernel path retains between solves.
    pub fn arena_hwm_bytes(&self) -> usize {
        self.scratch.hwm_bytes
    }

    /// Flows whose rate changed in the last [`refresh`] (ascending, deduped)
    /// — the [`SolveScope::Sparse`] feed. Removed flows appear here once
    /// (their rate dropped to 0). Empty unless the last refresh returned
    /// `Sparse`.
    ///
    /// [`refresh`]: MaxMinState::refresh
    pub fn changed_flows(&self) -> &[u32] {
        &self.two_tier.changed
    }

    /// Routed flows subscribed to dense link `l` (two-tier mode only; empty
    /// before the first two-tier refresh). May still list flows removed
    /// since the last CSR compaction — callers filter by their own liveness.
    pub(crate) fn two_tier_subscribers(&self, l: usize) -> &[u32] {
        let t = &self.two_tier;
        if !t.initialized || l + 1 >= t.sub_offsets.len() {
            return &[];
        }
        &t.sub_flows[t.sub_offsets[l] as usize..t.sub_offsets[l + 1] as usize]
    }

    /// How many sparse (two-tier) propagations this state has run.
    pub fn sparse_solves(&self) -> u64 {
        self.two_tier.sparse_solves
    }

    /// Total worklist rounds across all two-tier propagations.
    pub fn spine_rounds(&self) -> u64 {
        self.two_tier.spine_rounds
    }

    /// How many per-link advertised-level commits two-tier propagation made.
    pub fn spine_link_updates(&self) -> u64 {
        self.two_tier.spine_link_updates
    }

    /// How many two-tier propagations failed to settle and fell back to an
    /// exact global solve.
    pub fn fallback_solves(&self) -> u64 {
        self.two_tier.fallback_solves
    }

    /// [`refresh`](MaxMinState::refresh) under [`SolveMode::TwoTier`].
    fn refresh_two_tier(&mut self, epsilon: f64) -> SolveScope {
        self.last_resolved.clear();
        self.two_tier.changed.clear();
        if self.partition_stale || !self.two_tier.initialized {
            self.two_tier_init();
            self.last_scope = SolveScope::Full;
        } else if self.two_tier.dirty_links.is_empty() && self.two_tier.pending.is_empty() {
            self.last_scope = SolveScope::Unchanged;
        } else if self.two_tier_propagate(epsilon) {
            let t = &mut self.two_tier;
            t.sparse_solves += 1;
            std::mem::swap(&mut t.pending, &mut t.changed);
            t.changed.sort_unstable();
            for &f in &t.changed {
                t.flow_mask[f as usize] = false;
            }
            self.last_scope = SolveScope::Sparse;
        } else {
            // The worklist did not settle within the round budget: fall
            // back to one exact global solve (which also re-seeds `mu`).
            self.two_tier.fallback_solves += 1;
            self.two_tier_init();
            self.last_scope = SolveScope::Full;
        }
        self.last_scope
    }

    /// (Re)seeds the two-tier tables with one exact global solve: rates come
    /// straight from the event kernel, `mu` from its per-link saturation
    /// levels, and the subscriber CSR / route-min triples are rebuilt.
    fn two_tier_init(&mut self) {
        let nf = self.routes.len();
        let nl = self.capacity.len();
        let masked_caps: Vec<f64> = (0..nf).map(|f| self.masked_cap(f)).collect();
        for r in self.rates.iter_mut() {
            *r = 0.0;
        }
        {
            let MaxMinState {
                capacity,
                routes,
                rates,
                scratch,
                two_tier,
                ..
            } = self;
            waterfill_event_into(
                capacity,
                routes,
                &masked_caps,
                rates,
                scratch,
                Some(&mut two_tier.mu),
            );
        }
        let t = &mut self.two_tier;
        // Subscriber CSR over alive routed flows (counting sort).
        t.sub_offsets.clear();
        t.sub_offsets.resize(nl + 1, 0);
        for f in 0..nf {
            if self.alive[f] {
                for &l in self.routes.route(f) {
                    t.sub_offsets[l as usize + 1] += 1;
                }
            }
        }
        for l in 0..nl {
            t.sub_offsets[l + 1] += t.sub_offsets[l];
        }
        t.sub_flows.clear();
        t.sub_flows.resize(t.sub_offsets[nl] as usize, 0);
        {
            let cursor = &mut t.batch;
            cursor.clear();
            cursor.extend_from_slice(&t.sub_offsets[..nl]);
            for f in 0..nf {
                if self.alive[f] {
                    for &l in self.routes.route(f) {
                        t.sub_flows[cursor[l as usize] as usize] = f as u32;
                        cursor[l as usize] += 1;
                    }
                }
            }
            cursor.clear();
        }
        t.sub_dead_entries = 0;
        // Route-min triples from the seeded levels.
        t.min1.clear();
        t.min1.resize(nf, f64::INFINITY);
        t.min1_link.clear();
        t.min1_link.resize(nf, u32::MAX);
        t.min2.clear();
        t.min2.resize(nf, f64::INFINITY);
        for f in 0..nf {
            let (mut m1, mut m1l, mut m2) = (f64::INFINITY, u32::MAX, f64::INFINITY);
            for &l in self.routes.route(f) {
                let v = t.mu[l as usize];
                if v < m1 {
                    m2 = m1;
                    m1 = v;
                    m1l = l;
                } else if v < m2 {
                    m2 = v;
                }
            }
            t.min1[f] = m1;
            t.min1_link[f] = m1l;
            t.min2[f] = m2;
        }
        t.link_dirty.clear();
        t.link_dirty.resize(nl, false);
        t.dirty_links.clear();
        t.flow_mask.clear();
        t.flow_mask.resize(nf, false);
        t.pending.clear();
        t.initialized = true;
        self.partition_stale = false;
        self.full_solves += 1;
    }

    /// Runs the two-tier worklist to quiescence. Returns `false` when the
    /// round budget is exhausted (caller falls back to an exact solve).
    fn two_tier_propagate(&mut self, epsilon: f64) -> bool {
        let MaxMinState {
            capacity,
            routes,
            caps,
            alive,
            rates,
            spine,
            two_tier,
            ..
        } = self;
        let TwoTierState {
            mu,
            sub_offsets,
            sub_flows,
            min1,
            min1_link,
            min2,
            link_dirty,
            dirty_links,
            flow_mask,
            pending,
            demand,
            batch,
            spine_rounds,
            spine_link_updates,
            ..
        } = two_tier;
        let spine_gate = epsilon / 8.0;
        let mut rounds = 0usize;
        while !dirty_links.is_empty() {
            rounds += 1;
            if rounds > TWO_TIER_MAX_ROUNDS {
                return false;
            }
            *spine_rounds += 1;
            batch.clear();
            batch.append(dirty_links);
            // Ascending link order keeps propagation deterministic
            // regardless of the order perturbations arrived in.
            batch.sort_unstable();
            for &l in batch.iter() {
                link_dirty[l as usize] = false;
            }
            for bi in 0..batch.len() {
                let l = batch[bi] as usize;
                let subs = &sub_flows[sub_offsets[l] as usize..sub_offsets[l + 1] as usize];
                // Single-link progressive fill over the alive subscribers'
                // demands (each demand excludes `l` itself: the rate the
                // flow could take if this link did not constrain it).
                demand.clear();
                for &fid in subs {
                    let f = fid as usize;
                    if !alive[f] {
                        continue;
                    }
                    let excl = if min1_link[f] == l as u32 {
                        min2[f]
                    } else {
                        min1[f]
                    };
                    demand.push(excl.min(caps[f].max(0.0)));
                }
                let mut new_mu = UNBOUNDED;
                if !demand.is_empty() {
                    demand.sort_unstable_by(|a, b| a.partial_cmp(b).expect("demands are not NaN"));
                    let mut rem = capacity[l].max(0.0);
                    let mut k = demand.len();
                    for &d in demand.iter() {
                        let share = rem / k as f64;
                        if d <= share {
                            rem -= d;
                            k -= 1;
                        } else {
                            new_mu = share;
                            break;
                        }
                    }
                    // Every demand fit: the link constrains nobody.
                }
                let old_mu = mu[l];
                if new_mu == old_mu {
                    continue;
                }
                let gate = if spine.get(l).copied().unwrap_or(false) {
                    spine_gate
                } else {
                    POD_GATE
                };
                let rel = (new_mu - old_mu).abs() / old_mu.abs().max(new_mu.abs()).max(1.0);
                if rel <= gate {
                    continue;
                }
                mu[l] = new_mu;
                *spine_link_updates += 1;
                // Commit: rescan subscribers' route-min triples; flows whose
                // demand profile moved ripple to their other links.
                for &fid in subs {
                    let f = fid as usize;
                    if !alive[f] {
                        continue;
                    }
                    let r = routes.route(f);
                    let (mut m1, mut m1l, mut m2) = (f64::INFINITY, u32::MAX, f64::INFINITY);
                    for &rl in r {
                        let v = mu[rl as usize];
                        if v < m1 {
                            m2 = m1;
                            m1 = v;
                            m1l = rl;
                        } else if v < m2 {
                            m2 = v;
                        }
                    }
                    if m1.to_bits() == min1[f].to_bits()
                        && m1l == min1_link[f]
                        && m2.to_bits() == min2[f].to_bits()
                    {
                        continue;
                    }
                    min1[f] = m1;
                    min1_link[f] = m1l;
                    min2[f] = m2;
                    let new_rate = if caps[f].is_finite() {
                        caps[f].max(0.0).min(m1)
                    } else {
                        m1
                    };
                    if new_rate.to_bits() != rates[f].to_bits() {
                        rates[f] = new_rate;
                        if !flow_mask[f] {
                            flow_mask[f] = true;
                            pending.push(fid);
                        }
                    }
                    for &rl in r {
                        if rl as usize != l && !link_dirty[rl as usize] {
                            link_dirty[rl as usize] = true;
                            dirty_links.push(rl);
                        }
                    }
                }
            }
        }
        true
    }

    fn mark_dirty(&mut self, c: u32) {
        if !self.dirty[c as usize] {
            self.dirty[c as usize] = true;
            self.dirty_list.push(c);
        }
    }

    fn needs_full_solve(&self) -> bool {
        // Only flow *additions* force the global path: a new flow may merge
        // components, which the pod-level splitter cannot express. Removals
        // are handled incrementally at partition granularity by
        // [`split_component`](Self::split_component) during refresh.
        self.partition_stale
    }

    /// Masked cap table: removed flows get cap 0, pinning them to rate 0
    /// without rebuilding route tables (a zero-capped flow frees its links
    /// in the kernel's first freeze pass).
    fn masked_cap(&self, f: usize) -> f64 {
        if self.alive[f] {
            self.caps[f]
        } else {
            0.0
        }
    }

    /// Full invalidation: re-partition from the current live flows, then
    /// re-solve every component (fanned out under the thread budget).
    ///
    /// Partitioning first — rather than one monolithic waterfill over the
    /// whole problem — keeps the full path on the exact same per-component
    /// arithmetic as the incremental path, which is what makes parallel
    /// and serial execution bit-identical everywhere.
    fn solve_full(&mut self) {
        self.rebuild_partition();
        for f in 0..self.routes.len() {
            self.rates[f] = if !self.alive[f] {
                0.0
            } else if self.routes.route(f).is_empty() {
                // Unconstrained flow: its cap (or "infinity").
                if self.caps[f].is_finite() {
                    self.caps[f].max(0.0)
                } else {
                    UNBOUNDED
                }
            } else {
                0.0
            };
        }
        let all: Vec<u32> = (0..self.comps.len() as u32).collect();
        self.solve_components(&all);
        self.full_solves += 1;
    }

    /// Re-solves the given components, in parallel when the batch is big
    /// enough, and merges the rates back in component-index order.
    fn solve_components(&mut self, comp_ids: &[u32]) {
        if comp_ids.is_empty() {
            return;
        }
        let work: usize = comp_ids
            .iter()
            .map(|&c| self.comps[c as usize].alive_count)
            .sum();
        let policy = if work < PARALLEL_MIN_FLOWS {
            ParallelPolicy::SERIAL
        } else {
            self.parallel
        };
        if policy.threads() <= 1 {
            // Serial fast path: solve each component in place through the
            // state-owned scratch arena — zero allocations once the arena
            // has grown to the largest component. Same kernel, same inputs,
            // same merge order as the fan-out below, so the rates are
            // bit-identical to the parallel path.
            let MaxMinState {
                capacity,
                caps,
                alive,
                rates,
                comps,
                scratch,
                ..
            } = self;
            let mut local_capacity = std::mem::take(&mut scratch.local_capacity);
            let mut local_caps = std::mem::take(&mut scratch.local_caps);
            let mut local_rates = std::mem::take(&mut scratch.local_rates);
            for &c in comp_ids {
                let comp = &comps[c as usize];
                local_capacity.clear();
                local_capacity.extend(comp.links.iter().map(|&l| capacity[l as usize]));
                local_caps.clear();
                local_caps.extend(comp.flows.iter().map(|&f| {
                    if alive[f as usize] {
                        caps[f as usize]
                    } else {
                        0.0
                    }
                }));
                local_rates.clear();
                local_rates.resize(comp.flows.len(), 0.0);
                waterfill_event_into(
                    &local_capacity,
                    &comp.local_routes,
                    &local_caps,
                    &mut local_rates,
                    scratch,
                    None,
                );
                for (i, &f) in comp.flows.iter().enumerate() {
                    rates[f as usize] = local_rates[i];
                }
            }
            scratch.local_capacity = local_capacity;
            scratch.local_caps = local_caps;
            scratch.local_rates = local_rates;
            scratch.note_hwm();
            return;
        }
        let results: Vec<Vec<f64>> = {
            let this = &*self;
            scoped_map(policy, comp_ids, |&c| this.component_rates(c as usize))
        };
        let comps = &self.comps;
        let rates = &mut self.rates;
        for (&c, local) in comp_ids.iter().zip(&results) {
            for (i, &f) in comps[c as usize].flows.iter().enumerate() {
                rates[f as usize] = local[i];
            }
        }
    }

    /// The pure per-component solve: rates of `comps[c].flows` (in that
    /// order) as a function of nothing but the component's own links,
    /// routes and caps. Safe to run concurrently for distinct components.
    fn component_rates(&self, c: usize) -> Vec<f64> {
        let comp = &self.comps[c];
        let local_capacity: Vec<f64> = comp
            .links
            .iter()
            .map(|&l| self.capacity[l as usize])
            .collect();
        let caps: Vec<f64> = comp
            .flows
            .iter()
            .map(|&f| self.masked_cap(f as usize))
            .collect();
        let mut local_rates = vec![0.0_f64; comp.flows.len()];
        waterfill_event(&local_capacity, &comp.local_routes, &caps, &mut local_rates);
        local_rates
    }

    /// Rebuilds the flow–link connected components via union-find over
    /// links, using only live flows (so removals split components here).
    /// This is the spine-level (global) path, taken only when flows were
    /// added; removals re-partition pod-locally via
    /// [`split_component`](Self::split_component).
    fn rebuild_partition(&mut self) {
        let nl = self.capacity.len();
        // Union-find over links (shared helper — C4P's batch partitioner
        // uses the same structure).
        let mut uf = UnionFind::new(nl);
        for f in 0..self.routes.len() {
            let r = self.routes.route(f);
            if !self.alive[f] || r.is_empty() {
                continue;
            }
            for &l in &r[1..] {
                uf.union(l, r[0]);
            }
        }

        self.comps.clear();
        self.comp_of_link.clear();
        self.comp_of_link.resize(nl, u32::MAX);
        let mut comp_of_root: Vec<u32> = vec![u32::MAX; nl];
        for f in 0..self.routes.len() {
            self.comp_of_flow[f] = u32::MAX;
            if !self.alive[f] || self.routes.route(f).is_empty() {
                continue;
            }
            let root = uf.find(self.routes.route(f)[0]);
            let c = if comp_of_root[root as usize] == u32::MAX {
                let c = self.comps.len() as u32;
                comp_of_root[root as usize] = c;
                self.comps.push(Component::default());
                c
            } else {
                comp_of_root[root as usize]
            };
            self.comp_of_flow[f] = c;
            let comp = &mut self.comps[c as usize];
            comp.flows.push(f as u32);
            comp.alive_count += 1;
        }
        // Component link sets + local dense routes (flattened CSR).
        let mut local_of_link: Vec<u32> = vec![u32::MAX; nl];
        let routes = &self.routes;
        for comp in &mut self.comps {
            for &f in &comp.flows {
                let r = routes.route(f as usize);
                let mut local: Vec<u32> = Vec::with_capacity(r.len());
                for &l in r {
                    if local_of_link[l as usize] == u32::MAX {
                        local_of_link[l as usize] = comp.links.len() as u32;
                        comp.links.push(l);
                    }
                    local.push(local_of_link[l as usize]);
                }
                local.sort_unstable();
                comp.local_routes.push(&local);
            }
            for &l in &comp.links {
                local_of_link[l as usize] = u32::MAX;
            }
        }
        for (c, comp) in self.comps.iter().enumerate() {
            for &l in &comp.links {
                self.comp_of_link[l as usize] = c as u32;
            }
        }
        self.dirty.clear();
        self.dirty.resize(self.comps.len(), false);
        self.dirty_list.clear();
        self.partition_stale = false;
    }

    /// Pod-level incremental re-partition: rebuilds dead-heavy component
    /// `c` in place from its live flows only, never touching the rest of
    /// the fabric.
    ///
    /// The live flows are re-grouped by a union-find over the component's
    /// *local* link space; the first piece reuses slot `c` and further
    /// disconnected pieces append as fresh components. Dead flows drop out
    /// of every table (`comp_of_flow` reads `u32::MAX`), so long drains
    /// keep their re-solve cost proportional to the surviving flows — the
    /// rebuild is O(component routes) and amortizes to O(1) per removal.
    /// Old links referenced by no surviving flow stay listed on the first
    /// piece: scope-`Components` consumers must still see them once to
    /// re-zero their derived loads, and they cost nothing in the kernel
    /// (no route references them).
    ///
    /// Exactness: max-min allocations are independent of partition
    /// granularity — a component solved whole is bit-identical to its
    /// disconnected pieces solved separately — and removals never merge
    /// components, so rebuilding `c` alone is safe. Ids of every piece are
    /// pushed onto `resolved`.
    fn split_component(&mut self, c: u32, resolved: &mut Vec<u32>) {
        let old = std::mem::take(&mut self.comps[c as usize]);
        let n_local = old.links.len();
        let mut uf = UnionFind::new(n_local);
        for (i, &f) in old.flows.iter().enumerate() {
            if !self.alive[f as usize] {
                continue;
            }
            let r = old.local_routes.route(i);
            for &l in &r[1..] {
                uf.union(l, r[0]);
            }
        }

        // One pass distributes live flows to pieces and re-densifies their
        // routes. Pieces are link-disjoint, so the first piece to claim a
        // link owns it (`link_piece`/`link_local` never conflict).
        let mut piece_of_root: Vec<u32> = vec![u32::MAX; n_local];
        let mut link_piece: Vec<u32> = vec![u32::MAX; n_local];
        let mut link_local: Vec<u32> = vec![0; n_local];
        let mut pieces: Vec<Component> = Vec::new();
        for (i, &f) in old.flows.iter().enumerate() {
            if !self.alive[f as usize] {
                self.comp_of_flow[f as usize] = u32::MAX;
                continue;
            }
            let r = old.local_routes.route(i);
            let root = uf.find(r[0]) as usize;
            let p = if piece_of_root[root] == u32::MAX {
                let p = pieces.len() as u32;
                piece_of_root[root] = p;
                pieces.push(Component::default());
                p
            } else {
                piece_of_root[root]
            };
            let piece = &mut pieces[p as usize];
            let mut local: Vec<u32> = Vec::with_capacity(r.len());
            for &l in r {
                if link_piece[l as usize] != p {
                    link_piece[l as usize] = p;
                    link_local[l as usize] = piece.links.len() as u32;
                    piece.links.push(old.links[l as usize]);
                }
                local.push(link_local[l as usize]);
            }
            local.sort_unstable();
            piece.flows.push(f);
            piece.local_routes.push(&local);
            piece.alive_count += 1;
        }
        debug_assert!(!pieces.is_empty(), "split_component needs a live flow");

        // Orphan links (no surviving flow) ride on the first piece.
        for (l, &owner) in link_piece.iter().enumerate() {
            if owner == u32::MAX {
                pieces[0].links.push(old.links[l]);
            }
        }

        // Install: piece 0 reuses slot `c`, the rest append.
        let mut ids: Vec<u32> = Vec::with_capacity(pieces.len());
        for (k, piece) in pieces.into_iter().enumerate() {
            let id = if k == 0 {
                c
            } else {
                self.comps.push(Component::default());
                self.dirty.push(false);
                (self.comps.len() - 1) as u32
            };
            for &f in &piece.flows {
                self.comp_of_flow[f as usize] = id;
            }
            for &l in &piece.links {
                self.comp_of_link[l as usize] = id;
            }
            self.comps[id as usize] = piece;
            ids.push(id);
        }
        resolved.extend_from_slice(&ids);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_link_fair_share() {
        let rates = solve(&[100.0], &[vec![0], vec![0], vec![0], vec![0]], None);
        assert!(rates.iter().all(|&r| close(r, 25.0)));
    }

    #[test]
    fn classic_three_link_example() {
        // Flow A crosses links 0,1; flow B crosses 1; flow C crosses 0.
        // cap0=10, cap1=4 → B and A share link1 at 2 each; C gets 10-2=8.
        let rates = solve(&[10.0, 4.0], &[vec![0, 1], vec![1], vec![0]], None);
        assert!(close(rates[0], 2.0), "A={}", rates[0]);
        assert!(close(rates[1], 2.0), "B={}", rates[1]);
        assert!(close(rates[2], 8.0), "C={}", rates[2]);
    }

    #[test]
    fn zero_capacity_link_pins_flow() {
        let rates = solve(&[0.0, 100.0], &[vec![0, 1], vec![1]], None);
        assert!(close(rates[0], 0.0));
        assert!(close(rates[1], 100.0));
    }

    #[test]
    fn caps_are_respected_and_redistributed() {
        let caps = vec![3.0, f64::INFINITY];
        let rates = solve(&[10.0], &[vec![0], vec![0]], Some(&caps));
        assert!(close(rates[0], 3.0));
        assert!(close(rates[1], 7.0), "uncapped flow got {}", rates[1]);
    }

    #[test]
    fn empty_route_gets_cap_or_unbounded() {
        let caps = vec![5.0];
        let rates = solve(&[10.0], &[vec![]], Some(&caps));
        assert!(close(rates[0], 5.0));
        let rates = solve(&[10.0], &[vec![]], None);
        assert!(rates[0] > 1e30);
    }

    #[test]
    fn duplicate_links_counted_once() {
        let rates = solve(&[10.0], &[vec![0, 0]], None);
        assert!(close(rates[0], 10.0));
    }

    #[test]
    fn allocation_never_exceeds_capacity() {
        // Random-ish mesh checked for feasibility.
        let caps_links = [7.0, 3.0, 9.0, 2.0];
        let routes = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2],
            vec![2, 3],
            vec![3],
            vec![0],
        ];
        let rates = solve(&caps_links, &routes, None);
        let res = residual(&caps_links, &routes, &rates);
        for (l, r) in res.iter().enumerate() {
            assert!(*r >= -1e-6, "link {l} oversubscribed by {r}");
        }
        // Max-min property: every flow is bottlenecked somewhere.
        for (f, route) in routes.iter().enumerate() {
            let bottlenecked = route.iter().any(|&l| res[l as usize] <= 1e-6);
            assert!(bottlenecked, "flow {f} has slack on every link");
        }
    }

    #[test]
    fn no_flows_returns_empty() {
        assert!(solve(&[1.0], &[], None).is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond capacity table")]
    fn out_of_range_link_panics() {
        let _ = solve(&[1.0], &[vec![3]], None);
    }

    // ---- incremental state ----

    /// Asserts the state's rates equal the reference solve of its live
    /// flows (removed flows expected at rate 0).
    fn assert_matches_reference(
        state: &mut MaxMinState,
        capacity: &[f64],
        routes: &[Vec<u32>],
        caps: &[f64],
        alive: &[bool],
    ) {
        let live_routes: Vec<Vec<u32>> = routes
            .iter()
            .zip(alive)
            .filter(|(_, &a)| a)
            .map(|(r, _)| r.clone())
            .collect();
        let live_caps: Vec<f64> = caps
            .iter()
            .zip(alive)
            .filter(|(_, &a)| a)
            .map(|(c, _)| *c)
            .collect();
        let expect = solve(capacity, &live_routes, Some(&live_caps));
        let got = state.rates();
        let mut k = 0usize;
        for f in 0..routes.len() {
            if alive[f] {
                let (a, b) = (got[f], expect[k]);
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "flow {f}: incremental {a} vs reference {b}"
                );
                k += 1;
            } else {
                assert_eq!(got[f], 0.0, "removed flow {f} must read rate 0");
            }
        }
    }

    #[test]
    fn incremental_matches_reference_after_removals() {
        let capacity = vec![10.0, 4.0, 6.0, 8.0];
        // Two components: {0,1} via links {0,1}; {2,3} via links {2,3}.
        let routes = vec![vec![0, 1], vec![1], vec![2, 3], vec![3]];
        let mut caps = vec![f64::INFINITY; 4];
        let mut alive = vec![true; 4];
        let mut s = MaxMinState::with_flows(&capacity, &routes, None);
        assert_matches_reference(&mut s, &capacity, &routes, &caps, &alive);
        assert_eq!(s.component_count(), 2);

        s.remove_flow(1);
        alive[1] = false;
        assert_matches_reference(&mut s, &capacity, &routes, &caps, &alive);

        s.rate_perturb(3, 1.5);
        caps[3] = 1.5;
        assert_matches_reference(&mut s, &capacity, &routes, &caps, &alive);
    }

    #[test]
    fn disjoint_components_solve_independently() {
        let capacity = vec![10.0, 20.0];
        let routes = vec![vec![0], vec![0], vec![1], vec![1]];
        let mut s = MaxMinState::with_flows(&capacity, &routes, None);
        let r = s.rates();
        assert!(close(r[0], 5.0) && close(r[1], 5.0));
        assert!(close(r[2], 10.0) && close(r[3], 10.0));
        let full_before = s.full_solves();
        // Removing a flow in component 0 must not re-solve component 1.
        s.remove_flow(0);
        let r = s.rates();
        assert!(close(r[1], 10.0));
        assert!(close(r[2], 10.0) && close(r[3], 10.0));
        assert_eq!(s.full_solves(), full_before, "no full solve for one comp");
        assert_eq!(s.component_solves(), 1);
    }

    #[test]
    fn link_change_dirties_only_its_component() {
        let capacity = vec![10.0, 20.0];
        let routes = vec![vec![0], vec![1]];
        let mut s = MaxMinState::with_flows(&capacity, &routes, None);
        let _ = s.rates();
        s.link_change(1, 5.0);
        let r = s.rates();
        assert!(close(r[0], 10.0));
        assert!(close(r[1], 5.0));
        assert_eq!(s.component_solves(), 1);
    }

    #[test]
    fn dead_link_pins_component_to_zero() {
        let capacity = vec![10.0];
        let routes = vec![vec![0], vec![0]];
        let mut s = MaxMinState::with_flows(&capacity, &routes, None);
        let _ = s.rates();
        s.link_change(0, 0.0);
        let r = s.rates();
        assert!(close(r[0], 0.0) && close(r[1], 0.0));
    }

    #[test]
    fn cap_bursts_resolve_components_without_repartition() {
        let capacity = vec![10.0, 10.0, 10.0, 10.0];
        let routes = vec![vec![0], vec![1], vec![2], vec![3]];
        let mut s = MaxMinState::with_flows(&capacity, &routes, None);
        let _ = s.rates();
        let full_before = s.full_solves();
        // Dirty 3 of 4 singleton components (a DCQCN epoch re-cap burst):
        // the partition is intact, so each dirty component re-solves in
        // place — no full solve, no re-partition.
        s.rate_perturb(0, 1.0);
        s.rate_perturb(1, 2.0);
        s.rate_perturb(2, 3.0);
        let r = s.rates();
        assert!(close(r[0], 1.0) && close(r[1], 2.0) && close(r[2], 3.0));
        assert!(close(r[3], 10.0));
        assert_eq!(s.full_solves(), full_before, "no re-partition for caps");
        assert_eq!(s.component_solves(), 3);
    }

    #[test]
    fn dead_mass_splits_components_without_global_repartition() {
        // One component: flows 0/1 each own a private link, flows 2/3 bridge
        // both links. Removing the bridges makes the dead mass reach the
        // live mass, so the next refresh re-partitions **that component
        // only** (pod level): the piece with flow 0 reuses the slot, the
        // piece with flow 1 appends, no full solve runs, and the dead flows
        // drop out of the tables.
        let capacity = vec![10.0, 10.0, 30.0];
        let routes = vec![vec![0], vec![1], vec![0, 1], vec![0, 1], vec![2]];
        let mut s = MaxMinState::with_flows(&capacity, &routes, None);
        let _ = s.rates();
        assert_eq!(s.component_count(), 2);
        let full_before = s.full_solves();
        // One removal: 1 dead vs 3 alive in the component → plain re-solve.
        s.remove_flow(2);
        assert_eq!(s.refresh(), SolveScope::Components);
        assert_eq!(s.resolved_components(), &[0]);
        assert_eq!(s.component_flows(0).len(), 4, "tables not yet pruned");
        // Second removal: 2 dead vs 2 alive → pod-level split in place.
        s.remove_flow(3);
        assert_eq!(s.refresh(), SolveScope::Components);
        assert_eq!(s.resolved_components(), &[0, 2], "slot reuse + append");
        assert_eq!(s.full_solves(), full_before, "no global re-partition");
        assert_eq!(s.component_count(), 3);
        assert_eq!(s.component_flows(0), &[0], "dead flows pruned");
        assert_eq!(s.component_flows(2), &[1]);
        let r = s.rates();
        assert!(close(r[0], 10.0) && close(r[1], 10.0) && close(r[4], 30.0));
        assert_eq!(r[2], 0.0);
        assert_eq!(r[3], 0.0);
    }

    #[test]
    fn fully_dead_component_becomes_quiescent_husk() {
        let capacity = vec![10.0, 20.0];
        let routes = vec![vec![0], vec![1]];
        let mut s = MaxMinState::with_flows(&capacity, &routes, None);
        let _ = s.rates();
        s.remove_flow(0);
        // The husk re-solves once (its link loads must be re-derivable by
        // scope-Components consumers) and then never dirties again.
        assert_eq!(s.refresh(), SolveScope::Components);
        assert_eq!(s.resolved_components(), &[0]);
        assert_eq!(s.refresh(), SolveScope::Unchanged);
        assert_eq!(s.rates()[0], 0.0);
        assert!(close(s.rates()[1], 20.0));
    }

    #[test]
    fn refresh_scope_reports_what_resolved() {
        let capacity = vec![10.0, 20.0];
        let routes = vec![vec![0], vec![1]];
        let mut s = MaxMinState::with_flows(&capacity, &routes, None);
        assert_eq!(s.refresh(), SolveScope::Full, "first solve partitions");
        assert_eq!(s.refresh(), SolveScope::Unchanged);
        s.rate_perturb(1, 5.0);
        assert_eq!(s.refresh(), SolveScope::Components);
        assert_eq!(s.resolved_components(), &[1]);
        assert_eq!(s.component_flows(1), &[1]);
        assert_eq!(s.component_links(1), &[1]);
        assert_eq!(s.current_rates()[1], 5.0);
        assert_eq!(s.refresh(), SolveScope::Unchanged);
        assert!(s.resolved_components().is_empty());
    }

    #[test]
    fn full_solve_repartitions_after_split() {
        // One bridging flow joins two halves; removing it should split the
        // component at the next full re-partition.
        let capacity = vec![10.0, 10.0];
        let routes = vec![vec![0], vec![1], vec![0, 1]];
        let mut s = MaxMinState::with_flows(&capacity, &routes, None);
        let _ = s.rates();
        assert_eq!(s.component_count(), 1);
        s.remove_flow(2);
        let _ = s.rates();
        // The bridge is gone; adding a flow forces a re-partition.
        s.add_flow(&[0], f64::INFINITY);
        let _ = s.rates();
        assert_eq!(s.component_count(), 2);
    }

    #[test]
    fn add_flow_after_solve_is_picked_up() {
        let capacity = vec![12.0];
        let mut s = MaxMinState::new(&capacity);
        let a = s.add_flow(&[0], f64::INFINITY);
        assert!(close(s.rates()[a], 12.0));
        let b = s.add_flow(&[0], f64::INFINITY);
        let r = s.rates();
        assert!(close(r[a], 6.0) && close(r[b], 6.0));
    }

    #[test]
    fn empty_route_flows_are_unbounded_singletons() {
        let mut s = MaxMinState::new(&[10.0]);
        let a = s.add_flow(&[], f64::INFINITY);
        let b = s.add_flow(&[], 5.0);
        let c = s.add_flow(&[0], f64::INFINITY);
        let r = s.rates();
        assert!(r[a] > 1e30);
        assert!(close(r[b], 5.0));
        assert!(close(r[c], 10.0));
        s.rate_perturb(b, 2.0);
        assert!(close(s.rates()[b], 2.0));
    }

    #[test]
    fn parallel_state_is_bit_identical_to_serial() {
        // A problem large enough to clear PARALLEL_MIN_FLOWS: 128 disjoint
        // 4-flow components (512 flows) plus caps, mutated through every
        // entry point. Serial and 2-/4-thread states must agree on every
        // bit at every step, including the full-solve fallback.
        let ncomp = 128usize;
        let capacity: Vec<f64> = (0..2 * ncomp)
            .map(|l| 50.0 + (l % 17) as f64 * 13.0)
            .collect();
        let mut routes: Vec<Vec<u32>> = Vec::new();
        let mut caps: Vec<f64> = Vec::new();
        for c in 0..ncomp {
            let (a, b) = (2 * c as u32, 2 * c as u32 + 1);
            for (route, cap) in [
                (vec![a], f64::INFINITY),
                (vec![a, b], 40.0 + (c % 5) as f64),
                (vec![b], f64::INFINITY),
                (vec![b], 11.5),
            ] {
                routes.push(route);
                caps.push(cap);
            }
        }
        let mut states: Vec<MaxMinState> = [1usize, 2, 4]
            .iter()
            .map(|&t| {
                MaxMinState::with_flows(&capacity, &routes, Some(&caps))
                    .with_parallel(ParallelPolicy::with_threads(t))
            })
            .collect();
        let assert_identical = |states: &mut Vec<MaxMinState>, what: &str| {
            let reference: Vec<u64> = states[0].rates().iter().map(|r| r.to_bits()).collect();
            for s in states.iter_mut().skip(1) {
                let got: Vec<u64> = s.rates().iter().map(|r| r.to_bits()).collect();
                assert_eq!(
                    got,
                    reference,
                    "{what}: {} threads diverged",
                    s.parallel().threads()
                );
            }
        };
        assert_identical(&mut states, "initial solve");
        for s in states.iter_mut() {
            s.remove_flow(1);
            s.rate_perturb(6, 3.25);
            s.link_change(9, 140.0);
        }
        assert_identical(&mut states, "small dirty batch");
        // Dirty > half the flows → full-solve fallback path.
        for s in states.iter_mut() {
            for f in 0..routes.len() {
                s.rate_perturb(f, 17.0 + (f % 7) as f64);
            }
        }
        assert_identical(&mut states, "full-solve fallback");
        for s in states.iter_mut() {
            s.add_flow(&[0, 5, 11], f64::INFINITY);
        }
        assert_identical(&mut states, "after addition");
    }

    #[test]
    fn remove_is_idempotent_and_perturb_on_dead_flow_is_inert() {
        let mut s = MaxMinState::with_flows(&[10.0], &[vec![0], vec![0]], None);
        let _ = s.rates();
        s.remove_flow(0);
        s.remove_flow(0);
        s.rate_perturb(0, 3.0);
        let r = s.rates();
        assert_eq!(r[0], 0.0);
        assert!(close(r[1], 10.0));
        assert_eq!(s.n_alive(), 1);
    }
}
