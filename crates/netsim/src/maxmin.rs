//! Max-min fair bandwidth allocation by progressive filling.
//!
//! Given link capacities and flow routes, raise every unfrozen flow's rate
//! uniformly; when a link saturates, freeze the flows crossing it; repeat.
//! Optional per-flow caps model DCQCN rate limiting. This is the textbook
//! water-filling algorithm; routes are short (≤ 6 links), so the dense
//! implementation below is ample for the experiment sizes (≤ a few thousand
//! concurrent flows).

/// Per-flow rate caps; `f64::INFINITY` means uncapped.
pub type RateCaps = Vec<f64>;

/// Computes the max-min fair rate for each flow.
///
/// * `capacity[l]` — capacity of link `l` (any units; rates come back in the
///   same units). Zero-capacity links pin their flows to rate 0.
/// * `routes[f]` — the link indices flow `f` traverses (duplicates are
///   counted once).
/// * `caps` — optional per-flow rate caps.
///
/// Returns one rate per flow, in `routes` order.
///
/// # Panics
///
/// Panics if a route references a link index out of range, or if `caps` is
/// provided with a length different from `routes`.
pub fn solve(capacity: &[f64], routes: &[Vec<u32>], caps: Option<&RateCaps>) -> Vec<f64> {
    let nf = routes.len();
    if let Some(c) = caps {
        assert_eq!(c.len(), nf, "caps length must match flow count");
    }
    let mut rate = vec![0.0_f64; nf];
    if nf == 0 {
        return rate;
    }

    // Compact the link table to links actually referenced by some route —
    // topologies have thousands of links but a drain touches only hundreds,
    // and the filling loop below scans the whole table every round.
    let mut dense_of = vec![u32::MAX; capacity.len()];
    let mut dense_capacity: Vec<f64> = Vec::new();
    // Deduplicate link ids within each route (a flow crossing a link twice
    // still consumes its share once per direction; routes are directed so
    // duplicates only arise from degenerate inputs).
    let mut flow_links: Vec<Vec<u32>> = Vec::with_capacity(nf);
    for r in routes {
        let mut ls = r.clone();
        ls.sort_unstable();
        ls.dedup();
        for l in &mut ls {
            assert!(
                (*l as usize) < capacity.len(),
                "route references link {l} beyond capacity table"
            );
            if dense_of[*l as usize] == u32::MAX {
                dense_of[*l as usize] = dense_capacity.len() as u32;
                dense_capacity.push(capacity[*l as usize]);
            }
            *l = dense_of[*l as usize];
        }
        flow_links.push(ls);
    }
    let capacity: &[f64] = &dense_capacity;

    let nl = capacity.len();
    let mut remaining: Vec<f64> = capacity.iter().map(|c| c.max(0.0)).collect();
    let mut active_count = vec![0u32; nl];
    let mut active = vec![true; nf];
    // Flows with an empty route are unconstrained: give them their cap (or
    // infinity, represented as f64::MAX / 4 to avoid arithmetic overflow).
    const UNBOUNDED: f64 = f64::MAX / 4.0;

    for (f, ls) in flow_links.iter().enumerate() {
        if ls.is_empty() {
            rate[f] = caps.map_or(UNBOUNDED, |c| {
                if c[f].is_finite() {
                    c[f].max(0.0)
                } else {
                    UNBOUNDED
                }
            });
            active[f] = false;
            continue;
        }
        for &l in ls {
            active_count[l as usize] += 1;
        }
    }

    let mut n_active = active.iter().filter(|a| **a).count();
    let eps = 1e-9;

    while n_active > 0 {
        // Uniform increment limited by the tightest link or flow cap.
        let mut delta = f64::INFINITY;
        for l in 0..nl {
            if active_count[l] > 0 {
                delta = delta.min(remaining[l] / active_count[l] as f64);
            }
        }
        if let Some(c) = caps {
            for f in 0..nf {
                if active[f] && c[f].is_finite() {
                    delta = delta.min((c[f] - rate[f]).max(0.0));
                }
            }
        }
        if !delta.is_finite() {
            // No constraining link and no cap: shouldn't happen for routed
            // flows, but guard against livelock.
            delta = 0.0;
        }

        if delta > 0.0 {
            for f in 0..nf {
                if active[f] {
                    rate[f] += delta;
                }
            }
            for l in 0..nl {
                if active_count[l] > 0 {
                    remaining[l] -= delta * active_count[l] as f64;
                }
            }
        }

        // Freeze flows on saturated links and flows at their cap.
        let mut froze_any = false;
        for f in 0..nf {
            if !active[f] {
                continue;
            }
            let capped = caps.is_some_and(|c| c[f].is_finite() && rate[f] + eps >= c[f]);
            let saturated = flow_links[f]
                .iter()
                .any(|&l| remaining[l as usize] <= eps * capacity[l as usize].max(1.0));
            if capped || saturated {
                active[f] = false;
                froze_any = true;
                n_active -= 1;
                for &l in &flow_links[f] {
                    active_count[l as usize] -= 1;
                }
            }
        }
        if !froze_any {
            // Numerical stalemate: freeze the slowest-growing flow to ensure
            // termination (practically unreachable, but cheap insurance).
            if let Some(f) = (0..nf).find(|f| active[*f]) {
                active[f] = false;
                n_active -= 1;
                for &l in &flow_links[f] {
                    active_count[l as usize] -= 1;
                }
            }
        }
    }

    rate
}

/// The per-link leftover capacity after the given allocation.
pub fn residual(capacity: &[f64], routes: &[Vec<u32>], rates: &[f64]) -> Vec<f64> {
    let mut res: Vec<f64> = capacity.to_vec();
    for (r, &rate) in routes.iter().zip(rates) {
        let mut ls = r.clone();
        ls.sort_unstable();
        ls.dedup();
        for l in ls {
            res[l as usize] -= rate;
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_link_fair_share() {
        let rates = solve(&[100.0], &[vec![0], vec![0], vec![0], vec![0]], None);
        assert!(rates.iter().all(|&r| close(r, 25.0)));
    }

    #[test]
    fn classic_three_link_example() {
        // Flow A crosses links 0,1; flow B crosses 1; flow C crosses 0.
        // cap0=10, cap1=4 → B and A share link1 at 2 each; C gets 10-2=8.
        let rates = solve(&[10.0, 4.0], &[vec![0, 1], vec![1], vec![0]], None);
        assert!(close(rates[0], 2.0), "A={}", rates[0]);
        assert!(close(rates[1], 2.0), "B={}", rates[1]);
        assert!(close(rates[2], 8.0), "C={}", rates[2]);
    }

    #[test]
    fn zero_capacity_link_pins_flow() {
        let rates = solve(&[0.0, 100.0], &[vec![0, 1], vec![1]], None);
        assert!(close(rates[0], 0.0));
        assert!(close(rates[1], 100.0));
    }

    #[test]
    fn caps_are_respected_and_redistributed() {
        let caps = vec![3.0, f64::INFINITY];
        let rates = solve(&[10.0], &[vec![0], vec![0]], Some(&caps));
        assert!(close(rates[0], 3.0));
        assert!(close(rates[1], 7.0), "uncapped flow got {}", rates[1]);
    }

    #[test]
    fn empty_route_gets_cap_or_unbounded() {
        let caps = vec![5.0];
        let rates = solve(&[10.0], &[vec![]], Some(&caps));
        assert!(close(rates[0], 5.0));
        let rates = solve(&[10.0], &[vec![]], None);
        assert!(rates[0] > 1e30);
    }

    #[test]
    fn duplicate_links_counted_once() {
        let rates = solve(&[10.0], &[vec![0, 0]], None);
        assert!(close(rates[0], 10.0));
    }

    #[test]
    fn allocation_never_exceeds_capacity() {
        // Random-ish mesh checked for feasibility.
        let caps_links = [7.0, 3.0, 9.0, 2.0];
        let routes = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2],
            vec![2, 3],
            vec![3],
            vec![0],
        ];
        let rates = solve(&caps_links, &routes, None);
        let res = residual(&caps_links, &routes, &rates);
        for (l, r) in res.iter().enumerate() {
            assert!(*r >= -1e-6, "link {l} oversubscribed by {r}");
        }
        // Max-min property: every flow is bottlenecked somewhere.
        for (f, route) in routes.iter().enumerate() {
            let bottlenecked = route.iter().any(|&l| res[l as usize] <= 1e-6);
            assert!(bottlenecked, "flow {f} has slack on every link");
        }
    }

    #[test]
    fn no_flows_returns_empty() {
        assert!(solve(&[1.0], &[], None).is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond capacity table")]
    fn out_of_range_link_panics() {
        let _ = solve(&[1.0], &[vec![3]], None);
    }
}
