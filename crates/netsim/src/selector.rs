//! Path selection: how a QP's source port — and therefore its whole network
//! path — gets chosen.
//!
//! On the paper's hardware, a QP's path is fixed by its source UDP port via
//! ECMP hashing. The baseline lets the NIC bond and the switches hash
//! ([`EcmpSelector`]); C4P (crate `c4-traffic`) replaces this with engineered
//! allocation. Both implement [`PathSelector`], which is what the collective
//! layer calls when establishing connections.

use std::collections::HashMap;

use c4_topology::{FabricPath, PortSide, SwitchId, Topology};

use crate::flow::FlowKey;

/// A concrete path decision for one QP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathChoice {
    /// Physical port used on the sending NIC.
    pub src_side: PortSide,
    /// Physical port used on the receiving NIC.
    pub dst_side: PortSide,
    /// Spine crossing, `None` when source and destination leaves coincide.
    pub fabric: Option<FabricPath>,
}

/// Chooses the path for each QP at connection-establishment time.
pub trait PathSelector {
    /// Decides the path for the QP identified by `key`.
    fn select(&mut self, topo: &Topology, key: &FlowKey) -> PathChoice;

    /// Decides paths for a whole batch of QPs at once, equivalent to
    /// calling [`select`] on each key **in slice order** — the contract
    /// every override must keep, bit for bit: same choices, same selector
    /// state afterwards. The default is exactly that serial loop; stateful
    /// selectors with commuting sub-batches (C4P groups keys by leaf pair
    /// and fans disjoint-link partitions over worker threads) override it
    /// for wall-clock speed without changing a single decision.
    ///
    /// [`select`]: PathSelector::select
    fn select_batch(&mut self, topo: &Topology, keys: &[FlowKey]) -> Vec<PathChoice> {
        keys.iter().map(|k| self.select(topo, k)).collect()
    }

    /// The per-QP byte-split weight the collective engine applies when the
    /// caller does not supply an explicit weight function: streams split
    /// their bytes across QPs proportionally to this value. The default
    /// (uniform `1.0`) matches selectors without rate feedback; C4P returns
    /// its observed-rate EMA so faster paths carry more of each stream —
    /// borrowed straight from the master on the hot path, no table clone.
    fn byte_split_weight(&self, _key: &FlowKey) -> f64 {
        1.0
    }

    /// Human-readable selector name (for reports).
    fn name(&self) -> &'static str;

    /// Notifies the selector that previously allocated paths should be
    /// forgotten (job restart). Default: no-op.
    fn reset(&mut self) {}

    /// A token identifying the selector's current decision state: as long
    /// as the token and the topology are unchanged, repeated [`select`]
    /// calls for the same key must return the same choice — which is what
    /// lets the collective engine cache built flow plans across BSP
    /// iterations (QPs in real deployments are established once and
    /// reused). Return `None` (the default) when decisions may drift
    /// between calls and plans must not be cached.
    ///
    /// [`select`]: PathSelector::select
    fn cache_token(&self) -> Option<u64> {
        None
    }
}

/// Resolves the (src_leaf, dst_leaf) pair for a key under chosen sides.
pub fn leaves_for(
    topo: &Topology,
    key: &FlowKey,
    src_side: PortSide,
    dst_side: PortSide,
) -> (SwitchId, SwitchId) {
    let sp = topo.port_of_gpu(key.src_gpu, src_side);
    let dp = topo.port_of_gpu(key.dst_gpu, dst_side);
    (topo.port(sp).leaf, topo.port(dp).leaf)
}

/// The production baseline: the NIC bond transmits QPs round-robin over its
/// two physical ports ("two flows dispatched from two distinct physical
/// ports", §IV-B2), but the *receive* port and the spine path are fixed by
/// uncoordinated hashing — so two flows may land on the same receiving port
/// (Fig 9's imbalance) and on the same fabric link (Fig 10's collisions).
#[derive(Debug, Clone)]
pub struct EcmpSelector {
    salt: u64,
}

impl EcmpSelector {
    /// Creates a selector with the given hash seed (models the switch hash
    /// configuration; different seeds give different—but equally
    /// uncoordinated—placements).
    pub fn new(salt: u64) -> Self {
        EcmpSelector { salt }
    }
}

impl PathSelector for EcmpSelector {
    fn select(&mut self, topo: &Topology, key: &FlowKey) -> PathChoice {
        let digest = key.digest(self.salt);
        // Bond TX is deterministic (round-robin per QP); RX is hashed.
        let src_side = PortSide::from_index(key.qp as usize);
        let dst_side = PortSide::from_index(((digest >> 1) & 1) as usize);
        let (src_leaf, dst_leaf) = leaves_for(topo, key, src_side, dst_side);
        let fabric = if src_leaf == dst_leaf {
            None
        } else {
            // Routing removes down links from the ECMP group, so hash over
            // live paths only; fall back to any path if all are down.
            let all = topo.fabric_paths(src_leaf, dst_leaf);
            let live: Vec<FabricPath> = all
                .iter()
                .copied()
                .filter(|p| topo.link(p.up).is_up() && topo.link(p.down).is_up())
                .collect();
            let pool = if live.is_empty() { &all } else { &live };
            if pool.is_empty() {
                None
            } else {
                Some(pool[(digest >> 2) as usize % pool.len()])
            }
        };
        PathChoice {
            src_side,
            dst_side,
            fabric,
        }
    }

    fn name(&self) -> &'static str {
        "ecmp-baseline"
    }

    /// ECMP is a pure hash of (key, salt, live paths): cacheable per salt.
    fn cache_token(&self) -> Option<u64> {
        Some(crate::hash::mix64(self.salt ^ 0xEC3F_5EED))
    }
}

/// A simple engineered selector used by tests and as a lower bound for C4P:
/// QP *q* uses side *q mod 2* on **both** ends (keeping bonded-port load
/// balanced) and round-robins cross-leaf traffic over live spine paths.
#[derive(Debug, Clone, Default)]
pub struct RailLocalSelector {
    rr: HashMap<(SwitchId, SwitchId), usize>,
}

impl RailLocalSelector {
    /// Creates the selector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PathSelector for RailLocalSelector {
    fn select(&mut self, topo: &Topology, key: &FlowKey) -> PathChoice {
        let side = PortSide::from_index(key.qp as usize);
        let (src_leaf, dst_leaf) = leaves_for(topo, key, side, side);
        let fabric = if src_leaf == dst_leaf {
            None
        } else {
            let live: Vec<FabricPath> = topo
                .fabric_paths(src_leaf, dst_leaf)
                .into_iter()
                .filter(|p| topo.link(p.up).is_up() && topo.link(p.down).is_up())
                .collect();
            if live.is_empty() {
                None
            } else {
                let counter = self.rr.entry((src_leaf, dst_leaf)).or_insert(0);
                let choice = live[*counter % live.len()];
                *counter += 1;
                Some(choice)
            }
        };
        PathChoice {
            src_side: side,
            dst_side: side,
            fabric,
        }
    }

    fn name(&self) -> &'static str {
        "rail-local"
    }

    fn reset(&mut self) {
        self.rr.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::{ClosConfig, NodeId};

    fn key(t: &Topology, src_node: usize, dst_node: usize, rail: usize, qp: u16) -> FlowKey {
        FlowKey {
            src_gpu: t.gpu_at(NodeId::from_index(src_node), rail),
            dst_gpu: t.gpu_at(NodeId::from_index(dst_node), rail),
            comm: 7,
            channel: rail as u16,
            qp,
            incarnation: 0,
        }
    }

    #[test]
    fn ecmp_is_deterministic_per_key() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let mut sel = EcmpSelector::new(42);
        let k = key(&t, 0, 1, 0, 0);
        let a = sel.select(&t, &k);
        let b = sel.select(&t, &k);
        assert_eq!(a, b);
    }

    #[test]
    fn ecmp_rehashes_on_incarnation_bump() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let mut sel = EcmpSelector::new(42);
        let mut k = key(&t, 0, 1, 0, 0);
        let choices: Vec<PathChoice> = (0..16)
            .map(|inc| {
                k.incarnation = inc;
                sel.select(&t, &k)
            })
            .collect();
        // Over 16 rehashes at least two distinct placements must appear.
        let first = choices[0];
        assert!(choices.iter().any(|c| *c != first));
    }

    #[test]
    fn ecmp_avoids_down_paths() {
        let mut t = Topology::build(&ClosConfig::testbed_128_grouped(2));
        let k = key(&t, 0, 8, 0, 0);
        let mut sel = EcmpSelector::new(1);
        // Bring down all fabric paths except those via spine 0.
        for s in 1..t.num_spines() {
            let spine = t.spines()[s];
            t.set_spine_up(spine, false);
        }
        let c = sel.select(&t, &k);
        let p = c.fabric.expect("cross-group flow needs fabric");
        assert_eq!(p.spine, t.spines()[0]);
    }

    #[test]
    fn rail_local_balances_sides_and_paths() {
        let t = Topology::build(&ClosConfig::testbed_128_grouped(2));
        let mut sel = RailLocalSelector::new();
        let c0 = sel.select(&t, &key(&t, 0, 8, 0, 0));
        let c1 = sel.select(&t, &key(&t, 0, 8, 0, 1));
        assert_eq!(c0.src_side, PortSide::Left);
        assert_eq!(c0.dst_side, PortSide::Left);
        assert_eq!(c1.src_side, PortSide::Right);
        assert_eq!(c1.dst_side, PortSide::Right);
        // Round-robin avoids reusing the same path for the next same-leaf QP.
        let c2 = sel.select(&t, &key(&t, 1, 9, 0, 0));
        assert_ne!(
            c0.fabric.unwrap().up,
            c2.fabric.unwrap().up,
            "round-robin should advance"
        );
    }

    #[test]
    fn rail_local_same_leaf_is_local() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let mut sel = RailLocalSelector::new();
        let c = sel.select(&t, &key(&t, 0, 1, 0, 0));
        assert!(c.fabric.is_none(), "rail-aligned wiring keeps flow local");
    }

    #[test]
    fn reset_clears_round_robin() {
        let t = Topology::build(&ClosConfig::testbed_128_grouped(2));
        let mut sel = RailLocalSelector::new();
        let a = sel.select(&t, &key(&t, 0, 8, 0, 0));
        sel.reset();
        let b = sel.select(&t, &key(&t, 0, 8, 0, 0));
        assert_eq!(a, b, "after reset the sequence restarts");
    }
}
