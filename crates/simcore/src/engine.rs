//! A minimal discrete-event execution loop: an [`Engine`] owns the clock and
//! the pending-event queue and repeatedly dispatches to a [`Process`].
//!
//! Higher layers (the network simulator, the training-job simulator) define
//! their own event enums and implement [`Process`]; the engine guarantees the
//! clock is monotone and that same-timestamp events run in schedule order.

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Handler for simulation events of type `E`.
pub trait Process<E> {
    /// Handles one event fired at `now`; new events may be scheduled through
    /// `ctx`.
    fn handle(&mut self, now: SimTime, event: E, ctx: &mut Context<'_, E>);
}

/// Scheduling interface handed to [`Process::handle`].
#[derive(Debug)]
pub struct Context<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
    stop: &'a mut bool,
}

impl<E> Context<'_, E> {
    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past, which would break clock
    /// monotonicity.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event);
    }

    /// Requests that the engine stop after the current event completes.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

/// The discrete-event loop: a clock plus a deterministic event queue.
///
/// # Example
///
/// ```
/// use c4_simcore::{Engine, Process, SimDuration, SimTime};
/// use c4_simcore::engine::Context;
///
/// struct Counter(u32);
/// impl Process<()> for Counter {
///     fn handle(&mut self, _now: SimTime, _e: (), ctx: &mut Context<'_, ()>) {
///         self.0 += 1;
///         if self.0 < 3 {
///             ctx.schedule_in(SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.schedule_at(SimTime::ZERO, ());
/// let mut proc = Counter(0);
/// engine.run(&mut proc);
/// assert_eq!(proc.0, 3);
/// assert_eq!(engine.now(), SimTime::from_secs(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute instant (must not be in the past).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event);
    }

    /// Schedules an event `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Runs until the queue drains or a handler requests a stop. Returns the
    /// number of events dispatched.
    pub fn run(&mut self, process: &mut impl Process<E>) -> u64 {
        self.run_until(SimTime::MAX, process)
    }

    /// Runs until the queue drains, a handler requests a stop, or the next
    /// event would fire after `deadline` (that event stays queued; the clock
    /// advances to `deadline`). Returns the number of events dispatched.
    pub fn run_until(&mut self, deadline: SimTime, process: &mut impl Process<E>) -> u64 {
        let mut dispatched = 0;
        let mut stop = false;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                self.now = deadline;
                return dispatched;
            }
            let (t, event) = self.queue.pop().expect("peeked event must exist");
            debug_assert!(t >= self.now, "event queue went backwards");
            self.now = t;
            let mut ctx = Context {
                queue: &mut self.queue,
                now: t,
                stop: &mut stop,
            };
            process.handle(t, event, &mut ctx);
            dispatched += 1;
            if stop {
                return dispatched;
            }
        }
        if deadline != SimTime::MAX {
            self.now = deadline;
        }
        dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl Process<u32> for Recorder {
        fn handle(&mut self, now: SimTime, event: u32, ctx: &mut Context<'_, u32>) {
            self.seen.push((now.as_nanos(), event));
            if event == 1 {
                ctx.schedule_in(SimDuration::from_nanos(10), 99);
            }
            if event == 42 {
                ctx.request_stop();
            }
        }
    }

    #[test]
    fn dispatches_in_order_and_cascades() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_nanos(5), 1);
        engine.schedule_at(SimTime::from_nanos(3), 0);
        let mut p = Recorder::default();
        let n = engine.run(&mut p);
        assert_eq!(n, 3);
        assert_eq!(p.seen, vec![(3, 0), (5, 1), (15, 99)]);
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1), 1);
        engine.schedule_at(SimTime::from_secs(10), 2);
        let mut p = Recorder::default();
        let n = engine.run_until(SimTime::from_secs(5), &mut p);
        assert_eq!(n, 2); // event 1 plus its cascade
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.now(), SimTime::from_secs(5));
    }

    #[test]
    fn stop_request_halts_loop() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_nanos(1), 42);
        engine.schedule_at(SimTime::from_nanos(2), 7);
        let mut p = Recorder::default();
        let n = engine.run(&mut p);
        assert_eq!(n, 1);
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(SimTime::from_secs(1), 1);
        let mut p = Recorder::default();
        engine.run(&mut p);
        engine.schedule_at(SimTime::ZERO, 2);
    }
}
