//! A deterministic event queue: events pop in timestamp order, and events
//! scheduled for the same instant pop in insertion (FIFO) order.
//!
//! Determinism matters here: the whole reproduction promises bit-identical
//! results for a given seed, which a plain `BinaryHeap` over `(time, event)`
//! would violate whenever two events share a timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered, insertion-stable queue of events of type `E`.
///
/// # Example
///
/// ```
/// use c4_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), "b");
/// q.schedule(SimTime::from_secs(1), "c");
/// q.schedule(SimTime::ZERO, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
