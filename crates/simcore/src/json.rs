//! Minimal JSON tree: build, pretty-print, parse.
//!
//! The workspace's crates.io dependencies are offline stubs, so the usual
//! `serde_json` path is unavailable; this module provides the small
//! machine-readable surface the experiment harness needs — enough to write
//! `BENCH_*.json` files from the bench binaries and read them back for CI
//! regression gates, closing the ROADMAP's "Serde is schema-only" item for
//! benchmark outputs. It is a strict subset of JSON: objects preserve
//! insertion order, numbers are `f64`, and non-finite numbers serialize as
//! `null` (JSON has no NaN/Infinity).

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved as inserted/parsed.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an empty object (append with [`JsonValue::push`]).
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends `key: value` to an object; panics on non-objects (builder
    /// misuse, not data-dependent).
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(entries) => entries.push((key.into(), value.into())),
            other => panic!("push on non-object JsonValue: {other:?}"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline
    /// (the on-disk `BENCH_*.json` format).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, JsonValue::Array(_) | JsonValue::Object(_)));
                if scalar {
                    out.push_str(&self.to_string());
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        pad(out, depth + 1);
                        v.write_pretty(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, depth);
                    out.push(']');
                }
            }
            JsonValue::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    pad(out, depth + 1);
                    out.push_str(&format!("{}: ", JsonValue::Str(k.clone())));
                    v.write_pretty(out, depth + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }

    /// Parses a JSON document (the subset this module emits plus standard
    /// escapes and whitespace).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    /// Compact (single-line) JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) if !n.is_finite() => f.write_str("null"),
            JsonValue::Num(n) => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}: {v}", JsonValue::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl<V: Into<JsonValue>> From<Vec<V>> for JsonValue {
    fn from(v: Vec<V>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

/// Deepest container nesting `parse` accepts. Recursive descent allocates a
/// stack frame per `[`/`{`, so unbounded input depth is a stack overflow —
/// an abort, not an `Err` — and the CI perf gate parses checked-in
/// `BENCH_*.json` files. Real documents here nest a handful of levels; 128
/// is far above anything legitimate and far below frame-count danger.
const MAX_PARSE_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            // `depth` counts enclosing containers (the root parses at 0), so
            // this container is nesting level `depth + 1`: rejecting at
            // `depth >= MAX_PARSE_DEPTH` makes MAX_PARSE_DEPTH the deepest
            // accepted level, exactly as documented on the constant. Scalars
            // don't recurse, so only container arms check.
            if depth >= MAX_PARSE_DEPTH {
                return Err(format!(
                    "nesting deeper than {MAX_PARSE_DEPTH} levels at byte {pos}"
                ));
            }
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            if depth >= MAX_PARSE_DEPTH {
                return Err(format!(
                    "nesting deeper than {MAX_PARSE_DEPTH} levels at byte {pos}"
                ));
            }
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                entries.push((key, parse_value(bytes, pos, depth + 1)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(JsonValue::Num)
                .ok_or_else(|| format!("malformed number at byte {start}"))
        }
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not emitted by this module;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = s.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_display_compact() {
        let mut obj = JsonValue::object();
        obj.push("name", "fig3")
            .push("gpus", 4096usize)
            .push("rows", vec![1.5f64, 2.0, -3.25]);
        assert_eq!(
            obj.to_string(),
            r#"{"name": "fig3", "gpus": 4096, "rows": [1.5, 2, -3.25]}"#
        );
    }

    #[test]
    fn round_trips_through_parse() {
        let mut row = JsonValue::object();
        row.push("gpus", 16usize).push("loss", 0.0312f64);
        let mut doc = JsonValue::object();
        doc.push("schema", "c4-bench-v1")
            .push("ok", true)
            .push("none", JsonValue::Null)
            .push("rows", JsonValue::Array(vec![row]));
        for text in [doc.to_string(), doc.pretty()] {
            let back = JsonValue::parse(&text).expect("parses");
            assert_eq!(back, doc, "round-trip of {text}");
        }
        let loss = doc
            .get("rows")
            .and_then(|r| r.as_array())
            .and_then(|r| r[0].get("loss"))
            .and_then(|v| v.as_f64());
        assert_eq!(loss, Some(0.0312));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = JsonValue::Str("a\"b\\c\nd\te\u{1}é".into());
        let text = s.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    /// Regression: the recursive-descent parser had no depth guard, so a
    /// deeply nested document (e.g. a malicious or corrupted `BENCH_*.json`
    /// handed to the CI gate) overflowed the stack — an abort the caller
    /// could never catch. Depth past [`MAX_PARSE_DEPTH`] must be a plain
    /// `Err`, while legitimate nesting keeps parsing.
    #[test]
    fn deeply_nested_input_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "unexpected error: {err}");

        let deep_obj = "{\"k\":".repeat(100_000) + "1" + &"}".repeat(100_000);
        assert!(JsonValue::parse(&deep_obj).is_err());

        // At and under the cap, nesting still parses fine — including a
        // scalar inside the deepest accepted container (the guard counts
        // containers, not values).
        let ok = "[".repeat(MAX_PARSE_DEPTH) + "1" + &"]".repeat(MAX_PARSE_DEPTH);
        assert!(JsonValue::parse(&ok).is_ok());
        // One past the cap is the first rejected depth.
        let over = "[".repeat(MAX_PARSE_DEPTH + 1) + &"]".repeat(MAX_PARSE_DEPTH + 1);
        let err = JsonValue::parse(&over).unwrap_err();
        assert!(err.contains("nesting deeper"), "unexpected error: {err}");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(JsonValue::Num(42.0).to_string(), "42");
        assert_eq!(JsonValue::Num(-7.0).to_string(), "-7");
        assert_eq!(JsonValue::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn pretty_is_indented_and_parseable() {
        let mut doc = JsonValue::object();
        doc.push("a", 1usize);
        doc.push("b", JsonValue::Array(vec![JsonValue::object()]));
        let p = doc.pretty();
        assert!(p.contains("\n  \"a\": 1,\n"), "pretty output: {p}");
        assert_eq!(JsonValue::parse(&p).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_nested_structures() {
        let text = r#"
            { "x": [ { "y": 1e3 }, [true, false, null] ],
              "z": -0.25 }
        "#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(
            v.get("x").unwrap().as_array().unwrap()[0]
                .get("y")
                .unwrap()
                .as_f64(),
            Some(1000.0)
        );
        assert_eq!(v.get("z").unwrap().as_f64(), Some(-0.25));
    }
}
