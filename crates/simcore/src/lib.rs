//! # c4-simcore
//!
//! Deterministic discrete-event simulation engine underpinning the C4
//! reproduction.
//!
//! The C4 paper evaluates its two subsystems (C4D fault diagnosis and C4P
//! traffic engineering) on a physical GPU cluster. This workspace replaces the
//! physical substrate with simulation; every layer above (topology, network,
//! collectives, training jobs) is driven by the primitives defined here:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`EventQueue`] — a deterministic priority queue of timestamped events
//!   (FIFO among equal timestamps).
//! * [`DetRng`] — a seeded random source with the distributions the fault and
//!   congestion models need (exponential, log-normal, Poisson).
//! * [`ParallelPolicy`] / [`scoped_map`] — deterministic scoped-thread
//!   fan-out for the layers whose work decomposes into independent items
//!   (per-component max-min re-solves, per-stream route assembly); results
//!   are bit-identical at any thread count.
//! * [`JsonValue`] — a tiny JSON tree (build/print/parse) so the bench
//!   binaries emit machine-readable `BENCH_*.json` files without a
//!   networked `serde_json`.
//! * [`stats`] / [`series`] — streaming statistics and time-series recording
//!   used by telemetry and the experiment harness.
//!
//! # Example
//!
//! ```
//! use c4_simcore::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "later");
//! q.schedule(SimTime::ZERO, "now");
//! let (t0, e0) = q.pop().unwrap();
//! assert_eq!((t0, e0), (SimTime::ZERO, "now"));
//! ```

pub mod engine;
pub mod event;
pub mod json;
pub mod parallel;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod unionfind;
pub mod units;

pub use engine::{Engine, Process};
pub use event::EventQueue;
pub use json::JsonValue;
pub use parallel::{scoped_map, ParallelPolicy};
pub use rng::DetRng;
pub use series::TimeSeries;
pub use stats::{Histogram, StreamingStats};
pub use time::{SimDuration, SimTime};
pub use unionfind::UnionFind;
pub use units::{Bandwidth, ByteSize};
