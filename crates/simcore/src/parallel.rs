//! Deterministic data parallelism over scoped threads.
//!
//! The simulation layers above (`c4_netsim`'s per-component max-min
//! re-solve, `c4_collectives`' per-stream route assembly) decompose into
//! **independent** work items whose results are pure functions of their
//! inputs. [`ParallelPolicy`] says how many OS threads to spend on such a
//! decomposition and [`scoped_map`] executes it: items are split into
//! contiguous chunks, each chunk runs on one scoped thread
//! ([`std::thread::scope`], so no `'static` bounds and no extra
//! dependencies), and the per-item results are returned **in input order**.
//!
//! Because every item is computed by the same pure function and merged back
//! by position, the output is bit-identical at any thread count — the whole
//! point: callers opt into parallelism for wall-clock speed without giving
//! up the workspace's determinism guarantees. The `C4_THREADS` environment
//! variable (a number, or `max` for [`std::thread::available_parallelism`])
//! selects the default policy, which is how CI runs the entire test suite
//! serial and parallel and expects byte-for-byte identical outcomes.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// How many worker threads deterministic fan-out sections may use.
///
/// `threads == 1` means fully serial execution on the calling thread (no
/// spawns at all). The policy is plumbed through [`DrainConfig`]-style
/// configuration structs rather than read ambiently, so a single process
/// can mix serial and parallel solvers (e.g. a differential test pinning a
/// 4-thread state against a serial reference).
///
/// [`DrainConfig`]: ../c4_netsim/struct.DrainConfig.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelPolicy {
    /// Worker thread count (1 = serial).
    pub threads: NonZeroUsize,
}

impl ParallelPolicy {
    /// Fully serial execution (the reference behavior).
    pub const SERIAL: ParallelPolicy = ParallelPolicy {
        threads: NonZeroUsize::MIN,
    };

    /// A policy with exactly `threads` workers (0 is clamped to 1).
    pub fn with_threads(threads: usize) -> Self {
        ParallelPolicy {
            threads: NonZeroUsize::new(threads.max(1)).expect("clamped to >= 1"),
        }
    }

    /// One worker per available hardware thread.
    pub fn max() -> Self {
        ParallelPolicy {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The policy selected by the `C4_THREADS` environment variable:
    /// a positive integer pins the count, `max` (or `0`) means
    /// [`ParallelPolicy::max`], anything else — including the variable
    /// being unset — means [`ParallelPolicy::SERIAL`]. The variable is read
    /// once per process.
    pub fn from_env() -> Self {
        static ENV: OnceLock<ParallelPolicy> = OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("C4_THREADS") {
            Ok(v) if v.eq_ignore_ascii_case("max") => ParallelPolicy::max(),
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) => ParallelPolicy::max(),
                Ok(n) => ParallelPolicy::with_threads(n),
                Err(_) => ParallelPolicy::SERIAL,
            },
            Err(_) => ParallelPolicy::SERIAL,
        })
    }

    /// Worker count as a plain `usize`.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// True when this policy never spawns.
    pub fn is_serial(&self) -> bool {
        self.threads.get() == 1
    }
}

/// The default policy honors `C4_THREADS` (serial when unset), so every
/// config struct embedding a policy picks the CI matrix dimension up
/// automatically.
impl Default for ParallelPolicy {
    fn default() -> Self {
        ParallelPolicy::from_env()
    }
}

/// Maps `f` over `items`, possibly on several scoped threads, returning the
/// results **in input order**.
///
/// `f` must be a pure function of its item (plus captured shared state —
/// captures are only borrowed immutably): the contract is that the returned
/// vector is bit-identical for every `policy`, which holds because each
/// item is computed exactly once by the same code and merged by position.
/// Work is split into at most `policy.threads()` contiguous chunks; with a
/// serial policy (or fewer than two items) everything runs inline on the
/// caller's thread and nothing is spawned.
pub fn scoped_map<T, R, F>(policy: ParallelPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = policy.threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    // Contiguous chunks, sized so the first `rem` chunks get one extra item.
    let base = items.len() / workers;
    let rem = items.len() % workers;
    let mut chunks: Vec<&[T]> = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        chunks.push(&items[start..start + len]);
        start += len;
    }

    let f = &f;
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("scoped_map worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let f = |&x: &u64| x * x + 1;
        let serial = scoped_map(ParallelPolicy::SERIAL, &items, f);
        for threads in [2, 3, 4, 7, 16, 1000, 2000] {
            let par = scoped_map(ParallelPolicy::with_threads(threads), &items, f);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn float_results_are_bit_identical() {
        // The guarantee the max-min solver relies on: merging by position
        // preserves every bit, not just approximate value.
        let items: Vec<f64> = (0..257).map(|i| 0.1 + i as f64 * 0.3).collect();
        let f = |&x: &f64| (x.sin() * 1e9).sqrt() / (x + 1.0);
        let serial = scoped_map(ParallelPolicy::SERIAL, &items, f);
        let par = scoped_map(ParallelPolicy::with_threads(4), &items, f);
        let a: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single_item_never_spawn() {
        let none: Vec<u32> = Vec::new();
        assert!(scoped_map(ParallelPolicy::with_threads(8), &none, |&x| x).is_empty());
        let one = [41u32];
        assert_eq!(
            scoped_map(ParallelPolicy::with_threads(8), &one, |&x| x + 1),
            vec![42]
        );
    }

    #[test]
    fn policy_constructors_clamp() {
        assert_eq!(ParallelPolicy::with_threads(0).threads(), 1);
        assert!(ParallelPolicy::SERIAL.is_serial());
        assert!(!ParallelPolicy::with_threads(2).is_serial());
        assert!(ParallelPolicy::max().threads() >= 1);
    }

    #[test]
    fn workers_never_exceed_items() {
        // 3 items across "8 threads" must still produce all 3, in order.
        let items = [10u8, 20, 30];
        assert_eq!(
            scoped_map(ParallelPolicy::with_threads(8), &items, |&x| x / 10),
            vec![1, 2, 3]
        );
    }
}
