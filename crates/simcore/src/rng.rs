//! Deterministic randomness for the simulation.
//!
//! [`DetRng`] wraps a seeded [`rand::rngs::StdRng`] and adds the handful of
//! distributions the fault-injection and congestion models need (exponential,
//! log-normal, Poisson) so the workspace does not need `rand_distr`.
//!
//! Every experiment takes a single root seed; subsystems derive child seeds
//! via [`DetRng::fork`] so adding randomness in one subsystem never perturbs
//! another (a property the regression tests rely on).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, forkable random source.
///
/// # Example
///
/// ```
/// use c4_simcore::DetRng;
/// use rand::RngCore;
/// let mut a = DetRng::seed_from(7);
/// let mut b = DetRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator labelled by `stream`.
    ///
    /// Children with different labels are statistically independent; the same
    /// label always yields the same child for a given parent state position,
    /// so call order matters only among `fork`s themselves.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        let base = self.inner.gen::<u64>();
        DetRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal deviate (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        // Draw u1 away from zero to keep ln() finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential deviate with the given mean (`mean = 1/λ`).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Log-normal deviate parameterized by the *median* and the σ of the
    /// underlying normal. Used for manual-diagnosis durations (heavy tail).
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0);
        median * (sigma * self.normal()).exp()
    }

    /// Poisson deviate with the given rate `lambda`.
    ///
    /// Uses Knuth's product method for small λ and a normal approximation for
    /// large λ, which is ample for fault-count draws.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let v = self.normal_with(lambda, lambda.sqrt());
            return v.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks one element uniformly, or `None` when the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Weighted pick: returns an index with probability proportional to its
    /// weight, or `None` if all weights are zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 && w.is_finite() {
                if target < *w {
                    return Some(i);
                }
                target -= *w;
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(1234);
        let mut b = DetRng::seed_from(1234);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_label_order() {
        let mut root1 = DetRng::seed_from(5);
        let mut root2 = DetRng::seed_from(5);
        let mut a1 = root1.fork(1);
        let mut a2 = root2.fork(1);
        assert_eq!(a1.next_u64(), a2.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::seed_from(9);
        let n = 20_000;
        let mean = 3.5;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.1, "estimated {est}");
    }

    #[test]
    fn poisson_mean_is_close_small_and_large_lambda() {
        let mut rng = DetRng::seed_from(11);
        for lambda in [0.5, 4.0, 120.0] {
            let n = 5_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let est = sum as f64 / n as f64;
            assert!(
                (est - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda={lambda} estimated {est}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-3.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::seed_from(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mut rng = DetRng::seed_from(17);
        for _ in 0..100 {
            let i = rng.pick_weighted(&[0.0, 2.0, 0.0]).unwrap();
            assert_eq!(i, 1);
        }
        assert_eq!(rng.pick_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.pick_weighted(&[]), None);
    }

    #[test]
    fn weighted_pick_distribution() {
        let mut rng = DetRng::seed_from(19);
        let weights = [1.0, 3.0];
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[rng.pick_weighted(&weights).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_handles_empty() {
        let mut rng = DetRng::seed_from(29);
        let empty: [u8; 0] = [];
        assert!(rng.pick(&empty).is_none());
        assert!(rng.pick(&[42]).is_some());
    }
}
