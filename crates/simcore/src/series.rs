//! Time-series recording: `(SimTime, f64)` samples with binning and
//! moving-average helpers.
//!
//! The figure-regeneration binaries (Fig 11 CNP counts, Fig 12 per-iteration
//! bus bandwidth, Fig 13 per-port bandwidth) all print series recorded with
//! this type.

use crate::time::{SimDuration, SimTime};

/// An append-only series of timestamped samples.
///
/// # Example
///
/// ```
/// use c4_simcore::{TimeSeries, SimTime};
/// let mut s = TimeSeries::new("busbw_gbps");
/// s.record(SimTime::from_secs(1), 350.0);
/// s.record(SimTime::from_secs(2), 355.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.mean(), 352.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded timestamp (series must be
    /// recorded in time order).
    pub fn record(&mut self, t: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "time series must be recorded in order");
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The raw values in record order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The raw timestamps in record order.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Mean of all values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Minimum value; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum value; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Averages samples into fixed-width time bins over `[start, end)`;
    /// returns `(bin_center_time, mean_value)` for each non-empty bin.
    pub fn bin_by_time(
        &self,
        start: SimTime,
        end: SimTime,
        width: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!width.is_zero(), "bin width must be positive");
        let mut out = Vec::new();
        if end <= start {
            return out;
        }
        let nbins = (end - start).as_nanos().div_ceil(width.as_nanos());
        let mut sums = vec![0.0; nbins as usize];
        let mut counts = vec![0u64; nbins as usize];
        for (t, v) in self.iter() {
            if t < start || t >= end {
                continue;
            }
            let idx = ((t - start).as_nanos() / width.as_nanos()) as usize;
            sums[idx] += v;
            counts[idx] += 1;
        }
        for i in 0..nbins as usize {
            if counts[i] > 0 {
                let center = start + width * i as u64 + width / 2;
                out.push((center, sums[i] / counts[i] as f64));
            }
        }
        out
    }

    /// Simple trailing moving average with the given window size (in samples).
    pub fn moving_average(&self, window: usize) -> Vec<f64> {
        let w = window.max(1);
        let mut out = Vec::with_capacity(self.values.len());
        let mut sum = 0.0;
        for (i, v) in self.values.iter().enumerate() {
            sum += v;
            if i >= w {
                sum -= self.values[i - w];
            }
            let n = (i + 1).min(w);
            out.push(sum / n as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn record_and_summaries() {
        let mut s = TimeSeries::new("x");
        for (t, v) in [(1, 10.0), (2, 20.0), (3, 30.0)] {
            s.record(secs(t), v);
        }
        assert_eq!(s.name(), "x");
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 20.0);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 30.0);
    }

    #[test]
    #[should_panic(expected = "recorded in order")]
    fn out_of_order_record_panics() {
        let mut s = TimeSeries::new("x");
        s.record(secs(2), 1.0);
        s.record(secs(1), 2.0);
    }

    #[test]
    fn binning_averages_within_bins() {
        let mut s = TimeSeries::new("x");
        s.record(secs(0), 1.0);
        s.record(secs(1), 3.0);
        s.record(secs(5), 10.0);
        let bins = s.bin_by_time(secs(0), secs(10), SimDuration::from_secs(2));
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].1, 2.0);
        assert_eq!(bins[1].1, 10.0);
    }

    #[test]
    fn binning_excludes_out_of_range() {
        let mut s = TimeSeries::new("x");
        s.record(secs(0), 1.0);
        s.record(secs(100), 9.0);
        let bins = s.bin_by_time(secs(10), secs(20), SimDuration::from_secs(5));
        assert!(bins.is_empty());
    }

    #[test]
    fn moving_average_warms_up() {
        let mut s = TimeSeries::new("x");
        for (i, v) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            s.record(secs(i as u64), *v);
        }
        let ma = s.moving_average(2);
        assert_eq!(ma, vec![1.0, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = TimeSeries::new("x");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.moving_average(3).is_empty());
    }
}
