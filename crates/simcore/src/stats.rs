//! Streaming statistics and fixed-bin histograms.
//!
//! Telemetry (per-connection message timings, per-port byte counters) and the
//! experiment harness both need cheap summaries over many samples; these types
//! provide Welford-style running moments and percentile estimates without
//! retaining every sample.

use std::fmt;

/// Running count/mean/variance/min/max over a stream of `f64` samples
/// (Welford's algorithm).
///
/// # Example
///
/// ```
/// use c4_simcore::StreamingStats;
/// let mut s = StreamingStats::new();
/// for x in [1.0, 2.0, 3.0] { s.add(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample. Non-finite samples are ignored.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Coefficient of variation (σ/μ); `0.0` when the mean is zero.
    pub fn cv(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean().abs()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for StreamingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = StreamingStats::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for StreamingStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Percentile over an explicit sample buffer (linear interpolation, the
/// "exclusive" convention used by numpy's default).
///
/// Returns `None` on an empty slice. `q` is clamped to `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
///
/// # Example
///
/// ```
/// use c4_simcore::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.add(3.2);
/// h.add(3.7);
/// assert_eq!(h.bin_count(3), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((x - self.lo) / w) as usize;
        let idx = idx.min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Counts below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Iterates `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: StreamingStats = data.iter().copied().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut s = StreamingStats::new();
        s.add(f64::NAN);
        s.add(f64::INFINITY);
        s.add(1.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: StreamingStats = data.iter().copied().collect();
        let left: StreamingStats = data[..37].iter().copied().collect();
        let mut merged = left;
        let right: StreamingStats = data[37..].iter().copied().collect();
        merged.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-9);
        assert!((merged.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = StreamingStats::new();
        let b: StreamingStats = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c = a.clone();
        c.merge(&StreamingStats::new());
        assert_eq!(c, a);
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, f64::NAN] {
            h.add(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.out_of_range(), (2, 1));
        assert_eq!(h.total(), 4);
        let centers: Vec<f64> = h.iter().map(|(c, _)| c).collect();
        assert_eq!(centers, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
