//! Virtual time for the simulation: [`SimTime`] (an instant) and
//! [`SimDuration`] (a span), both with nanosecond resolution.
//!
//! These are deliberately *not* `std::time` types: simulated experiments span
//! weeks of virtual time and must be cheap to copy, hash and order, and must
//! never accidentally mix with wall-clock time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual simulation time, measured in nanoseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use c4_simcore::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_secs_f64(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual simulation time in nanoseconds.
///
/// # Example
///
/// ```
/// use c4_simcore::SimDuration;
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the simulation origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the simulation origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the simulation origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span (an "infinite" sentinel).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000_000)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * 1_000_000_000)
    }

    /// Creates a span of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400 * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond and saturating on overflow or negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0.max(1) as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 10_250_000_000);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(250));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_secs(4);
        assert_eq!(d * 2, SimDuration::from_secs(8));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert!((d / SimDuration::from_secs(2) - 2.0).abs() < 1e-12);
        assert_eq!(d * 0.5, SimDuration::from_secs(2));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(7);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(2));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }
}
