//! A minimal disjoint-set (union-find) over dense `u32` ids.
//!
//! Two determinism-critical partitioning steps share it: the max-min
//! solver's flow–link component rebuild (`c4_netsim::MaxMinState`) and
//! C4P's leaf-pair batch partitioning (`c4_traffic::C4pMaster`). Both
//! need the same tiny structure — a parent vector with path-halving finds
//! — and both must behave identically forever, which is exactly why the
//! implementation lives once, here, next to the other deterministic
//! fan-out primitives.

/// Disjoint sets over the ids `0..n`, with path-halving `find`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    /// The set representative of `x`, halving the path on the way up.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges `a`'s set into `b`'s: afterwards `find(a) == find(b)`, and
    /// `b`'s previous representative is the surviving root (callers rely
    /// on that direction for deterministic component numbering).
    pub fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        self.parent[ra as usize] = rb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(6);
        for x in 0..6 {
            assert_eq!(uf.find(x), x);
        }
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_eq!(uf.find(2), uf.find(3));
        assert_ne!(uf.find(0), uf.find(2));
        uf.union(1, 2);
        assert_eq!(uf.find(0), uf.find(3));
        assert_ne!(uf.find(0), uf.find(5));
    }

    #[test]
    fn union_direction_keeps_target_root() {
        // Callers number components by the surviving root, so the
        // direction is part of the contract.
        let mut uf = UnionFind::new(4);
        uf.union(0, 3);
        assert_eq!(uf.find(0), 3);
        uf.union(1, 0);
        assert_eq!(uf.find(1), 3);
    }

    #[test]
    fn repeated_and_self_unions_are_noops() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 0);
        uf.union(1, 2);
        uf.union(1, 2);
        assert_eq!(uf.find(0), 0);
        assert_eq!(uf.find(1), 2);
    }
}
