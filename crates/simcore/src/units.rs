//! Physical units used throughout the reproduction: [`Bandwidth`] and
//! [`ByteSize`].
//!
//! The paper reports bus bandwidth in Gbps (the `nccl-tests` convention) and
//! message sizes in bytes; keeping them as newtypes prevents the classic
//! bits-vs-bytes and G-vs-Gi confusions from leaking into the models.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::SimDuration;

/// A data rate. Stored internally as bits per second.
///
/// # Example
///
/// ```
/// use c4_simcore::{Bandwidth, ByteSize};
/// let link = Bandwidth::from_gbps(200.0);
/// let msg = ByteSize::from_mib(100);
/// let t = msg.transfer_time(link);
/// assert!((t.as_secs_f64() - 100.0 * 1024.0 * 1024.0 * 8.0 / 200e9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a rate from gigabits per second (decimal, as link specs use).
    pub fn from_gbps(gbps: f64) -> Self {
        Bandwidth(gbps * 1e9)
    }

    /// Creates a rate from bits per second.
    pub fn from_bps(bps: f64) -> Self {
        Bandwidth(bps)
    }

    /// The rate in gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// The rate in bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// The rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// Elementwise minimum.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// Elementwise maximum.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// True for exactly zero rate.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Div<Bandwidth> for Bandwidth {
    type Output = f64;
    fn div(self, rhs: Bandwidth) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Gbps", self.as_gbps())
    }
}

/// A data volume in bytes.
///
/// # Example
///
/// ```
/// use c4_simcore::ByteSize;
/// assert_eq!(ByteSize::from_mib(1).as_bytes(), 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a volume of `n` bytes.
    pub const fn from_bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Creates a volume of `n` KiB.
    pub const fn from_kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// Creates a volume of `n` MiB.
    pub const fn from_mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// Creates a volume of `n` GiB.
    pub const fn from_gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// The volume in bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// The volume in fractional MiB.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// The volume in fractional GiB.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Time to move this volume at the given rate; [`SimDuration::MAX`] when
    /// the rate is zero and the volume is not.
    pub fn transfer_time(self, rate: Bandwidth) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::ZERO;
        }
        if rate.is_zero() {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(self.0 as f64 / rate.as_bytes_per_sec())
    }

    /// Integer division into `n` near-equal chunks; the first `rem` chunks get
    /// one extra byte so the total is preserved.
    pub fn split(self, n: usize) -> Vec<ByteSize> {
        let n = n.max(1) as u64;
        let base = self.0 / n;
        let rem = self.0 % n;
        (0..n)
            .map(|i| ByteSize(base + u64::from(i < rem)))
            .collect()
    }

    /// Saturating scalar multiply.
    pub fn scaled(self, k: f64) -> ByteSize {
        if k <= 0.0 || !k.is_finite() {
            return ByteSize::ZERO;
        }
        let v = self.0 as f64 * k;
        if v >= u64::MAX as f64 {
            ByteSize(u64::MAX)
        } else {
            ByteSize(v.round() as u64)
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(rhs))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 * 1024 {
            write!(f, "{:.2} GiB", self.as_gib_f64())
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{:.2} MiB", self.as_mib_f64())
        } else if self.0 >= 1024 {
            write!(f, "{:.2} KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        let b = Bandwidth::from_gbps(200.0);
        assert_eq!(b.as_bps(), 200e9);
        assert_eq!(b.as_bytes_per_sec(), 25e9);
        assert!((b / Bandwidth::from_gbps(100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_sub_saturates() {
        let a = Bandwidth::from_gbps(10.0);
        let b = Bandwidth::from_gbps(20.0);
        assert_eq!(a - b, Bandwidth::ZERO);
    }

    #[test]
    fn transfer_time_edges() {
        assert_eq!(
            ByteSize::ZERO.transfer_time(Bandwidth::from_gbps(1.0)),
            SimDuration::ZERO
        );
        assert_eq!(
            ByteSize::from_kib(1).transfer_time(Bandwidth::ZERO),
            SimDuration::MAX
        );
        // 1 GiB over 8 Gbps = 1.073741824 s
        let t = ByteSize::from_gib(1).transfer_time(Bandwidth::from_gbps(8.0));
        assert!((t.as_secs_f64() - 1.073741824).abs() < 1e-9);
    }

    #[test]
    fn split_preserves_total() {
        let s = ByteSize::from_bytes(103);
        let parts = s.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().copied().sum::<ByteSize>(), s);
        assert!(parts.iter().all(|p| {
            let d = p.as_bytes() as i64 - 25;
            (0..=1).contains(&d)
        }));
    }

    #[test]
    fn scaled_saturates_and_clamps() {
        let s = ByteSize::from_bytes(100);
        assert_eq!(s.scaled(0.5).as_bytes(), 50);
        assert_eq!(s.scaled(-1.0), ByteSize::ZERO);
        assert_eq!(s.scaled(f64::NAN), ByteSize::ZERO);
        assert_eq!(
            ByteSize::from_bytes(u64::MAX).scaled(2.0).as_bytes(),
            u64::MAX
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ByteSize::from_bytes(5)), "5 B");
        assert_eq!(format!("{}", ByteSize::from_kib(2)), "2.00 KiB");
        assert_eq!(format!("{}", ByteSize::from_mib(3)), "3.00 MiB");
        assert_eq!(format!("{}", ByteSize::from_gib(4)), "4.00 GiB");
        assert_eq!(format!("{}", Bandwidth::from_gbps(1.5)), "1.50 Gbps");
    }
}
