//! CSV serialization of the four statistics streams, matching the per-worker
//! artifact set of the paper's Fig 5 (`comm-stats.csv`, `coll-stats.csv`,
//! `rank-stats.csv`, `conn-stats.csv`) — and, since the pipeline landed,
//! the **parse** direction as well.
//!
//! Round-trip contract: for every record type `T` here,
//! `T::from_csv_row(&t.to_csv_row()) == Ok(t)` exactly. Times and durations
//! are emitted with full nanosecond precision via integer math (never
//! through `f64`), so a CSV-replayed telemetry stream drives the detectors
//! to **bit-identical** verdicts (see `c4_diagnosis::streaming`). Derived
//! columns (`duration_ms`, `effective_gbps`) are recomputed on parse and
//! ignored as input.
//!
//! Quoting follows RFC 4180: fields containing commas, quotes or newlines
//! are wrapped in double quotes with embedded quotes doubled;
//! [`split_records`] understands newlines inside quoted fields so free-text
//! columns (the event log's `detail`) survive verbatim.

use std::fmt;

use c4_simcore::{SimDuration, SimTime};
use c4_topology::GpuId;

use crate::record::{CollRecord, CommRecord, ConnKey, ConnRecord, RankRecord};

/// A CSV parse failure: which record (1-based, counting the header as
/// record 0) and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based record index within the document; 0 when unknown (single-row
    /// parses).
    pub record: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl CsvError {
    /// Creates an error with no record position.
    pub fn new(message: impl Into<String>) -> Self {
        CsvError {
            record: 0,
            message: message.into(),
        }
    }

    /// Attaches a record index (document-level parses).
    pub fn at(mut self, record: usize) -> Self {
        self.record = record;
        self
    }
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.record > 0 {
            write!(f, "csv record {}: {}", self.record, self.message)
        } else {
            write!(f, "csv: {}", self.message)
        }
    }
}

impl std::error::Error for CsvError {}

/// Types that serialize to one CSV row (plus a static header).
pub trait ToCsv {
    /// The header row for this record type.
    fn csv_header() -> &'static str;
    /// This record as one CSV row (no trailing newline).
    fn to_csv_row(&self) -> String;
}

/// Types that parse back from one CSV row — the inverse of [`ToCsv`].
pub trait FromCsv: Sized {
    /// Parses one CSV row (no trailing newline). Derived columns are
    /// ignored; every stored field must round-trip exactly.
    fn from_csv_row(row: &str) -> Result<Self, CsvError>;
}

// ---------------------------------------------------------------------------
// Lossless numeric formatting (integer math only — never through f64)
// ---------------------------------------------------------------------------

/// Formats an instant as decimal seconds with full nanosecond precision
/// (`"1.000000001"`), by integer math only.
pub fn format_secs(t: SimTime) -> String {
    let n = t.as_nanos();
    format!("{}.{:09}", n / 1_000_000_000, n % 1_000_000_000)
}

/// Parses decimal seconds back to an instant, exactly inverting
/// [`format_secs`]. Fractions shorter than 9 digits are zero-padded;
/// digits beyond nanosecond precision are rejected unless zero.
pub fn parse_secs(s: &str) -> Result<SimTime, CsvError> {
    Ok(SimTime::from_nanos(parse_scaled(s, 9)?))
}

/// Formats a span as decimal milliseconds with full nanosecond precision
/// (`"0.000001"` = 1 ns), by integer math only.
pub fn format_dur_ms(d: SimDuration) -> String {
    let n = d.as_nanos();
    format!("{}.{:06}", n / 1_000_000, n % 1_000_000)
}

/// Parses decimal milliseconds back to a span, exactly inverting
/// [`format_dur_ms`].
pub fn parse_dur_ms(s: &str) -> Result<SimDuration, CsvError> {
    Ok(SimDuration::from_nanos(parse_scaled(s, 6)?))
}

/// Parses `"<int>.<frac>"` into `int * 10^frac_digits + frac` with the
/// fraction right-padded to `frac_digits`. Extra fraction digits must be
/// zero (nothing real is lost), otherwise the value is rejected rather than
/// silently rounded.
fn parse_scaled(s: &str, frac_digits: u32) -> Result<u64, CsvError> {
    let (int_part, frac_part) = match s.split_once('.') {
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    let int: u64 = int_part
        .parse()
        .map_err(|_| CsvError::new(format!("bad integer part in {s:?}")))?;
    let mut frac: u64 = 0;
    for (i, c) in frac_part.chars().enumerate() {
        let d = c
            .to_digit(10)
            .ok_or_else(|| CsvError::new(format!("bad fraction in {s:?}")))? as u64;
        if (i as u32) < frac_digits {
            frac = frac * 10 + d;
        } else if d != 0 {
            return Err(CsvError::new(format!(
                "{s:?} carries sub-precision digits that would be lost"
            )));
        }
    }
    let seen = (frac_part.len() as u32).min(frac_digits);
    frac *= 10u64.pow(frac_digits - seen);
    let scale = 10u64.pow(frac_digits);
    int.checked_mul(scale)
        .and_then(|v| v.checked_add(frac))
        .ok_or_else(|| CsvError::new(format!("{s:?} overflows the time range")))
}

// ---------------------------------------------------------------------------
// RFC 4180 quoting
// ---------------------------------------------------------------------------

/// Quotes a field for CSV if it contains a comma, quote, CR or LF; embedded
/// quotes are doubled. Other fields pass through verbatim.
pub fn quote_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// Splits one CSV record into fields, honouring RFC 4180 quoting (doubled
/// quotes inside quoted fields, commas and newlines inside quotes kept).
pub fn split_fields(row: &str) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = row.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                '"' => return Err(CsvError::new("quote inside unquoted field")),
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::new("unterminated quoted field"));
    }
    fields.push(cur);
    Ok(fields)
}

/// Splits a CSV document into records, keeping newlines that occur inside
/// quoted fields. Trailing empty records are dropped.
pub fn split_records(doc: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in doc.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            '\n' if !in_quotes => {
                let rec = std::mem::take(&mut cur);
                records.push(rec.strip_suffix('\r').map(str::to_string).unwrap_or(rec));
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        records.push(cur.strip_suffix('\r').map(str::to_string).unwrap_or(cur));
    }
    while records.last().is_some_and(|r| r.is_empty()) {
        records.pop();
    }
    records
}

/// Parses one typed field, wrapping the error with the column name.
pub(crate) fn parse_field<T: std::str::FromStr>(
    fields: &[String],
    i: usize,
    name: &str,
) -> Result<T, CsvError>
where
    T::Err: fmt::Display,
{
    let raw = fields
        .get(i)
        .ok_or_else(|| CsvError::new(format!("missing column {name}")))?;
    raw.parse()
        .map_err(|e| CsvError::new(format!("column {name}: {e} (got {raw:?})")))
}

fn expect_columns(fields: &[String], n: usize, what: &str) -> Result<(), CsvError> {
    if fields.len() != n {
        return Err(CsvError::new(format!(
            "{what} rows carry {n} columns, got {}",
            fields.len()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Record impls
// ---------------------------------------------------------------------------

impl ToCsv for CommRecord {
    fn csv_header() -> &'static str {
        "comm,nranks,devices,created_s"
    }

    fn to_csv_row(&self) -> String {
        let devices: Vec<String> = self.devices.iter().map(|d| d.index().to_string()).collect();
        format!(
            "{},{},{},{}",
            self.comm,
            self.nranks(),
            devices.join("|"),
            format_secs(self.created)
        )
    }
}

impl FromCsv for CommRecord {
    fn from_csv_row(row: &str) -> Result<Self, CsvError> {
        let fields = split_fields(row)?;
        expect_columns(&fields, 4, "comm-stats")?;
        let devices: Vec<GpuId> = if fields[2].is_empty() {
            Vec::new()
        } else {
            fields[2]
                .split('|')
                .map(|d| {
                    d.parse::<usize>()
                        .map(GpuId::from_index)
                        .map_err(|e| CsvError::new(format!("column devices: {e} (got {d:?})")))
                })
                .collect::<Result<_, _>>()?
        };
        let nranks: usize = parse_field(&fields, 1, "nranks")?;
        if nranks != devices.len() {
            return Err(CsvError::new(format!(
                "nranks {} disagrees with {} listed devices",
                nranks,
                devices.len()
            )));
        }
        Ok(CommRecord {
            comm: parse_field(&fields, 0, "comm")?,
            devices,
            created: parse_secs(&fields[3])?,
        })
    }
}

impl ToCsv for CollRecord {
    fn csv_header() -> &'static str {
        "comm,seq,rank,op,algo,dtype,count,start_s,end_s,duration_ms"
    }

    fn to_csv_row(&self) -> String {
        let (end, dur) = match self.end {
            Some(e) => (format_secs(e), format_dur_ms(e - self.start)),
            None => (String::new(), String::new()),
        };
        format!(
            "{},{},{},{},{},{},{},{},{},{}",
            self.comm,
            self.seq,
            self.rank,
            self.kind,
            self.algo,
            self.dtype,
            self.count,
            format_secs(self.start),
            end,
            dur
        )
    }
}

impl FromCsv for CollRecord {
    fn from_csv_row(row: &str) -> Result<Self, CsvError> {
        let fields = split_fields(row)?;
        expect_columns(&fields, 10, "coll-stats")?;
        // `duration_ms` (column 9) is derived from start/end; ignored.
        let end = if fields[8].is_empty() {
            None
        } else {
            Some(parse_secs(&fields[8])?)
        };
        Ok(CollRecord {
            comm: parse_field(&fields, 0, "comm")?,
            seq: parse_field(&fields, 1, "seq")?,
            rank: parse_field(&fields, 2, "rank")?,
            kind: parse_field(&fields, 3, "op")?,
            algo: parse_field(&fields, 4, "algo")?,
            dtype: parse_field(&fields, 5, "dtype")?,
            count: parse_field(&fields, 6, "count")?,
            start: parse_secs(&fields[7])?,
            end,
        })
    }
}

impl ToCsv for ConnRecord {
    fn csv_header() -> &'static str {
        "comm,channel,qp,src_gpu,dst_gpu,src_port,messages,bytes,busy_ms,last_completion_s,effective_gbps"
    }

    fn to_csv_row(&self) -> String {
        let last = self.last_completion.map(format_secs).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{:.3}",
            self.key.comm,
            self.key.channel,
            self.key.qp,
            self.key.src_gpu.index(),
            self.key.dst_gpu.index(),
            self.src_port.index(),
            self.messages,
            self.bytes,
            format_dur_ms(self.busy),
            last,
            self.effective_gbps()
        )
    }
}

impl FromCsv for ConnRecord {
    fn from_csv_row(row: &str) -> Result<Self, CsvError> {
        let fields = split_fields(row)?;
        expect_columns(&fields, 11, "conn-stats")?;
        // `effective_gbps` (column 10) is derived from bytes/busy; ignored.
        let last_completion = if fields[9].is_empty() {
            None
        } else {
            Some(parse_secs(&fields[9])?)
        };
        Ok(ConnRecord {
            key: ConnKey {
                comm: parse_field(&fields, 0, "comm")?,
                channel: parse_field(&fields, 1, "channel")?,
                qp: parse_field(&fields, 2, "qp")?,
                src_gpu: GpuId::from_index(parse_field(&fields, 3, "src_gpu")?),
                dst_gpu: GpuId::from_index(parse_field(&fields, 4, "dst_gpu")?),
            },
            src_port: c4_topology::PortId::from_index(parse_field(&fields, 5, "src_port")?),
            messages: parse_field(&fields, 6, "messages")?,
            bytes: parse_field(&fields, 7, "bytes")?,
            busy: parse_dur_ms(&fields[8])?,
            last_completion,
        })
    }
}

impl ToCsv for RankRecord {
    fn csv_header() -> &'static str {
        "comm,rank,step,compute_ms,ready_delay_ms,arrived_s"
    }

    fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{}",
            self.comm,
            self.rank,
            self.step,
            format_dur_ms(self.compute),
            format_dur_ms(self.ready_delay),
            format_secs(self.arrived)
        )
    }
}

impl FromCsv for RankRecord {
    fn from_csv_row(row: &str) -> Result<Self, CsvError> {
        let fields = split_fields(row)?;
        expect_columns(&fields, 6, "rank-stats")?;
        Ok(RankRecord {
            comm: parse_field(&fields, 0, "comm")?,
            rank: parse_field(&fields, 1, "rank")?,
            step: parse_field(&fields, 2, "step")?,
            compute: parse_dur_ms(&fields[3])?,
            ready_delay: parse_dur_ms(&fields[4])?,
            arrived: parse_secs(&fields[5])?,
        })
    }
}

/// Renders a full CSV document (header + rows).
pub fn to_csv_document<T: ToCsv>(records: &[T]) -> String {
    let mut out = String::from(T::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&r.to_csv_row());
        out.push('\n');
    }
    out
}

/// Parses a full CSV document (header + rows) back into records — the
/// inverse of [`to_csv_document`]. The header must match `T`'s exactly.
pub fn parse_csv_document<T: ToCsv + FromCsv>(doc: &str) -> Result<Vec<T>, CsvError> {
    let records = split_records(doc);
    let Some((header, rows)) = records.split_first() else {
        return Err(CsvError::new("empty document (missing header)"));
    };
    if header != T::csv_header() {
        return Err(CsvError::new(format!(
            "header {:?} does not match expected {:?}",
            header,
            T::csv_header()
        )));
    }
    rows.iter()
        .enumerate()
        .map(|(i, row)| T::from_csv_row(row).map_err(|e| e.at(i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AlgoKind, CollKind, DataType};
    use c4_topology::PortId;

    #[test]
    fn comm_csv_round_trip_shape() {
        let rec = CommRecord {
            comm: 12,
            devices: vec![GpuId::from_index(0), GpuId::from_index(4)],
            created: SimTime::from_secs(1),
        };
        assert_eq!(rec.to_csv_row(), "12,2,0|4,1.000000000");
        assert!(CommRecord::csv_header().starts_with("comm,"));
        assert_eq!(CommRecord::from_csv_row(&rec.to_csv_row()), Ok(rec));
    }

    #[test]
    fn coll_csv_handles_in_flight_ops() {
        let rec = CollRecord {
            comm: 1,
            seq: 7,
            rank: 3,
            kind: CollKind::AllReduce,
            algo: AlgoKind::Ring,
            dtype: DataType::F32,
            count: 10,
            start: SimTime::from_secs(2),
            end: None,
        };
        let row = rec.to_csv_row();
        assert!(
            row.ends_with(",,"),
            "in-flight op has empty end columns: {row}"
        );
        assert_eq!(CollRecord::from_csv_row(&row), Ok(rec));
        let done = CollRecord {
            end: Some(SimTime::from_secs(3)),
            ..rec
        };
        assert!(done.to_csv_row().ends_with("3.000000000,1000.000000"));
        assert_eq!(CollRecord::from_csv_row(&done.to_csv_row()), Ok(done));
    }

    #[test]
    fn conn_csv_includes_src_port() {
        let key = ConnKey {
            comm: 2,
            channel: 1,
            qp: 0,
            src_gpu: GpuId::from_index(5),
            dst_gpu: GpuId::from_index(6),
        };
        let mut rec = ConnRecord::new(key, PortId::from_index(11));
        rec.record_message(100, SimDuration::from_millis(1), SimTime::from_secs(1));
        let row = rec.to_csv_row();
        assert!(row.contains(",11,"), "src_port column missing: {row}");
        assert_eq!(ConnRecord::from_csv_row(&row), Ok(rec));
    }

    #[test]
    fn document_has_header_and_rows() {
        let rec = RankRecord {
            comm: 1,
            rank: 0,
            step: 3,
            compute: SimDuration::from_millis(250),
            ready_delay: SimDuration::from_millis(10),
            arrived: SimTime::from_secs(5),
        };
        let doc = to_csv_document(&[rec, rec]);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], RankRecord::csv_header());
        assert_eq!(lines[1], lines[2]);
        assert_eq!(parse_csv_document::<RankRecord>(&doc), Ok(vec![rec, rec]));
    }

    #[test]
    fn nanosecond_precision_survives_the_round_trip() {
        // The old `{:.6}`-seconds formatting lost sub-microsecond detail;
        // integer-decimal formatting must not.
        let rec = RankRecord {
            comm: 1,
            rank: 0,
            step: 0,
            compute: SimDuration::from_nanos(1),
            ready_delay: SimDuration::from_nanos(999_999_999_999_999),
            arrived: SimTime::from_nanos(123_456_789_012_345_678),
        };
        let back = RankRecord::from_csv_row(&rec.to_csv_row()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(format_dur_ms(SimDuration::from_nanos(1)), "0.000001");
        assert_eq!(
            parse_secs("1.5").unwrap(),
            SimTime::from_nanos(1_500_000_000)
        );
        assert!(
            parse_secs("1.0000000005").is_err(),
            "sub-ns digits rejected"
        );
        assert_eq!(parse_secs("1.0000000000").unwrap(), SimTime::from_secs(1));
    }

    #[test]
    fn quoting_round_trips_awkward_fields() {
        for s in [
            "plain",
            "",
            "with,comma",
            "with \"quotes\"",
            "line\nbreak",
            "\"",
            ",,\"\n\"",
        ] {
            let quoted = quote_field(s);
            let fields = split_fields(&quoted).unwrap();
            assert_eq!(fields, vec![s.to_string()], "field {s:?}");
        }
        assert_eq!(
            split_fields("a,\"b,c\",d").unwrap(),
            vec!["a".to_string(), "b,c".into(), "d".into()]
        );
        assert!(split_fields("a\"b").is_err(), "stray quote rejected");
        assert!(split_fields("\"open").is_err(), "unterminated rejected");
    }

    #[test]
    fn split_records_keeps_quoted_newlines() {
        let doc = "h\na,\"x\ny\"\r\nb,z\n";
        assert_eq!(
            split_records(doc),
            vec!["h".to_string(), "a,\"x\ny\"".into(), "b,z".into()]
        );
    }

    #[test]
    fn document_parse_rejects_wrong_header_and_bad_rows() {
        assert!(parse_csv_document::<RankRecord>("").is_err());
        assert!(parse_csv_document::<RankRecord>("wrong,header\n").is_err());
        let doc = format!("{}\n1,2,3\n", RankRecord::csv_header());
        let err = parse_csv_document::<RankRecord>(&doc).unwrap_err();
        assert_eq!(err.record, 1);
    }

    #[test]
    fn comm_nranks_consistency_is_checked() {
        assert!(CommRecord::from_csv_row("1,3,0|4,1.000000000").is_err());
    }
}
