//! CSV serialization of the four statistics streams, matching the per-worker
//! artifact set of the paper's Fig 5 (`comm-stats.csv`, `coll-stats.csv`,
//! `rank-stats.csv`, `conn-stats.csv`).

use crate::record::{CollRecord, CommRecord, ConnRecord, RankRecord};

/// Types that serialize to one CSV row (plus a static header).
pub trait ToCsv {
    /// The header row for this record type.
    fn csv_header() -> &'static str;
    /// This record as one CSV row (no trailing newline).
    fn to_csv_row(&self) -> String;
}

impl ToCsv for CommRecord {
    fn csv_header() -> &'static str {
        "comm,nranks,devices,created_s"
    }

    fn to_csv_row(&self) -> String {
        let devices: Vec<String> = self.devices.iter().map(|d| d.index().to_string()).collect();
        format!(
            "{},{},{},{:.6}",
            self.comm,
            self.nranks(),
            devices.join("|"),
            self.created.as_secs_f64()
        )
    }
}

impl ToCsv for CollRecord {
    fn csv_header() -> &'static str {
        "comm,seq,rank,op,algo,dtype,count,start_s,end_s,duration_ms"
    }

    fn to_csv_row(&self) -> String {
        let (end, dur) = match self.end {
            Some(e) => (
                format!("{:.6}", e.as_secs_f64()),
                format!("{:.3}", (e - self.start).as_millis_f64()),
            ),
            None => ("".to_string(), "".to_string()),
        };
        format!(
            "{},{},{},{},{},{},{},{:.6},{},{}",
            self.comm,
            self.seq,
            self.rank,
            self.kind,
            self.algo,
            self.dtype,
            self.count,
            self.start.as_secs_f64(),
            end,
            dur
        )
    }
}

impl ToCsv for ConnRecord {
    fn csv_header() -> &'static str {
        "comm,channel,qp,src_gpu,dst_gpu,src_port,messages,bytes,busy_ms,last_completion_s,effective_gbps"
    }

    fn to_csv_row(&self) -> String {
        let last = self
            .last_completion
            .map(|t| format!("{:.6}", t.as_secs_f64()))
            .unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{},{},{:.3},{},{:.3}",
            self.key.comm,
            self.key.channel,
            self.key.qp,
            self.key.src_gpu.index(),
            self.key.dst_gpu.index(),
            self.src_port.index(),
            self.messages,
            self.bytes,
            self.busy.as_millis_f64(),
            last,
            self.effective_gbps()
        )
    }
}

impl ToCsv for RankRecord {
    fn csv_header() -> &'static str {
        "comm,rank,step,compute_ms,ready_delay_ms,arrived_s"
    }

    fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{:.3},{:.3},{:.6}",
            self.comm,
            self.rank,
            self.step,
            self.compute.as_millis_f64(),
            self.ready_delay.as_millis_f64(),
            self.arrived.as_secs_f64()
        )
    }
}

/// Renders a full CSV document (header + rows).
pub fn to_csv_document<T: ToCsv>(records: &[T]) -> String {
    let mut out = String::from(T::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&r.to_csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AlgoKind, CollKind, ConnKey, DataType};
    use c4_simcore::{SimDuration, SimTime};
    use c4_topology::{GpuId, PortId};

    #[test]
    fn comm_csv_round_trip_shape() {
        let rec = CommRecord {
            comm: 12,
            devices: vec![GpuId::from_index(0), GpuId::from_index(4)],
            created: SimTime::from_secs(1),
        };
        assert_eq!(rec.to_csv_row(), "12,2,0|4,1.000000");
        assert!(CommRecord::csv_header().starts_with("comm,"));
    }

    #[test]
    fn coll_csv_handles_in_flight_ops() {
        let rec = CollRecord {
            comm: 1,
            seq: 7,
            rank: 3,
            kind: CollKind::AllReduce,
            algo: AlgoKind::Ring,
            dtype: DataType::F32,
            count: 10,
            start: SimTime::from_secs(2),
            end: None,
        };
        let row = rec.to_csv_row();
        assert!(
            row.ends_with(",,"),
            "in-flight op has empty end columns: {row}"
        );
        let done = CollRecord {
            end: Some(SimTime::from_secs(3)),
            ..rec
        };
        assert!(done.to_csv_row().ends_with("3.000000,1000.000"));
    }

    #[test]
    fn conn_csv_includes_src_port() {
        let key = ConnKey {
            comm: 2,
            channel: 1,
            qp: 0,
            src_gpu: GpuId::from_index(5),
            dst_gpu: GpuId::from_index(6),
        };
        let mut rec = ConnRecord::new(key, PortId::from_index(11));
        rec.record_message(100, SimDuration::from_millis(1), SimTime::from_secs(1));
        let row = rec.to_csv_row();
        assert!(row.contains(",11,"), "src_port column missing: {row}");
    }

    #[test]
    fn document_has_header_and_rows() {
        let rec = RankRecord {
            comm: 1,
            rank: 0,
            step: 3,
            compute: SimDuration::from_millis(250),
            ready_delay: SimDuration::from_millis(10),
            arrived: SimTime::from_secs(5),
        };
        let doc = to_csv_document(&[rec, rec]);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], RankRecord::csv_header());
        assert_eq!(lines[1], lines[2]);
    }
}
