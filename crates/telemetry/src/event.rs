//! C4 events: what the C4D master emits towards the job-steering service and
//! the background root-cause-analysis pipeline (paper Fig 4, "C4 Events").

use std::fmt;

use c4_simcore::SimTime;
use c4_topology::{GpuId, LinkId, NodeId};

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational (e.g. job restarted).
    Info,
    /// Degradation that does not crash the job (slow node, congestion).
    Warning,
    /// Fault requiring isolation and restart.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        })
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "INFO" => Severity::Info,
            "WARN" => Severity::Warning,
            "CRIT" => Severity::Critical,
            other => return Err(format!("unknown severity {other:?}")),
        })
    }
}

/// What a C4 event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A communication hang was detected on a communicator.
    CommHang,
    /// A non-communication hang (rank never reached the sync point).
    NonCommHang,
    /// A communication slowdown was localized.
    CommSlow,
    /// A non-communication slowdown was localized.
    NonCommSlow,
    /// A node was isolated.
    NodeIsolated,
    /// A job restart was triggered.
    JobRestart,
    /// A faulty link was eliminated from path allocation.
    LinkEliminated,
    /// QP loads were rebalanced after a network change.
    Rebalanced,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::CommHang => "comm_hang",
            EventKind::NonCommHang => "noncomm_hang",
            EventKind::CommSlow => "comm_slow",
            EventKind::NonCommSlow => "noncomm_slow",
            EventKind::NodeIsolated => "node_isolated",
            EventKind::JobRestart => "job_restart",
            EventKind::LinkEliminated => "link_eliminated",
            EventKind::Rebalanced => "rebalanced",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for EventKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "comm_hang" => EventKind::CommHang,
            "noncomm_hang" => EventKind::NonCommHang,
            "comm_slow" => EventKind::CommSlow,
            "noncomm_slow" => EventKind::NonCommSlow,
            "node_isolated" => EventKind::NodeIsolated,
            "job_restart" => EventKind::JobRestart,
            "link_eliminated" => EventKind::LinkEliminated,
            "rebalanced" => EventKind::Rebalanced,
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }
}

/// One event (`events.csv` row).
#[derive(Debug, Clone, PartialEq)]
pub struct C4Event {
    /// When the event was raised.
    pub time: SimTime,
    /// Severity.
    pub severity: Severity,
    /// Event kind.
    pub kind: EventKind,
    /// Node involved, if localized to one.
    pub node: Option<NodeId>,
    /// GPU involved, if localized to one.
    pub gpu: Option<GpuId>,
    /// Link involved, if localized to one.
    pub link: Option<LinkId>,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for C4Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {} {}]", self.time, self.severity, self.kind)?;
        if let Some(n) = self.node {
            write!(f, " {n}")?;
        }
        if let Some(g) = self.gpu {
            write!(f, " {g}")?;
        }
        if let Some(l) = self.link {
            write!(f, " {l}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " — {}", self.detail)?;
        }
        Ok(())
    }
}

/// An append-only event log with filtering helpers.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<C4Event>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: C4Event) {
        self.events.push(event);
    }

    /// All events in arrival order.
    pub fn events(&self) -> &[C4Event] {
        &self.events
    }

    /// Events of a given kind.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &C4Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events at or above a severity.
    pub fn at_least(&self, severity: Severity) -> impl Iterator<Item = &C4Event> {
        self.events.iter().filter(move |e| e.severity >= severity)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the log as an `events.csv` document. Round-trips exactly
    /// through [`EventLog::parse_csv`]: times carry full nanosecond
    /// precision and the free-form `detail` field is RFC 4180-quoted
    /// verbatim (commas, quotes and newlines survive).
    pub fn to_csv(&self) -> String {
        crate::csv::to_csv_document(&self.events)
    }

    /// Parses an `events.csv` document back into a log — the exact inverse
    /// of [`EventLog::to_csv`].
    pub fn parse_csv(doc: &str) -> Result<Self, crate::csv::CsvError> {
        Ok(EventLog {
            events: crate::csv::parse_csv_document(doc)?,
        })
    }
}

impl crate::csv::ToCsv for C4Event {
    fn csv_header() -> &'static str {
        "time_s,severity,kind,node,gpu,link,detail"
    }

    fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            crate::csv::format_secs(self.time),
            self.severity,
            self.kind,
            self.node.map(|n| n.index().to_string()).unwrap_or_default(),
            self.gpu.map(|g| g.index().to_string()).unwrap_or_default(),
            self.link.map(|l| l.index().to_string()).unwrap_or_default(),
            crate::csv::quote_field(&self.detail),
        )
    }
}

impl crate::csv::FromCsv for C4Event {
    fn from_csv_row(row: &str) -> Result<Self, crate::csv::CsvError> {
        use crate::csv::CsvError;
        let fields = crate::csv::split_fields(row)?;
        if fields.len() != 7 {
            return Err(CsvError::new(format!(
                "events rows carry 7 columns, got {}",
                fields.len()
            )));
        }
        fn opt_id<T>(
            raw: &str,
            make: impl Fn(usize) -> T,
            name: &str,
        ) -> Result<Option<T>, CsvError> {
            if raw.is_empty() {
                return Ok(None);
            }
            raw.parse::<usize>()
                .map(|i| Some(make(i)))
                .map_err(|e| CsvError::new(format!("column {name}: {e} (got {raw:?})")))
        }
        Ok(C4Event {
            time: crate::csv::parse_secs(&fields[0])?,
            severity: fields[1]
                .parse()
                .map_err(|e| CsvError::new(format!("column severity: {e}")))?,
            kind: fields[2]
                .parse()
                .map_err(|e| CsvError::new(format!("column kind: {e}")))?,
            node: opt_id(&fields[3], NodeId::from_index, "node")?,
            gpu: opt_id(&fields[4], GpuId::from_index, "gpu")?,
            link: opt_id(&fields[5], LinkId::from_index, "link")?,
            detail: fields[6].clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: EventKind, severity: Severity) -> C4Event {
        C4Event {
            time: SimTime::from_secs(1),
            severity,
            kind,
            node: Some(NodeId::from_index(3)),
            gpu: None,
            link: None,
            detail: "ecc error, repeated".into(),
        }
    }

    #[test]
    fn log_filters_by_kind_and_severity() {
        let mut log = EventLog::new();
        log.push(sample(EventKind::CommHang, Severity::Critical));
        log.push(sample(EventKind::CommSlow, Severity::Warning));
        log.push(sample(EventKind::JobRestart, Severity::Info));
        assert_eq!(log.len(), 3);
        assert_eq!(log.of_kind(EventKind::CommSlow).count(), 1);
        assert_eq!(log.at_least(Severity::Warning).count(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn csv_quotes_commas_in_detail_and_round_trips() {
        let mut log = EventLog::new();
        log.push(sample(EventKind::NodeIsolated, Severity::Critical));
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[1].ends_with("\"ecc error, repeated\""),
            "detail is quoted verbatim, not mangled: {}",
            lines[1]
        );
        let back = EventLog::parse_csv(&csv).unwrap();
        assert_eq!(back.events(), log.events());
    }

    #[test]
    fn csv_round_trips_newlines_and_quotes_in_detail() {
        let mut log = EventLog::new();
        let mut e = sample(EventKind::CommSlow, Severity::Warning);
        e.detail = "line one\nline \"two\", with comma".into();
        log.push(e);
        log.push(sample(EventKind::JobRestart, Severity::Info));
        let back = EventLog::parse_csv(&log.to_csv()).unwrap();
        assert_eq!(back.events(), log.events());
    }

    #[test]
    fn display_is_informative() {
        let e = sample(EventKind::CommHang, Severity::Critical);
        let s = e.to_string();
        assert!(s.contains("CRIT"));
        assert!(s.contains("comm_hang"));
        assert!(s.contains("node3"));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
