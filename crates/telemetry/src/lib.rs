//! # c4-telemetry
//!
//! The enhanced-ACCL runtime statistics of the paper's Fig 5/6, reproduced at
//! schema level.
//!
//! C4D's whole premise is that the communication library can observe enough,
//! cheaply enough, to diagnose hardware in real time. The paper extends
//! ACCL's bottom three layers and emits four time-series files per worker:
//!
//! * `comm-stats.csv` — communicators: id, involved devices, ranks
//!   ([`CommRecord`]);
//! * `coll-stats.csv` — collective operations: type, algorithm, data type,
//!   element count, sequence number, start/completion ([`CollRecord`]);
//! * `rank-stats.csv` — per-rank execution rhythm: compute time and
//!   receiver-driven wait time per step ([`RankRecord`]);
//! * `conn-stats.csv` — transport connections: peers, QP, source port,
//!   message counts/sizes/durations ([`ConnRecord`]).
//!
//! Workers accumulate records in a [`WorkerTelemetry`] store (the paper's
//! per-worker CSV set); the C4a agent ships them to the C4D master as a
//! [`TelemetrySnapshot`]. CSV export **and parsing** are provided for each
//! record type — emit→parse is lossless (nanosecond-exact times, RFC 4180
//! quoting) so the on-disk artifacts of Fig 5 can be regenerated verbatim
//! and replayed.
//!
//! The [`pipeline`] module turns these records into a streaming dataflow:
//! sources (scenario feed, CSV replay) → keyed windows + combiners → sinks
//! (detector feeds, CSV export, summaries). See its docs for the
//! stream==batch equality rules.

#![warn(missing_docs)]

pub mod csv;
pub mod event;
pub mod pipeline;
pub mod record;
pub mod summary;
pub mod worker;

pub use csv::{FromCsv, ToCsv};
pub use event::{C4Event, EventKind, EventLog, Severity};
pub use pipeline::{LoadSample, TelemetryEvent};
pub use record::{
    AlgoKind, CollKind, CollRecord, CommRecord, ConnKey, ConnRecord, DataType, RankRecord,
};
pub use summary::ClusterSummary;
pub use worker::{TelemetrySnapshot, WorkerTelemetry};
