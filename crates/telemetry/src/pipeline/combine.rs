//! Combiners: the per-window fold functions of the pipeline.

/// Which aggregate a window should maintain.
///
/// Every [`Aggregate`] tracks count and sum (they cost two words); `TopK`
/// additionally keeps the k largest values seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combiner {
    /// Number of values in the window.
    Count,
    /// Sum of values, folded in arrival order (bit-identical to a batch
    /// fold over the same order).
    Sum,
    /// Arithmetic mean (`sum / count`, computed at read time so the fold
    /// stays a plain arrival-order sum).
    Mean,
    /// The k largest values, descending.
    TopK(usize),
}

/// The running state of one window pane.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    combiner: Combiner,
    count: u64,
    sum: f64,
    topk: Vec<f64>,
}

impl Aggregate {
    /// Creates an empty aggregate for the given combiner.
    pub fn new(combiner: Combiner) -> Self {
        Aggregate {
            combiner,
            count: 0,
            sum: 0.0,
            topk: Vec::new(),
        }
    }

    /// Folds one value in. Values are folded in arrival order; the sum is a
    /// plain left fold, so it is bit-identical to any batch sum over the
    /// same sequence.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        if let Combiner::TopK(k) = self.combiner {
            if k == 0 {
                return;
            }
            // Insertion into a small descending-sorted vec; ties keep the
            // earlier arrival first (stable for equal keys).
            let pos = self
                .topk
                .partition_point(|&v| v.total_cmp(&value) != std::cmp::Ordering::Less);
            self.topk.insert(pos, value);
            self.topk.truncate(k);
        }
    }

    /// Number of values folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arrival-order sum of values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of values; `None` on an empty aggregate.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The k largest values, descending (empty unless the combiner is
    /// [`Combiner::TopK`]).
    pub fn topk(&self) -> &[f64] {
        &self.topk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sum_mean() {
        let mut a = Aggregate::new(Combiner::Mean);
        assert_eq!(a.mean(), None);
        for v in [1.0, 2.0, 4.0] {
            a.push(v);
        }
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.mean(), Some(7.0 / 3.0));
        assert!(a.topk().is_empty(), "topk only tracked when requested");
    }

    #[test]
    fn sum_is_arrival_order_left_fold() {
        // Deliberately non-associative values: the streaming fold must match
        // a batch left fold exactly, not merely approximately.
        let values = [1e16, 1.0, -1e16, 1.0, 0.1, 0.2];
        let mut a = Aggregate::new(Combiner::Sum);
        let mut batch = 0.0f64;
        for v in values {
            a.push(v);
            batch += v;
        }
        assert_eq!(a.sum().to_bits(), batch.to_bits());
    }

    #[test]
    fn topk_keeps_largest_descending() {
        let mut a = Aggregate::new(Combiner::TopK(3));
        for v in [5.0, 1.0, 9.0, 7.0, 3.0, 9.0] {
            a.push(v);
        }
        assert_eq!(a.topk(), &[9.0, 9.0, 7.0]);
        let mut zero = Aggregate::new(Combiner::TopK(0));
        zero.push(1.0);
        assert!(zero.topk().is_empty());
    }
}
