//! Streaming telemetry → detection dataflow.
//!
//! C4D's reference detectors consume whole in-memory snapshot sets; this
//! module provides the streaming alternative: telemetry flows as a single
//! ordered stream of [`TelemetryEvent`]s from a [`source`] (live scenario
//! feed or CSV replay), through [`group_by_key`] /
//! windowed aggregation ([`window`], [`combine`]), into [`sink`]s
//! (detector feeds, CSV export, window summaries).
//!
//! Design rules that make the streaming path *provably* equal to the batch
//! path (pinned by `tests/streaming_differential.rs`):
//!
//! * **Canonical order** — [`events_from_snapshots`] flattens a snapshot set
//!   into one deterministic event order; batch and stream consume the same
//!   order, so order-sensitive f64 folds agree bit-for-bit.
//! * **Lossless transport** — the event-stream CSV encodes times as integer
//!   nanoseconds and loads via `f64` shortest-round-trip `Display`, so a
//!   replayed file drives detectors to bit-identical verdicts.
//! * **Bounded state** — windows close at the watermark and panes are
//!   dropped after emission; memory is proportional to open windows, not to
//!   stream length.

pub mod combine;
pub mod sink;
pub mod source;
pub mod window;

pub use combine::{Aggregate, Combiner};
pub use sink::{run_pipeline, CsvSink, EventSink, SummarySink, WindowSummaryRecord};
pub use source::{group_by_key, CsvEventReader, EventSource, MemorySource};
pub use window::{TimeAxis, WindowPane, WindowSpec, WindowedAggregate};

use c4_simcore::SimTime;

use crate::csv::{parse_field, split_fields, CsvError, FromCsv, ToCsv};
use crate::record::{CollRecord, CommRecord, ConnRecord, RankRecord};
use crate::worker::TelemetrySnapshot;

/// A generic numeric detector-feed sample: one per-rank load observation
/// per step (EP receive bytes, compute milliseconds, …). The `f64` value
/// round-trips exactly through CSV (`Display` prints the shortest exact
/// representation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSample {
    /// Communicator the load belongs to.
    pub comm: u64,
    /// Reporting rank.
    pub rank: u32,
    /// Training step the sample describes.
    pub step: u64,
    /// When the sample was taken.
    pub at: SimTime,
    /// The observed load value (unit depends on the producer).
    pub value: f64,
}

impl ToCsv for LoadSample {
    fn csv_header() -> &'static str {
        "comm,rank,step,at_s,value"
    }

    fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.comm,
            self.rank,
            self.step,
            crate::csv::format_secs(self.at),
            self.value
        )
    }
}

impl FromCsv for LoadSample {
    fn from_csv_row(row: &str) -> Result<Self, CsvError> {
        let fields = split_fields(row)?;
        if fields.len() != 5 {
            return Err(CsvError::new(format!(
                "load rows carry 5 columns, got {}",
                fields.len()
            )));
        }
        Ok(LoadSample {
            comm: parse_field(&fields, 0, "comm")?,
            rank: parse_field(&fields, 1, "rank")?,
            step: parse_field(&fields, 2, "step")?,
            at: crate::csv::parse_secs(&fields[3])?,
            value: parse_field(&fields, 4, "value")?,
        })
    }
}

/// One element of the unified telemetry stream: any of the four ACCL record
/// kinds, or a generic [`LoadSample`].
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// Communicator creation.
    Comm(CommRecord),
    /// A collective operation report (start, or start+completion).
    Coll(CollRecord),
    /// A transport-connection aggregate report.
    Conn(ConnRecord),
    /// A per-rank execution-rhythm report.
    Rank(RankRecord),
    /// A generic numeric load sample.
    Load(LoadSample),
}

impl TelemetryEvent {
    /// The event's position on the simulated-time axis: completion time for
    /// collectives and connections (falling back to start / zero while in
    /// flight), arrival for rank reports, sample time for loads.
    pub fn time(&self) -> SimTime {
        match self {
            TelemetryEvent::Comm(c) => c.created,
            TelemetryEvent::Coll(c) => c.end.unwrap_or(c.start),
            TelemetryEvent::Conn(c) => c.last_completion.unwrap_or(SimTime::ZERO),
            TelemetryEvent::Rank(r) => r.arrived,
            TelemetryEvent::Load(l) => l.at,
        }
    }

    /// The communicator this event belongs to.
    pub fn comm(&self) -> u64 {
        match self {
            TelemetryEvent::Comm(c) => c.comm,
            TelemetryEvent::Coll(c) => c.comm,
            TelemetryEvent::Conn(c) => c.key.comm,
            TelemetryEvent::Rank(r) => r.comm,
            TelemetryEvent::Load(l) => l.comm,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            TelemetryEvent::Comm(_) => "comm",
            TelemetryEvent::Coll(_) => "coll",
            TelemetryEvent::Conn(_) => "conn",
            TelemetryEvent::Rank(_) => "rank",
            TelemetryEvent::Load(_) => "load",
        }
    }
}

impl ToCsv for TelemetryEvent {
    fn csv_header() -> &'static str {
        "kind,record_fields"
    }

    fn to_csv_row(&self) -> String {
        let payload = match self {
            TelemetryEvent::Comm(c) => c.to_csv_row(),
            TelemetryEvent::Coll(c) => c.to_csv_row(),
            TelemetryEvent::Conn(c) => c.to_csv_row(),
            TelemetryEvent::Rank(r) => r.to_csv_row(),
            TelemetryEvent::Load(l) => l.to_csv_row(),
        };
        format!("{},{}", self.tag(), payload)
    }
}

impl FromCsv for TelemetryEvent {
    fn from_csv_row(row: &str) -> Result<Self, CsvError> {
        let (tag, payload) = row
            .split_once(',')
            .ok_or_else(|| CsvError::new("event rows carry a kind tag plus record fields"))?;
        Ok(match tag {
            "comm" => TelemetryEvent::Comm(CommRecord::from_csv_row(payload)?),
            "coll" => TelemetryEvent::Coll(CollRecord::from_csv_row(payload)?),
            "conn" => TelemetryEvent::Conn(ConnRecord::from_csv_row(payload)?),
            "rank" => TelemetryEvent::Rank(RankRecord::from_csv_row(payload)?),
            "load" => TelemetryEvent::Load(LoadSample::from_csv_row(payload)?),
            other => return Err(CsvError::new(format!("unknown event kind {other:?}"))),
        })
    }
}

/// Flattens a snapshot set into the **canonical event order**: snapshots in
/// slice order; within each snapshot, communicator records, then collective
/// records, then connection aggregates, then rank reports, each in stored
/// order. Both the batch detectors and the streaming feed consume this
/// order, which is what makes their f64 folds bit-identical.
pub fn events_from_snapshots(snapshots: &[TelemetrySnapshot]) -> Vec<TelemetryEvent> {
    let mut events = Vec::new();
    for snap in snapshots {
        for c in &snap.comms {
            events.push(TelemetryEvent::Comm(c.clone()));
        }
        for c in &snap.colls {
            events.push(TelemetryEvent::Coll(*c));
        }
        for c in &snap.conns {
            events.push(TelemetryEvent::Conn(*c));
        }
        for r in &snap.ranks {
            events.push(TelemetryEvent::Rank(*r));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AlgoKind, CollKind, DataType};
    use crate::worker::WorkerTelemetry;
    use c4_simcore::SimDuration;
    use c4_topology::{GpuId, PortId};

    fn load(rank: u32, step: u64, value: f64) -> TelemetryEvent {
        TelemetryEvent::Load(LoadSample {
            comm: 1,
            rank,
            step,
            at: SimTime::from_secs(step),
            value,
        })
    }

    #[test]
    fn event_stream_csv_round_trips() {
        let mut w = WorkerTelemetry::new(GpuId::from_index(0));
        w.record_comm(CommRecord {
            comm: 1,
            devices: vec![GpuId::from_index(0), GpuId::from_index(1)],
            created: SimTime::ZERO,
        });
        w.record_coll(CollRecord {
            comm: 1,
            seq: 0,
            rank: 0,
            kind: CollKind::AllToAll,
            algo: AlgoKind::Ring,
            dtype: DataType::Bf16,
            count: 4096,
            start: SimTime::from_nanos(17),
            end: None,
        });
        w.record_message(
            crate::record::ConnKey {
                comm: 1,
                channel: 0,
                qp: 1,
                src_gpu: GpuId::from_index(0),
                dst_gpu: GpuId::from_index(1),
            },
            PortId::from_index(3),
            1 << 20,
            SimDuration::from_nanos(123_456_789),
            SimTime::from_nanos(987_654_321),
        );
        w.record_rank(RankRecord {
            comm: 1,
            rank: 0,
            step: 2,
            compute: SimDuration::from_nanos(1),
            ready_delay: SimDuration::ZERO,
            arrived: SimTime::from_secs(4),
        });
        let mut events = events_from_snapshots(&[w.snapshot(SimTime::from_secs(5))]);
        events.push(load(0, 2, 0.1 + 0.2)); // awkward binary fraction
        let doc = crate::csv::to_csv_document(&events);
        let back: Vec<TelemetryEvent> = crate::csv::parse_csv_document(&doc).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn canonical_order_is_snapshot_major() {
        let mk = |gpu: usize| {
            let mut w = WorkerTelemetry::new(GpuId::from_index(gpu));
            w.record_rank(RankRecord {
                comm: 9,
                rank: gpu as u32,
                step: 0,
                compute: SimDuration::ZERO,
                ready_delay: SimDuration::ZERO,
                arrived: SimTime::ZERO,
            });
            w.snapshot(SimTime::ZERO)
        };
        let events = events_from_snapshots(&[mk(0), mk(1)]);
        let ranks: Vec<u32> = events
            .iter()
            .map(|e| match e {
                TelemetryEvent::Rank(r) => r.rank,
                _ => panic!("only rank events expected"),
            })
            .collect();
        assert_eq!(ranks, vec![0, 1]);
    }

    #[test]
    fn event_time_and_comm_accessors() {
        let e = load(3, 7, 1.5);
        assert_eq!(e.time(), SimTime::from_secs(7));
        assert_eq!(e.comm(), 1);
    }
}
