//! Sinks: where the pipeline's output lands — CSV export for replay,
//! window-summary records for reporting, and (in `c4_diagnosis`) the
//! streaming detector feeds, which implement [`EventSink`] on their side.

use std::path::Path;

use super::window::WindowPane;
use super::TelemetryEvent;
use crate::csv::{parse_field, split_fields, to_csv_document, CsvError, FromCsv, ToCsv};

/// A push-based consumer of telemetry events.
pub trait EventSink {
    /// Accepts one event.
    fn accept(&mut self, event: &TelemetryEvent);
}

/// Drives a source to exhaustion, fanning every event out to all sinks in
/// order. Returns the number of events moved.
pub fn run_pipeline(
    source: &mut dyn super::source::EventSource,
    sinks: &mut [&mut dyn EventSink],
) -> usize {
    let mut moved = 0;
    while let Some(event) = source.next_event() {
        for sink in sinks.iter_mut() {
            sink.accept(&event);
        }
        moved += 1;
    }
    moved
}

/// A sink that records the stream as a lossless event-stream CSV document,
/// suitable for bit-identical replay through
/// [`CsvEventReader`](super::source::CsvEventReader).
#[derive(Debug, Default)]
pub struct CsvSink {
    events: Vec<TelemetryEvent>,
}

impl CsvSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events captured.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the captured stream as a CSV document.
    pub fn document(&self) -> String {
        to_csv_document(&self.events)
    }

    /// Writes the captured stream to a CSV file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.document())
    }
}

impl EventSink for CsvSink {
    fn accept(&mut self, event: &TelemetryEvent) {
        self.events.push(event.clone());
    }
}

/// One closed window pane flattened for reporting/CSV export.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummaryRecord {
    /// Pane start tick (inclusive).
    pub window_start: u64,
    /// Pane end tick (exclusive).
    pub window_end: u64,
    /// The grouping key, stringified by the producer.
    pub key: String,
    /// Values folded into the pane.
    pub count: u64,
    /// Arrival-order sum.
    pub sum: f64,
    /// Mean (`0` for an empty pane — empty panes are normally never
    /// emitted).
    pub mean: f64,
}

impl ToCsv for WindowSummaryRecord {
    fn csv_header() -> &'static str {
        "window_start,window_end,key,count,sum,mean"
    }

    fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{}",
            self.window_start,
            self.window_end,
            crate::csv::quote_field(&self.key),
            self.count,
            self.sum,
            self.mean
        )
    }
}

impl FromCsv for WindowSummaryRecord {
    fn from_csv_row(row: &str) -> Result<Self, CsvError> {
        let fields = split_fields(row)?;
        if fields.len() != 6 {
            return Err(CsvError::new(format!(
                "window-summary rows carry 6 columns, got {}",
                fields.len()
            )));
        }
        Ok(WindowSummaryRecord {
            window_start: parse_field(&fields, 0, "window_start")?,
            window_end: parse_field(&fields, 1, "window_end")?,
            key: fields[2].clone(),
            count: parse_field(&fields, 3, "count")?,
            sum: parse_field(&fields, 4, "sum")?,
            mean: parse_field(&fields, 5, "mean")?,
        })
    }
}

/// Collects closed window panes as [`WindowSummaryRecord`]s — the
/// "summary records" sink of the pipeline.
#[derive(Debug, Default)]
pub struct SummarySink {
    records: Vec<WindowSummaryRecord>,
}

impl SummarySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a batch of closed panes in (keys are stringified via
    /// `Display`).
    pub fn accept_panes<K: std::fmt::Display>(&mut self, panes: &[WindowPane<K>]) {
        for pane in panes {
            self.records.push(WindowSummaryRecord {
                window_start: pane.start,
                window_end: pane.end,
                key: pane.key.to_string(),
                count: pane.aggregate.count(),
                sum: pane.aggregate.sum(),
                mean: pane.aggregate.mean().unwrap_or(0.0),
            });
        }
    }

    /// The records collected so far.
    pub fn records(&self) -> &[WindowSummaryRecord] {
        &self.records
    }

    /// Renders the collected summaries as a CSV document.
    pub fn document(&self) -> String {
        to_csv_document(&self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_csv_document;
    use crate::pipeline::combine::Combiner;
    use crate::pipeline::source::MemorySource;
    use crate::pipeline::window::{WindowSpec, WindowedAggregate};
    use crate::pipeline::LoadSample;
    use c4_simcore::SimTime;

    fn load(rank: u32, step: u64, value: f64) -> TelemetryEvent {
        TelemetryEvent::Load(LoadSample {
            comm: 1,
            rank,
            step,
            at: SimTime::from_secs(step),
            value,
        })
    }

    #[test]
    fn csv_sink_document_replays_exactly() {
        let events = vec![load(0, 0, 1.5), load(1, 0, 2.5)];
        let mut sink = CsvSink::new();
        let mut src = MemorySource::new(events.clone());
        let moved = run_pipeline(&mut src, &mut [&mut sink]);
        assert_eq!(moved, 2);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        let back: Vec<TelemetryEvent> = parse_csv_document(&sink.document()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn summary_sink_round_trips_through_csv() {
        let mut agg: WindowedAggregate<u32> = WindowedAggregate::new(
            WindowSpec::tumbling_steps(2),
            Combiner::Mean,
            |e| match e {
                TelemetryEvent::Load(l) => Some(l.rank),
                _ => None,
            },
            |e| match e {
                TelemetryEvent::Load(l) => Some(l.value),
                _ => None,
            },
        );
        let mut summary = SummarySink::new();
        for step in 0..5 {
            let panes = agg.push(&load(0, step, 0.1 * step as f64));
            summary.accept_panes(&panes);
        }
        summary.accept_panes(&agg.flush());
        assert_eq!(summary.records().len(), 3);
        let back: Vec<WindowSummaryRecord> = parse_csv_document(&summary.document()).unwrap();
        assert_eq!(back, summary.records());
    }
}
