//! Typed sources feeding the pipeline: in-memory scenario feeds and CSV
//! replay, plus the standalone `group_by_key` operator.

use std::collections::BTreeMap;
use std::path::Path;

use super::TelemetryEvent;
use crate::csv::{parse_csv_document, CsvError};
use crate::worker::TelemetrySnapshot;

/// A pull-based source of telemetry events. Sources yield events in the
/// order detectors must consume them; `None` means end of stream.
pub trait EventSource {
    /// The next event, or `None` at end of stream.
    fn next_event(&mut self) -> Option<TelemetryEvent>;
}

/// An in-memory source: the live scenario feed (events handed over directly
/// by the simulation).
#[derive(Debug)]
pub struct MemorySource {
    events: std::vec::IntoIter<TelemetryEvent>,
}

impl MemorySource {
    /// Wraps a pre-collected event vector.
    pub fn new(events: Vec<TelemetryEvent>) -> Self {
        MemorySource {
            events: events.into_iter(),
        }
    }

    /// Flattens worker snapshots into the canonical event order (see
    /// [`events_from_snapshots`](super::events_from_snapshots)).
    pub fn from_snapshots(snapshots: &[TelemetrySnapshot]) -> Self {
        Self::new(super::events_from_snapshots(snapshots))
    }
}

impl EventSource for MemorySource {
    fn next_event(&mut self) -> Option<TelemetryEvent> {
        self.events.next()
    }
}

/// A CSV replay source: parses an event-stream document (as produced by
/// [`CsvSink`](super::sink::CsvSink)) and yields its events in file order.
/// Because the CSV encoding is lossless, a replayed stream drives detectors
/// to bit-identical verdicts versus the live feed it recorded.
#[derive(Debug)]
pub struct CsvEventReader {
    inner: MemorySource,
}

impl CsvEventReader {
    /// Parses an event-stream CSV document held in memory.
    pub fn from_document(doc: &str) -> Result<Self, CsvError> {
        Ok(CsvEventReader {
            inner: MemorySource::new(parse_csv_document(doc)?),
        })
    }

    /// Reads and parses an event-stream CSV file.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, CsvError> {
        let doc = std::fs::read_to_string(path.as_ref())
            .map_err(|e| CsvError::new(format!("reading {}: {e}", path.as_ref().display())))?;
        Self::from_document(&doc)
    }
}

impl EventSource for CsvEventReader {
    fn next_event(&mut self) -> Option<TelemetryEvent> {
        self.inner.next_event()
    }
}

/// Groups a batch of events by key, preserving arrival order within each
/// group (the batch counterpart of the keyed routing inside
/// [`WindowedAggregate`](super::window::WindowedAggregate)). Events mapping
/// to `None` are skipped.
pub fn group_by_key<K: Ord>(
    events: impl IntoIterator<Item = TelemetryEvent>,
    key_fn: impl Fn(&TelemetryEvent) -> Option<K>,
) -> BTreeMap<K, Vec<TelemetryEvent>> {
    let mut groups: BTreeMap<K, Vec<TelemetryEvent>> = BTreeMap::new();
    for event in events {
        if let Some(key) = key_fn(&event) {
            groups.entry(key).or_default().push(event);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::to_csv_document;
    use crate::pipeline::LoadSample;
    use c4_simcore::SimTime;

    fn load(comm: u64, rank: u32, value: f64) -> TelemetryEvent {
        TelemetryEvent::Load(LoadSample {
            comm,
            rank,
            step: 0,
            at: SimTime::ZERO,
            value,
        })
    }

    #[test]
    fn memory_source_preserves_order() {
        let events = vec![load(1, 0, 1.0), load(1, 1, 2.0)];
        let mut src = MemorySource::new(events.clone());
        assert_eq!(src.next_event(), Some(events[0].clone()));
        assert_eq!(src.next_event(), Some(events[1].clone()));
        assert_eq!(src.next_event(), None);
    }

    #[test]
    fn csv_reader_replays_a_recorded_stream_exactly() {
        let events = vec![load(1, 0, 0.1 + 0.2), load(2, 1, -0.0)];
        let doc = to_csv_document(&events);
        let mut src = CsvEventReader::from_document(&doc).unwrap();
        let mut replayed = Vec::new();
        while let Some(e) = src.next_event() {
            replayed.push(e);
        }
        assert_eq!(replayed, events);
        assert!(CsvEventReader::from_document("bad").is_err());
        assert!(CsvEventReader::from_path("/nonexistent/events.csv").is_err());
    }

    #[test]
    fn group_by_key_preserves_arrival_order_within_groups() {
        let events = vec![load(2, 0, 1.0), load(1, 0, 2.0), load(2, 1, 3.0)];
        let groups = group_by_key(events, |e| Some(e.comm()));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&2].len(), 2);
        let values: Vec<f64> = groups[&2]
            .iter()
            .map(|e| match e {
                TelemetryEvent::Load(l) => l.value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(values, vec![1.0, 3.0]);
    }
}
